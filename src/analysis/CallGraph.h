//===- CallGraph.h - Program call graph -------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_ANALYSIS_CALLGRAPH_H
#define OCELOT_ANALYSIS_CALLGRAPH_H

#include "ir/Program.h"

#include <vector>

namespace ocelot {

/// One call edge: the call instruction in the caller plus the callee id.
struct CallSite {
  int Caller = -1;
  uint32_t Label = 0; ///< Label of the Call instruction in the caller.
  int Block = -1;     ///< Block holding the call (cached for convenience).
  int Callee = -1;
};

/// The static call graph of a program. OCL rejects recursion, so the graph
/// is a DAG; several Ocelot analyses process functions bottom-up in
/// topological order.
class CallGraph {
public:
  explicit CallGraph(const Program &P);

  const std::vector<CallSite> &callSitesIn(int Func) const {
    return SitesByCaller[Func];
  }
  const std::vector<CallSite> &callersOf(int Func) const {
    return SitesByCallee[Func];
  }

  /// \returns true if the call graph contains a cycle (should be impossible
  /// for Sema-checked OCL programs; used by tests on hand-built IR).
  bool hasCycle() const { return Cyclic; }

  /// Functions ordered callees-first (valid only when acyclic).
  const std::vector<int> &bottomUpOrder() const { return BottomUp; }

  /// \returns true if \p Ancestor == \p Func or \p Func is (transitively)
  /// called from \p Ancestor.
  bool reaches(int Ancestor, int Func) const;

private:
  std::vector<std::vector<CallSite>> SitesByCaller;
  std::vector<std::vector<CallSite>> SitesByCallee;
  std::vector<int> BottomUp;
  std::vector<std::vector<char>> Reach; ///< Reach[A][B]: A reaches B.
  bool Cyclic = false;
};

} // namespace ocelot

#endif // OCELOT_ANALYSIS_CALLGRAPH_H
