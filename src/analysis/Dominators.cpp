//===- Dominators.cpp - Dominator and post-dominator trees -------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace ocelot;

namespace {

/// CFG adapter that presents forward or reversed edges, with an optional
/// virtual root for post-dominators over multi-exit functions.
struct Graph {
  int NumNodes = 0;
  int Root = 0;
  std::vector<std::vector<int>> Succs;
  std::vector<std::vector<int>> Preds;

  static Graph forward(const Function &F) {
    Graph G;
    G.NumNodes = F.numBlocks();
    G.Root = 0;
    G.Succs.resize(G.NumNodes);
    G.Preds.resize(G.NumNodes);
    for (int B = 0; B < F.numBlocks(); ++B)
      for (int S : F.block(B)->successors()) {
        G.Succs[B].push_back(S);
        G.Preds[S].push_back(B);
      }
    return G;
  }

  static Graph reverse(const Function &F) {
    Graph G;
    int NB = F.numBlocks();
    std::vector<int> Exits;
    for (int B = 0; B < NB; ++B)
      if (F.block(B)->successors().empty())
        Exits.push_back(B);
    bool Virtual = Exits.size() != 1;
    G.NumNodes = NB + (Virtual ? 1 : 0);
    G.Root = Virtual ? NB : Exits[0];
    G.Succs.resize(G.NumNodes);
    G.Preds.resize(G.NumNodes);
    for (int B = 0; B < NB; ++B)
      for (int S : F.block(B)->successors()) {
        // Reversed edge S -> B.
        G.Succs[S].push_back(B);
        G.Preds[B].push_back(S);
      }
    if (Virtual)
      for (int E : Exits) {
        G.Succs[NB].push_back(E);
        G.Preds[E].push_back(NB);
      }
    return G;
  }
};

} // namespace

DominatorTree DominatorTree::compute(const Function &F, bool Post) {
  Graph G = Post ? Graph::reverse(F) : Graph::forward(F);

  // Reverse postorder from the root.
  std::vector<int> Order; // postorder
  std::vector<int> PostIndex(G.NumNodes, -1);
  {
    std::vector<std::pair<int, size_t>> Stack;
    std::vector<char> Visited(G.NumNodes, 0);
    Stack.push_back({G.Root, 0});
    Visited[G.Root] = 1;
    while (!Stack.empty()) {
      auto &[Node, EdgeIdx] = Stack.back();
      if (EdgeIdx < G.Succs[Node].size()) {
        int Next = G.Succs[Node][EdgeIdx++];
        if (!Visited[Next]) {
          Visited[Next] = 1;
          Stack.push_back({Next, 0});
        }
      } else {
        PostIndex[Node] = static_cast<int>(Order.size());
        Order.push_back(Node);
        Stack.pop_back();
      }
    }
  }

  std::vector<int> Idom(G.NumNodes, -1);
  Idom[G.Root] = G.Root;

  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (PostIndex[A] < PostIndex[B])
        A = Idom[A];
      while (PostIndex[B] < PostIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    // Iterate in reverse postorder, skipping the root.
    for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
      int Node = *It;
      if (Node == G.Root)
        continue;
      int NewIdom = -1;
      for (int P : G.Preds[Node]) {
        if (Idom[P] == -1 && P != G.Root)
          continue; // Not yet processed / unreachable.
        if (PostIndex[P] < 0)
          continue;
        NewIdom = NewIdom == -1 ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != -1 && Idom[Node] != NewIdom) {
        Idom[Node] = NewIdom;
        Changed = true;
      }
    }
  }

  DominatorTree T;
  T.PostDom = Post;
  int NB = F.numBlocks();
  T.Idom.assign(NB, -1);
  T.Depth.assign(NB, -1);
  bool Virtual = G.NumNodes != NB;

  // Compute depths by walking idom chains (graphs are small).
  auto DepthOf = [&](int Node, auto &&Self) -> int {
    if (Node == G.Root)
      return 0;
    if (Idom[Node] == -1 || PostIndex[Node] < 0)
      return -1;
    int D = Self(Idom[Node], Self);
    return D < 0 ? -1 : D + 1;
  };
  for (int B = 0; B < NB; ++B) {
    int D = DepthOf(B, DepthOf);
    T.Depth[B] = D;
    if (D < 0)
      continue;
    int Parent = (B == G.Root) ? -1 : Idom[B];
    // A virtual root is reported as -1.
    T.Idom[B] = (Parent >= 0 && Virtual && Parent == NB) ? -1 : Parent;
  }
  return T;
}

DominatorTree DominatorTree::computeDominators(const Function &F) {
  return compute(F, /*Post=*/false);
}

DominatorTree DominatorTree::computePostDominators(const Function &F) {
  return compute(F, /*Post=*/true);
}

bool DominatorTree::dominates(int A, int B) const {
  if (Depth[A] < 0 || Depth[B] < 0)
    return false;
  while (Depth[B] > Depth[A]) {
    B = Idom[B];
    if (B < 0)
      return false;
  }
  return A == B;
}

bool DominatorTree::dominates(InstrPos A, InstrPos B) const {
  if (A.Block == B.Block)
    return PostDom ? A.Index >= B.Index : A.Index <= B.Index;
  return dominates(A.Block, B.Block);
}

int DominatorTree::closestCommon(int A, int B) const {
  if (Depth[A] < 0 || Depth[B] < 0)
    return -1;
  while (A != B) {
    if (Depth[A] < Depth[B])
      std::swap(A, B);
    A = Idom[A];
    if (A < 0)
      return -1;
  }
  return A;
}

int DominatorTree::closestCommon(const std::vector<int> &Blocks) const {
  assert(!Blocks.empty() && "need at least one block");
  int Common = Blocks[0];
  for (size_t I = 1; I < Blocks.size() && Common >= 0; ++I)
    Common = closestCommon(Common, Blocks[I]);
  return Common;
}
