//===- TaintAnalysis.h - Input-dependence analysis --------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inter-procedural, context-sensitive input-dependence ("taint") analysis,
/// reproducing the paper's §5.1 / Appendix I (Algorithm 2):
///
///  * Inputs are the taint sources; taint propagates through data flow and
///    control flow (branch conditions taint control-dependent definitions).
///  * Each taint carries *provenance*: the chain of call sites ending at the
///    input instruction (the paper's rho), so two calls to the same sensor
///    wrapper are distinguished (Fig. 6(b)).
///  * Function summaries record how taint enters (argBy), leaves (retBy),
///    and flows through reference parameters (pbr), mirroring the paper's
///    local/caller summaries; OCL's ownership discipline (references created
///    only at call sites, targets statically known) stands in for the Rust
///    alias precision Ocelot relies on (§3.3).
///  * Mutable non-volatile globals — which the paper excludes in Rust — are
///    supported conservatively: the content taint of a global is the
///    program-wide union of everything ever stored to it (flow-insensitive),
///    which is sound for policy construction.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_ANALYSIS_TAINTANALYSIS_H
#define OCELOT_ANALYSIS_TAINTANALYSIS_H

#include "analysis/CallGraph.h"
#include "ir/Program.h"

#include <map>
#include <set>
#include <vector>

namespace ocelot {

/// Symbolic taint of a value within one function's analysis space.
/// (ProvChain itself is defined with the IR in ir/Instruction.h.)
struct TokenSet {
  /// Taint entering through value parameters (paper: argBy).
  std::set<int> Params;
  /// Taint read through reference parameters' referents (resolved to the
  /// target global at each call site).
  std::set<int> RefContents;
  /// Inputs reached without leaving this function's subtree: chains whose
  /// first element is an instruction of this function (paper: local /
  /// retBy composition).
  std::set<ProvChain> Locals;
  /// Taint obtained by reading a non-volatile global's content.
  std::set<int> Globals;

  bool empty() const {
    return Params.empty() && RefContents.empty() && Locals.empty() &&
           Globals.empty();
  }

  /// Set-union; \returns true if this set grew.
  bool mergeFrom(const TokenSet &O);
};

/// Per-function analysis results.
struct FunctionTaint {
  /// Taint of the returned value (paper: ret <- inInfo).
  TokenSet Ret;
  /// Taint stored through each reference parameter (paper: &arg <- inInfo).
  std::map<int, TokenSet> RefOut;
  /// Taint stored to each global, including effects of callees.
  std::map<int, TokenSet> GlobalWrites;
  /// Taint of the annotated operand at each Fresh/Consistent marker,
  /// keyed by the marker's label.
  std::map<uint32_t, TokenSet> AnnotTaint;
  /// Taint of every argument at each call site, keyed by the call label.
  std::map<uint32_t, std::vector<TokenSet>> CallArgTaint;
  /// Final (fixpoint) taint of every register, merged over the whole
  /// function. Used by use-site collection and tests.
  std::vector<TokenSet> RegTaint;
};

/// Runs the analysis over a whole program. The call graph must be acyclic.
class TaintAnalysis {
public:
  TaintAnalysis(const Program &P, const CallGraph &CG);

  const FunctionTaint &functionTaint(int Func) const { return FT[Func]; }

  /// Program-wide content taint of global \p G as absolute chains (rooted
  /// at main).
  const std::set<ProvChain> &globalContent(int G) const {
    return GlobalContent[G];
  }

  /// All absolute call chains from main to \p Func (each a list of call
  /// sites; empty chain for main itself).
  const std::vector<ProvChain> &contexts(int Func) const {
    return Contexts[Func];
  }

  /// \returns true if \p T only contains Locals tokens, i.e. every input it
  /// depends on is reached inside the owning function's subtree.
  static bool isSelfContained(const TokenSet &T) {
    return T.Params.empty() && T.RefContents.empty() && T.Globals.empty();
  }

  /// Expands \p T (in \p Func's space) into absolute chains rooted at main:
  /// Params through every caller, RefContents/Globals through the global
  /// content map, Locals by prefixing with every context of \p Func.
  std::set<ProvChain> resolveAbsolute(int Func, const TokenSet &T) const;

  /// Expands \p T keeping chains relative to \p Func. Only valid for
  /// self-contained sets.
  std::set<ProvChain> resolveRelative(const TokenSet &T) const {
    return T.Locals;
  }

private:
  void analyzeFunction(int Func);
  void computeContexts();
  void computeGlobalContent();
  TokenSet translateCalleeTokens(const Instruction &Call,
                                 const TokenSet &CalleeTokens,
                                 const std::vector<TokenSet> &ArgTokens,
                                 int CallerFunc) const;
  std::set<ProvChain>
  resolveAbsoluteImpl(int Func, const TokenSet &T,
                      std::set<std::pair<int, int>> &ParamGuard) const;

  const Program &P;
  const CallGraph &CG;
  std::vector<FunctionTaint> FT;
  std::vector<std::set<ProvChain>> GlobalContent;
  std::vector<std::vector<ProvChain>> Contexts;
};

} // namespace ocelot

#endif // OCELOT_ANALYSIS_TAINTANALYSIS_H
