//===- WarAnalysis.cpp - WAR / EMW sets for atomic regions --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/WarAnalysis.h"

#include "analysis/Dominators.h"

#include <cassert>

using namespace ocelot;

WarAnalysis::WarAnalysis(const Program &P, const CallGraph &CG)
    : P(P), CG(CG) {
  Summaries.resize(P.numFunctions());
  computeSummaries();
  collectRegions();
}

const RegionInfo *WarAnalysis::regionById(int RegionId) const {
  for (const RegionInfo &R : Regions)
    if (R.RegionId == RegionId)
      return &R;
  return nullptr;
}

/// Applies one instruction's global effects (including callee summaries) to
/// the read/write sets. Ref-param accesses are resolved through \p RefTarget
/// which maps a param index to its global, or collects into param sets when
/// the mapping is unknown (i.e. while summarizing the callee itself).
namespace {

struct Effects {
  std::set<int> *ReadG;
  std::set<int> *WriteG;
  std::set<int> *ReadRef;  // may be null
  std::set<int> *WriteRef; // may be null
};

void applyInstr(const Program &P, const std::vector<RwSummary> &Summaries,
                const Instruction &I, const Effects &E) {
  switch (I.Op) {
  case Opcode::LoadG:
  case Opcode::LoadA:
    E.ReadG->insert(I.GlobalId);
    break;
  case Opcode::StoreG:
  case Opcode::StoreA:
    E.WriteG->insert(I.GlobalId);
    break;
  case Opcode::LoadInd:
    assert(I.A.isReg());
    if (E.ReadRef)
      E.ReadRef->insert(I.A.Reg);
    break;
  case Opcode::StoreInd:
    assert(I.A.isReg());
    if (E.WriteRef)
      E.WriteRef->insert(I.A.Reg);
    break;
  case Opcode::Call: {
    const RwSummary &S = Summaries[static_cast<size_t>(I.Callee)];
    E.ReadG->insert(S.ReadGlobals.begin(), S.ReadGlobals.end());
    E.WriteG->insert(S.WriteGlobals.begin(), S.WriteGlobals.end());
    for (int ParamIdx : S.ReadRefParams) {
      int Target = I.ArgRefGlobal[static_cast<size_t>(ParamIdx)];
      assert(Target >= 0 && "ref read through non-ref argument");
      E.ReadG->insert(Target);
    }
    for (int ParamIdx : S.WriteRefParams) {
      int Target = I.ArgRefGlobal[static_cast<size_t>(ParamIdx)];
      assert(Target >= 0 && "ref write through non-ref argument");
      E.WriteG->insert(Target);
    }
    break;
  }
  default:
    break;
  }
  (void)P;
}

} // namespace

void WarAnalysis::computeSummaries() {
  for (int F : CG.bottomUpOrder()) {
    const Function &Fn = *P.function(F);
    RwSummary &S = Summaries[static_cast<size_t>(F)];
    Effects E{&S.ReadGlobals, &S.WriteGlobals, &S.ReadRefParams,
              &S.WriteRefParams};
    for (int B = 0; B < Fn.numBlocks(); ++B)
      for (const Instruction &I : Fn.block(B)->instructions())
        applyInstr(P, Summaries, I, E);
  }
}

void WarAnalysis::collectRegions() {
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function &Fn = *P.function(F);
    DominatorTree DT = DominatorTree::computeDominators(Fn);
    DominatorTree PDT = DominatorTree::computePostDominators(Fn);

    // Pair up region bounds by id within this function.
    std::map<int, InstrPos> Starts, Ends;
    for (int B = 0; B < Fn.numBlocks(); ++B) {
      const auto &Instrs = Fn.block(B)->instructions();
      for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
        const Instruction &I = Instrs[Idx];
        if (I.Op == Opcode::AtomicStart)
          Starts[I.RegionId] = {B, static_cast<int>(Idx)};
        else if (I.Op == Opcode::AtomicEnd)
          Ends[I.RegionId] = {B, static_cast<int>(Idx)};
      }
    }

    for (const auto &[RegionId, StartPos] : Starts) {
      auto EndIt = Ends.find(RegionId);
      if (EndIt == Ends.end())
        continue; // Verifier rejects unmatched bounds.
      const InstrPos &EndPos = EndIt->second;

      RegionInfo R;
      R.RegionId = RegionId;
      R.Func = F;
      R.StartLabel = Fn.instrAt(StartPos)->Label;
      R.EndLabel = Fn.instrAt(EndPos)->Label;

      Effects E{&R.Reads, &R.Writes, nullptr, nullptr};
      std::set<int> RefReads, RefWrites;
      E.ReadRef = &RefReads;
      E.WriteRef = &RefWrites;

      for (int B = 0; B < Fn.numBlocks(); ++B) {
        const auto &Instrs = Fn.block(B)->instructions();
        for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
          InstrPos Pos{B, static_cast<int>(Idx)};
          if (!DT.dominates(StartPos, Pos) || !PDT.dominates(EndPos, Pos))
            continue;
          applyInstr(P, Summaries, Instrs[Idx], E);
          ++R.StaticSize;
        }
      }

      // A region with accesses through the enclosing function's own ref
      // params cannot resolve targets locally; conservatively include every
      // global any caller passes for that parameter.
      auto ResolveRefSet = [&](const std::set<int> &ParamIdxs,
                               std::set<int> &Into) {
        for (int ParamIdx : ParamIdxs)
          for (const CallSite &Site : CG.callersOf(F)) {
            const Function *Caller = P.function(Site.Caller);
            const Instruction *Call =
                Caller->instrAt(Caller->findLabel(Site.Label));
            assert(Call && "call site must exist");
            int Target = Call->ArgRefGlobal[static_cast<size_t>(ParamIdx)];
            if (Target >= 0)
              Into.insert(Target);
          }
      };
      ResolveRefSet(RefReads, R.Reads);
      ResolveRefSet(RefWrites, R.Writes);

      for (int G : R.Writes) {
        if (R.Reads.count(G))
          R.War.insert(G);
        else
          R.Emw.insert(G);
        R.Omega.insert(G);
      }
      Regions.push_back(std::move(R));
    }
  }
}
