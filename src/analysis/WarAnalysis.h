//===- WarAnalysis.h - WAR / EMW sets for atomic regions --------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, for every atomic region in a program, the set of non-volatile
/// locations the undo-logging runtime must be able to restore:
///
///  * WAR set — globals read and written inside the region
///    (write-after-read dependences make naive re-execution non-idempotent,
///    §2.1);
///  * EMW set — the remaining written globals ("exclusive may-write",
///    conditionally-written data that checkpointing systems must also back
///    up when inputs are involved, Surbatovich et al. OOPSLA'19/'20);
///  * omega = WAR ∪ EMW — the paper's startatom(aID, omega) parameter.
///
/// Effects of callees (including stores through reference parameters,
/// resolved to their statically known target globals) are included
/// transitively. Region membership is dominance-based: an instruction
/// belongs to a region when the region's start dominates it and the region's
/// end post-dominates it.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_ANALYSIS_WARANALYSIS_H
#define OCELOT_ANALYSIS_WARANALYSIS_H

#include "analysis/CallGraph.h"
#include "ir/Program.h"

#include <set>
#include <vector>

namespace ocelot {

/// Transitive global read/write effects of one function.
struct RwSummary {
  std::set<int> ReadGlobals;
  std::set<int> WriteGlobals;
  std::set<int> ReadRefParams;  ///< Ref params read through (LoadInd).
  std::set<int> WriteRefParams; ///< Ref params written through (StoreInd).
};

/// One atomic region and its undo-log requirements.
struct RegionInfo {
  int RegionId = -1;
  int Func = -1;
  uint32_t StartLabel = 0;
  uint32_t EndLabel = 0;
  std::set<int> Reads;
  std::set<int> Writes;
  std::set<int> War;   ///< Reads ∩ Writes.
  std::set<int> Emw;   ///< Writes \ War.
  std::set<int> Omega; ///< War ∪ Emw (== Writes).
  /// Instruction count statically inside the region (an energy proxy used
  /// by the region-size ablation).
  int StaticSize = 0;
};

class WarAnalysis {
public:
  WarAnalysis(const Program &P, const CallGraph &CG);

  const std::vector<RegionInfo> &regions() const { return Regions; }
  const RegionInfo *regionById(int RegionId) const;
  const RwSummary &summary(int Func) const { return Summaries[Func]; }

private:
  void computeSummaries();
  void collectRegions();

  const Program &P;
  const CallGraph &CG;
  std::vector<RwSummary> Summaries;
  std::vector<RegionInfo> Regions;
};

} // namespace ocelot

#endif // OCELOT_ANALYSIS_WARANALYSIS_H
