//===- TaintAnalysis.cpp - Input-dependence analysis ---------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/TaintAnalysis.h"

#include "analysis/Dominators.h"

#include <cassert>

using namespace ocelot;

bool TokenSet::mergeFrom(const TokenSet &O) {
  bool Changed = false;
  for (int X : O.Params)
    Changed |= Params.insert(X).second;
  for (int X : O.RefContents)
    Changed |= RefContents.insert(X).second;
  for (const ProvChain &C : O.Locals)
    Changed |= Locals.insert(C).second;
  for (int X : O.Globals)
    Changed |= Globals.insert(X).second;
  return Changed;
}

TaintAnalysis::TaintAnalysis(const Program &P, const CallGraph &CG)
    : P(P), CG(CG) {
  assert(!CG.hasCycle() && "taint analysis requires an acyclic call graph");
  FT.resize(P.numFunctions());
  GlobalContent.resize(P.numGlobals());
  Contexts.resize(P.numFunctions());
  for (int F = 0; F < P.numFunctions(); ++F)
    FT[F].RegTaint.resize(P.function(F)->numRegs());
  // Callees first so summaries are available at call sites.
  for (int F : CG.bottomUpOrder())
    analyzeFunction(F);
  computeContexts();
  computeGlobalContent();
}

TokenSet TaintAnalysis::translateCalleeTokens(
    const Instruction &Call, const TokenSet &CalleeTokens,
    const std::vector<TokenSet> &ArgTokens, int CallerFunc) const {
  TokenSet Out;
  for (int I : CalleeTokens.Params)
    if (I < static_cast<int>(ArgTokens.size()))
      Out.mergeFrom(ArgTokens[static_cast<size_t>(I)]);
  for (int I : CalleeTokens.RefContents) {
    assert(I < static_cast<int>(Call.ArgRefGlobal.size()) &&
           Call.ArgRefGlobal[static_cast<size_t>(I)] >= 0 &&
           "ref content token for non-ref argument");
    Out.Globals.insert(Call.ArgRefGlobal[static_cast<size_t>(I)]);
  }
  for (const ProvChain &C : CalleeTokens.Locals) {
    ProvChain Prefixed;
    Prefixed.reserve(C.size() + 1);
    Prefixed.push_back(InstrRef(CallerFunc, Call.Label));
    Prefixed.insert(Prefixed.end(), C.begin(), C.end());
    Out.Locals.insert(std::move(Prefixed));
  }
  for (int G : CalleeTokens.Globals)
    Out.Globals.insert(G);
  return Out;
}

void TaintAnalysis::analyzeFunction(int Func) {
  const Function &F = *P.function(Func);
  FunctionTaint &Res = FT[Func];
  int NumBlocks = F.numBlocks();
  int NumRegs = F.numRegs();

  // Control dependence (transitive) via the post-dominator tree.
  DominatorTree PDT = DominatorTree::computePostDominators(F);
  std::vector<std::set<int>> CtrlDeps(NumBlocks); // block -> branch blocks
  for (int C = 0; C < NumBlocks; ++C) {
    const BasicBlock *BB = F.block(C);
    if (!BB->hasTerminator() || BB->terminator().Op != Opcode::CondBr)
      continue;
    for (int S : BB->successors()) {
      int Runner = S;
      while (Runner >= 0 && Runner != PDT.idom(C)) {
        if (Runner != C)
          CtrlDeps[Runner].insert(C);
        Runner = PDT.idom(Runner);
      }
    }
  }
  // Transitive closure (nesting where the inner condition is defined
  // outside the outer branch still inherits the outer control taint).
  for (bool Grown = true; Grown;) {
    Grown = false;
    for (int B = 0; B < NumBlocks; ++B) {
      std::set<int> Add;
      for (int C : CtrlDeps[B])
        for (int CC : CtrlDeps[C])
          if (!CtrlDeps[B].count(CC))
            Add.insert(CC);
      if (!Add.empty()) {
        CtrlDeps[B].insert(Add.begin(), Add.end());
        Grown = true;
      }
    }
  }

  std::vector<std::vector<TokenSet>> BlockOut(
      NumBlocks, std::vector<TokenSet>(NumRegs));
  std::vector<char> BlockSeen(NumBlocks, 0);
  std::vector<TokenSet> CondTaint(NumBlocks);  // taint of CondBr conditions
  std::vector<TokenSet> RefLocalWritten(F.numParams());
  auto Preds = F.computePredecessors();

  auto TokensOf = [](const std::vector<TokenSet> &Regs, Operand O) {
    return O.isReg() ? Regs[static_cast<size_t>(O.Reg)] : TokenSet();
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = 0; B < NumBlocks; ++B) {
      // Entry state: merge of predecessors (params at the entry block).
      std::vector<TokenSet> Regs(NumRegs);
      if (B == 0) {
        for (int I = 0; I < F.numParams(); ++I)
          if (!F.paramIsRef(I))
            Regs[static_cast<size_t>(I)].Params.insert(I);
      }
      for (int Pr : Preds[B])
        if (BlockSeen[Pr])
          for (int R = 0; R < NumRegs; ++R)
            Regs[static_cast<size_t>(R)].mergeFrom(
                BlockOut[Pr][static_cast<size_t>(R)]);

      // Control taint for definitions in this block.
      TokenSet Ctrl;
      for (int C : CtrlDeps[B])
        Ctrl.mergeFrom(CondTaint[C]);

      auto Define = [&](int Dst, TokenSet T) {
        if (Dst < 0)
          return;
        T.mergeFrom(Ctrl);
        Regs[static_cast<size_t>(Dst)] = std::move(T);
        Changed |= Res.RegTaint[static_cast<size_t>(Dst)].mergeFrom(
            Regs[static_cast<size_t>(Dst)]);
      };

      for (const Instruction &I : F.block(B)->instructions()) {
        switch (I.Op) {
        case Opcode::Const:
          Define(I.Dst, TokenSet());
          break;
        case Opcode::Mov:
        case Opcode::Un:
          Define(I.Dst, TokensOf(Regs, I.A));
          break;
        case Opcode::Bin: {
          TokenSet T = TokensOf(Regs, I.A);
          T.mergeFrom(TokensOf(Regs, I.B));
          Define(I.Dst, std::move(T));
          break;
        }
        case Opcode::LoadG: {
          TokenSet T;
          T.Globals.insert(I.GlobalId);
          Define(I.Dst, std::move(T));
          break;
        }
        case Opcode::StoreG: {
          TokenSet T = TokensOf(Regs, I.A);
          T.mergeFrom(Ctrl);
          Changed |= Res.GlobalWrites[I.GlobalId].mergeFrom(T);
          break;
        }
        case Opcode::LoadA: {
          TokenSet T;
          T.Globals.insert(I.GlobalId);
          T.mergeFrom(TokensOf(Regs, I.A)); // index selects the element
          Define(I.Dst, std::move(T));
          break;
        }
        case Opcode::StoreA: {
          TokenSet T = TokensOf(Regs, I.B);
          T.mergeFrom(TokensOf(Regs, I.A));
          T.mergeFrom(Ctrl);
          Changed |= Res.GlobalWrites[I.GlobalId].mergeFrom(T);
          break;
        }
        case Opcode::LoadInd: {
          assert(I.A.isReg() && I.A.Reg < F.numParams() &&
                 F.paramIsRef(I.A.Reg) && "deref of a non-reference");
          TokenSet T;
          T.RefContents.insert(I.A.Reg);
          T.mergeFrom(RefLocalWritten[static_cast<size_t>(I.A.Reg)]);
          Define(I.Dst, std::move(T));
          break;
        }
        case Opcode::StoreInd: {
          assert(I.A.isReg() && I.A.Reg < F.numParams() &&
                 F.paramIsRef(I.A.Reg) && "store through a non-reference");
          TokenSet T = TokensOf(Regs, I.B);
          T.mergeFrom(Ctrl);
          Changed |= Res.RefOut[I.A.Reg].mergeFrom(T);
          Changed |=
              RefLocalWritten[static_cast<size_t>(I.A.Reg)].mergeFrom(T);
          break;
        }
        case Opcode::Input: {
          TokenSet T;
          T.Locals.insert(ProvChain{InstrRef(Func, I.Label)});
          Define(I.Dst, std::move(T));
          break;
        }
        case Opcode::Call: {
          const FunctionTaint &Callee = FT[I.Callee];
          std::vector<TokenSet> ArgTokens;
          ArgTokens.reserve(I.Args.size());
          for (const Operand &A : I.Args)
            ArgTokens.push_back(TokensOf(Regs, A));
          auto &Recorded = Res.CallArgTaint[I.Label];
          if (Recorded.size() != ArgTokens.size())
            Recorded.resize(ArgTokens.size());
          for (size_t AI = 0; AI < ArgTokens.size(); ++AI)
            Changed |= Recorded[AI].mergeFrom(ArgTokens[AI]);

          Define(I.Dst,
                 translateCalleeTokens(I, Callee.Ret, ArgTokens, Func));
          // Callee stores through our ref arguments hit known globals.
          for (const auto &[ParamIdx, T] : Callee.RefOut) {
            int Target = I.ArgRefGlobal[static_cast<size_t>(ParamIdx)];
            assert(Target >= 0 && "RefOut for a non-ref argument");
            TokenSet Tr = translateCalleeTokens(I, T, ArgTokens, Func);
            Tr.mergeFrom(Ctrl);
            Changed |= Res.GlobalWrites[Target].mergeFrom(Tr);
          }
          for (const auto &[G, T] : Callee.GlobalWrites) {
            TokenSet Tr = translateCalleeTokens(I, T, ArgTokens, Func);
            Tr.mergeFrom(Ctrl);
            Changed |= Res.GlobalWrites[G].mergeFrom(Tr);
          }
          break;
        }
        case Opcode::Ret:
          if (I.A.isReg()) {
            TokenSet T = TokensOf(Regs, I.A);
            T.mergeFrom(Ctrl);
            Changed |= Res.Ret.mergeFrom(T);
          }
          break;
        case Opcode::CondBr:
          Changed |= CondTaint[B].mergeFrom(TokensOf(Regs, I.A));
          break;
        case Opcode::Fresh:
        case Opcode::Consistent:
          Changed |= Res.AnnotTaint[I.Label].mergeFrom(TokensOf(Regs, I.A));
          break;
        case Opcode::Br:
        case Opcode::AtomicStart:
        case Opcode::AtomicEnd:
        case Opcode::Output:
        case Opcode::Nop:
          break;
        }
      }

      if (!BlockSeen[B]) {
        BlockSeen[B] = 1;
        Changed = true;
      }
      for (int R = 0; R < NumRegs; ++R)
        if (BlockOut[B][static_cast<size_t>(R)].mergeFrom(
                Regs[static_cast<size_t>(R)]))
          Changed = true;
    }
  }
}

void TaintAnalysis::computeContexts() {
  // Top-down over the DAG: main has the empty context.
  int Main = P.mainFunction();
  if (Main < 0)
    return;
  Contexts[Main].push_back(ProvChain{});
  const auto &Order = CG.bottomUpOrder();
  constexpr size_t MaxContexts = 512;
  for (auto It = Order.rbegin(); It != Order.rend(); ++It) {
    int Caller = *It;
    for (const CallSite &S : CG.callSitesIn(Caller)) {
      for (const ProvChain &Pi : Contexts[Caller]) {
        if (Contexts[S.Callee].size() >= MaxContexts)
          break;
        ProvChain C = Pi;
        C.push_back(InstrRef(Caller, S.Label));
        Contexts[S.Callee].push_back(std::move(C));
      }
    }
  }
}

void TaintAnalysis::computeGlobalContent() {
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int F = 0; F < P.numFunctions(); ++F) {
      for (const auto &[G, T] : FT[F].GlobalWrites) {
        std::set<std::pair<int, int>> Guard;
        std::set<ProvChain> Abs = resolveAbsoluteImpl(F, T, Guard);
        for (const ProvChain &C : Abs)
          if (GlobalContent[G].insert(C).second)
            Changed = true;
      }
    }
  }
}

std::set<ProvChain>
TaintAnalysis::resolveAbsolute(int Func, const TokenSet &T) const {
  std::set<std::pair<int, int>> Guard;
  return resolveAbsoluteImpl(Func, T, Guard);
}

std::set<ProvChain>
TaintAnalysis::resolveAbsoluteImpl(int Func, const TokenSet &T,
                                   std::set<std::pair<int, int>> &Guard) const {
  std::set<ProvChain> Out;
  for (const ProvChain &C : T.Locals)
    for (const ProvChain &Pi : Contexts[Func]) {
      ProvChain Abs = Pi;
      Abs.insert(Abs.end(), C.begin(), C.end());
      Out.insert(std::move(Abs));
    }
  for (int G : T.Globals)
    Out.insert(GlobalContent[G].begin(), GlobalContent[G].end());
  for (int ParamIdx : T.Params) {
    if (!Guard.insert({Func, ParamIdx}).second)
      continue;
    for (const CallSite &S : CG.callersOf(Func)) {
      auto It = FT[S.Caller].CallArgTaint.find(S.Label);
      if (It == FT[S.Caller].CallArgTaint.end())
        continue;
      if (ParamIdx >= static_cast<int>(It->second.size()))
        continue;
      std::set<ProvChain> Up = resolveAbsoluteImpl(
          S.Caller, It->second[static_cast<size_t>(ParamIdx)], Guard);
      Out.insert(Up.begin(), Up.end());
    }
  }
  for (int ParamIdx : T.RefContents) {
    for (const CallSite &S : CG.callersOf(Func)) {
      const Function *Caller = P.function(S.Caller);
      const Instruction *CallInst = Caller->instrAt(Caller->findLabel(S.Label));
      assert(CallInst && "call site must exist");
      int Target = CallInst->ArgRefGlobal[static_cast<size_t>(ParamIdx)];
      assert(Target >= 0 && "ref content for non-ref argument");
      Out.insert(GlobalContent[Target].begin(), GlobalContent[Target].end());
    }
  }
  return Out;
}
