//===- Dominators.h - Dominator and post-dominator trees --------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative dominator-tree construction (Cooper-Harvey-Kennedy, "A Simple,
/// Fast Dominance Algorithm") over a function's block CFG, in both forward
/// (dominators) and reverse (post-dominators) direction. Region inference
/// uses closestCommonDominator / closestCommonPostDominator exactly as
/// Ocelot uses LLVM's passes (Algorithm 1, lines 17-18).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_ANALYSIS_DOMINATORS_H
#define OCELOT_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace ocelot {

/// A dominator (or post-dominator) tree for one function.
class DominatorTree {
public:
  /// Builds the forward dominator tree rooted at the entry block.
  static DominatorTree computeDominators(const Function &F);

  /// Builds the post-dominator tree. Functions lowered from OCL have a
  /// single exit block (the return landing pad), which becomes the root;
  /// if several exit blocks exist a virtual root joins them.
  static DominatorTree computePostDominators(const Function &F);

  /// Immediate dominator of \p B, or -1 for the root / unreachable blocks.
  int idom(int B) const { return Idom[B]; }

  /// \returns true if block \p A dominates block \p B (reflexively).
  bool dominates(int A, int B) const;

  /// \returns true if the instruction at \p A dominates the one at \p B,
  /// using intra-block ordering when the blocks coincide. For
  /// post-dominator trees this reads "post-dominates" with the comparison
  /// reversed.
  bool dominates(InstrPos A, InstrPos B) const;

  /// Nearest common (post-)dominator of two blocks; -1 if disconnected.
  int closestCommon(int A, int B) const;

  /// Nearest common (post-)dominator of a non-empty set of blocks.
  int closestCommon(const std::vector<int> &Blocks) const;

  bool isReachable(int B) const { return Depth[B] >= 0; }
  bool isPostDom() const { return PostDom; }

private:
  DominatorTree() = default;
  static DominatorTree compute(const Function &F, bool Post);

  std::vector<int> Idom;
  std::vector<int> Depth; ///< Depth in the tree; -1 for unreachable.
  bool PostDom = false;
};

} // namespace ocelot

#endif // OCELOT_ANALYSIS_DOMINATORS_H
