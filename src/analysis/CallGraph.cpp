//===- CallGraph.cpp - Program call graph -------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

using namespace ocelot;

CallGraph::CallGraph(const Program &P) {
  int N = P.numFunctions();
  SitesByCaller.resize(N);
  SitesByCallee.resize(N);
  for (int F = 0; F < N; ++F) {
    const Function *Fn = P.function(F);
    for (int B = 0; B < Fn->numBlocks(); ++B)
      for (const Instruction &I : Fn->block(B)->instructions()) {
        if (I.Op != Opcode::Call)
          continue;
        CallSite S;
        S.Caller = F;
        S.Label = I.Label;
        S.Block = B;
        S.Callee = I.Callee;
        SitesByCaller[F].push_back(S);
        SitesByCallee[I.Callee].push_back(S);
      }
  }

  // Topological sort (callees first) via DFS; detects cycles.
  std::vector<int> Color(N, 0);
  for (int F = 0; F < N && !Cyclic; ++F) {
    if (Color[F])
      continue;
    std::vector<std::pair<int, bool>> Stack = {{F, false}};
    while (!Stack.empty()) {
      auto [Node, Done] = Stack.back();
      Stack.pop_back();
      if (Done) {
        Color[Node] = 2;
        BottomUp.push_back(Node);
        continue;
      }
      if (Color[Node] == 2)
        continue;
      if (Color[Node] == 1)
        continue;
      Color[Node] = 1;
      Stack.push_back({Node, true});
      for (const CallSite &S : SitesByCaller[Node]) {
        if (Color[S.Callee] == 1) {
          Cyclic = true;
          Stack.clear();
          break;
        }
        if (Color[S.Callee] == 0)
          Stack.push_back({S.Callee, false});
      }
    }
  }

  // Transitive reachability over the DAG (N is small for OCL programs).
  Reach.assign(N, std::vector<char>(N, 0));
  if (!Cyclic) {
    for (int F : BottomUp) { // Callees first.
      Reach[F][F] = 1;
      for (const CallSite &S : SitesByCaller[F])
        for (int T = 0; T < N; ++T)
          if (Reach[S.Callee][T])
            Reach[F][T] = 1;
    }
  }
}

bool CallGraph::reaches(int Ancestor, int Func) const {
  if (Cyclic)
    return true; // Conservative.
  return Reach[Ancestor][Func];
}
