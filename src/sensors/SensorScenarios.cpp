//===- SensorScenarios.cpp - Named sensor-world presets --------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sensors/SensorScenarios.h"

#include "fusion/CorrelatedScenarios.h"

using namespace ocelot;

namespace {

/// Every channel frozen: staleness and inconsistency have no observable
/// value cost, isolating the pure timing side of the monitors.
std::shared_ptr<const SensorScenario> steadyLab() {
  return SensorScenario::Builder()
      .channel(0, constantChannel(480))
      .channel(1, constantChannel(22))
      .channel(2, constantChannel(-3))
      .channel(3, constantChannel(100))
      .build();
}

/// Indoor climate under HVAC control: slow square waves (compressor duty
/// cycles) with a little ADC quantization jitter on top.
std::shared_ptr<const SensorScenario> officeHvac() {
  return SensorScenario::Builder()
      .channel(0, jitterChannel(squareChannel(210, 30, 40'000), 2, 0xace1))
      .channel(1, offsetChannel(squareChannel(18, 4, 60'000), 3))
      .channel(2, jitterChannel(constantChannel(55), 1, 0xbee5))
      .channel(3, noiseChannel(40, 10, 5'000, 0x0ff1ce))
      .build();
}

/// Outdoors over a day: large slow swings with weather noise mixed in and
/// a monotonic seasonal drift on the second channel.
std::shared_ptr<const SensorScenario> outdoorDiurnal() {
  return SensorScenario::Builder()
      .channel(0, mixChannel(squareChannel(-40, 520, 750'000),
                             noiseChannel(0, 60, 900, 0x50a1), 0.8))
      .channel(1, jitterChannel(rampChannel(5, 1, 9'000), 3, 0xd1a))
      .channel(2, squareChannel(-10, 45, 600'000))
      .channel(3, mixChannel(noiseChannel(100, 300, 20'000, 0x5d0c),
                             constantChannel(150), 0.5))
      .build();
}

/// Violent fast dynamics: broadband shaking, a one-off shock step, and
/// heavy per-read jitter — the adversarial end for freshness policies.
std::shared_ptr<const SensorScenario> quakeBursts() {
  return SensorScenario::Builder()
      .channel(0, jitterChannel(noiseChannel(-200, 400, 120, 0x9a3e), 15,
                                0x7e11))
      .channel(1, scaleChannel(noiseChannel(-60, 120, 90, 0x5e15), 2.5))
      .channel(2, mixChannel(stepChannel(0, 900, 1'500'000),
                             noiseChannel(0, 250, 200, 0xbad), 0.6))
      .channel(3, noiseChannel(0, 1000, 60, 0x40ab))
      .build();
}

} // namespace

SensorScenarioRegistry &SensorScenarioRegistry::global() {
  static SensorScenarioRegistry *R = [] {
    auto *Reg = new SensorScenarioRegistry();
    Reg->registerScenario(
        "legacy-noise",
        "per-sensor seeded noise (the unconfigured default)",
        [] { return defaultSensorScenario(); });
    Reg->registerScenario("steady-lab",
                          "every channel frozen at a bench constant",
                          [] { return steadyLab(); });
    Reg->registerScenario(
        "office-hvac",
        "slow HVAC square waves with quantization jitter",
        [] { return officeHvac(); });
    Reg->registerScenario(
        "outdoor-diurnal",
        "large slow swings, drift, and weather noise",
        [] { return outdoorDiurnal(); });
    Reg->registerScenario("quake-bursts",
                          "violent fast dynamics and shock steps",
                          [] { return quakeBursts(); });
    // The correlated fusion presets (fusion-calm .. fusion-storm) live
    // with the fusion subsystem but register here so every consumer of
    // the registry — ocelotc --sensors=, ocelot-fleet grids, table6's
    // all-preset sweep — sees them without extra wiring.
    registerFusionScenarios(*Reg);
    return Reg;
  }();
  return *R;
}

void SensorScenarioRegistry::registerScenario(const std::string &Name,
                                              const std::string &Description,
                                              Factory F) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries[Name] = Entry{Description, std::move(F)};
}

std::shared_ptr<const SensorScenario>
SensorScenarioRegistry::create(const std::string &Name) const {
  Factory F;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Name);
    if (It == Entries.end())
      return nullptr;
    F = It->second.Make;
  }
  return F();
}

std::string SensorScenarioRegistry::describe(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Name);
  return It == Entries.end() ? std::string() : It->second.Description;
}

std::vector<std::string> SensorScenarioRegistry::names() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const auto &[Name, E] : Entries)
    Out.push_back(Name); // std::map iterates sorted.
  return Out;
}

bool SensorScenarioRegistry::contains(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.count(Name) != 0;
}

std::shared_ptr<const SensorScenario>
ocelot::resolveSensorScenario(const std::string &Spec, std::string &Error) {
  bool LooksLikePath = Spec.find('/') != std::string::npos ||
                       (Spec.size() > 4 &&
                        Spec.compare(Spec.size() - 4, 4, ".csv") == 0);
  if (LooksLikePath) {
    std::shared_ptr<const SensorTrace> T = SensorTrace::loadCsv(Spec, Error);
    if (!T)
      return nullptr;
    return traceScenario(std::move(T));
  }
  if (std::shared_ptr<const SensorScenario> S =
          SensorScenarioRegistry::global().create(Spec))
    return S;
  Error = "unknown sensor scenario '" + Spec + "' (valid scenarios:";
  for (const std::string &N : SensorScenarioRegistry::global().names())
    Error += " " + N;
  Error += "; or a path to a sensor-trace CSV)";
  return nullptr;
}
