//===- SensorScenario.cpp - Immutable multi-channel sensor worlds ----------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sensors/SensorScenario.h"

using namespace ocelot;

SensorScenario::Builder &SensorScenario::Builder::channel(int Id,
                                                          SensorChannelPtr C) {
  if (Id < 0)
    return *this;
  if (Id >= static_cast<int>(Channels.size()))
    Channels.resize(static_cast<size_t>(Id) + 1);
  Channels[static_cast<size_t>(Id)] = std::move(C);
  return *this;
}

std::shared_ptr<const SensorScenario> SensorScenario::Builder::build() const {
  return std::shared_ptr<const SensorScenario>(new SensorScenario(Channels));
}

int64_t SensorScenario::defaultSample(int Id, uint64_t Tau) {
  // Unconfigured sensors default to per-sensor seeded noise (the exact
  // constants of the original Environment, pinned by SensorScenarioTest).
  SensorSignal Default = SensorSignal::noise(
      0, 100, 500, 0x51ed2701 + static_cast<uint64_t>(Id) * 1315423911ULL);
  return Default.sample(Tau);
}

std::shared_ptr<const SensorScenario> ocelot::defaultSensorScenario() {
  static const std::shared_ptr<const SensorScenario> S =
      SensorScenario::Builder().build();
  return S;
}

std::shared_ptr<const SensorScenario>
ocelot::traceScenario(std::shared_ptr<const SensorTrace> Trace,
                      int NumChannels) {
  SensorScenario::Builder B;
  if (NumChannels < 1)
    NumChannels = 1;
  const uint64_t Period = Trace->totalDurationTau();
  SensorChannelPtr Base = traceChannel(Trace);
  for (int I = 0; I < NumChannels; ++I) {
    uint64_t Shift =
        Period / static_cast<uint64_t>(NumChannels) * static_cast<uint64_t>(I);
    B.channel(I, Shift ? timeShiftChannel(Base, Shift) : Base);
  }
  return B.build();
}
