//===- SensorScenarios.h - Named sensor-world presets -----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String-addressable presets over the `SensorScenario` zoo — the input
/// mirror of `PowerProfileRegistry` — so every layer
/// (`ocelotc --sensors=...`, `SweepSpec::Scenarios`, bench drivers, user
/// code) names sensor worlds the same way. The registry ships with:
///
///   legacy-noise     per-sensor seeded noise (the unconfigured default)
///   steady-lab       every channel frozen at a bench constant
///   office-hvac      slow HVAC square waves with quantization jitter
///   outdoor-diurnal  large slow swings, drift, and weather noise
///   quake-bursts     violent fast dynamics and shock steps
///
/// `resolveSensorScenario` additionally accepts a path to a `SensorTrace`
/// CSV (anything containing a path separator or ending in ".csv"),
/// covering the `--sensors=<preset|file.csv>` CLI contract in one place;
/// a trace resolves to `traceScenario` (phase-staggered correlated
/// channels over the recording).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SENSORS_SENSORSCENARIOS_H
#define OCELOT_SENSORS_SENSORSCENARIOS_H

#include "sensors/SensorScenario.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ocelot {

/// Thread-safe name -> SensorScenario factory map. The global() instance
/// is pre-populated with the built-in presets above; tests and
/// applications may register more (re-registering a name replaces it).
class SensorScenarioRegistry {
public:
  using Factory = std::function<std::shared_ptr<const SensorScenario>()>;

  /// The process-wide registry with the built-in presets.
  static SensorScenarioRegistry &global();

  /// Registers (or replaces) \p Name.
  void registerScenario(const std::string &Name,
                        const std::string &Description, Factory F);

  /// \returns the scenario for \p Name, or nullptr if unknown.
  std::shared_ptr<const SensorScenario> create(const std::string &Name) const;

  /// One-line description of \p Name (empty if unknown).
  std::string describe(const std::string &Name) const;

  /// All registered names, sorted, e.g. for error messages and --help.
  std::vector<std::string> names() const;

  bool contains(const std::string &Name) const;

  SensorScenarioRegistry() = default;
  SensorScenarioRegistry(const SensorScenarioRegistry &) = delete;
  SensorScenarioRegistry &operator=(const SensorScenarioRegistry &) = delete;

private:
  struct Entry {
    std::string Description;
    Factory Make;
  };

  mutable std::mutex Mu;
  std::map<std::string, Entry> Entries;
};

/// Resolves a `--sensors=` spec: a registered scenario name, or a path to
/// a sensor-trace CSV (recognized by a '/' in the spec or a ".csv"
/// suffix). On failure returns nullptr and sets \p Error to a message
/// listing the valid scenario names (or the trace loader's complaint).
std::shared_ptr<const SensorScenario>
resolveSensorScenario(const std::string &Spec, std::string &Error);

} // namespace ocelot

#endif // OCELOT_SENSORS_SENSORSCENARIOS_H
