//===- SensorChannel.h - Pluggable sensor input channels --------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input side of the simulated physical world. The paper is about
/// fresh and consistent *inputs*: a `SensorChannel` is one physical
/// quantity as a pure function of logical time τ, so a value sensed before
/// a long power-off observably differs from the world after reboot, and
/// every experiment is reproducible. Channels are immutable after
/// construction and stateless — all pseudo-randomness is derived by
/// hashing (seed, τ), exactly like `PowerSource`'s Rng-passed randomness —
/// so one channel (and one `SensorScenario` of channels) can back any
/// number of concurrent `Simulation`s.
///
/// Concrete channels:
///  * the five synthetic shapes (`constantChannel` .. `noiseChannel`),
///    preserving the original `SensorSignal` sample math bit-for-bit;
///  * `traceChannel` (SensorTrace.h) — replays a recorded CSV time series;
///  * composition adaptors — `offsetChannel`, `scaleChannel`,
///    `mixChannel`, `jitterChannel` (per-read quantization jitter),
///    `timeShiftChannel` — for building correlated multi-channel worlds
///    out of simpler parts.
///
/// `SensorSignal` survives as the plain-data spec of the synthetic
/// shapes.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SENSORS_SENSORCHANNEL_H
#define OCELOT_SENSORS_SENSORCHANNEL_H

#include <cstdint>
#include <memory>

namespace ocelot {

/// Signal shapes for one synthetic sensor. Plain data: factories clamp
/// `Interval`, but `sample` re-clamps at the use site so aggregate field
/// assignment can never divide by zero.
struct SensorSignal {
  enum class Kind {
    Constant, ///< always Base
    Step,     ///< Base before StepTau, Base + Amplitude after
    Ramp,     ///< Base + Slope * (tau / Interval)
    Square,   ///< alternates Base / Base+Amplitude every Interval
    Noise,    ///< piecewise-constant pseudo-random in [Base, Base+Amplitude],
              ///< re-drawn every Interval (seeded, stateless in tau)
  };

  Kind K = Kind::Constant;
  int64_t Base = 0;
  int64_t Amplitude = 0;
  int64_t Slope = 0;
  uint64_t Interval = 1000;
  uint64_t StepTau = 0;
  uint64_t Seed = 1;

  static SensorSignal constant(int64_t Base);
  static SensorSignal step(int64_t Base, int64_t Amplitude, uint64_t StepTau);
  static SensorSignal ramp(int64_t Base, int64_t Slope, uint64_t Interval);
  static SensorSignal square(int64_t Base, int64_t Amplitude,
                             uint64_t Interval);
  static SensorSignal noise(int64_t Base, int64_t Amplitude,
                            uint64_t Interval, uint64_t Seed);

  int64_t sample(uint64_t Tau) const;
};

/// One sensor as a pure function of logical time. Implementations must be
/// immutable after construction and derive any pseudo-randomness from
/// (configuration, Tau) alone: sampling is thread-safe and repeatable, the
/// two properties the SweepRunner's parallel == sequential guarantee and
/// the flat/tree engine differentials rest on.
class SensorChannel {
public:
  virtual ~SensorChannel() = default;

  /// Short stable identifier ("constant", "noise", "trace", "mix", ...).
  virtual const char *name() const = 0;

  /// The sensed value at logical time \p Tau.
  virtual int64_t sample(uint64_t Tau) const = 0;
};

using SensorChannelPtr = std::shared_ptr<const SensorChannel>;

/// Wraps any synthetic shape spec as a channel; `sample` matches
/// `SensorSignal::sample` bit-for-bit.
SensorChannelPtr signalChannel(const SensorSignal &S);

/// The five shapes, named. Equivalent to signalChannel(SensorSignal::...).
SensorChannelPtr constantChannel(int64_t Base);
SensorChannelPtr stepChannel(int64_t Base, int64_t Amplitude,
                             uint64_t StepTau);
SensorChannelPtr rampChannel(int64_t Base, int64_t Slope, uint64_t Interval);
SensorChannelPtr squareChannel(int64_t Base, int64_t Amplitude,
                               uint64_t Interval);
SensorChannelPtr noiseChannel(int64_t Base, int64_t Amplitude,
                              uint64_t Interval, uint64_t Seed);

/// \p Inner shifted by a constant: sample = Inner + Delta.
SensorChannelPtr offsetChannel(SensorChannelPtr Inner, int64_t Delta);

/// \p Inner rescaled: sample = llround(Inner * Factor).
SensorChannelPtr scaleChannel(SensorChannelPtr Inner, double Factor);

/// Weighted blend of two channels:
/// sample = llround(WeightA * A + (1 - WeightA) * B). The building block
/// for correlated multi-channel scenarios (two sensors sharing a common
/// mode plus private terms).
SensorChannelPtr mixChannel(SensorChannelPtr A, SensorChannelPtr B,
                            double WeightA);

/// Per-read quantization jitter: adds a (seed, Tau)-hashed uniform value
/// in [-Amplitude, +Amplitude] to every sample — an idealized ADC's LSB
/// noise. Re-reading the same Tau gives the same value (purity), but no
/// two adjacent Taus are correlated. Amplitude <= 0 returns Inner.
SensorChannelPtr jitterChannel(SensorChannelPtr Inner, int64_t Amplitude,
                               uint64_t Seed);

/// \p Inner read \p AheadTau units into the future: sample(Tau) =
/// Inner(Tau + AheadTau). Staggers several reads of one recording into a
/// correlated multi-channel scenario (see traceScenario).
SensorChannelPtr timeShiftChannel(SensorChannelPtr Inner, uint64_t AheadTau);

/// \p Inner observed \p LagTau units late: sample(Tau) =
/// Inner(Tau >= LagTau ? Tau - LagTau : 0). The secondary-trails-primary
/// shape of correlated fusion scenarios (src/fusion/CorrelatedScenarios.h):
/// a slow secondary sensor reports the latent process after a pipeline
/// delay. LagTau == 0 returns Inner.
SensorChannelPtr delayChannel(SensorChannelPtr Inner, uint64_t LagTau);

} // namespace ocelot

#endif // OCELOT_SENSORS_SENSORCHANNEL_H
