//===- SensorTrace.h - Recorded sensor-value time series --------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `SensorTrace` is a recorded sensor reading as a piecewise-constant
/// time series — the sensor-side twin of `PowerTrace`, sharing the same
/// CSV format machinery (support/TimeSeriesCsv.h):
///
/// ```csv
/// # ocelot sensor trace v1
/// # duration_tau,value
/// 50000,21.5
/// 150000,-3
/// ```
///
/// Comment lines start with `#`; each data line is one segment holding a
/// value (which, unlike a charge rate, may be negative) for a duration. A
/// valid trace has at least one segment, every duration > 0 and every
/// value finite; loading reports the first problem with its line number,
/// and toCsv round-trips exactly. Traces are immutable once built —
/// `traceChannel` replays one cyclically against absolute logical time, so
/// a single recording can back any number of concurrent simulations.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SENSORS_SENSORTRACE_H
#define OCELOT_SENSORS_SENSORTRACE_H

#include "sensors/SensorChannel.h"
#include "support/TimeSeriesCsv.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ocelot {

class SensorTrace {
public:
  /// One reading held for a duration — exactly the shared CSV layer's
  /// segment (Value is the sensed value and may be negative).
  using Segment = TimeSeriesSegment;

  /// Accumulates segments, then validates and freezes them into a trace.
  class Builder {
  public:
    /// Appends one segment; returns *this for chaining.
    Builder &segment(uint64_t DurationTau, double Value) {
      Segs.push_back({DurationTau, Value});
      return *this;
    }

    /// Validates and builds. On failure returns nullptr and sets \p Error.
    std::shared_ptr<const SensorTrace> build(std::string &Error) const;

  private:
    std::vector<Segment> Segs;
  };

  const std::vector<Segment> &segments() const { return Segs; }
  /// Sum of all segment durations (> 0 for a valid trace).
  uint64_t totalDurationTau() const { return TotalTau; }

  /// The reading in effect at absolute time \p Tau (the trace repeats
  /// with period totalDurationTau()).
  double valueAt(uint64_t Tau) const;

  /// Renders the trace as CSV text (the same format parseCsv reads; a
  /// parse of the output yields identical segments).
  std::string toCsv() const;

  /// Parses CSV text. On failure returns nullptr and sets \p Error to a
  /// message naming the offending line.
  static std::shared_ptr<const SensorTrace> parseCsv(std::string_view Text,
                                                     std::string &Error);

  /// Reads and parses \p Path. On failure returns nullptr and sets
  /// \p Error (file errors and parse errors alike).
  static std::shared_ptr<const SensorTrace> loadCsv(const std::string &Path,
                                                    std::string &Error);

  /// Writes toCsv() to \p Path; returns false and sets \p Error on I/O
  /// failure.
  bool saveCsv(const std::string &Path, std::string &Error) const;

private:
  explicit SensorTrace(std::vector<Segment> Segs);

  std::vector<Segment> Segs;
  uint64_t TotalTau = 0;
};

/// Wraps an immutable trace as a `SensorChannel` ("trace") replaying it
/// cyclically against absolute logical time; readings round to the
/// nearest integer at the sample site.
SensorChannelPtr traceChannel(std::shared_ptr<const SensorTrace> Trace);

} // namespace ocelot

#endif // OCELOT_SENSORS_SENSORTRACE_H
