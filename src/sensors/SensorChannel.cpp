//===- SensorChannel.cpp - Pluggable sensor input channels -----------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sensors/SensorChannel.h"

#include <cmath>
#include <utility>

using namespace ocelot;

SensorSignal SensorSignal::constant(int64_t Base) {
  SensorSignal S;
  S.K = Kind::Constant;
  S.Base = Base;
  return S;
}

SensorSignal SensorSignal::step(int64_t Base, int64_t Amplitude,
                                uint64_t StepTau) {
  SensorSignal S;
  S.K = Kind::Step;
  S.Base = Base;
  S.Amplitude = Amplitude;
  S.StepTau = StepTau;
  return S;
}

SensorSignal SensorSignal::ramp(int64_t Base, int64_t Slope,
                                uint64_t Interval) {
  SensorSignal S;
  S.K = Kind::Ramp;
  S.Base = Base;
  S.Slope = Slope;
  S.Interval = Interval ? Interval : 1;
  return S;
}

SensorSignal SensorSignal::square(int64_t Base, int64_t Amplitude,
                                  uint64_t Interval) {
  SensorSignal S;
  S.K = Kind::Square;
  S.Base = Base;
  S.Amplitude = Amplitude;
  S.Interval = Interval ? Interval : 1;
  return S;
}

SensorSignal SensorSignal::noise(int64_t Base, int64_t Amplitude,
                                 uint64_t Interval, uint64_t Seed) {
  SensorSignal S;
  S.K = Kind::Noise;
  S.Base = Base;
  S.Amplitude = Amplitude;
  S.Interval = Interval ? Interval : 1;
  S.Seed = Seed;
  return S;
}

/// Stateless 64-bit mix (splitmix64 finalizer) so Noise signals and the
/// jitter adaptor are pure functions of (seed, bucket).
static uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

int64_t SensorSignal::sample(uint64_t Tau) const {
  // The factories clamp Interval to >= 1, but aggregate field assignment
  // bypasses them — re-clamp here so a zero Interval degrades to 1 instead
  // of dividing by zero (UB).
  const uint64_t Iv = Interval ? Interval : 1;
  switch (K) {
  case Kind::Constant:
    return Base;
  case Kind::Step:
    return Tau >= StepTau ? Base + Amplitude : Base;
  case Kind::Ramp:
    return Base + Slope * static_cast<int64_t>(Tau / Iv);
  case Kind::Square:
    return ((Tau / Iv) & 1) ? Base + Amplitude : Base;
  case Kind::Noise: {
    if (Amplitude <= 0)
      return Base;
    uint64_t Bucket = Tau / Iv;
    uint64_t R = mix(Seed * 0x100000001b3ULL + Bucket);
    return Base +
           static_cast<int64_t>(R % static_cast<uint64_t>(Amplitude + 1));
  }
  }
  return Base;
}

namespace {

class SignalChannel final : public SensorChannel {
public:
  explicit SignalChannel(SensorSignal S) : S(S) {}

  const char *name() const override {
    switch (S.K) {
    case SensorSignal::Kind::Constant:
      return "constant";
    case SensorSignal::Kind::Step:
      return "step";
    case SensorSignal::Kind::Ramp:
      return "ramp";
    case SensorSignal::Kind::Square:
      return "square";
    case SensorSignal::Kind::Noise:
      return "noise";
    }
    return "signal";
  }

  int64_t sample(uint64_t Tau) const override { return S.sample(Tau); }

private:
  SensorSignal S;
};

class OffsetChannel final : public SensorChannel {
public:
  OffsetChannel(SensorChannelPtr Inner, int64_t Delta)
      : Inner(std::move(Inner)), Delta(Delta) {}
  const char *name() const override { return "offset"; }
  int64_t sample(uint64_t Tau) const override {
    return Inner->sample(Tau) + Delta;
  }

private:
  SensorChannelPtr Inner;
  int64_t Delta;
};

class ScaleChannel final : public SensorChannel {
public:
  ScaleChannel(SensorChannelPtr Inner, double Factor)
      : Inner(std::move(Inner)), Factor(Factor) {}
  const char *name() const override { return "scale"; }
  int64_t sample(uint64_t Tau) const override {
    return std::llround(static_cast<double>(Inner->sample(Tau)) * Factor);
  }

private:
  SensorChannelPtr Inner;
  double Factor;
};

class MixChannel final : public SensorChannel {
public:
  MixChannel(SensorChannelPtr A, SensorChannelPtr B, double WeightA)
      : A(std::move(A)), B(std::move(B)), WeightA(WeightA) {}
  const char *name() const override { return "mix"; }
  int64_t sample(uint64_t Tau) const override {
    return std::llround(WeightA * static_cast<double>(A->sample(Tau)) +
                        (1.0 - WeightA) *
                            static_cast<double>(B->sample(Tau)));
  }

private:
  SensorChannelPtr A, B;
  double WeightA;
};

class JitterChannel final : public SensorChannel {
public:
  JitterChannel(SensorChannelPtr Inner, int64_t Amplitude, uint64_t Seed)
      : Inner(std::move(Inner)), Amplitude(Amplitude), Seed(Seed) {}
  const char *name() const override { return "jitter"; }
  int64_t sample(uint64_t Tau) const override {
    uint64_t R = mix(Seed * 0x100000001b3ULL + Tau);
    uint64_t Span = 2 * static_cast<uint64_t>(Amplitude) + 1;
    return Inner->sample(Tau) + static_cast<int64_t>(R % Span) - Amplitude;
  }

private:
  SensorChannelPtr Inner;
  int64_t Amplitude;
  uint64_t Seed;
};

class DelayChannel final : public SensorChannel {
public:
  DelayChannel(SensorChannelPtr Inner, uint64_t LagTau)
      : Inner(std::move(Inner)), LagTau(LagTau) {}
  const char *name() const override { return "delay"; }
  int64_t sample(uint64_t Tau) const override {
    return Inner->sample(Tau >= LagTau ? Tau - LagTau : 0);
  }

private:
  SensorChannelPtr Inner;
  uint64_t LagTau;
};

class TimeShiftChannel final : public SensorChannel {
public:
  TimeShiftChannel(SensorChannelPtr Inner, uint64_t AheadTau)
      : Inner(std::move(Inner)), AheadTau(AheadTau) {}
  const char *name() const override { return "time-shift"; }
  int64_t sample(uint64_t Tau) const override {
    return Inner->sample(Tau + AheadTau);
  }

private:
  SensorChannelPtr Inner;
  uint64_t AheadTau;
};

} // namespace

SensorChannelPtr ocelot::signalChannel(const SensorSignal &S) {
  return std::make_shared<const SignalChannel>(S);
}

SensorChannelPtr ocelot::constantChannel(int64_t Base) {
  return signalChannel(SensorSignal::constant(Base));
}

SensorChannelPtr ocelot::stepChannel(int64_t Base, int64_t Amplitude,
                                     uint64_t StepTau) {
  return signalChannel(SensorSignal::step(Base, Amplitude, StepTau));
}

SensorChannelPtr ocelot::rampChannel(int64_t Base, int64_t Slope,
                                     uint64_t Interval) {
  return signalChannel(SensorSignal::ramp(Base, Slope, Interval));
}

SensorChannelPtr ocelot::squareChannel(int64_t Base, int64_t Amplitude,
                                       uint64_t Interval) {
  return signalChannel(SensorSignal::square(Base, Amplitude, Interval));
}

SensorChannelPtr ocelot::noiseChannel(int64_t Base, int64_t Amplitude,
                                      uint64_t Interval, uint64_t Seed) {
  return signalChannel(SensorSignal::noise(Base, Amplitude, Interval, Seed));
}

SensorChannelPtr ocelot::offsetChannel(SensorChannelPtr Inner,
                                       int64_t Delta) {
  return std::make_shared<const OffsetChannel>(std::move(Inner), Delta);
}

SensorChannelPtr ocelot::scaleChannel(SensorChannelPtr Inner, double Factor) {
  return std::make_shared<const ScaleChannel>(std::move(Inner), Factor);
}

SensorChannelPtr ocelot::mixChannel(SensorChannelPtr A, SensorChannelPtr B,
                                    double WeightA) {
  return std::make_shared<const MixChannel>(std::move(A), std::move(B),
                                            WeightA);
}

SensorChannelPtr ocelot::jitterChannel(SensorChannelPtr Inner,
                                       int64_t Amplitude, uint64_t Seed) {
  if (Amplitude <= 0)
    return Inner;
  return std::make_shared<const JitterChannel>(std::move(Inner), Amplitude,
                                               Seed);
}

SensorChannelPtr ocelot::timeShiftChannel(SensorChannelPtr Inner,
                                          uint64_t AheadTau) {
  return std::make_shared<const TimeShiftChannel>(std::move(Inner), AheadTau);
}

SensorChannelPtr ocelot::delayChannel(SensorChannelPtr Inner,
                                      uint64_t LagTau) {
  if (LagTau == 0)
    return Inner;
  return std::make_shared<const DelayChannel>(std::move(Inner), LagTau);
}
