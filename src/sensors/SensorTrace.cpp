//===- SensorTrace.cpp - Recorded sensor-value time series -----------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sensors/SensorTrace.h"

#include <cmath>
#include <utility>

using namespace ocelot;

namespace {

/// The sensor instantiation of the shared time-series CSV format: values
/// may be negative (temperatures, accelerations), and any non-empty,
/// finite series is valid. Segment == TimeSeriesSegment, so series pass
/// through the shared layer with no conversion.
const TimeSeriesCsvSpec &sensorCsvSpec() {
  static const TimeSeriesCsvSpec Spec = {
      /*Header=*/"# ocelot sensor trace v1\n# duration_tau,value\n",
      /*Columns=*/"duration_tau,value",
      /*ValueName=*/"sensor value",
      /*FileNoun=*/"sensor trace",
      /*ValueNonNegative=*/false,
      /*SeriesCheck=*/nullptr};
  return Spec;
}

} // namespace

SensorTrace::SensorTrace(std::vector<Segment> Segs) : Segs(std::move(Segs)) {
  for (const Segment &S : this->Segs)
    TotalTau += S.DurationTau;
}

std::shared_ptr<const SensorTrace>
SensorTrace::Builder::build(std::string &Error) const {
  std::vector<std::string> Where;
  Where.reserve(Segs.size());
  for (size_t I = 0; I < Segs.size(); ++I)
    Where.push_back("segment " + std::to_string(I));
  Error = timeseries::validate(Segs, sensorCsvSpec(), Where);
  if (!Error.empty())
    return nullptr;
  return std::shared_ptr<const SensorTrace>(new SensorTrace(Segs));
}

double SensorTrace::valueAt(uint64_t Tau) const {
  uint64_t T = Tau % TotalTau;
  for (const Segment &S : Segs) {
    if (T < S.DurationTau)
      return S.Value;
    T -= S.DurationTau;
  }
  return Segs.back().Value; // Unreachable for a valid trace.
}

std::string SensorTrace::toCsv() const {
  return timeseries::toCsv(sensorCsvSpec(), Segs);
}

std::shared_ptr<const SensorTrace>
SensorTrace::parseCsv(std::string_view Text, std::string &Error) {
  std::vector<TimeSeriesSegment> Series;
  if (!timeseries::parseCsv(Text, sensorCsvSpec(), Series, Error))
    return nullptr;
  return std::shared_ptr<const SensorTrace>(
      new SensorTrace(std::move(Series)));
}

std::shared_ptr<const SensorTrace>
SensorTrace::loadCsv(const std::string &Path, std::string &Error) {
  std::vector<TimeSeriesSegment> Series;
  if (!timeseries::loadFile(Path, sensorCsvSpec(), Series, Error))
    return nullptr;
  return std::shared_ptr<const SensorTrace>(
      new SensorTrace(std::move(Series)));
}

bool SensorTrace::saveCsv(const std::string &Path, std::string &Error) const {
  return timeseries::saveFile(Path, sensorCsvSpec(), Segs, Error);
}

namespace {

class TraceChannel final : public SensorChannel {
public:
  explicit TraceChannel(std::shared_ptr<const SensorTrace> Trace)
      : Trace(std::move(Trace)) {}

  const char *name() const override { return "trace"; }

  int64_t sample(uint64_t Tau) const override {
    return std::llround(Trace->valueAt(Tau));
  }

private:
  std::shared_ptr<const SensorTrace> Trace;
};

} // namespace

SensorChannelPtr
ocelot::traceChannel(std::shared_ptr<const SensorTrace> Trace) {
  return std::make_shared<const TraceChannel>(std::move(Trace));
}
