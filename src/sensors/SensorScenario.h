//===- SensorScenario.h - Immutable multi-channel sensor worlds -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `SensorScenario` is the whole physical world a simulated device
/// senses: one `SensorChannel` per sensor id, frozen at build time. Like a
/// `CompiledArtifact` or a `PowerSource`, a scenario is immutable and
/// shareable — every channel is a pure function of logical time, so one
/// scenario instance can back any number of concurrent `Simulation`s and
/// two runs over the same (scenario, seed) are bitwise identical.
///
/// Sensor ids a scenario never configured fall back to per-id seeded
/// noise, exactly the unconfigured default of the original `Environment`
/// — which is what keeps the default tables byte-identical when no
/// scenario is set anywhere (`RunConfig::Sensors == nullptr` selects
/// `defaultSensorScenario()`).
///
/// Scenarios reach the runtime through `RunConfig::Sensors`, sweep grids
/// through `SweepSpec::Scenarios`, and the CLI through
/// `ocelotc --sensors=<preset|trace.csv>` (SensorScenarios.h).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SENSORS_SENSORSCENARIO_H
#define OCELOT_SENSORS_SENSORSCENARIO_H

#include "sensors/SensorChannel.h"
#include "sensors/SensorTrace.h"

#include <memory>
#include <vector>

namespace ocelot {

class SensorScenario {
public:
  /// Accumulates per-id channels, then freezes them into a scenario. Ids
  /// skipped (or given a null channel) keep the unconfigured default.
  class Builder {
  public:
    /// Configures sensor \p Id (growing the table as needed); returns
    /// *this for chaining. Negative ids are ignored.
    Builder &channel(int Id, SensorChannelPtr C);

    std::shared_ptr<const SensorScenario> build() const;

  private:
    std::vector<SensorChannelPtr> Channels;
  };

  /// The value sensor \p Id reads at logical time \p Tau. Negative ids
  /// read 0; unconfigured ids read the per-id seeded-noise default.
  int64_t sample(int Id, uint64_t Tau) const {
    if (Id < 0)
      return 0;
    if (Id < static_cast<int>(Channels.size()) &&
        Channels[static_cast<size_t>(Id)])
      return Channels[static_cast<size_t>(Id)]->sample(Tau);
    return defaultSample(Id, Tau);
  }

  /// The channel configured for \p Id, or nullptr when \p Id falls back
  /// to the default noise.
  const SensorChannel *channel(int Id) const {
    return Id >= 0 && Id < static_cast<int>(Channels.size())
               ? Channels[static_cast<size_t>(Id)].get()
               : nullptr;
  }

  /// Size of the configured channel table (unconfigured ids beyond it are
  /// still sampleable).
  int numConfigured() const { return static_cast<int>(Channels.size()); }

private:
  explicit SensorScenario(std::vector<SensorChannelPtr> Channels)
      : Channels(std::move(Channels)) {}

  /// The unconfigured-sensor fallback: per-id seeded noise, bit-for-bit
  /// the original `Environment` default.
  static int64_t defaultSample(int Id, uint64_t Tau);

  std::vector<SensorChannelPtr> Channels;
};

/// The scenario with no channels configured at all: every sensor reads
/// its per-id seeded-noise default. Selected whenever `RunConfig::Sensors`
/// is null; the returned instance is shared.
std::shared_ptr<const SensorScenario> defaultSensorScenario();

/// Builds a correlated multi-channel scenario out of one recording:
/// sensor id i (i in [0, NumChannels)) replays \p Trace staggered
/// i * period / NumChannels into the future, so all channels see the same
/// physical process at different phases — the shape consistent-set
/// experiments care about.
std::shared_ptr<const SensorScenario>
traceScenario(std::shared_ptr<const SensorTrace> Trace, int NumChannels = 4);

} // namespace ocelot

#endif // OCELOT_SENSORS_SENSORSCENARIO_H
