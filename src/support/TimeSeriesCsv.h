//===- TimeSeriesCsv.h - Shared piecewise-constant CSV time series -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One CSV time-series format, two recorded-environment subsystems: power
/// traces (src/power/PowerTrace.h) and sensor traces
/// (src/sensors/SensorTrace.h) both replay a piecewise-constant series of
/// `duration_tau,value` segments. This module owns everything about the
/// *format* — strict parsing with line-numbered complaints, segment
/// validation, exact `%.17g` round-trip rendering, file I/O — while each
/// client keeps its own semantic layer (what the value means, extra
/// validity rules, how the series is replayed).
///
/// ```csv
/// # ocelot power trace v1
/// # duration_tau,charge_rate
/// 50000,0.40
/// 150000,0.02
/// ```
///
/// A `TimeSeriesCsvSpec` parameterizes the client-visible vocabulary (the
/// header comment, the column names in error messages, what the value is
/// called) plus two validation hooks, so every client reports problems in
/// its own terms yet shares one parser. Segments are always required to be
/// non-empty, with every duration > 0, every value finite, and a total
/// duration that fits in 64 bits.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SUPPORT_TIMESERIESCSV_H
#define OCELOT_SUPPORT_TIMESERIESCSV_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ocelot {

/// One segment of a piecewise-constant time series: `Value` holds for
/// `DurationTau` units of logical time.
struct TimeSeriesSegment {
  uint64_t DurationTau = 0;
  double Value = 0.0;
};

/// The client vocabulary and validity rules for one concrete series format.
/// All strings are borrowed (clients keep them as literals).
struct TimeSeriesCsvSpec {
  /// Full comment header emitted by toCsv, e.g.
  /// "# ocelot power trace v1\n# duration_tau,charge_rate\n".
  const char *Header;
  /// Column names quoted in malformed-line errors, e.g.
  /// "duration_tau,charge_rate".
  const char *Columns;
  /// What the value column is called in per-segment complaints, e.g.
  /// "charge rate" -> "line 3: charge rate must be finite and >= 0".
  const char *ValueName;
  /// Noun used in file-level errors, e.g. "power trace" ->
  /// "cannot open power trace 'x.csv'".
  const char *FileNoun;
  /// When true, values must additionally be >= 0 (power traces); sensor
  /// values may be negative.
  bool ValueNonNegative = false;
  /// Optional whole-series rule run after the per-segment checks; returns
  /// an error message or "" (e.g. power's "trace harvests no energy").
  std::string (*SeriesCheck)(const std::vector<TimeSeriesSegment> &) = nullptr;
};

namespace timeseries {

/// Validates \p Segs under \p Spec. \p Where prefixes per-segment
/// complaints ("line 4" from the parser, "segment 2" from a builder) and
/// must be the same length as \p Segs. \returns "" when valid.
std::string validate(const std::vector<TimeSeriesSegment> &Segs,
                     const TimeSeriesCsvSpec &Spec,
                     const std::vector<std::string> &Where);

/// Parses and validates CSV text: `#` comments and blank lines are
/// skipped; every data line must be exactly an unsigned decimal duration,
/// a comma and a finite double. On success fills \p Out and returns true;
/// otherwise sets \p Error to a message naming the offending line.
bool parseCsv(std::string_view Text, const TimeSeriesCsvSpec &Spec,
              std::vector<TimeSeriesSegment> &Out, std::string &Error);

/// Renders \p Segs as CSV under \p Spec's header. `%.17g` round-trips any
/// double exactly, so parse(toCsv(x)) reproduces x bit-for-bit and
/// toCsv(parse(toCsv(x))) is the textual identity.
std::string toCsv(const TimeSeriesCsvSpec &Spec,
                  const std::vector<TimeSeriesSegment> &Segs);

/// Reads and parses \p Path; parse errors are prefixed with the path, and
/// unreadable files report "cannot open <FileNoun> '<Path>'".
bool loadFile(const std::string &Path, const TimeSeriesCsvSpec &Spec,
              std::vector<TimeSeriesSegment> &Out, std::string &Error);

/// Writes toCsv() to \p Path; on I/O failure returns false and sets
/// \p Error ("cannot write ..." / "error writing ...").
bool saveFile(const std::string &Path, const TimeSeriesCsvSpec &Spec,
              const std::vector<TimeSeriesSegment> &Segs, std::string &Error);

} // namespace timeseries

} // namespace ocelot

#endif // OCELOT_SUPPORT_TIMESERIESCSV_H
