//===- Diagnostics.h - Error/warning collection -----------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Library code never throws; it reports errors
/// here and returns a failure indicator. Tools print the accumulated
/// diagnostics, tests assert on their presence or absence.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SUPPORT_DIAGNOSTICS_H
#define OCELOT_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace ocelot {

/// Severity of a diagnostic message.
enum class DiagKind { Error, Warning, Note };

/// A single diagnostic: severity, location and rendered message.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics produced while compiling or checking a program.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Error, Loc, Msg});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Warning, Loc, Msg});
  }
  void note(SourceLoc Loc, const std::string &Msg) {
    Diags.push_back({DiagKind::Note, Loc, Msg});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line, for tool output and test
  /// failure messages.
  std::string str() const;

  /// \returns true if any diagnostic message contains \p Needle. Used by
  /// tests to assert on specific failures without depending on exact
  /// wording of the whole message list.
  bool contains(const std::string &Needle) const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ocelot

#endif // OCELOT_SUPPORT_DIAGNOSTICS_H
