//===- TimeSeriesCsv.cpp - Shared piecewise-constant CSV time series -------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/TimeSeriesCsv.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace ocelot;

std::string timeseries::validate(const std::vector<TimeSeriesSegment> &Segs,
                                 const TimeSeriesCsvSpec &Spec,
                                 const std::vector<std::string> &Where) {
  if (Segs.empty())
    return "trace has no segments";
  uint64_t TotalTau = 0;
  for (size_t I = 0; I < Segs.size(); ++I) {
    if (Segs[I].DurationTau == 0)
      return Where[I] + ": segment duration must be > 0";
    if (Spec.ValueNonNegative) {
      if (!(Segs[I].Value >= 0.0) || !std::isfinite(Segs[I].Value))
        return Where[I] + ": " + Spec.ValueName +
               " must be finite and >= 0";
    } else if (!std::isfinite(Segs[I].Value)) {
      return Where[I] + ": " + Spec.ValueName + " must be finite";
    }
    if (TotalTau + Segs[I].DurationTau < TotalTau)
      return Where[I] + ": total trace duration overflows 64 bits";
    TotalTau += Segs[I].DurationTau;
  }
  if (Spec.SeriesCheck)
    return Spec.SeriesCheck(Segs);
  return "";
}

bool timeseries::parseCsv(std::string_view Text,
                          const TimeSeriesCsvSpec &Spec,
                          std::vector<TimeSeriesSegment> &Out,
                          std::string &Error) {
  std::vector<TimeSeriesSegment> Segs;
  std::vector<std::string> Where;
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    Pos = Eol == std::string_view::npos ? Text.size() + 1 : Eol + 1;
    ++LineNo;
    // Trim whitespace; skip blanks and # comments.
    while (!Line.empty() && (Line.front() == ' ' || Line.front() == '\t' ||
                             Line.front() == '\r'))
      Line.remove_prefix(1);
    while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\t' ||
                             Line.back() == '\r'))
      Line.remove_suffix(1);
    if (Line.empty() || Line.front() == '#')
      continue;

    // Parse strictly: an unsigned decimal duration (no sign — sscanf %llu
    // would silently wrap "-100" to ~2^64), a comma, a finite double
    // value, and nothing else.
    std::string Ln(Line);
    std::string BadLine = "line " + std::to_string(LineNo) + ": expected '" +
                          Spec.Columns + "', got '" + Ln + "'";
    const char *C = Ln.c_str();
    if (!std::isdigit(static_cast<unsigned char>(*C))) {
      Error = BadLine;
      return false;
    }
    char *End = nullptr;
    errno = 0;
    unsigned long long Dur = std::strtoull(C, &End, 10);
    if (errno == ERANGE) {
      Error = "line " + std::to_string(LineNo) +
              ": segment duration exceeds 64 bits";
      return false;
    }
    if (*End != ',') {
      Error = BadLine;
      return false;
    }
    TimeSeriesSegment S;
    const char *ValStart = End + 1;
    S.Value = std::strtod(ValStart, &End);
    if (End == ValStart || *End != '\0') {
      Error = BadLine;
      return false;
    }
    S.DurationTau = Dur;
    Segs.push_back(S);
    Where.push_back("line " + std::to_string(LineNo));
  }
  Error = validate(Segs, Spec, Where);
  if (!Error.empty())
    return false;
  Out = std::move(Segs);
  return true;
}

std::string timeseries::toCsv(const TimeSeriesCsvSpec &Spec,
                              const std::vector<TimeSeriesSegment> &Segs) {
  std::string Out = Spec.Header;
  char Buf[64];
  for (const TimeSeriesSegment &S : Segs) {
    // %.17g round-trips any double exactly, so save -> load -> save is the
    // identity on the text as well as the segments.
    std::snprintf(Buf, sizeof(Buf), "%llu,%.17g\n",
                  static_cast<unsigned long long>(S.DurationTau), S.Value);
    Out += Buf;
  }
  return Out;
}

bool timeseries::loadFile(const std::string &Path,
                          const TimeSeriesCsvSpec &Spec,
                          std::vector<TimeSeriesSegment> &Out,
                          std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = std::string("cannot open ") + Spec.FileNoun + " '" + Path + "'";
    return false;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  if (!parseCsv(Buf.str(), Spec, Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}

bool timeseries::saveFile(const std::string &Path,
                          const TimeSeriesCsvSpec &Spec,
                          const std::vector<TimeSeriesSegment> &Segs,
                          std::string &Error) {
  std::ofstream OutFile(Path);
  if (!OutFile) {
    Error = std::string("cannot write ") + Spec.FileNoun + " '" + Path + "'";
    return false;
  }
  OutFile << toCsv(Spec, Segs);
  OutFile.flush();
  if (!OutFile) {
    Error = std::string("error writing ") + Spec.FileNoun + " '" + Path + "'";
    return false;
  }
  return true;
}
