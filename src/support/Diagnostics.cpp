//===- Diagnostics.cpp - Error/warning collection -------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace ocelot;

std::string Diagnostic::str() const {
  const char *Prefix = "error";
  if (Kind == DiagKind::Warning)
    Prefix = "warning";
  else if (Kind == DiagKind::Note)
    Prefix = "note";
  return Loc.str() + ": " + Prefix + ": " + Message;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

bool DiagnosticEngine::contains(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}
