//===- Rng.h - Deterministic pseudo-random numbers --------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic splitmix64-based RNG. Every stochastic component of the
/// simulator (recharge durations, sensor random walks, failure placement)
/// takes an explicit seed so experiments and property tests are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SUPPORT_RNG_H
#define OCELOT_SUPPORT_RNG_H

#include <cstdint>

namespace ocelot {

/// Splitmix64 generator: tiny state, excellent mixing, fully deterministic
/// across platforms (unlike std::mt19937 distributions).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound);

  /// Uniform integer in [Lo, Hi] inclusive. Requires Lo <= Hi.
  int64_t nextInRange(int64_t Lo, int64_t Hi);

  /// Uniform integer in [Lo, Hi] inclusive over the full unsigned range.
  /// Requires Lo <= Hi. For ranges that fit in int64_t this consumes the
  /// same draws as nextInRange (both reduce to one nextBelow call on the
  /// same span), so switching call sites preserves RNG sequences.
  uint64_t nextInRangeU64(uint64_t Lo, uint64_t Hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Standard-normal sample (Box-Muller over splitmix streams).
  double nextGaussian();

  /// Derives an independent child generator; used to give each sensor or
  /// subsystem its own stream from a single experiment seed.
  Rng fork();

private:
  uint64_t State;
};

} // namespace ocelot

#endif // OCELOT_SUPPORT_RNG_H
