//===- Rng.cpp - Deterministic pseudo-random numbers ----------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace ocelot;

uint64_t Rng::next() {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound != 0 && "nextBelow requires a nonzero bound");
  // Rejection sampling to avoid modulo bias for large bounds.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "invalid range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  return Lo + static_cast<int64_t>(nextBelow(Span));
}

uint64_t Rng::nextInRangeU64(uint64_t Lo, uint64_t Hi) {
  assert(Lo <= Hi && "invalid range");
  uint64_t Span = Hi - Lo + 1;
  if (Span == 0) // Full 64-bit range.
    return next();
  return Lo + nextBelow(Span);
}

double Rng::nextDouble() {
  // 53 high-quality bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::nextGaussian() {
  double U1 = nextDouble();
  double U2 = nextDouble();
  if (U1 <= 0.0)
    U1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
}

Rng Rng::fork() { return Rng(next() ^ 0xa5a5a5a5deadbeefULL); }
