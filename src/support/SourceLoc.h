//===- SourceLoc.h - Source locations for diagnostics ----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight line/column source location used by the frontend and carried
/// on IR instructions so analyses and the runtime can report positions in the
/// original OCL program.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_SUPPORT_SOURCELOC_H
#define OCELOT_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace ocelot {

/// A (line, column) position in an OCL source buffer. Line and column are
/// 1-based; a value of 0 means "unknown" (e.g. compiler-synthesized IR).
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(uint32_t Line, uint32_t Col) : Line(Line), Col(Col) {}

  bool isValid() const { return Line != 0; }

  bool operator==(const SourceLoc &O) const {
    return Line == O.Line && Col == O.Col;
  }

  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

} // namespace ocelot

#endif // OCELOT_SUPPORT_SOURCELOC_H
