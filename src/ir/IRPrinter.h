//===- IRPrinter.h - Textual rendering of Ocelot IR -------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_IRPRINTER_H
#define OCELOT_IR_IRPRINTER_H

#include "ir/Program.h"

#include <string>

namespace ocelot {

/// Renders a function in the textual IR syntax (block headers, labeled
/// instructions). Intended for tests, debugging and documentation output.
std::string printFunction(const Program &P, const Function &F);

/// Renders the whole program: sensors, globals, then every function.
std::string printProgram(const Program &P);

} // namespace ocelot

#endif // OCELOT_IR_IRPRINTER_H
