//===- IRPrinter.cpp - Textual rendering of Ocelot IR ------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

using namespace ocelot;

std::string ocelot::printFunction(const Program &P, const Function &F) {
  (void)P;
  std::string S = "fn " + F.name() + "(";
  for (int I = 0; I < F.numParams(); ++I) {
    if (I)
      S += ", ";
    if (F.paramIsRef(I))
      S += "&";
    S += F.paramName(I) + ":%" + std::to_string(I);
  }
  S += ")";
  if (F.hasReturnValue())
    S += " -> int";
  S += " {\n";
  for (int B = 0; B < F.numBlocks(); ++B) {
    const BasicBlock *BB = F.block(B);
    S += "bb" + std::to_string(BB->id()) + ": ; " + BB->name() + "\n";
    for (const Instruction &I : BB->instructions()) {
      S += "  " + I.str() + "\n";
    }
  }
  S += "}\n";
  return S;
}

std::string ocelot::printProgram(const Program &P) {
  std::string S;
  for (int I = 0; I < P.numSensors(); ++I)
    S += "sensor s" + std::to_string(I) + " = " + P.sensor(I).Name + "\n";
  for (int I = 0; I < P.numGlobals(); ++I) {
    const GlobalVar &G = P.global(I);
    S += "global g" + std::to_string(I) + " = " + G.Name;
    if (G.Size != 1)
      S += "[" + std::to_string(G.Size) + "]";
    if (G.IsPromotedLocal)
      S += " ; promoted local";
    S += "\n";
  }
  if (P.numSensors() || P.numGlobals())
    S += "\n";
  for (int I = 0; I < P.numFunctions(); ++I) {
    S += printFunction(P, *P.function(I));
    S += "\n";
  }
  return S;
}
