//===- Type.h - OCL frontend types ------------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OCL modeling language's type system, as in the paper's Appendix A:
/// integers, booleans, references (to globals, passed only as call
/// arguments), and the unit type for functions without a return value.
/// Arrays live only in non-volatile global memory and are typed Int
/// element-wise.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_TYPE_H
#define OCELOT_IR_TYPE_H

#include <string>

namespace ocelot {

/// Scalar OCL type. Values are 64-bit at runtime; Bool is 0/1.
enum class Type { Unit, Int, Bool, Ref };

inline const char *typeName(Type T) {
  switch (T) {
  case Type::Unit:
    return "unit";
  case Type::Int:
    return "int";
  case Type::Bool:
    return "bool";
  case Type::Ref:
    return "ref";
  }
  return "?";
}

} // namespace ocelot

#endif // OCELOT_IR_TYPE_H
