//===- IRVerifier.h - Structural IR sanity checks ---------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_IRVERIFIER_H
#define OCELOT_IR_IRVERIFIER_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

namespace ocelot {

/// Verifies structural well-formedness of a program: terminated blocks,
/// in-range registers/targets/globals/sensors, call arity and ref-parameter
/// agreement, unique labels, and atomic-region depth consistency along all
/// paths (each function must enter and leave every region it opens).
///
/// \returns true when the program is well-formed; problems are reported to
/// \p Diags.
bool verifyProgram(const Program &P, DiagnosticEngine &Diags);

} // namespace ocelot

#endif // OCELOT_IR_IRVERIFIER_H
