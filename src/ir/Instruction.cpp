//===- Instruction.cpp - Ocelot IR instruction --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Instruction.h"

#include <cassert>

using namespace ocelot;

const char *ocelot::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
    return "const";
  case Opcode::Bin:
    return "bin";
  case Opcode::Un:
    return "un";
  case Opcode::Mov:
    return "mov";
  case Opcode::LoadG:
    return "loadg";
  case Opcode::StoreG:
    return "storeg";
  case Opcode::LoadA:
    return "loada";
  case Opcode::StoreA:
    return "storea";
  case Opcode::LoadInd:
    return "loadind";
  case Opcode::StoreInd:
    return "storeind";
  case Opcode::Input:
    return "input";
  case Opcode::Call:
    return "call";
  case Opcode::Ret:
    return "ret";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Fresh:
    return "fresh";
  case Opcode::Consistent:
    return "consistent";
  case Opcode::AtomicStart:
    return "atomic_start";
  case Opcode::AtomicEnd:
    return "atomic_end";
  case Opcode::Output:
    return "output";
  case Opcode::Nop:
    return "nop";
  }
  return "?";
}

const char *ocelot::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  case BinOp::And:
    return "&";
  case BinOp::Or:
    return "|";
  case BinOp::Xor:
    return "^";
  case BinOp::Shl:
    return "<<";
  case BinOp::Shr:
    return ">>";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::LAnd:
    return "&&";
  case BinOp::LOr:
    return "||";
  }
  return "?";
}

const char *ocelot::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "-";
  case UnOp::Not:
    return "~";
  case UnOp::LNot:
    return "!";
  }
  return "?";
}

const char *ocelot::outputKindName(OutputKind K) {
  switch (K) {
  case OutputKind::Log:
    return "log";
  case OutputKind::Alarm:
    return "alarm";
  case OutputKind::Send:
    return "send";
  case OutputKind::Uart:
    return "uart";
  }
  return "?";
}

std::string Operand::str() const {
  switch (K) {
  case Kind::None:
    return "_";
  case Kind::Reg:
    return "%" + std::to_string(Reg);
  case Kind::Imm:
    return std::to_string(Imm);
  }
  return "?";
}

void Instruction::collectUsedRegs(std::vector<int> &Regs) const {
  if (A.isReg())
    Regs.push_back(A.Reg);
  if (B.isReg())
    Regs.push_back(B.Reg);
  for (const Operand &Arg : Args)
    if (Arg.isReg())
      Regs.push_back(Arg.Reg);
}

std::string Instruction::str() const {
  std::string S = "@" + std::to_string(Label) + " ";
  auto Dest = [&]() { return "%" + std::to_string(Dst) + " = "; };
  switch (Op) {
  case Opcode::Const:
    S += Dest() + "const " + std::to_string(A.Imm);
    break;
  case Opcode::Bin:
    S += Dest() + A.str() + " " + binOpName(BinKind) + " " + B.str();
    break;
  case Opcode::Un:
    S += Dest() + std::string(unOpName(UnKind)) + A.str();
    break;
  case Opcode::Mov:
    S += Dest() + A.str();
    break;
  case Opcode::LoadG:
    S += Dest() + "loadg g" + std::to_string(GlobalId);
    break;
  case Opcode::StoreG:
    S += "storeg g" + std::to_string(GlobalId) + ", " + A.str();
    break;
  case Opcode::LoadA:
    S += Dest() + "loada g" + std::to_string(GlobalId) + "[" + A.str() + "]";
    break;
  case Opcode::StoreA:
    S += "storea g" + std::to_string(GlobalId) + "[" + A.str() + "], " +
         B.str();
    break;
  case Opcode::LoadInd:
    S += Dest() + "loadind " + A.str();
    break;
  case Opcode::StoreInd:
    S += "storeind " + A.str() + ", " + B.str();
    break;
  case Opcode::Input:
    S += Dest() + "input s" + std::to_string(SensorId);
    break;
  case Opcode::Call: {
    if (Dst >= 0)
      S += Dest();
    S += "call f" + std::to_string(Callee) + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        S += ", ";
      if (I < ArgRefGlobal.size() && ArgRefGlobal[I] >= 0)
        S += "&g" + std::to_string(ArgRefGlobal[I]);
      else
        S += Args[I].str();
    }
    S += ")";
    break;
  }
  case Opcode::Ret:
    S += "ret";
    if (!A.isNone())
      S += " " + A.str();
    break;
  case Opcode::Br:
    S += "br bb" + std::to_string(Target);
    break;
  case Opcode::CondBr:
    S += "condbr " + A.str() + ", bb" + std::to_string(Target) + ", bb" +
         std::to_string(Target2);
    break;
  case Opcode::Fresh:
    S += "fresh(" + A.str() + ") ; " + VarName;
    break;
  case Opcode::Consistent:
    S += "consistent(" + A.str() + ", " + std::to_string(SetId) + ") ; " +
         VarName;
    break;
  case Opcode::AtomicStart:
    S += "atomic_start r" + std::to_string(RegionId);
    break;
  case Opcode::AtomicEnd:
    S += "atomic_end r" + std::to_string(RegionId);
    break;
  case Opcode::Output: {
    S += std::string(outputKindName(OutKind)) + "(";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        S += ", ";
      S += Args[I].str();
    }
    S += ")";
    break;
  }
  case Opcode::Nop:
    S += "nop";
    break;
  }
  return S;
}
