//===- IRVerifier.cpp - Structural IR sanity checks ---------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRVerifier.h"

#include <set>
#include <vector>

using namespace ocelot;

namespace {

class Verifier {
public:
  Verifier(const Program &P, DiagnosticEngine &Diags) : P(P), Diags(Diags) {}

  bool run() {
    if (P.mainFunction() < 0 || P.mainFunction() >= P.numFunctions()) {
      error({}, "program has no main function");
      return false;
    }
    if (P.function(P.mainFunction())->numParams() != 0)
      error({}, "main function must take no parameters");
    for (int I = 0; I < P.numFunctions(); ++I)
      verifyFunction(*P.function(I));
    return !Diags.hasErrors();
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) { Diags.error(Loc, Msg); }

  void checkReg(const Function &F, const Instruction &I, Operand O) {
    if (O.isReg() && (O.Reg < 0 || O.Reg >= F.numRegs()))
      error(I.Loc, "register out of range in '" + I.str() + "' of function " +
                       F.name());
  }

  void verifyInstr(const Function &F, const Instruction &I) {
    if (I.Dst >= F.numRegs())
      error(I.Loc, "destination register out of range in " + F.name());
    checkReg(F, I, I.A);
    checkReg(F, I, I.B);
    for (const Operand &Arg : I.Args)
      checkReg(F, I, Arg);

    switch (I.Op) {
    case Opcode::LoadG:
    case Opcode::StoreG:
    case Opcode::LoadA:
    case Opcode::StoreA:
      if (I.GlobalId < 0 || I.GlobalId >= P.numGlobals())
        error(I.Loc, "global id out of range in " + F.name());
      else if ((I.Op == Opcode::LoadA || I.Op == Opcode::StoreA) &&
               P.global(I.GlobalId).Size < 1)
        error(I.Loc, "array access to empty global in " + F.name());
      break;
    case Opcode::Input:
      if (I.SensorId < 0 || I.SensorId >= P.numSensors())
        error(I.Loc, "sensor id out of range in " + F.name());
      break;
    case Opcode::Call: {
      if (I.Callee < 0 || I.Callee >= P.numFunctions()) {
        error(I.Loc, "call to unknown function in " + F.name());
        break;
      }
      const Function &Callee = *P.function(I.Callee);
      if (static_cast<int>(I.Args.size()) != Callee.numParams())
        error(I.Loc, "call arity mismatch: " + F.name() + " -> " +
                         Callee.name());
      if (I.ArgRefGlobal.size() != I.Args.size()) {
        error(I.Loc, "ref-arg metadata size mismatch in " + F.name());
        break;
      }
      for (size_t A = 0; A < I.Args.size(); ++A) {
        bool IsRefArg = I.ArgRefGlobal[A] >= 0;
        bool WantsRef = static_cast<int>(A) < Callee.numParams() &&
                        Callee.paramIsRef(static_cast<int>(A));
        if (IsRefArg != WantsRef)
          error(I.Loc, "reference/value argument mismatch calling " +
                           Callee.name() + " from " + F.name());
        if (IsRefArg && I.ArgRefGlobal[A] >= P.numGlobals())
          error(I.Loc, "ref argument targets unknown global in " + F.name());
      }
      if (I.Dst >= 0 && !Callee.hasReturnValue())
        error(I.Loc, "call captures result of unit function " +
                         Callee.name());
      break;
    }
    case Opcode::Ret:
      if (F.hasReturnValue() && I.A.isNone())
        error(I.Loc, "function " + F.name() + " must return a value");
      if (!F.hasReturnValue() && !I.A.isNone())
        error(I.Loc, "unit function " + F.name() + " returns a value");
      break;
    case Opcode::Br:
      if (I.Target < 0 || I.Target >= F.numBlocks())
        error(I.Loc, "branch target out of range in " + F.name());
      break;
    case Opcode::CondBr:
      if (I.Target < 0 || I.Target >= F.numBlocks() || I.Target2 < 0 ||
          I.Target2 >= F.numBlocks())
        error(I.Loc, "condbr target out of range in " + F.name());
      break;
    case Opcode::AtomicStart:
    case Opcode::AtomicEnd:
      if (I.RegionId < 0)
        error(I.Loc, "atomic region bound without region id in " + F.name());
      break;
    default:
      break;
    }
  }

  void verifyFunction(const Function &F) {
    if (F.numBlocks() == 0) {
      error({}, "function " + F.name() + " has no blocks");
      return;
    }
    std::set<uint32_t> Labels;
    for (int B = 0; B < F.numBlocks(); ++B) {
      const BasicBlock *BB = F.block(B);
      if (!BB->hasTerminator()) {
        error({}, "block bb" + std::to_string(B) + " of " + F.name() +
                      " lacks a terminator");
        continue;
      }
      const auto &Instrs = BB->instructions();
      for (size_t I = 0; I < Instrs.size(); ++I) {
        if (Instrs[I].isTerminator() && I + 1 != Instrs.size())
          error(Instrs[I].Loc,
                "terminator in the middle of bb" + std::to_string(B) +
                    " of " + F.name());
        if (!Labels.insert(Instrs[I].Label).second)
          error(Instrs[I].Loc, "duplicate instruction label in " + F.name());
        verifyInstr(F, Instrs[I]);
      }
    }
    verifyRegionDepths(F);
  }

  /// Checks that atomic-region nesting depth is consistent at every block
  /// entry and zero at every return. The runtime flattens nested regions
  /// with a counter (Appendix H), which requires exactly this property.
  void verifyRegionDepths(const Function &F) {
    std::vector<int> DepthAt(F.numBlocks(), -1);
    std::vector<int> Work;
    DepthAt[0] = 0;
    Work.push_back(0);
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      const BasicBlock *BB = F.block(B);
      int Depth = DepthAt[B];
      for (const Instruction &I : BB->instructions()) {
        if (I.Op == Opcode::AtomicStart)
          ++Depth;
        else if (I.Op == Opcode::AtomicEnd) {
          --Depth;
          if (Depth < 0) {
            error(I.Loc, "atomic_end without matching start in " + F.name());
            return;
          }
        } else if (I.Op == Opcode::Ret && Depth != 0) {
          error(I.Loc, "return inside an open atomic region in " + F.name());
          return;
        }
      }
      for (int Succ : BB->successors()) {
        // Out-of-range targets were already diagnosed by verifyInstr.
        if (Succ < 0 || Succ >= F.numBlocks())
          continue;
        if (DepthAt[Succ] == -1) {
          DepthAt[Succ] = Depth;
          Work.push_back(Succ);
        } else if (DepthAt[Succ] != Depth) {
          error({}, "inconsistent atomic region depth at bb" +
                        std::to_string(Succ) + " of " + F.name());
          return;
        }
      }
    }
  }

  const Program &P;
  DiagnosticEngine &Diags;
};

} // namespace

bool ocelot::verifyProgram(const Program &P, DiagnosticEngine &Diags) {
  return Verifier(P, Diags).run();
}
