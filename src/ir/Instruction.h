//===- Instruction.h - Ocelot IR instruction --------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single IR instruction. Instructions are tagged structs rather than a
/// class hierarchy: the interpreter dispatches on the opcode in a hot loop
/// and the analyses want cheap copies when programs are transformed.
///
/// Every instruction carries a \c Label that is unique within its function
/// and stable across transformations; the paper identifies instructions by
/// (function, label) pairs and Ocelot's policies do the same here.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_INSTRUCTION_H
#define OCELOT_IR_INSTRUCTION_H

#include "ir/Opcode.h"
#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ocelot {

/// An instruction operand: either a virtual register or an immediate.
struct Operand {
  enum class Kind : uint8_t { None, Reg, Imm };

  Kind K = Kind::None;
  int Reg = -1;
  int64_t Imm = 0;

  Operand() = default;
  static Operand none() { return Operand(); }
  static Operand reg(int R) {
    Operand O;
    O.K = Kind::Reg;
    O.Reg = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.Imm = V;
    return O;
  }

  bool isNone() const { return K == Kind::None; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }

  bool operator==(const Operand &O) const {
    return K == O.K && Reg == O.Reg && Imm == O.Imm;
  }

  std::string str() const;
};

/// Uniquely identifies an instruction program-wide: function index plus the
/// instruction's stable label (the paper's (f, l) pair).
struct InstrRef {
  int Func = -1;
  uint32_t Label = 0;

  InstrRef() = default;
  InstrRef(int Func, uint32_t Label) : Func(Func), Label(Label) {}

  bool isValid() const { return Func >= 0; }

  bool operator==(const InstrRef &O) const {
    return Func == O.Func && Label == O.Label;
  }
  bool operator<(const InstrRef &O) const {
    if (Func != O.Func)
      return Func < O.Func;
    return Label < O.Label;
  }
};

/// A provenance chain: call-site instructions descending from some root
/// function, ending with the instruction itself (the paper's
/// (f1,l1) :: ... :: (sense, l)). Shared by the taint analysis, policies
/// and the runtime violation monitor.
using ProvChain = std::vector<InstrRef>;

/// A single IR instruction; see Opcode for the field conventions of each
/// opcode. Fields unused by an opcode keep their defaults.
struct Instruction {
  Opcode Op = Opcode::Nop;
  uint32_t Label = 0; ///< Stable, unique within the enclosing function.

  int Dst = -1;  ///< Destination virtual register, or -1.
  Operand A, B;  ///< Generic operands.
  BinOp BinKind = BinOp::Add;
  UnOp UnKind = UnOp::Neg;

  int GlobalId = -1; ///< LoadG/StoreG/LoadA/StoreA target.
  int SensorId = -1; ///< Input source.
  int Callee = -1;   ///< Call target function index.

  /// Call or Output arguments.
  std::vector<Operand> Args;
  /// For Call: per-argument reference target. ArgRefGlobal[i] >= 0 means
  /// argument i is a reference to that global (OCL references appear only
  /// as call arguments, so the target is statically known — the ownership
  /// discipline the paper gets from Rust).
  std::vector<int> ArgRefGlobal;

  int Target = -1;  ///< Br target / CondBr true target (block id).
  int Target2 = -1; ///< CondBr false target (block id).

  int SetId = -1;    ///< Consistent-set id for Consistent annotations.
  int RegionId = -1; ///< Atomic region id for AtomicStart/AtomicEnd.
  OutputKind OutKind = OutputKind::Log;

  /// Source-level variable name for annotations and diagnostics.
  std::string VarName;
  SourceLoc Loc;

  bool isTerminator() const {
    return Op == Opcode::Ret || Op == Opcode::Br || Op == Opcode::CondBr;
  }
  bool isAnnotation() const {
    return Op == Opcode::Fresh || Op == Opcode::Consistent;
  }
  bool isRegionBound() const {
    return Op == Opcode::AtomicStart || Op == Opcode::AtomicEnd;
  }

  /// Appends every register this instruction reads to \p Regs.
  void collectUsedRegs(std::vector<int> &Regs) const;

  /// Renders the instruction in the textual IR syntax.
  std::string str() const;
};

} // namespace ocelot

#endif // OCELOT_IR_INSTRUCTION_H
