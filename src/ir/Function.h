//===- Function.h - Ocelot IR function --------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_FUNCTION_H
#define OCELOT_IR_FUNCTION_H

#include "ir/BasicBlock.h"

#include <memory>
#include <string>
#include <vector>

namespace ocelot {

/// Where an instruction lives inside a function: block id plus index within
/// the block. Positions are invalidated by insertion; label-based InstrRefs
/// are not.
struct InstrPos {
  int Block = -1;
  int Index = -1;

  bool isValid() const { return Block >= 0; }
  bool operator==(const InstrPos &O) const {
    return Block == O.Block && Index == O.Index;
  }
};

/// An IR function: parameters (scalar by value, or references to globals),
/// virtual register file size, and a list of basic blocks. Block 0 is the
/// entry block. Parameters occupy registers [0, numParams).
class Function {
public:
  Function(std::string Name, int Id) : Name(std::move(Name)), Id(Id) {}

  const std::string &name() const { return Name; }
  int id() const { return Id; }

  // -- Parameters --------------------------------------------------------
  /// Adds a parameter; returns its register index. \p IsRef marks reference
  /// parameters (callee may LoadInd/StoreInd through them).
  int addParam(std::string PName, bool IsRef) {
    ParamNames.push_back(std::move(PName));
    ParamIsRef.push_back(IsRef);
    if (static_cast<int>(ParamNames.size()) > NumRegsCount)
      NumRegsCount = static_cast<int>(ParamNames.size());
    return static_cast<int>(ParamNames.size()) - 1;
  }
  int numParams() const { return static_cast<int>(ParamNames.size()); }
  const std::string &paramName(int I) const { return ParamNames[I]; }
  bool paramIsRef(int I) const { return ParamIsRef[I]; }

  bool hasReturnValue() const { return HasReturnValue; }
  void setHasReturnValue(bool V) { HasReturnValue = V; }

  // -- Registers ---------------------------------------------------------
  int newReg() { return NumRegsCount++; }
  int numRegs() const { return NumRegsCount; }

  // -- Labels ------------------------------------------------------------
  uint32_t nextLabel() { return ++LabelCounter; }
  uint32_t labelCounter() const { return LabelCounter; }

  // -- Blocks ------------------------------------------------------------
  BasicBlock *addBlock(std::string BName);
  BasicBlock *block(int Id) { return Blocks[Id].get(); }
  const BasicBlock *block(int Id) const { return Blocks[Id].get(); }
  int numBlocks() const { return static_cast<int>(Blocks.size()); }
  BasicBlock *entry() { return Blocks.empty() ? nullptr : Blocks[0].get(); }
  const BasicBlock *entry() const {
    return Blocks.empty() ? nullptr : Blocks[0].get();
  }

  /// Predecessor block ids for every block (recomputed on each call; the
  /// IR is small and transforms are rare).
  std::vector<std::vector<int>> computePredecessors() const;

  /// Finds the position of the instruction with the given stable label, or
  /// an invalid position if absent.
  InstrPos findLabel(uint32_t Label) const;

  Instruction *instrAt(InstrPos P) {
    if (!P.isValid())
      return nullptr;
    return &Blocks[P.Block]->instructions()[P.Index];
  }
  const Instruction *instrAt(InstrPos P) const {
    if (!P.isValid())
      return nullptr;
    return &Blocks[P.Block]->instructions()[P.Index];
  }

private:
  std::string Name;
  int Id;
  std::vector<std::string> ParamNames;
  std::vector<bool> ParamIsRef;
  bool HasReturnValue = false;
  int NumRegsCount = 0;
  uint32_t LabelCounter = 0;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
};

} // namespace ocelot

#endif // OCELOT_IR_FUNCTION_H
