//===- Program.h - Ocelot IR module -----------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level IR container: functions, non-volatile globals (scalars and
/// arrays), and declared sensors. Mirrors the paper's program p = FD with a
/// distinguished main function.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_PROGRAM_H
#define OCELOT_IR_PROGRAM_H

#include "ir/Function.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ocelot {

/// A non-volatile global: a scalar (Size == 1) or an int array. Local OCL
/// arrays and address-taken locals are promoted here by lowering (legal
/// because recursion is disallowed), matching intermittent platforms whose
/// main memory is NVRAM.
struct GlobalVar {
  std::string Name;
  int Size = 1;
  std::vector<int64_t> Init; ///< Empty means zero-initialized.
  bool IsPromotedLocal = false;
  SourceLoc Loc;
};

/// A declared input source (the paper's IN() operations are calls to
/// io-declared sensor functions).
struct SensorDecl {
  std::string Name;
  SourceLoc Loc;
};

/// A whole IR program.
class Program {
public:
  // -- Functions ---------------------------------------------------------
  Function *addFunction(const std::string &Name);
  Function *function(int Id) { return Funcs[Id].get(); }
  const Function *function(int Id) const { return Funcs[Id].get(); }
  Function *functionByName(const std::string &Name);
  const Function *functionByName(const std::string &Name) const;
  int numFunctions() const { return static_cast<int>(Funcs.size()); }

  int mainFunction() const { return MainFunc; }
  void setMainFunction(int Id) { MainFunc = Id; }

  // -- Globals -----------------------------------------------------------
  int addGlobal(GlobalVar G);
  const GlobalVar &global(int Id) const { return Globals[Id]; }
  GlobalVar &global(int Id) { return Globals[Id]; }
  int numGlobals() const { return static_cast<int>(Globals.size()); }
  int findGlobal(const std::string &Name) const;

  // -- Sensors -----------------------------------------------------------
  int addSensor(SensorDecl S);
  const SensorDecl &sensor(int Id) const { return Sensors[Id]; }
  int numSensors() const { return static_cast<int>(Sensors.size()); }
  int findSensor(const std::string &Name) const;

  // -- Region ids --------------------------------------------------------
  /// Allocates a fresh atomic-region id (unique program-wide).
  int newRegionId() { return NextRegionId++; }
  int regionIdCounter() const { return NextRegionId; }

  /// Counts instructions across all functions (used by reports and tests).
  size_t countInstructions() const;

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::map<std::string, int> FuncIndex;
  std::vector<GlobalVar> Globals;
  std::map<std::string, int> GlobalIndex;
  std::vector<SensorDecl> Sensors;
  std::map<std::string, int> SensorIndex;
  int MainFunc = -1;
  int NextRegionId = 0;
};

} // namespace ocelot

#endif // OCELOT_IR_PROGRAM_H
