//===- BasicBlock.cpp - Ocelot IR basic block ------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/BasicBlock.h"

#include <cassert>

using namespace ocelot;

const Instruction &BasicBlock::terminator() const {
  assert(hasTerminator() && "block has no terminator");
  return Instrs.back();
}

std::vector<int> BasicBlock::successors() const {
  if (!hasTerminator())
    return {};
  const Instruction &T = Instrs.back();
  switch (T.Op) {
  case Opcode::Br:
    return {T.Target};
  case Opcode::CondBr:
    return {T.Target, T.Target2};
  case Opcode::Ret:
    return {};
  default:
    return {};
  }
}
