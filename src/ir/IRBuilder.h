//===- IRBuilder.h - Convenience construction of Ocelot IR ------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builder used by the frontend lowering and by tests to construct IR with
/// stable labels. The builder tracks an insertion point (block) and assigns
/// every created instruction a fresh label from the enclosing function.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_IRBUILDER_H
#define OCELOT_IR_IRBUILDER_H

#include "ir/Program.h"

namespace ocelot {

class IRBuilder {
public:
  explicit IRBuilder(Program &P) : Prog(P) {}

  Program &program() { return Prog; }

  void setFunction(Function *F) {
    Func = F;
    Block = nullptr;
  }
  Function *function() const { return Func; }

  void setBlock(BasicBlock *BB) { Block = BB; }
  BasicBlock *blockPtr() const { return Block; }

  /// Appends \p I to the current block after assigning it a fresh label
  /// (unless it already carries one). \returns the instruction's label.
  uint32_t insert(Instruction I);

  // -- Typed helpers (each returns the destination register or label) -----
  int emitConst(int64_t V, SourceLoc Loc = {});
  int emitBin(BinOp Op, Operand A, Operand B, SourceLoc Loc = {});
  int emitUn(UnOp Op, Operand A, SourceLoc Loc = {});
  int emitMov(Operand A, SourceLoc Loc = {});
  void emitMovTo(int Dst, Operand A, SourceLoc Loc = {});
  int emitLoadG(int GlobalId, SourceLoc Loc = {});
  void emitStoreG(int GlobalId, Operand A, SourceLoc Loc = {});
  int emitLoadA(int GlobalId, Operand Idx, SourceLoc Loc = {});
  void emitStoreA(int GlobalId, Operand Idx, Operand Val, SourceLoc Loc = {});
  int emitLoadInd(Operand Ref, SourceLoc Loc = {});
  void emitStoreInd(Operand Ref, Operand Val, SourceLoc Loc = {});
  int emitInput(int SensorId, SourceLoc Loc = {});
  /// \p Dst may be -1 for calls whose result is unused / unit.
  uint32_t emitCall(int Dst, int Callee, std::vector<Operand> Args,
                    std::vector<int> ArgRefGlobal, SourceLoc Loc = {});
  void emitRet(Operand A, SourceLoc Loc = {});
  void emitBr(int Target, SourceLoc Loc = {});
  void emitCondBr(Operand Cond, int TargetT, int TargetF, SourceLoc Loc = {});
  uint32_t emitFresh(Operand A, const std::string &VarName,
                     SourceLoc Loc = {});
  uint32_t emitConsistent(Operand A, int SetId, const std::string &VarName,
                          SourceLoc Loc = {});
  void emitAtomicStart(int RegionId, SourceLoc Loc = {});
  void emitAtomicEnd(int RegionId, SourceLoc Loc = {});
  void emitOutput(OutputKind K, std::vector<Operand> Args,
                  SourceLoc Loc = {});
  void emitNop(SourceLoc Loc = {});

private:
  Instruction make(Opcode Op, SourceLoc Loc);

  Program &Prog;
  Function *Func = nullptr;
  BasicBlock *Block = nullptr;
};

} // namespace ocelot

#endif // OCELOT_IR_IRBUILDER_H
