//===- IRBuilder.cpp - Convenience construction of Ocelot IR ----------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include <cassert>

using namespace ocelot;

Instruction IRBuilder::make(Opcode Op, SourceLoc Loc) {
  assert(Func && Block && "builder has no insertion point");
  Instruction I;
  I.Op = Op;
  I.Loc = Loc;
  I.Label = Func->nextLabel();
  return I;
}

uint32_t IRBuilder::insert(Instruction I) {
  assert(Func && Block && "builder has no insertion point");
  if (I.Label == 0)
    I.Label = Func->nextLabel();
  uint32_t L = I.Label;
  Block->instructions().push_back(std::move(I));
  return L;
}

int IRBuilder::emitConst(int64_t V, SourceLoc Loc) {
  Instruction I = make(Opcode::Const, Loc);
  I.Dst = Func->newReg();
  I.A = Operand::imm(V);
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

int IRBuilder::emitBin(BinOp Op, Operand A, Operand B, SourceLoc Loc) {
  Instruction I = make(Opcode::Bin, Loc);
  I.Dst = Func->newReg();
  I.BinKind = Op;
  I.A = A;
  I.B = B;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

int IRBuilder::emitUn(UnOp Op, Operand A, SourceLoc Loc) {
  Instruction I = make(Opcode::Un, Loc);
  I.Dst = Func->newReg();
  I.UnKind = Op;
  I.A = A;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

int IRBuilder::emitMov(Operand A, SourceLoc Loc) {
  Instruction I = make(Opcode::Mov, Loc);
  I.Dst = Func->newReg();
  I.A = A;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

void IRBuilder::emitMovTo(int Dst, Operand A, SourceLoc Loc) {
  Instruction I = make(Opcode::Mov, Loc);
  I.Dst = Dst;
  I.A = A;
  Block->instructions().push_back(std::move(I));
}

int IRBuilder::emitLoadG(int GlobalId, SourceLoc Loc) {
  Instruction I = make(Opcode::LoadG, Loc);
  I.Dst = Func->newReg();
  I.GlobalId = GlobalId;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

void IRBuilder::emitStoreG(int GlobalId, Operand A, SourceLoc Loc) {
  Instruction I = make(Opcode::StoreG, Loc);
  I.GlobalId = GlobalId;
  I.A = A;
  Block->instructions().push_back(std::move(I));
}

int IRBuilder::emitLoadA(int GlobalId, Operand Idx, SourceLoc Loc) {
  Instruction I = make(Opcode::LoadA, Loc);
  I.Dst = Func->newReg();
  I.GlobalId = GlobalId;
  I.A = Idx;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

void IRBuilder::emitStoreA(int GlobalId, Operand Idx, Operand Val,
                           SourceLoc Loc) {
  Instruction I = make(Opcode::StoreA, Loc);
  I.GlobalId = GlobalId;
  I.A = Idx;
  I.B = Val;
  Block->instructions().push_back(std::move(I));
}

int IRBuilder::emitLoadInd(Operand Ref, SourceLoc Loc) {
  Instruction I = make(Opcode::LoadInd, Loc);
  I.Dst = Func->newReg();
  I.A = Ref;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

void IRBuilder::emitStoreInd(Operand Ref, Operand Val, SourceLoc Loc) {
  Instruction I = make(Opcode::StoreInd, Loc);
  I.A = Ref;
  I.B = Val;
  Block->instructions().push_back(std::move(I));
}

int IRBuilder::emitInput(int SensorId, SourceLoc Loc) {
  Instruction I = make(Opcode::Input, Loc);
  I.Dst = Func->newReg();
  I.SensorId = SensorId;
  int Dst = I.Dst;
  Block->instructions().push_back(std::move(I));
  return Dst;
}

uint32_t IRBuilder::emitCall(int Dst, int Callee, std::vector<Operand> Args,
                             std::vector<int> ArgRefGlobal, SourceLoc Loc) {
  Instruction I = make(Opcode::Call, Loc);
  I.Dst = Dst;
  I.Callee = Callee;
  I.Args = std::move(Args);
  I.ArgRefGlobal = std::move(ArgRefGlobal);
  if (I.ArgRefGlobal.empty())
    I.ArgRefGlobal.assign(I.Args.size(), -1);
  assert(I.ArgRefGlobal.size() == I.Args.size() &&
         "ref-arg metadata must match arg count");
  uint32_t L = I.Label;
  Block->instructions().push_back(std::move(I));
  return L;
}

void IRBuilder::emitRet(Operand A, SourceLoc Loc) {
  Instruction I = make(Opcode::Ret, Loc);
  I.A = A;
  Block->instructions().push_back(std::move(I));
}

void IRBuilder::emitBr(int Target, SourceLoc Loc) {
  Instruction I = make(Opcode::Br, Loc);
  I.Target = Target;
  Block->instructions().push_back(std::move(I));
}

void IRBuilder::emitCondBr(Operand Cond, int TargetT, int TargetF,
                           SourceLoc Loc) {
  Instruction I = make(Opcode::CondBr, Loc);
  I.A = Cond;
  I.Target = TargetT;
  I.Target2 = TargetF;
  Block->instructions().push_back(std::move(I));
}

uint32_t IRBuilder::emitFresh(Operand A, const std::string &VarName,
                              SourceLoc Loc) {
  Instruction I = make(Opcode::Fresh, Loc);
  I.A = A;
  I.VarName = VarName;
  uint32_t L = I.Label;
  Block->instructions().push_back(std::move(I));
  return L;
}

uint32_t IRBuilder::emitConsistent(Operand A, int SetId,
                                   const std::string &VarName, SourceLoc Loc) {
  Instruction I = make(Opcode::Consistent, Loc);
  I.A = A;
  I.SetId = SetId;
  I.VarName = VarName;
  uint32_t L = I.Label;
  Block->instructions().push_back(std::move(I));
  return L;
}

void IRBuilder::emitAtomicStart(int RegionId, SourceLoc Loc) {
  Instruction I = make(Opcode::AtomicStart, Loc);
  I.RegionId = RegionId;
  Block->instructions().push_back(std::move(I));
}

void IRBuilder::emitAtomicEnd(int RegionId, SourceLoc Loc) {
  Instruction I = make(Opcode::AtomicEnd, Loc);
  I.RegionId = RegionId;
  Block->instructions().push_back(std::move(I));
}

void IRBuilder::emitOutput(OutputKind K, std::vector<Operand> Args,
                           SourceLoc Loc) {
  Instruction I = make(Opcode::Output, Loc);
  I.OutKind = K;
  I.Args = std::move(Args);
  Block->instructions().push_back(std::move(I));
}

void IRBuilder::emitNop(SourceLoc Loc) {
  Block->instructions().push_back(make(Opcode::Nop, Loc));
}
