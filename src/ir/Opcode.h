//===- Opcode.h - IR opcode and operator enums ------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes of the Ocelot IR. The IR is a register-based CFG form of the
/// paper's modeling language (Appendix A) extended with the constructs the
/// implementation needs: sensor inputs, annotation markers, atomic region
/// bounds, and observable outputs.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_OPCODE_H
#define OCELOT_IR_OPCODE_H

namespace ocelot {

enum class Opcode {
  Const,       ///< Dst = Imm
  Bin,         ///< Dst = A <binop> B
  Un,          ///< Dst = <unop> A
  Mov,         ///< Dst = A
  LoadG,       ///< Dst = nvm[GlobalId]
  StoreG,      ///< nvm[GlobalId] = A
  LoadA,       ///< Dst = nvm-array[GlobalId][A]
  StoreA,      ///< nvm-array[GlobalId][A] = B
  LoadInd,     ///< Dst = *A          (A holds a reference parameter)
  StoreInd,    ///< *A = B            (A holds a reference parameter)
  Input,       ///< Dst = sense(SensorId) at current logical time
  Call,        ///< Dst = Callee(Args...); ref args carry their target global
  Ret,         ///< return A (or nothing)
  Br,          ///< goto Target
  CondBr,      ///< if A goto Target else Target2
  Fresh,       ///< annotation marker: Fresh(A)
  Consistent,  ///< annotation marker: Consistent(A, SetId)
  AtomicStart, ///< begin atomic region RegionId
  AtomicEnd,   ///< end atomic region RegionId
  Output,      ///< observable event (log/alarm/send/uart) with Args
  Nop,         ///< no-op (used by tests and instrumentation)
};

/// Number of opcodes; sizes the opcode-pair histogram
/// (RunConfig::OpcodePairCounts) and the threaded dispatch table.
constexpr int NumOpcodes = static_cast<int>(Opcode::Nop) + 1;

enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  LAnd,
  LOr,
};

enum class UnOp { Neg, Not, LNot };

/// Kinds of observable output events a program may emit. These are the
/// externally visible effects used to compare an intermittent execution
/// against continuous ones.
enum class OutputKind { Log, Alarm, Send, Uart };

const char *opcodeName(Opcode Op);
const char *binOpName(BinOp Op);
const char *unOpName(UnOp Op);
const char *outputKindName(OutputKind K);

} // namespace ocelot

#endif // OCELOT_IR_OPCODE_H
