//===- BasicBlock.h - Ocelot IR basic block ---------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_IR_BASICBLOCK_H
#define OCELOT_IR_BASICBLOCK_H

#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace ocelot {

class Function;

/// A straight-line sequence of instructions ending in a terminator. Block
/// ids index into the parent function's block table and are the targets of
/// branch instructions.
class BasicBlock {
public:
  BasicBlock(Function *Parent, int Id, std::string Name)
      : Parent(Parent), Id(Id), Name(std::move(Name)) {}

  Function *parent() const { return Parent; }
  int id() const { return Id; }
  const std::string &name() const { return Name; }

  std::vector<Instruction> &instructions() { return Instrs; }
  const std::vector<Instruction> &instructions() const { return Instrs; }

  bool empty() const { return Instrs.empty(); }
  size_t size() const { return Instrs.size(); }

  const Instruction &terminator() const;
  bool hasTerminator() const {
    return !Instrs.empty() && Instrs.back().isTerminator();
  }

  /// Successor block ids in CFG order (true target first for CondBr).
  std::vector<int> successors() const;

private:
  Function *Parent;
  int Id;
  std::string Name;
  std::vector<Instruction> Instrs;
};

} // namespace ocelot

#endif // OCELOT_IR_BASICBLOCK_H
