//===- Program.cpp - Ocelot IR module ----------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <cassert>

using namespace ocelot;

Function *Program::addFunction(const std::string &Name) {
  assert(FuncIndex.find(Name) == FuncIndex.end() && "duplicate function");
  int Id = static_cast<int>(Funcs.size());
  Funcs.push_back(std::make_unique<Function>(Name, Id));
  FuncIndex[Name] = Id;
  return Funcs.back().get();
}

Function *Program::functionByName(const std::string &Name) {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? nullptr : Funcs[It->second].get();
}

const Function *Program::functionByName(const std::string &Name) const {
  auto It = FuncIndex.find(Name);
  return It == FuncIndex.end() ? nullptr : Funcs[It->second].get();
}

int Program::addGlobal(GlobalVar G) {
  assert(GlobalIndex.find(G.Name) == GlobalIndex.end() && "duplicate global");
  int Id = static_cast<int>(Globals.size());
  GlobalIndex[G.Name] = Id;
  Globals.push_back(std::move(G));
  return Id;
}

int Program::findGlobal(const std::string &Name) const {
  auto It = GlobalIndex.find(Name);
  return It == GlobalIndex.end() ? -1 : It->second;
}

int Program::addSensor(SensorDecl S) {
  assert(SensorIndex.find(S.Name) == SensorIndex.end() && "duplicate sensor");
  int Id = static_cast<int>(Sensors.size());
  SensorIndex[S.Name] = Id;
  Sensors.push_back(std::move(S));
  return Id;
}

int Program::findSensor(const std::string &Name) const {
  auto It = SensorIndex.find(Name);
  return It == SensorIndex.end() ? -1 : It->second;
}

size_t Program::countInstructions() const {
  size_t N = 0;
  for (const auto &F : Funcs)
    for (int B = 0; B < F->numBlocks(); ++B)
      N += F->block(B)->size();
  return N;
}
