//===- Function.cpp - Ocelot IR function ------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace ocelot;

BasicBlock *Function::addBlock(std::string BName) {
  int BlockId = static_cast<int>(Blocks.size());
  Blocks.push_back(
      std::make_unique<BasicBlock>(this, BlockId, std::move(BName)));
  return Blocks.back().get();
}

std::vector<std::vector<int>> Function::computePredecessors() const {
  std::vector<std::vector<int>> Preds(Blocks.size());
  for (const auto &BB : Blocks)
    for (int Succ : BB->successors())
      Preds[Succ].push_back(BB->id());
  return Preds;
}

InstrPos Function::findLabel(uint32_t Label) const {
  for (const auto &BB : Blocks) {
    const auto &Instrs = BB->instructions();
    for (size_t I = 0, E = Instrs.size(); I != E; ++I)
      if (Instrs[I].Label == Label)
        return {BB->id(), static_cast<int>(I)};
  }
  return {};
}
