//===- Policy.cpp - Freshness and consistency policies ------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/Policy.h"

#include "ir/Program.h"

using namespace ocelot;

std::string ocelot::chainToString(const Program &P, const ProvChain &Chain) {
  std::string S;
  for (size_t I = 0; I < Chain.size(); ++I) {
    if (I)
      S += " :: ";
    S += P.function(Chain[I].Func)->name() + "@" +
         std::to_string(Chain[I].Label);
  }
  return S;
}
