//===- RegionChecker.cpp - Policy enforcement checking -------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/RegionChecker.h"

#include "analysis/Dominators.h"
#include "ocelot/RegionInference.h"

#include <algorithm>
#include <set>

using namespace ocelot;

namespace {

/// One atomic region of a function, located by positions of its bounds.
struct RegionBounds {
  int RegionId;
  InstrPos Start;
  InstrPos End;
};

std::vector<RegionBounds> regionsIn(const Function &F) {
  std::map<int, RegionBounds> ById;
  for (int B = 0; B < F.numBlocks(); ++B) {
    const auto &Instrs = F.block(B)->instructions();
    for (size_t I = 0; I < Instrs.size(); ++I) {
      const Instruction &Ins = Instrs[I];
      if (Ins.Op == Opcode::AtomicStart) {
        ById[Ins.RegionId].RegionId = Ins.RegionId;
        ById[Ins.RegionId].Start = {B, static_cast<int>(I)};
      } else if (Ins.Op == Opcode::AtomicEnd) {
        ById[Ins.RegionId].RegionId = Ins.RegionId;
        ById[Ins.RegionId].End = {B, static_cast<int>(I)};
      }
    }
  }
  std::vector<RegionBounds> Out;
  for (auto &[Id, R] : ById)
    if (R.Start.isValid() && R.End.isValid())
      Out.push_back(R);
  return Out;
}

/// True if some region of \p F contains every representative instruction.
bool someRegionCovers(const Function &F, const std::vector<InstrRef> &Reps) {
  std::vector<RegionBounds> Regions = regionsIn(F);
  if (Regions.empty())
    return false;
  DominatorTree DT = DominatorTree::computeDominators(F);
  DominatorTree PDT = DominatorTree::computePostDominators(F);
  for (const RegionBounds &R : Regions) {
    bool All = true;
    for (const InstrRef &Rep : Reps) {
      InstrPos Pos = F.findLabel(Rep.Label);
      if (!Pos.isValid() || !DT.dominates(R.Start, Pos) ||
          !PDT.dominates(R.End, Pos)) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

/// Checks one policy: enforced if, for the candidate function or any
/// ancestor function along the items' common path, a single region covers
/// all representatives at that level. Above the items' root function,
/// every calling context must be wrapped by some region around its call
/// site (a trivially valid enclosing placement, §5.3).
bool policyEnforced(const Program &P, const TaintAnalysis &TA, int RootFunc,
                    const std::vector<ProvChain> &Items,
                    std::string &FailReason) {
  if (Items.empty())
    return true;
  int Candidate = findCandidateFunction(Items);
  if (Candidate < 0) {
    FailReason = "no candidate function contains all policy operations";
    return false;
  }
  // Common path = function path of any item up to the candidate.
  std::vector<int> PathFuncs;
  for (const InstrRef &E : Items[0]) {
    PathFuncs.push_back(E.Func);
    if (E.Func == Candidate)
      break;
  }
  // Deepest first: a region in the candidate is the tight placement; a
  // region in an ancestor wrapping the whole call also enforces the policy.
  std::reverse(PathFuncs.begin(), PathFuncs.end());
  for (int Func : PathFuncs) {
    std::vector<InstrRef> Reps = representativesAt(Items, Func);
    if (someRegionCovers(*P.function(Func), Reps))
      return true;
  }
  // Ancestors above the items' root: every context chain into the root
  // must pass through a covered call site.
  if (RootFunc >= 0 && !TA.contexts(RootFunc).empty()) {
    bool AllContextsCovered = true;
    for (const ProvChain &Pi : TA.contexts(RootFunc)) {
      bool Covered = false;
      for (auto It = Pi.rbegin(); It != Pi.rend() && !Covered; ++It)
        Covered = someRegionCovers(*P.function(It->Func), {*It});
      if (!Covered) {
        AllContextsCovered = false;
        break;
      }
    }
    if (AllContextsCovered && !TA.contexts(RootFunc).begin()->empty())
      return true;
  }
  FailReason = "no atomic region covers all policy operations in " +
               P.function(Candidate)->name() + " or its callers";
  return false;
}

bool chainsCovered(const std::vector<ProvChain> &Needed,
                   const std::vector<ProvChain> &Given) {
  std::set<ProvChain> G(Given.begin(), Given.end());
  for (const ProvChain &C : Needed)
    if (!G.count(C))
      return false;
  return true;
}

} // namespace

bool ocelot::checkPolicyDeclarations(const Program &P,
                                     const PolicySet &Derived,
                                     const PolicySet &Provided,
                                     DiagnosticEngine &Diags) {
  bool Ok = true;
  for (const FreshPolicy &D : Derived.Fresh) {
    const FreshPolicy *Match = nullptr;
    for (const FreshPolicy &Prov : Provided.Fresh)
      if (Prov.Decl == D.Decl) {
        Match = &Prov;
        break;
      }
    if (!Match) {
      Diags.error({}, "missing fresh policy for " + D.VarName + " in " +
                          P.function(D.DeclFunc)->name());
      Ok = false;
      continue;
    }
    if (!chainsCovered(D.Inputs, Match->Inputs)) {
      Diags.error({}, "fresh policy for " + D.VarName +
                          " does not cover all input dependences");
      Ok = false;
    }
    std::set<InstrRef> Uses(Match->Uses.begin(), Match->Uses.end());
    for (const InstrRef &U : D.Uses)
      if (!Uses.count(U)) {
        Diags.error({}, "fresh policy for " + D.VarName +
                            " misses a use at label " +
                            std::to_string(U.Label));
        Ok = false;
      }
  }
  for (const ConsistentPolicy &D : Derived.Consistent) {
    const ConsistentPolicy *Match = nullptr;
    for (const ConsistentPolicy &Prov : Provided.Consistent)
      if (Prov.SetId == D.SetId) {
        Match = &Prov;
        break;
      }
    if (!Match) {
      Diags.error({}, "missing consistent policy for set " +
                          std::to_string(D.SetId));
      Ok = false;
      continue;
    }
    if (!chainsCovered(D.Inputs, Match->Inputs)) {
      Diags.error({}, "consistent policy for set " + std::to_string(D.SetId) +
                          " does not cover all input dependences");
      Ok = false;
    }
  }
  return Ok;
}

bool ocelot::checkRegionPlacement(const Program &P, const TaintAnalysis &TA,
                                  const PolicySet &PS,
                                  DiagnosticEngine &Diags) {
  bool Ok = true;
  std::string Reason;
  for (const FreshPolicy &Pol : PS.Fresh) {
    if (!policyEnforced(P, TA, Pol.RootFunc, policyItems(Pol, TA), Reason)) {
      Diags.error({}, "Fresh(" + Pol.VarName + ") is not enforced: " +
                          Reason);
      Ok = false;
    }
  }
  for (const ConsistentPolicy &Pol : PS.Consistent) {
    if (!policyEnforced(P, TA, Pol.RootFunc, policyItems(Pol, TA), Reason)) {
      Diags.error({}, "consistent set " + std::to_string(Pol.SetId) +
                          " is not enforced: " + Reason);
      Ok = false;
    }
  }
  return Ok;
}
