//===- RegionInference.cpp - Atomic region inference ---------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/RegionInference.h"

#include "analysis/Dominators.h"
#include "ir/Program.h"

#include <algorithm>
#include <cassert>

using namespace ocelot;

namespace {

/// Chains for an instruction that must appear in the region: trivial when
/// the instruction lives in the root function, otherwise prefixed with
/// every (main-rooted) context of its function.
void appendInstrItems(std::vector<ProvChain> &Items, const TaintAnalysis &TA,
                      int RootFunc, InstrRef Instr) {
  if (Instr.Func == RootFunc) {
    Items.push_back(ProvChain{Instr});
    return;
  }
  for (const ProvChain &Pi : TA.contexts(Instr.Func)) {
    ProvChain C = Pi;
    C.push_back(Instr);
    Items.push_back(std::move(C));
  }
}

void dedup(std::vector<ProvChain> &Items) {
  std::sort(Items.begin(), Items.end());
  Items.erase(std::unique(Items.begin(), Items.end()), Items.end());
}

} // namespace

std::vector<ProvChain> ocelot::policyItems(const FreshPolicy &Pol,
                                           const TaintAnalysis &TA) {
  std::vector<ProvChain> Items(Pol.Inputs);
  appendInstrItems(Items, TA, Pol.RootFunc, Pol.Decl);
  for (const InstrRef &Use : Pol.Uses)
    appendInstrItems(Items, TA, Pol.RootFunc, Use);
  dedup(Items);
  return Items;
}

std::vector<ProvChain> ocelot::policyItems(const ConsistentPolicy &Pol,
                                           const TaintAnalysis & /*TA*/) {
  // Temporal consistency constrains the *inputs* only: the definitions of
  // the set's members need not execute atomically with them (paper §4.3,
  // Fig. 4(b)). The markers themselves are therefore not items.
  std::vector<ProvChain> Items(Pol.Inputs);
  dedup(Items);
  return Items;
}

int ocelot::findCandidateFunction(const std::vector<ProvChain> &Items) {
  if (Items.empty())
    return -1;
  // Longest common prefix of the items' *entry* chains. Two items that
  // descend through different call sites diverge at the caller even when
  // they reach the same callee — the paper's Fig. 6(b): two calls to pres
  // make confirm (not pres) the deepest function containing both.
  size_t K = Items[0].size();
  for (size_t I = 1; I < Items.size(); ++I) {
    size_t N = std::min(K, Items[I].size());
    size_t Same = 0;
    while (Same < N && Items[0][Same] == Items[I][Same])
      ++Same;
    K = Same;
  }
  bool AnyEndsAtK = false;
  for (const ProvChain &C : Items)
    if (C.size() == K)
      AnyEndsAtK = true;
  if (K == 0 || AnyEndsAtK) {
    // Divergence (or an item itself) sits in the function holding the
    // first divergent entry — the common root when K == 0.
    size_t Pos = K == 0 ? 0 : K - 1;
    return Items[0][Pos].Func;
  }
  // All items continue below the common prefix through the same call
  // instruction; the candidate is that call's target function.
  return Items[0][K].Func;
}

std::vector<InstrRef>
ocelot::representativesAt(const std::vector<ProvChain> &Items, int Func) {
  std::vector<InstrRef> Reps;
  Reps.reserve(Items.size());
  for (const ProvChain &C : Items) {
    const InstrRef *Found = nullptr;
    for (const InstrRef &E : C)
      if (E.Func == Func) {
        Found = &E;
        break;
      }
    assert(Found && "candidate function must appear on every item chain");
    Reps.push_back(*Found);
  }
  // Dedup (several chains can share a call site).
  std::sort(Reps.begin(), Reps.end());
  Reps.erase(std::unique(Reps.begin(), Reps.end()), Reps.end());
  return Reps;
}

namespace {

/// Inserts \p I at (Block, Index) in \p F, assigning a fresh label.
void insertAt(Function &F, int Block, int Index, Instruction I) {
  I.Label = F.nextLabel();
  auto &Instrs = F.block(Block)->instructions();
  assert(Index >= 0 && Index <= static_cast<int>(Instrs.size()));
  Instrs.insert(Instrs.begin() + Index, std::move(I));
}

/// Places one region around the representative instructions in \p F.
/// \returns the placement, or nothing on failure (reported to Diags).
bool placeRegion(Program &P, Function &F, const std::vector<InstrRef> &Reps,
                 int RegionId, InferredRegion &Out, DiagnosticEngine &Diags) {
  DominatorTree DT = DominatorTree::computeDominators(F);
  DominatorTree PDT = DominatorTree::computePostDominators(F);

  std::vector<InstrPos> Positions;
  std::vector<bool> IsTerm;
  for (const InstrRef &R : Reps) {
    InstrPos Pos = F.findLabel(R.Label);
    if (!Pos.isValid()) {
      Diags.error({}, "policy instruction @" + std::to_string(R.Label) +
                          " not found in " + F.name());
      return false;
    }
    Positions.push_back(Pos);
    IsTerm.push_back(
        F.block(Pos.Block)->instructions()[static_cast<size_t>(Pos.Index)]
            .isTerminator());
  }

  // Dominator-side block set uses the representative blocks directly; the
  // post-dominator side replaces a terminator representative's block with
  // its immediate post-dominator (the region must end after the branch, in
  // the join — paper Fig. 3's "join bb2 bb3; call atomic_end").
  std::vector<int> DomBlocks, PdomBlocks;
  for (size_t I = 0; I < Positions.size(); ++I) {
    DomBlocks.push_back(Positions[I].Block);
    int PB = Positions[I].Block;
    if (IsTerm[I]) {
      PB = PDT.idom(PB);
      if (PB < 0) {
        Diags.error({}, "cannot end a region after a branch with no "
                        "post-dominator in " +
                            F.name());
        return false;
      }
    }
    PdomBlocks.push_back(PB);
  }

  int S = DT.closestCommon(DomBlocks);
  int E = PDT.closestCommon(PdomBlocks);
  if (S < 0 || E < 0) {
    Diags.error({}, "no common (post-)dominator for policy operations in " +
                        F.name());
    return false;
  }
  // Widen until the start dominates the end and the end post-dominates the
  // start, so every path through the region is balanced.
  for (int Iter = 0; Iter < 64; ++Iter) {
    int S2 = DT.closestCommon(S, E);
    int E2 = PDT.closestCommon(std::vector<int>{S2, E});
    if (S2 == S && E2 == E)
      break;
    S = S2;
    E = E2;
    if (S < 0 || E < 0) {
      Diags.error({}, "failed to widen region bounds in " + F.name());
      return false;
    }
  }

  // Truncate (paper line 19): latest point in S dominating every policy
  // operation; earliest point in E post-dominating them.
  int StartIdx = static_cast<int>(F.block(S)->size()) - 1; // before term.
  int EndIdx = -1; // insert at block start
  for (size_t I = 0; I < Positions.size(); ++I) {
    if (Positions[I].Block == S)
      StartIdx = std::min(StartIdx, Positions[I].Index);
    if (Positions[I].Block == E && !IsTerm[I])
      EndIdx = std::max(EndIdx, Positions[I].Index);
  }

  Instruction Start;
  Start.Op = Opcode::AtomicStart;
  Start.RegionId = RegionId;
  Instruction End;
  End.Op = Opcode::AtomicEnd;
  End.RegionId = RegionId;

  if (S == E) {
    assert(EndIdx >= StartIdx && "degenerate single-block region");
    insertAt(F, S, StartIdx, Start);
    insertAt(F, E, EndIdx + 2, End); // +1 for content, +1 for the start.
  } else {
    insertAt(F, S, StartIdx, Start);
    insertAt(F, E, EndIdx + 1, End);
  }

  Out.RegionId = RegionId;
  Out.Func = F.id();
  // Labels of the bounds: the two most recently assigned labels.
  Out.EndLabel = F.labelCounter();
  Out.StartLabel = F.labelCounter() - 1;
  (void)P;
  return true;
}

} // namespace

std::vector<InferredRegion>
ocelot::inferAtomicRegions(Program &P, const TaintAnalysis &TA,
                           const PolicySet &PS, DiagnosticEngine &Diags) {
  std::vector<InferredRegion> Regions;

  auto Place = [&](const std::vector<ProvChain> &Items, int PolicyId,
                   const std::string &What) {
    if (Items.empty())
      return;
    int Candidate = findCandidateFunction(Items);
    if (Candidate < 0) {
      Diags.error({}, "no candidate function for " + What);
      return;
    }
    std::vector<InstrRef> Reps = representativesAt(Items, Candidate);
    InferredRegion R;
    int RegionId = P.newRegionId();
    if (placeRegion(P, *P.function(Candidate), Reps, RegionId, R, Diags)) {
      R.PolicyIds.push_back(PolicyId);
      Regions.push_back(R);
    }
  };

  for (const FreshPolicy &Pol : PS.Fresh)
    Place(policyItems(Pol, TA), Pol.Id, "Fresh(" + Pol.VarName + ")");
  for (const ConsistentPolicy &Pol : PS.Consistent)
    Place(policyItems(Pol, TA), Pol.Id,
          "consistent set " + std::to_string(Pol.SetId));
  return Regions;
}
