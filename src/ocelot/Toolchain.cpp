//===- Toolchain.cpp - Thread-safe compilation API --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/Toolchain.h"

#include "telemetry/MetricsRegistry.h"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

using namespace ocelot;

namespace {

/// The process-wide artifact cache behind Toolchain::compileCached. The
/// key is the full source text plus every CompileOptions field, so two
/// compiles share an entry exactly when the pipeline would produce the
/// same artifact. Artifacts are immutable shared handles, so handing the
/// same Compilation to every caller is safe by construction.
struct ArtifactCache {
  std::mutex Mu;
  std::unordered_map<std::string, Compilation> Entries;
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  static ArtifactCache &instance() {
    static ArtifactCache C;
    return C;
  }
};

/// Canonical cache key: the options fields are prefixed so a source text
/// can never collide with another source compiled under other options.
std::string cacheKey(const SourceRef &Src, const CompileOptions &Opts) {
  std::string Key;
  Key.reserve(Src.Text.size() + 32);
  Key += static_cast<char>('0' + static_cast<int>(Opts.Model));
  Key += Opts.Verify ? 'v' : '-';
  Key += Opts.SelfCheck ? 's' : '-';
  Key += static_cast<char>('0' + static_cast<int>(Opts.Fusion));
  // Bundles are immutable once loaded, so pointer identity is a sound
  // (conservative) key: re-loading the same file gets a fresh entry, but
  // one loaded bundle shared across a sweep caches perfectly.
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%p",
                static_cast<const void *>(Opts.Pgo.get()));
  Key += Buf;
  Key += '\x1f';
  Key += Src.Text;
  return Key;
}

} // namespace

std::string Status::summary() const {
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Error)
      return D.Message;
  return "";
}

std::string Status::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += D.str() + "\n";
  return Out;
}

bool Status::contains(std::string_view Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

Compilation Toolchain::compile(const SourceRef &Src,
                               const CompileOptions &Opts) const {
  // The pipeline itself has no shared state: every invocation works on its
  // own DiagnosticEngine and freshly built IR, which is what makes this
  // entry point safe to call from many threads at once.
  auto Start = std::chrono::steady_clock::now();
  DiagnosticEngine Diags;
  CompileResult R = detail::runCompilePipeline(std::string(Src.Text), Opts,
                                               Diags);
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
  MetricsRegistry &M = MetricsRegistry::global();
  M.add("toolchain.compile.count");
  M.observe("toolchain.compile.wall_ms", WallMs);
  Compilation C;
  if (!R.Ok) {
    C.S = Status::failure(Diags.diagnostics());
    return C;
  }

  auto State = std::make_shared<CompiledArtifact::State>();
  State->Prog = std::move(R.Prog);
  State->Policies = std::move(R.Policies);
  State->InferredRegions = std::move(R.InferredRegions);
  State->Regions = std::move(R.Regions);
  State->Monitor = std::move(R.Monitor);
  // Precompute the flat execution form once; every Simulation built from
  // this artifact shares it read-only.
  State->Image = ExecutableImage::build(*State->Prog, &State->Regions,
                                        &State->Monitor, Opts.Fusion,
                                        Opts.Pgo.get());
  State->Effort = R.Effort;
  State->Model = Opts.Model;
  State->PlacementValid = R.PlacementValid;

  C.S = Status::success(Diags.diagnostics());
  C.A = CompiledArtifact(
      std::shared_ptr<const CompiledArtifact::State>(std::move(State)));
  return C;
}

Compilation Toolchain::compileCached(const SourceRef &Src,
                                     const CompileOptions &Opts) const {
  ArtifactCache &Cache = ArtifactCache::instance();
  std::string Key = cacheKey(Src, Opts);
  {
    std::lock_guard<std::mutex> Lock(Cache.Mu);
    auto It = Cache.Entries.find(Key);
    if (It != Cache.Entries.end()) {
      ++Cache.Hits;
      MetricsRegistry::global().add("toolchain.cache.hits");
      return It->second;
    }
    ++Cache.Misses;
    MetricsRegistry::global().add("toolchain.cache.misses");
  }

  // Compile outside the lock: the pipeline is the expensive part, and
  // holding the mutex across it would serialize every thread's misses.
  Compilation C = compile(Src, Opts);
  if (!C.ok())
    return C; // Failures are never cached; diagnostics stay per-call.

  std::lock_guard<std::mutex> Lock(Cache.Mu);
  // First insertion wins; a racing thread that also missed adopts the
  // winner so all callers share one artifact.
  auto [It, Inserted] = Cache.Entries.emplace(std::move(Key), std::move(C));
  return It->second;
}

ToolchainCacheStats Toolchain::cacheStats() {
  ArtifactCache &Cache = ArtifactCache::instance();
  std::lock_guard<std::mutex> Lock(Cache.Mu);
  ToolchainCacheStats S;
  S.Hits = Cache.Hits;
  S.Misses = Cache.Misses;
  S.Entries = Cache.Entries.size();
  return S;
}

void Toolchain::clearCache() {
  ArtifactCache &Cache = ArtifactCache::instance();
  std::lock_guard<std::mutex> Lock(Cache.Mu);
  Cache.Entries.clear();
  Cache.Hits = Cache.Misses = 0;
}
