//===- Toolchain.cpp - Thread-safe compilation API --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/Toolchain.h"

using namespace ocelot;

std::string Status::summary() const {
  for (const Diagnostic &D : Diags)
    if (D.Kind == DiagKind::Error)
      return D.Message;
  return "";
}

std::string Status::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags)
    Out += D.str() + "\n";
  return Out;
}

bool Status::contains(std::string_view Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

Compilation Toolchain::compile(const SourceRef &Src,
                               const CompileOptions &Opts) const {
  // The pipeline itself has no shared state: every invocation works on its
  // own DiagnosticEngine and freshly built IR, which is what makes this
  // entry point safe to call from many threads at once.
  DiagnosticEngine Diags;
  CompileResult R = detail::runCompilePipeline(std::string(Src.Text), Opts,
                                               Diags);
  Compilation C;
  if (!R.Ok) {
    C.S = Status::failure(Diags.diagnostics());
    return C;
  }

  auto State = std::make_shared<CompiledArtifact::State>();
  State->Prog = std::move(R.Prog);
  State->Policies = std::move(R.Policies);
  State->InferredRegions = std::move(R.InferredRegions);
  State->Regions = std::move(R.Regions);
  State->Monitor = std::move(R.Monitor);
  // Precompute the flat execution form once; every Simulation built from
  // this artifact shares it read-only.
  State->Image =
      ExecutableImage::build(*State->Prog, &State->Regions, &State->Monitor);
  State->Effort = R.Effort;
  State->Model = Opts.Model;
  State->PlacementValid = R.PlacementValid;

  C.S = Status::success(Diags.diagnostics());
  C.A = CompiledArtifact(
      std::shared_ptr<const CompiledArtifact::State>(std::move(State)));
  return C;
}
