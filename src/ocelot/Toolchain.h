//===- Toolchain.h - Thread-safe compilation API ----------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public, thread-safe entry point to the Ocelot toolchain.
///
/// `Toolchain::compile` runs the Fig. 3 pipeline and returns a
/// `Compilation`: a structured `Status` (success flag + full diagnostics)
/// and, on success, a `CompiledArtifact` — an immutable, const-correct
/// snapshot of everything the compiler produced (program, policies, region
/// metadata, monitor plan, effort stats). Artifacts are cheap shared
/// handles: copying one shares the underlying state, and because that state
/// is never mutated after construction, one artifact can safely back any
/// number of concurrent `Simulation`s (src/runtime/Simulation.h) or
/// parallel sweep cells (src/harness/SweepRunner.h).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_OCELOT_TOOLCHAIN_H
#define OCELOT_OCELOT_TOOLCHAIN_H

#include "ocelot/Compiler.h"
#include "runtime/ExecutableImage.h"

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ocelot {

/// A source buffer handed to the toolchain. Implicitly constructible from
/// anything string-like; the text is only borrowed for the duration of the
/// compile() call.
struct SourceRef {
  std::string_view Text;

  SourceRef(std::string_view Text) : Text(Text) {}
  SourceRef(const char *Text) : Text(Text) {}
  SourceRef(const std::string &Text) : Text(Text) {}
};

/// Structured outcome report: a success flag plus every diagnostic the
/// pipeline emitted (warnings are present even on success). Replaces the
/// bare `Ok` flag + out-param `DiagnosticEngine` of the legacy API.
class Status {
public:
  Status() = default;

  static Status success(std::vector<Diagnostic> Diags = {}) {
    return Status(true, std::move(Diags));
  }
  static Status failure(std::vector<Diagnostic> Diags) {
    return Status(false, std::move(Diags));
  }

  bool ok() const { return Ok; }
  explicit operator bool() const { return Ok; }

  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// The first error message (empty on success) — a one-line summary for
  /// callers that do not want to render the full list.
  std::string summary() const;

  /// Renders every diagnostic, one per line.
  std::string str() const;

  /// \returns true if any diagnostic message contains \p Needle.
  bool contains(std::string_view Needle) const;

private:
  Status(bool Ok, std::vector<Diagnostic> Diags)
      : Ok(Ok), Diags(std::move(Diags)) {}

  bool Ok = false;
  std::vector<Diagnostic> Diags;
};

/// An immutable compiled program with all compiler-derived metadata.
/// A cheap value type: copies share the underlying const state, so an
/// artifact may be handed to any number of threads at once.
class CompiledArtifact {
  struct State; // Defined in the private section below.

public:
  /// Empty handle; `explicit operator bool` distinguishes it.
  CompiledArtifact() = default;

  explicit operator bool() const { return S != nullptr; }

  // Accessors require a non-empty handle: check Compilation::ok() (or this
  // artifact's operator bool) before use.
  const Program &program() const { return *state().Prog; }
  const PolicySet &policies() const { return state().Policies; }
  const std::vector<InferredRegion> &inferredRegions() const {
    return state().InferredRegions;
  }
  /// All regions with WAR/EMW/omega sets.
  const std::vector<RegionInfo> &regions() const { return state().Regions; }
  const MonitorPlan &monitorPlan() const { return state().Monitor; }
  /// The flat, precomputed execution form (linearized code, resolved
  /// targets, folded costs, monitor/region side tables). Built once at
  /// compile time; every Simulation of this artifact shares it.
  const ExecutableImage &image() const { return *state().Image; }
  std::shared_ptr<const ExecutableImage> imagePtr() const {
    return state().Image;
  }
  const EffortStats &effort() const { return state().Effort; }
  ExecModel model() const { return state().Model; }
  /// CheckOnly (and self-checked Ocelot) builds: whether the regions
  /// enforce all policies.
  bool placementValid() const { return state().PlacementValid; }

private:
  friend class Toolchain;

  const State &state() const {
    assert(S && "accessing an empty CompiledArtifact (failed compile?)");
    return *S;
  }

  struct State {
    std::unique_ptr<const Program> Prog;
    PolicySet Policies;
    std::vector<InferredRegion> InferredRegions;
    std::vector<RegionInfo> Regions;
    MonitorPlan Monitor;
    std::shared_ptr<const ExecutableImage> Image;
    EffortStats Effort;
    ExecModel Model = ExecModel::Ocelot;
    bool PlacementValid = false;
  };

  explicit CompiledArtifact(std::shared_ptr<const State> S)
      : S(std::move(S)) {}

  std::shared_ptr<const State> S;
};

/// The result of one Toolchain::compile call: a Status either way, and a
/// non-empty artifact exactly when the status is ok.
class Compilation {
public:
  bool ok() const { return S.ok(); }
  explicit operator bool() const { return ok(); }

  const Status &status() const { return S; }
  const CompiledArtifact &artifact() const { return A; }

private:
  friend class Toolchain;
  Status S;
  CompiledArtifact A;
};

/// Counters for the process-wide compiled-artifact cache (see
/// Toolchain::compileCached).
struct ToolchainCacheStats {
  uint64_t Hits = 0;   ///< compileCached calls served from the cache.
  uint64_t Misses = 0; ///< compileCached calls that ran the pipeline.
  size_t Entries = 0;  ///< Distinct (source, options) pairs cached.
};

/// The end-to-end compiler (paper Fig. 3) behind a thread-safe facade: a
/// Toolchain holds only immutable default options, so any number of threads
/// may call compile() on one instance concurrently.
class Toolchain {
public:
  Toolchain() = default;
  explicit Toolchain(CompileOptions Defaults) : Defaults(Defaults) {}

  Compilation compile(const SourceRef &Src) const {
    return compile(Src, Defaults);
  }
  Compilation compile(const SourceRef &Src, const CompileOptions &Opts) const;

  /// Like compile(), but memoized in a process-wide thread-safe cache
  /// keyed by (source text, CompileOptions). Fleet shards and repeated
  /// sweep resumes hit the same handful of (benchmark, model) pairs over
  /// and over; with the cache each distinct pair compiles exactly once
  /// per process and every caller shares one immutable artifact. Only
  /// successful compilations are cached (failures re-run the pipeline so
  /// their diagnostics stay fresh). When two threads miss on the same key
  /// at once, both compile but the first insertion wins and both callers
  /// receive the winning artifact — so sharing still holds.
  Compilation compileCached(const SourceRef &Src) const {
    return compileCached(Src, Defaults);
  }
  Compilation compileCached(const SourceRef &Src,
                            const CompileOptions &Opts) const;

  /// Snapshot of the process-wide cache counters (tests, diagnostics).
  static ToolchainCacheStats cacheStats();

  /// Drops every cached artifact and zeroes the counters (tests).
  static void clearCache();

  const CompileOptions &defaults() const { return Defaults; }

private:
  CompileOptions Defaults;
};

} // namespace ocelot

#endif // OCELOT_OCELOT_TOOLCHAIN_H
