//===- PolicyBuilder.cpp - Annotation to policy mapping ------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/PolicyBuilder.h"

#include <algorithm>
#include <map>

using namespace ocelot;

namespace {

/// All instructions in \p F using register \p Reg, excluding \p ExcludeLabel
/// (the annotation marker itself). Conditional branches whose condition is
/// pure dataflow from \p Reg also count: the paper's fresh-use region
/// extends through the branch into the join (Fig. 2/3 — the alarm decision
/// is exactly what freshness protects). Copies bound to other variables are
/// not uses (checkUse is over free variables of expressions).
std::vector<InstrRef> collectUses(const Function &F, int Reg,
                                  uint32_t ExcludeLabel) {
  // Registers derived from Reg through pure dataflow ops.
  std::set<int> Derived = {Reg};
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int B = 0; B < F.numBlocks(); ++B)
      for (const Instruction &I : F.block(B)->instructions()) {
        if (I.Dst < 0 || Derived.count(I.Dst))
          continue;
        if (I.Op != Opcode::Bin && I.Op != Opcode::Un && I.Op != Opcode::Mov)
          continue;
        std::vector<int> Regs;
        I.collectUsedRegs(Regs);
        for (int U : Regs)
          if (Derived.count(U)) {
            Derived.insert(I.Dst);
            Changed = true;
            break;
          }
      }
  }

  std::vector<InstrRef> Uses;
  std::vector<int> Regs;
  for (int B = 0; B < F.numBlocks(); ++B)
    for (const Instruction &I : F.block(B)->instructions()) {
      if (I.Label == ExcludeLabel)
        continue;
      Regs.clear();
      I.collectUsedRegs(Regs);
      bool Direct = std::find(Regs.begin(), Regs.end(), Reg) != Regs.end();
      bool ControlUse = I.Op == Opcode::CondBr && I.A.isReg() &&
                        Derived.count(I.A.Reg);
      if (Direct || ControlUse)
        Uses.push_back(InstrRef(F.id(), I.Label));
    }
  return Uses;
}

std::vector<ProvChain> sortedChains(const std::set<ProvChain> &Chains) {
  return std::vector<ProvChain>(Chains.begin(), Chains.end());
}

} // namespace

PolicySet ocelot::buildPolicies(const Program &P, const CallGraph &CG,
                                const TaintAnalysis &TA,
                                DiagnosticEngine &Diags) {
  (void)CG;
  PolicySet PS;
  // SetId -> partially built consistent policy.
  std::map<int, ConsistentPolicy> Consistent;
  // SetId -> (per-decl self-containment, decl functions).
  std::map<int, bool> SetSelfContained;
  std::map<int, std::vector<std::pair<int, TokenSet>>> SetDeclTaints;

  int NextId = 0;
  for (int FI = 0; FI < P.numFunctions(); ++FI) {
    const Function &F = *P.function(FI);
    const FunctionTaint &FT = TA.functionTaint(FI);
    for (int B = 0; B < F.numBlocks(); ++B) {
      for (const Instruction &I : F.block(B)->instructions()) {
        if (!I.isAnnotation())
          continue;
        TokenSet Taint;
        auto It = FT.AnnotTaint.find(I.Label);
        if (It != FT.AnnotTaint.end())
          Taint = It->second;

        if (I.Op == Opcode::Fresh) {
          if (Taint.empty()) {
            Diags.warning(I.Loc, "Fresh(" + I.VarName +
                                     ") depends on no input operations; "
                                     "the annotation has no effect");
            continue;
          }
          FreshPolicy Pol;
          Pol.Id = NextId++;
          Pol.Decl = InstrRef(FI, I.Label);
          Pol.VarName = I.VarName;
          Pol.DeclFunc = FI;
          if (TaintAnalysis::isSelfContained(Taint)) {
            Pol.RootFunc = FI;
            Pol.Inputs = sortedChains(TA.resolveRelative(Taint));
          } else {
            Pol.RootFunc = P.mainFunction();
            Pol.Inputs = sortedChains(TA.resolveAbsolute(FI, Taint));
          }
          if (I.A.isReg())
            Pol.Uses = collectUses(F, I.A.Reg, I.Label);
          PS.Fresh.push_back(std::move(Pol));
          continue;
        }

        // Consistent marker: accumulate into its set.
        ConsistentPolicy &Pol = Consistent[I.SetId];
        if (Pol.SetId < 0) {
          Pol.SetId = I.SetId;
          SetSelfContained[I.SetId] = true;
        }
        Pol.Decls.push_back(InstrRef(FI, I.Label));
        Pol.VarNames.push_back(I.VarName);
        SetSelfContained[I.SetId] =
            SetSelfContained[I.SetId] && TaintAnalysis::isSelfContained(Taint);
        SetDeclTaints[I.SetId].push_back({FI, Taint});
      }
    }
  }

  for (auto &[SetId, Pol] : Consistent) {
    // A set rooted in a single function with self-contained taint keeps
    // relative chains; otherwise expand to absolute.
    bool SameFunc = true;
    for (const InstrRef &D : Pol.Decls)
      if (D.Func != Pol.Decls[0].Func)
        SameFunc = false;
    std::set<ProvChain> Inputs;
    if (SameFunc && SetSelfContained[SetId]) {
      Pol.RootFunc = Pol.Decls[0].Func;
      for (const auto &[Func, Taint] : SetDeclTaints[SetId]) {
        std::set<ProvChain> C = TA.resolveRelative(Taint);
        Inputs.insert(C.begin(), C.end());
      }
    } else {
      Pol.RootFunc = P.mainFunction();
      for (const auto &[Func, Taint] : SetDeclTaints[SetId]) {
        std::set<ProvChain> C = TA.resolveAbsolute(Func, Taint);
        Inputs.insert(C.begin(), C.end());
      }
    }
    if (Inputs.empty()) {
      Diags.warning({}, "consistent set " + std::to_string(SetId) +
                            " depends on no input operations; dropped");
      continue;
    }
    if (Pol.Decls.size() < 2 && Inputs.size() < 2)
      Diags.warning({}, "consistent set " + std::to_string(SetId) +
                            " has a single member and a single input; "
                            "consistency is trivial");
    Pol.Id = NextId++;
    Pol.Inputs = sortedChains(Inputs);
    PS.Consistent.push_back(std::move(Pol));
  }
  return PS;
}
