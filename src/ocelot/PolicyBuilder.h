//===- PolicyBuilder.h - Annotation to policy mapping -----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the policy declarations (the paper's PD) from the Fresh /
/// Consistent markers in a program, using the taint analysis's
/// input-dependence map with provenance (paper §6.1: "the algorithm starts
/// with empty policy declarations and adds the operations to the policies").
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_OCELOT_POLICYBUILDER_H
#define OCELOT_OCELOT_POLICYBUILDER_H

#include "ocelot/Policy.h"
#include "support/Diagnostics.h"

namespace ocelot {

/// Constructs all policies for \p P. Warnings are reported for annotations
/// that depend on no inputs (such policies are dropped — there is nothing
/// to enforce).
PolicySet buildPolicies(const Program &P, const CallGraph &CG,
                        const TaintAnalysis &TA, DiagnosticEngine &Diags);

} // namespace ocelot

#endif // OCELOT_OCELOT_POLICYBUILDER_H
