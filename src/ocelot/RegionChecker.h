//===- RegionChecker.h - Policy enforcement checking ------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §5.2 sanity checks, recast over the IR:
///
///  * checkPolicyDeclarations — the summary / policy-declaration judgment:
///    a provided policy set must cover everything the taint analysis
///    derives (every input an annotated variable depends on, every use of a
///    fresh variable) — the Let-fresh / Call-nr / checkUse rules.
///
///  * checkRegionPlacement — the atomic-region judgment: every policy's
///    operations (hoisted through their provenance chains) must fall inside
///    a single atomic region, in the candidate function or any ancestor on
///    the common call path. Region membership is dominance-based: the
///    region start dominates and the region end post-dominates the
///    instruction.
///
/// Together these implement Theorem 1's premises; §8's "checker mode" runs
/// them over a program whose regions were placed manually.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_OCELOT_REGIONCHECKER_H
#define OCELOT_OCELOT_REGIONCHECKER_H

#include "ocelot/Policy.h"
#include "support/Diagnostics.h"

namespace ocelot {

/// Checks that \p Provided covers \p Derived: same policies, with Provided's
/// input and use lists supersets of Derived's. \returns true when covered.
bool checkPolicyDeclarations(const Program &P, const PolicySet &Derived,
                             const PolicySet &Provided,
                             DiagnosticEngine &Diags);

/// Checks that every policy in \p PS is enforced by some atomic region
/// already present in \p P. \returns true when all policies are enforced.
bool checkRegionPlacement(const Program &P, const TaintAnalysis &TA,
                          const PolicySet &PS, DiagnosticEngine &Diags);

} // namespace ocelot

#endif // OCELOT_OCELOT_REGIONCHECKER_H
