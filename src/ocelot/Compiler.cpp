//===- Compiler.cpp - Ocelot compilation pipeline ------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ocelot/Compiler.h"

#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/IRVerifier.h"
#include "ocelot/PolicyBuilder.h"
#include "ocelot/RegionChecker.h"

#include <cassert>

using namespace ocelot;

const char *ocelot::execModelName(ExecModel M) {
  switch (M) {
  case ExecModel::JitOnly:
    return "jit-only";
  case ExecModel::AtomicsOnly:
    return "atomics-only";
  case ExecModel::Ocelot:
    return "ocelot";
  case ExecModel::CheckOnly:
    return "check-only";
  }
  return "?";
}

namespace {

void stripRegions(Program &P) {
  for (int F = 0; F < P.numFunctions(); ++F) {
    Function *Fn = P.function(F);
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      auto &Instrs = Fn->block(B)->instructions();
      std::erase_if(Instrs,
                    [](const Instruction &I) { return I.isRegionBound(); });
    }
  }
}

int countSourceLines(const std::string &Source) {
  int Lines = 0;
  bool NonBlank = false;
  for (char C : Source) {
    if (C == '\n') {
      if (NonBlank)
        ++Lines;
      NonBlank = false;
    } else if (C != ' ' && C != '\t' && C != '\r') {
      NonBlank = true;
    }
  }
  if (NonBlank)
    ++Lines;
  return Lines;
}

bool containsLoop(const std::vector<StmtPtr> &Stmts) {
  for (const StmtPtr &S : Stmts) {
    if (S->Kind == StmtKind::For)
      return true;
    if (containsLoop(S->Then) || containsLoop(S->Else) ||
        containsLoop(S->Body))
      return true;
  }
  return false;
}

void countStmts(const std::vector<StmtPtr> &Stmts, EffortStats &E) {
  for (const StmtPtr &S : Stmts) {
    switch (S->Kind) {
    case StmtKind::Let:
      if (S->IsFresh)
        ++E.FreshAnnots;
      if (S->IsConsistent)
        ++E.ConsistentAnnots;
      break;
    case StmtKind::Annot:
      if (S->AnnotFresh && S->AnnotConsistent)
        ++E.FreshConsistentAnnots;
      else if (S->AnnotFresh)
        ++E.FreshAnnots;
      else
        ++E.ConsistentAnnots;
      break;
    case StmtKind::Atomic:
      ++E.ManualRegions;
      if (containsLoop(S->Body))
        ++E.ManualRegionsWithLoops;
      break;
    default:
      break;
    }
    countStmts(S->Then, E);
    countStmts(S->Else, E);
    countStmts(S->Body, E);
  }
}

EffortStats computeEffort(const std::string &Source, const Module &M) {
  EffortStats E;
  E.SourceLines = countSourceLines(Source);
  for (const IoDecl &Io : M.Ios)
    E.IoDeclNames += static_cast<int>(Io.Names.size());
  for (const FnDecl &F : M.Functions)
    countStmts(F.Body, E);
  return E;
}

int sensorOfChain(const Program &P, const ProvChain &Chain) {
  assert(!Chain.empty());
  const InstrRef &Last = Chain.back();
  const Function *F = P.function(Last.Func);
  const Instruction *I = F->instrAt(F->findLabel(Last.Label));
  assert(I && I->Op == Opcode::Input && "chains must end at an input");
  return I->SensorId;
}

MonitorPlan buildMonitorPlan(const Program &P, const TaintAnalysis &TA,
                             const PolicySet &PS) {
  MonitorPlan Plan;
  for (const FreshPolicy &Pol : PS.Fresh) {
    std::set<InstrRef> InputOps;
    for (const ProvChain &C : Pol.Inputs)
      InputOps.insert(C.back());
    const Function *F = P.function(Pol.DeclFunc);
    const Instruction *Marker = F->instrAt(F->findLabel(Pol.Decl.Label));
    assert(Marker && Marker->Op == Opcode::Fresh);
    for (const InstrRef &Use : Pol.Uses) {
      Plan.UseChecks[Use].insert(InputOps.begin(), InputOps.end());
      if (Marker->A.isReg())
        Plan.UseRegs[Use].insert(Marker->A.Reg);
    }
  }
  for (const ConsistentPolicy &Pol : PS.Consistent) {
    ConsistentSetPlan SP;
    SP.SetId = Pol.SetId;
    for (const ProvChain &C : Pol.Inputs) {
      // Expand rooted chains to absolute so the runtime can match them
      // against its call stack.
      if (Pol.RootFunc == P.mainFunction()) {
        SP.Members.push_back(C);
        SP.MemberSensors.push_back(sensorOfChain(P, C));
      } else {
        for (const ProvChain &Pi : TA.contexts(Pol.RootFunc)) {
          ProvChain Abs = Pi;
          Abs.insert(Abs.end(), C.begin(), C.end());
          SP.Members.push_back(std::move(Abs));
          SP.MemberSensors.push_back(sensorOfChain(P, C));
        }
      }
    }
    Plan.Sets.push_back(std::move(SP));
  }
  return Plan;
}

} // namespace

CompileResult ocelot::detail::runCompilePipeline(const std::string &Source,
                                                 const CompileOptions &Opts,
                                                 DiagnosticEngine &Diags) {
  CompileResult R;

  std::unique_ptr<Module> M = Parser::parseSource(Source, Diags);
  if (Diags.hasErrors())
    return R;
  if (!checkModule(*M, Diags))
    return R;
  R.Effort = computeEffort(Source, *M);

  R.Prog = lowerModule(*M, Diags);
  if (!R.Prog)
    return R;
  if (Opts.Verify && !verifyProgram(*R.Prog, Diags))
    return R;

  CallGraph CG(*R.Prog);
  if (CG.hasCycle()) {
    Diags.error({}, "call graph is cyclic after lowering");
    return R;
  }
  TaintAnalysis TA(*R.Prog, CG);
  R.Policies = buildPolicies(*R.Prog, CG, TA, Diags);
  if (Diags.hasErrors())
    return R;

  switch (Opts.Model) {
  case ExecModel::JitOnly:
    stripRegions(*R.Prog);
    break;
  case ExecModel::AtomicsOnly:
    break; // Manual regions stay; nothing inferred.
  case ExecModel::Ocelot:
    R.InferredRegions = inferAtomicRegions(*R.Prog, TA, R.Policies, Diags);
    if (Diags.hasErrors())
      return R;
    break;
  case ExecModel::CheckOnly: {
    DiagnosticEngine CheckDiags;
    R.PlacementValid =
        checkRegionPlacement(*R.Prog, TA, R.Policies, CheckDiags);
    for (const Diagnostic &D : CheckDiags.diagnostics())
      Diags.warning(D.Loc, D.Message);
    break;
  }
  }

  if (Opts.Verify && !verifyProgram(*R.Prog, Diags))
    return R;

  if (Opts.Model == ExecModel::Ocelot && Opts.SelfCheck) {
    if (!checkRegionPlacement(*R.Prog, TA, R.Policies, Diags))
      return R;
    R.PlacementValid = true;
  }

  WarAnalysis WA(*R.Prog, CG);
  R.Regions = WA.regions();
  R.Monitor = buildMonitorPlan(*R.Prog, TA, R.Policies);
  R.Ok = true;
  return R;
}
