//===- Compiler.h - Ocelot compilation pipeline -----------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Ocelot toolchain (paper Fig. 3): parse and check OCL,
/// lower to IR, run the taint analysis, map annotations to policies, then —
/// depending on the execution model — infer atomic regions (Ocelot), keep
/// only manual regions (Atomics-only), strip all regions (JIT-only), or
/// validate existing placement (checker mode, §8). The result carries the
/// policies, region metadata with undo-log omega sets, and the violation
/// monitor's instrumentation plan.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_OCELOT_COMPILER_H
#define OCELOT_OCELOT_COMPILER_H

#include "analysis/WarAnalysis.h"
#include "ocelot/Policy.h"
#include "ocelot/RegionInference.h"
#include "runtime/ExecutableImage.h"
#include "runtime/MonitorPlan.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace ocelot {

struct PgoBundle; // telemetry/Profile.h

/// Execution models compared in the paper's evaluation (§7.2).
enum class ExecModel {
  JitOnly,     ///< JIT checkpointing only; all regions stripped. Fast but
               ///< violates freshness/consistency (the paper's baseline).
  AtomicsOnly, ///< Manually placed atomic regions only; no inference.
  Ocelot,      ///< JIT + inferred regions from annotations (the paper).
  CheckOnly,   ///< Validate existing (manual) regions against annotations.
};

const char *execModelName(ExecModel M);

struct CompileOptions {
  ExecModel Model = ExecModel::Ocelot;
  /// Run the IR verifier before and after transformation.
  bool Verify = true;
  /// For Ocelot builds: self-validate the inferred placement with the
  /// region checker (Theorem 1's premise).
  bool SelfCheck = true;
  /// Threaded-view fusion tier for the built ExecutableImage: Chains
  /// (the default — superblock chains on top of the pair table), Pairs
  /// (the pair table only) or Off (plain dispatch codes).
  FusionMode Fusion = FusionMode::Chains;
  /// Optional execution profile consumed by the superblock-chain
  /// selector: when set and an entry matches the built image's
  /// fingerprint, the chain pass weighs slots by measured execution
  /// counts instead of the static loop-depth estimator. A bundle with
  /// no matching entry falls back to the static estimator silently at
  /// this level (ocelotc turns that into a hard error before calling).
  std::shared_ptr<const PgoBundle> Pgo;
};

/// Source-derived programmer-effort statistics (Tables 3/4).
struct EffortStats {
  int SourceLines = 0;       ///< Non-empty, non-comment source lines.
  int IoDeclNames = 0;       ///< Input functions declared.
  int FreshAnnots = 0;       ///< Fresh(...) + let fresh.
  int ConsistentAnnots = 0;  ///< Consistent(...) + let consistent.
  int FreshConsistentAnnots = 0; ///< FreshConsistent(...) markers.
  int ManualRegions = 0;     ///< atomic { } blocks in the source.
  int ManualRegionsWithLoops = 0; ///< atomic blocks containing a loop
                                  ///< (Samoyed's scaling/fallback cases).
};

struct CompileResult {
  bool Ok = false;
  std::unique_ptr<Program> Prog;
  PolicySet Policies;
  std::vector<InferredRegion> InferredRegions;
  std::vector<RegionInfo> Regions; ///< All regions with WAR/EMW/omega sets.
  MonitorPlan Monitor;
  EffortStats Effort;
  /// CheckOnly: whether existing regions enforce all policies.
  bool PlacementValid = false;
};

namespace detail {
/// The raw Fig. 3 pipeline behind `Toolchain::compile`. Not part of the
/// public API: it hands out a mutable Program, which the immutable-artifact
/// design deliberately hides (white-box tests use it for program surgery).
CompileResult runCompilePipeline(const std::string &Source,
                                 const CompileOptions &Opts,
                                 DiagnosticEngine &Diags);
} // namespace detail

} // namespace ocelot

#endif // OCELOT_OCELOT_COMPILER_H
