//===- Policy.h - Freshness and consistency policies ------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Policies record an annotation and the instructions that must execute
/// atomically to enforce it (paper §5.1, Fig. 5):
///
///   pol ::= fresh(decl : (f,l), inputs : rho-list, uses : (f1,l1)-list)
///         | consistent(decls : (f1,l1)-list, inputs : rho-list)
///
/// Inputs carry provenance chains. Chains are *rooted*: when every input a
/// policy depends on is reached inside the annotating function's subtree,
/// chains are kept relative to that function (RootFunc), so a region can be
/// placed inside it regardless of how many call sites reach it. When taint
/// escapes above the annotating function (through parameters or globals),
/// chains are expanded to absolute (main-rooted) form.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_OCELOT_POLICY_H
#define OCELOT_OCELOT_POLICY_H

#include "analysis/TaintAnalysis.h"
#include "ir/Instruction.h"

#include <string>
#include <vector>

namespace ocelot {

/// A freshness policy: inputs the annotated variable depends on plus every
/// use of the variable must share one atomic region with the declaration.
struct FreshPolicy {
  int Id = -1;
  InstrRef Decl;       ///< The Fresh marker instruction.
  std::string VarName; ///< Source-level variable name (diagnostics).
  int DeclFunc = -1;   ///< Function containing the marker.
  int RootFunc = -1;   ///< Root of the input chains (DeclFunc or main).
  std::vector<ProvChain> Inputs;
  std::vector<InstrRef> Uses; ///< Instructions in DeclFunc using the var.
};

/// A temporal-consistency policy: every input any member of the set depends
/// on must execute inside one atomic region.
struct ConsistentPolicy {
  int Id = -1;
  int SetId = -1;
  std::vector<InstrRef> Decls; ///< Consistent markers in the set.
  std::vector<std::string> VarNames;
  int RootFunc = -1;
  std::vector<ProvChain> Inputs;
};

/// All policies of a program (the paper's PD).
struct PolicySet {
  std::vector<FreshPolicy> Fresh;
  std::vector<ConsistentPolicy> Consistent;

  bool empty() const { return Fresh.empty() && Consistent.empty(); }
  size_t size() const { return Fresh.size() + Consistent.size(); }
};

/// Renders a provenance chain as "f1@l1 :: f2@l2 :: ..." for diagnostics.
std::string chainToString(const Program &P, const ProvChain &Chain);

} // namespace ocelot

#endif // OCELOT_OCELOT_POLICY_H
