//===- RegionInference.h - Atomic region inference --------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ocelot's region inference (paper Algorithm 1): for each policy,
///
///   1. gather the policy's *items* — input provenance chains, the
///      declaration(s), and (for freshness) every use;
///   2. findCandidate: the deepest function whose subtree contains every
///      item (the last function on the longest common prefix of the items'
///      call paths);
///   3. hoist each item to its representative instruction in the candidate
///      function by walking its provenance chain (the paper's
///      "call ∈ set" caller walk, lines 7-16);
///   4. take the closest common dominator / post-dominator of the
///      representative blocks (LLVM's passes in the paper, lines 17-18),
///      widened until the start dominates the end and the end
///      post-dominates the start so the region is single-entry/single-exit;
///   5. truncate to the latest dominating / earliest post-dominating
///      instruction and insert atomic_start / atomic_end (lines 19-20).
///
/// Nested or overlapping results are legal; the runtime flattens them to the
/// outermost extent (paper §3.1, Appendix H).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_OCELOT_REGIONINFERENCE_H
#define OCELOT_OCELOT_REGIONINFERENCE_H

#include "ocelot/Policy.h"
#include "support/Diagnostics.h"

#include <vector>

namespace ocelot {

/// Where an inferred region was placed and which policies it enforces (the
/// paper's policy map PM).
struct InferredRegion {
  int RegionId = -1;
  int Func = -1;
  uint32_t StartLabel = 0;
  uint32_t EndLabel = 0;
  std::vector<int> PolicyIds;
};

/// Builds the item list of a policy: every chain is rooted at the policy's
/// RootFunc and ends at the instruction that must be atomic.
std::vector<ProvChain> policyItems(const FreshPolicy &Pol,
                                   const TaintAnalysis &TA);
std::vector<ProvChain> policyItems(const ConsistentPolicy &Pol,
                                   const TaintAnalysis &TA);

/// The deepest function containing every item (paper's findCandidate).
/// \returns -1 for an empty item list.
int findCandidateFunction(const std::vector<ProvChain> &Items);

/// Each item's representative instruction at function \p Func: the chain
/// entry located in \p Func (the item itself, or the call site through
/// which the chain descends).
std::vector<InstrRef> representativesAt(const std::vector<ProvChain> &Items,
                                        int Func);

/// Runs inference over every policy, mutating \p P by inserting region
/// bounds. \returns the region placements, or an empty vector (with
/// diagnostics) on failure.
std::vector<InferredRegion> inferAtomicRegions(Program &P,
                                               const TaintAnalysis &TA,
                                               const PolicySet &PS,
                                               DiagnosticEngine &Diags);

} // namespace ocelot

#endif // OCELOT_OCELOT_REGIONINFERENCE_H
