//===- MetricsRegistry.cpp - Named counters and histograms -----------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/MetricsRegistry.h"

#include <cinttypes>
#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ocelot {

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry R;
  return R;
}

void MetricsRegistry::add(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters[Name] += Delta;
}

void MetricsRegistry::observe(const std::string &Name, double Value) {
  std::lock_guard<std::mutex> Lock(Mu);
  Summary &S = Summaries[Name];
  if (S.Count == 0) {
    S.Min = S.Max = Value;
  } else {
    if (Value < S.Min)
      S.Min = Value;
    if (Value > S.Max)
      S.Max = Value;
  }
  ++S.Count;
  S.Sum += Value;
}

uint64_t MetricsRegistry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

MetricsRegistry::Summary
MetricsRegistry::summary(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Summaries.find(Name);
  return It == Summaries.end() ? Summary{} : It->second;
}

std::vector<std::pair<std::string, uint64_t>>
MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Counters.begin(), Counters.end()};
}

std::vector<std::pair<std::string, MetricsRegistry::Summary>>
MetricsRegistry::summaries() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Summaries.begin(), Summaries.end()};
}

std::string MetricsRegistry::dumpText() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out;
  char Buf[256];
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%s %" PRIu64 "\n", Name.c_str(), V);
    Out += Buf;
  }
  for (const auto &[Name, S] : Summaries) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s count=%" PRIu64 " sum=%.6g min=%.6g max=%.6g\n",
                  Name.c_str(), S.Count, S.Sum, S.Min, S.Max);
    Out += Buf;
  }
  return Out;
}

std::string MetricsRegistry::dumpJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::string Out = "{\"counters\":{";
  char Buf[256];
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%" PRIu64,
                  First ? "" : ",", Name.c_str(), V);
    Out += Buf;
    First = false;
  }
  Out += "},\"summaries\":{";
  First = true;
  for (const auto &[Name, S] : Summaries) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\"%s\":{\"count\":%" PRIu64
                  ",\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g}",
                  First ? "" : ",", Name.c_str(), S.Count, S.Sum, S.Min,
                  S.Max);
    Out += Buf;
    First = false;
  }
  Out += "}}";
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.clear();
  Summaries.clear();
}

double peakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage Ru;
  if (getrusage(RUSAGE_SELF, &Ru) != 0)
    return 0;
#if defined(__APPLE__)
  return static_cast<double>(Ru.ru_maxrss) / (1024.0 * 1024.0); // bytes
#else
  return static_cast<double>(Ru.ru_maxrss) / 1024.0; // kilobytes
#endif
#else
  return 0;
#endif
}

} // namespace ocelot
