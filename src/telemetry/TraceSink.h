//===- TraceSink.h - Structured run tracing (Chrome trace_event) -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded ring of structured run events — reboots, checkpoints, region
/// enter/commit/retry, monitor checks, violations, sensor reads, energy
/// recharges, and compile start/end — exportable as Chrome `trace_event`
/// JSON that loads in Perfetto / chrome://tracing.
///
/// Two time bases share one timeline:
///
///  * Simulated events carry τ (logical cycles) as their timestamp, so a
///    trace is a timeline of the *device's* life: the gap between a reboot
///    and the next sensor read is recharge time, not host scheduling.
///    Because τ and every event payload are pure functions of the run's
///    seed and configuration, the exported JSON is byte-stable across
///    repeated runs — tests pin this.
///  * Compile events (the only wall-clock ones) go to a separate track
///    (tid 1) in microseconds since sink creation, so toolchain cost never
///    perturbs the simulated timeline.
///
/// The hard invariant of the whole subsystem: a sink only *observes*. It
/// is attached via `RunConfig::Telemetry`; when that pointer is null the
/// engines take no branches beyond one predictable null test per hook
/// site, and results are bitwise identical either way (TelemetryTest pins
/// this too).
///
/// The ring is bounded (default 64Ki events): when full the oldest event
/// is dropped and `dropped()` counts it, so tracing a pathological run can
/// never exhaust memory — you keep the tail of the story.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_TELEMETRY_TRACESINK_H
#define OCELOT_TELEMETRY_TRACESINK_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ocelot {

/// Event taxonomy. One enumerator per hook site; the exporter maps each to
/// a stable Chrome trace name and argument spelling (see TraceSink.cpp).
enum class TraceEventKind : uint8_t {
  Reboot,        ///< Power failed; device restarts. A0 = reboot epoch.
  Checkpoint,    ///< JIT checkpoint charged at reboot. A0 = registers saved.
  RegionEnter,   ///< Atomic region entered. A0 = region id.
  RegionCommit,  ///< Atomic region committed. A0 = region id, A1 = undo entries.
  RegionRetry,   ///< Power failed inside a region; state restored for
                 ///< re-execution. A0 = region id, A1 = aborts so far.
  MonitorCheck,  ///< A freshness/consistency check ran. A0 = site label,
                 ///< A1 = 0 pass / 1 fail.
  Violation,     ///< Monitor recorded a violation. A0 = site label,
                 ///< A1 = set id (-1 for freshness). Detail = kind name.
  SensorRead,    ///< Input executed. A0 = sensor id, A1 = value read.
  EnergyRecharge,///< Off-time drawn across a reboot. A0 = off cycles.
  OracleVerdict, ///< Fusion oracle scored an output. A0 = verdict code
                 ///< (0 fresh / 1 stale / 2 cross-epoch), A1 = fused
                 ///< input-event count. Detail = verdict name.
  CompileStart,  ///< Toolchain compile began (wall clock). Detail = name.
  CompileEnd,    ///< Toolchain compile finished (wall clock). Detail = name.
};

const char *traceEventKindName(TraceEventKind K);

struct TraceEvent {
  TraceEventKind Kind;
  uint64_t Ts = 0; ///< τ for simulated events; µs since sink creation for
                   ///< compile events.
  int64_t A0 = 0;  ///< Kind-specific (see TraceEventKind comments).
  int64_t A1 = 0;
  std::string Detail; ///< Kind-specific; empty for most events.
};

class TraceSink {
public:
  explicit TraceSink(size_t Capacity = 1 << 16);

  // --- Simulated-time hooks (Ts = τ). Called by the engines/monitor. ----
  void reboot(uint64_t Tau, uint64_t Epoch) {
    push({TraceEventKind::Reboot, Tau, static_cast<int64_t>(Epoch), 0, {}});
  }
  void checkpoint(uint64_t Tau, uint64_t RegsSaved) {
    push({TraceEventKind::Checkpoint, Tau, static_cast<int64_t>(RegsSaved), 0,
          {}});
  }
  void regionEnter(uint64_t Tau, int RegionId) {
    push({TraceEventKind::RegionEnter, Tau, RegionId, 0, {}});
  }
  void regionCommit(uint64_t Tau, int RegionId, uint64_t UndoEntries) {
    push({TraceEventKind::RegionCommit, Tau, RegionId,
          static_cast<int64_t>(UndoEntries), {}});
  }
  void regionRetry(uint64_t Tau, int RegionId, uint64_t AbortsSoFar) {
    push({TraceEventKind::RegionRetry, Tau, RegionId,
          static_cast<int64_t>(AbortsSoFar), {}});
  }
  void monitorCheck(uint64_t Tau, uint32_t SiteLabel, bool Failed) {
    push({TraceEventKind::MonitorCheck, Tau, SiteLabel, Failed ? 1 : 0, {}});
  }
  void violation(uint64_t Tau, uint32_t SiteLabel, int SetId,
                 const char *KindName) {
    push({TraceEventKind::Violation, Tau, SiteLabel, SetId, KindName});
  }
  void sensorRead(uint64_t Tau, int Sensor, int64_t Value) {
    push({TraceEventKind::SensorRead, Tau, Sensor, Value, {}});
  }
  void energyRecharge(uint64_t Tau, uint64_t OffCycles) {
    push({TraceEventKind::EnergyRecharge, Tau,
          static_cast<int64_t>(OffCycles), 0, {}});
  }
  void oracleVerdict(uint64_t Tau, int VerdictCode, size_t FusedInputs,
                     const char *VerdictName) {
    push({TraceEventKind::OracleVerdict, Tau, VerdictCode,
          static_cast<int64_t>(FusedInputs), VerdictName});
  }

  // --- Wall-clock hooks (Ts = µs since sink creation, separate track). --
  void compileStart(const std::string &Name);
  void compileEnd(const std::string &Name);

  /// Events currently buffered, oldest first.
  std::vector<TraceEvent> events() const;
  size_t size() const { return Count; }
  size_t dropped() const { return Dropped; }
  void clear();

  /// Serializes the buffered events as Chrome `trace_event` JSON
  /// (`{"traceEvents": [...]}`). Region enter/commit become balanced
  /// "B"/"E" duration pairs (a retry closes the open region; a region
  /// still open at export is closed at the last simulated timestamp);
  /// everything else is an instant or a compile-track duration. The
  /// output is deterministic: it depends only on the buffered events.
  std::string exportChromeJson() const;

  /// exportChromeJson() to \p Path. \returns false and sets \p Error on
  /// I/O failure.
  bool writeChromeJson(const std::string &Path, std::string *Error) const;

private:
  void push(TraceEvent E);
  uint64_t wallMicros() const;

  std::vector<TraceEvent> Ring; ///< Fixed capacity, circular.
  size_t Head = 0;              ///< Index of the oldest event.
  size_t Count = 0;
  size_t Dropped = 0;
  uint64_t WallEpochNs = 0; ///< steady_clock at construction.
};

} // namespace ocelot

#endif // OCELOT_TELEMETRY_TRACESINK_H
