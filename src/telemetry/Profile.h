//===- Profile.h - Per-PC / per-opcode-pair execution profile ---*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-frequency counters filled by the flat and threaded engines
/// when `RunConfig::Profile` is set: how many times each image PC
/// executed, and how often each *PC-adjacent* opcode pair (prev at PC,
/// cur at PC+1) ran back to back. The pair histogram is measured over the
/// image's base opcodes — exactly the data the superinstruction fusion
/// pass in ExecutableImage consumes — so `ocelotc --profile` can say
/// which fusions the current pattern table captures and which hot pairs
/// it misses.
///
/// Cost discipline: one `if (Prof)` test per step in the engines (a
/// never-taken, perfectly predicted branch when profiling is off), and
/// the threaded engine's Hot instantiation excludes profiling entirely —
/// a profiled run takes the non-Hot loop. Profiling never changes
/// simulated results; it only counts.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_TELEMETRY_PROFILE_H
#define OCELOT_TELEMETRY_PROFILE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ocelot {

struct PcProfile {
  /// Executions of each image PC. Sized by prepare().
  std::vector<uint64_t> PcCounts;
  /// Executions of PC-adjacent opcode pair (Prev, Cur) at
  /// [Prev * NumOpcodes + Cur], over base opcodes.
  std::vector<uint64_t> PairCounts;
  uint64_t Steps = 0;
  size_t NumOpcodes = 0;

  /// Sizes the tables for an image of \p NumPcs instructions and an
  /// opcode space of \p NumOps. Idempotent; keeps existing counts when
  /// the sizes already match.
  void prepare(size_t NumPcs, size_t NumOps) {
    if (PcCounts.size() != NumPcs)
      PcCounts.assign(NumPcs, 0);
    if (PairCounts.size() != NumOps * NumOps)
      PairCounts.assign(NumOps * NumOps, 0);
    NumOpcodes = NumOps;
  }

  /// Engine hook: counts one executed step at \p Pc with opcode \p Op;
  /// \p PrevPc / \p PrevOp describe the previously executed step (PrevPc
  /// == ~0u means none, e.g. the first step after a reboot).
  void step(uint32_t Pc, uint16_t Op, uint32_t PrevPc, uint16_t PrevOp) {
    ++Steps;
    if (Pc < PcCounts.size())
      ++PcCounts[Pc];
    if (PrevPc != ~0u && Pc == PrevPc + 1) {
      size_t Idx = static_cast<size_t>(PrevOp) * NumOpcodes + Op;
      if (Idx < PairCounts.size())
        ++PairCounts[Idx];
    }
  }

  void merge(const PcProfile &O) {
    if (PcCounts.size() < O.PcCounts.size())
      PcCounts.resize(O.PcCounts.size(), 0);
    for (size_t I = 0; I < O.PcCounts.size(); ++I)
      PcCounts[I] += O.PcCounts[I];
    if (PairCounts.size() < O.PairCounts.size()) {
      PairCounts.resize(O.PairCounts.size(), 0);
      NumOpcodes = O.NumOpcodes;
    }
    for (size_t I = 0; I < O.PairCounts.size(); ++I)
      PairCounts[I] += O.PairCounts[I];
    Steps += O.Steps;
  }
};

} // namespace ocelot

#endif // OCELOT_TELEMETRY_PROFILE_H
