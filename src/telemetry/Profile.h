//===- Profile.h - Per-PC / per-opcode-pair execution profile ---*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution-frequency counters filled by the flat and threaded engines
/// when `RunConfig::Profile` is set: how many times each image PC
/// executed, and how often each *PC-adjacent* opcode pair (prev at PC,
/// cur at PC+1) ran back to back. The pair histogram is measured over the
/// image's base opcodes — exactly the data the superinstruction fusion
/// pass in ExecutableImage consumes — so `ocelotc --profile` can say
/// which fusions the current pattern table captures and which hot pairs
/// it misses.
///
/// Cost discipline: one `if (Prof)` test per step in the engines (a
/// never-taken, perfectly predicted branch when profiling is off), and
/// the threaded engine's Hot instantiation excludes profiling entirely —
/// a profiled run takes the non-Hot loop. Profiling never changes
/// simulated results; it only counts.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_TELEMETRY_PROFILE_H
#define OCELOT_TELEMETRY_PROFILE_H

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ocelot {

struct PcProfile {
  /// Executions of each image PC. Sized by prepare().
  std::vector<uint64_t> PcCounts;
  /// Executions of PC-adjacent opcode pair (Prev, Cur) at
  /// [Prev * NumOpcodes + Cur], over base opcodes.
  std::vector<uint64_t> PairCounts;
  uint64_t Steps = 0;
  size_t NumOpcodes = 0;

  /// Sizes the tables for an image of \p NumPcs instructions and an
  /// opcode space of \p NumOps. Idempotent; keeps existing counts when
  /// the sizes already match.
  void prepare(size_t NumPcs, size_t NumOps) {
    if (PcCounts.size() != NumPcs)
      PcCounts.assign(NumPcs, 0);
    if (PairCounts.size() != NumOps * NumOps)
      PairCounts.assign(NumOps * NumOps, 0);
    NumOpcodes = NumOps;
  }

  /// Engine hook: counts one executed step at \p Pc with opcode \p Op;
  /// \p PrevPc / \p PrevOp describe the previously executed step (PrevPc
  /// == ~0u means none, e.g. the first step after a reboot).
  void step(uint32_t Pc, uint16_t Op, uint32_t PrevPc, uint16_t PrevOp) {
    ++Steps;
    if (Pc < PcCounts.size())
      ++PcCounts[Pc];
    if (PrevPc != ~0u && Pc == PrevPc + 1) {
      size_t Idx = static_cast<size_t>(PrevOp) * NumOpcodes + Op;
      if (Idx < PairCounts.size())
        ++PairCounts[Idx];
    }
  }

  void merge(const PcProfile &O) {
    if (PcCounts.size() < O.PcCounts.size())
      PcCounts.resize(O.PcCounts.size(), 0);
    for (size_t I = 0; I < O.PcCounts.size(); ++I)
      PcCounts[I] += O.PcCounts[I];
    if (PairCounts.size() < O.PairCounts.size()) {
      PairCounts.resize(O.PairCounts.size(), 0);
      NumOpcodes = O.NumOpcodes;
    }
    for (size_t I = 0; I < O.PairCounts.size(); ++I)
      PairCounts[I] += O.PairCounts[I];
    Steps += O.Steps;
  }
};

/// An on-disk collection of PcProfiles keyed by the fingerprint of the
/// ExecutableImage each was measured on (`ExecutableImage::fingerprint`).
/// One sweep compiles many artifacts (benchmark x model), so a single
/// `--pgo-out` file bundles a profile per image; feeding it back via
/// `--pgo` lets every recompiled image find its own counts, and an image
/// the bundle has never seen simply is not in the map — the consumer
/// decides whether that is a hard error (ocelotc) or a quiet fallback to
/// the static heat estimator (the image builder).
///
/// The text format is deterministic: entries sorted by fingerprint,
/// counts emitted sparsely in ascending index order, no floats, no
/// timestamps — serializing a reloaded bundle reproduces the input
/// byte-for-byte (pinned by PgoTest).
struct PgoBundle {
  std::map<uint64_t, PcProfile> Entries;

  /// The profile for \p Fingerprint, creating an empty one on demand
  /// (collection side).
  PcProfile &entry(uint64_t Fingerprint) { return Entries[Fingerprint]; }
  /// The profile for \p Fingerprint, or null (consumption side).
  const PcProfile *find(uint64_t Fingerprint) const {
    auto It = Entries.find(Fingerprint);
    return It == Entries.end() ? nullptr : &It->second;
  }
  /// Per-image PcProfile::merge across two bundles (associative and
  /// commutative, like the per-profile merge it lifts).
  void merge(const PgoBundle &O);

  /// Deterministic text serialization (see file comment).
  std::string serialize() const;
  /// Parses text produced by serialize. On failure returns false and
  /// leaves an actionable message (line number + expectation) in
  /// \p Error.
  static bool deserialize(const std::string &Text, PgoBundle &Out,
                          std::string &Error);

  /// Writes serialize() to \p Path. False + \p Error on I/O failure.
  bool save(const std::string &Path, std::string &Error) const;
  /// Reads and parses \p Path. Null + \p Error on I/O or parse failure.
  static std::shared_ptr<const PgoBundle> load(const std::string &Path,
                                               std::string &Error);
};

} // namespace ocelot

#endif // OCELOT_TELEMETRY_PROFILE_H
