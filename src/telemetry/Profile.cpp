//===- Profile.cpp - PGO bundle serialization --------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/Profile.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ocelot;

void PgoBundle::merge(const PgoBundle &O) {
  for (const auto &[Fp, Prof] : O.Entries)
    Entries[Fp].merge(Prof);
}

std::string PgoBundle::serialize() const {
  std::string Out;
  Out += "ocelot-pgo v1\n";
  Out += "images " + std::to_string(Entries.size()) + "\n";
  char Buf[64];
  for (const auto &[Fp, Prof] : Entries) { // std::map: ascending, stable.
    std::snprintf(Buf, sizeof(Buf), "image %016" PRIx64 " pcs %zu ops %zu",
                  Fp, Prof.PcCounts.size(), Prof.NumOpcodes);
    Out += Buf;
    Out += " steps " + std::to_string(Prof.Steps) + "\n";
    for (size_t I = 0; I < Prof.PcCounts.size(); ++I)
      if (Prof.PcCounts[I])
        Out += "pc " + std::to_string(I) + " " +
               std::to_string(Prof.PcCounts[I]) + "\n";
    for (size_t I = 0; I < Prof.PairCounts.size(); ++I)
      if (Prof.PairCounts[I])
        Out += "pair " + std::to_string(I / Prof.NumOpcodes) + " " +
               std::to_string(I % Prof.NumOpcodes) + " " +
               std::to_string(Prof.PairCounts[I]) + "\n";
    Out += "end\n";
  }
  return Out;
}

bool PgoBundle::deserialize(const std::string &Text, PgoBundle &Out,
                            std::string &Error) {
  Out.Entries.clear();
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  auto Fail = [&](const std::string &What) {
    Error = "pgo profile line " + std::to_string(LineNo) + ": " + What;
    return false;
  };

  ++LineNo;
  if (!std::getline(In, Line) || Line != "ocelot-pgo v1")
    return Fail("expected header \"ocelot-pgo v1\" — is this a profile "
                "written by --pgo-out?");
  ++LineNo;
  size_t Images = 0;
  if (!std::getline(In, Line) ||
      std::sscanf(Line.c_str(), "images %zu", &Images) != 1)
    return Fail("expected \"images <count>\"");

  for (size_t I = 0; I < Images; ++I) {
    ++LineNo;
    uint64_t Fp = 0;
    size_t Pcs = 0, Ops = 0;
    uint64_t Steps = 0;
    if (!std::getline(In, Line) ||
        std::sscanf(Line.c_str(),
                    "image %" SCNx64 " pcs %zu ops %zu steps %" SCNu64, &Fp,
                    &Pcs, &Ops, &Steps) != 4)
      return Fail("expected \"image <fingerprint> pcs <n> ops <n> steps "
                  "<n>\"");
    if (Out.Entries.count(Fp))
      return Fail("duplicate image fingerprint");
    PcProfile &Prof = Out.Entries[Fp];
    Prof.prepare(Pcs, Ops);
    Prof.Steps = Steps;
    for (;;) {
      ++LineNo;
      if (!std::getline(In, Line))
        return Fail("unexpected end of file inside an image entry");
      if (Line == "end")
        break;
      size_t A = 0, B = 0;
      uint64_t Count = 0;
      if (std::sscanf(Line.c_str(), "pc %zu %" SCNu64, &A, &Count) == 2) {
        if (A >= Pcs)
          return Fail("pc index out of range");
        Prof.PcCounts[A] = Count;
      } else if (std::sscanf(Line.c_str(), "pair %zu %zu %" SCNu64, &A, &B,
                             &Count) == 3) {
        if (A >= Ops || B >= Ops)
          return Fail("pair opcode out of range");
        Prof.PairCounts[A * Ops + B] = Count;
      } else {
        return Fail("expected \"pc ...\", \"pair ...\" or \"end\"");
      }
    }
  }
  return true;
}

bool PgoBundle::save(const std::string &Path, std::string &Error) const {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << serialize();
  Out.flush();
  if (!Out) {
    Error = "write to " + Path + " failed";
    return false;
  }
  return true;
}

std::shared_ptr<const PgoBundle> PgoBundle::load(const std::string &Path,
                                                 std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open pgo profile " + Path;
    return nullptr;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  auto B = std::make_shared<PgoBundle>();
  if (!deserialize(Text.str(), *B, Error)) {
    Error += " (file: " + Path + ")";
    return nullptr;
  }
  return B;
}
