//===- TraceSink.cpp - Structured run tracing ------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "telemetry/TraceSink.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace ocelot {

const char *traceEventKindName(TraceEventKind K) {
  switch (K) {
  case TraceEventKind::Reboot:
    return "reboot";
  case TraceEventKind::Checkpoint:
    return "checkpoint";
  case TraceEventKind::RegionEnter:
    return "region";
  case TraceEventKind::RegionCommit:
    return "region_commit";
  case TraceEventKind::RegionRetry:
    return "region_retry";
  case TraceEventKind::MonitorCheck:
    return "monitor_check";
  case TraceEventKind::Violation:
    return "violation";
  case TraceEventKind::SensorRead:
    return "sensor_read";
  case TraceEventKind::EnergyRecharge:
    return "energy_recharge";
  case TraceEventKind::OracleVerdict:
    return "oracle_verdict";
  case TraceEventKind::CompileStart:
    return "compile";
  case TraceEventKind::CompileEnd:
    return "compile";
  }
  return "?";
}

TraceSink::TraceSink(size_t Capacity) {
  Ring.resize(Capacity ? Capacity : 1);
  WallEpochNs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint64_t TraceSink::wallMicros() const {
  uint64_t Now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return (Now - WallEpochNs) / 1000;
}

void TraceSink::compileStart(const std::string &Name) {
  push({TraceEventKind::CompileStart, wallMicros(), 0, 0, Name});
}

void TraceSink::compileEnd(const std::string &Name) {
  push({TraceEventKind::CompileEnd, wallMicros(), 0, 0, Name});
}

void TraceSink::push(TraceEvent E) {
  if (Count < Ring.size()) {
    Ring[(Head + Count) % Ring.size()] = std::move(E);
    ++Count;
    return;
  }
  // Full: overwrite the oldest, keep the tail of the run.
  Ring[Head] = std::move(E);
  Head = (Head + 1) % Ring.size();
  ++Dropped;
}

std::vector<TraceEvent> TraceSink::events() const {
  std::vector<TraceEvent> Out;
  Out.reserve(Count);
  for (size_t I = 0; I < Count; ++I)
    Out.push_back(Ring[(Head + I) % Ring.size()]);
  return Out;
}

void TraceSink::clear() {
  Head = Count = Dropped = 0;
}

namespace {

/// Minimal JSON string escaping; event names and details are internal
/// identifiers, but never trust a string into serialized output.
void appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
}

void appendEvent(std::string &Out, const char *Name, char Ph, uint64_t Ts,
                 int Tid, const std::string &Args, bool &First) {
  if (!First)
    Out += ",\n";
  First = false;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"name\":\"%s\",\"ph\":\"%c\",\"ts\":%" PRIu64
                ",\"pid\":1,\"tid\":%d",
                Name, Ph, Ts, Tid);
  Out += Buf;
  if (!Args.empty()) {
    Out += ",\"args\":{";
    Out += Args;
    Out += '}';
  }
  Out += '}';
}

std::string argsI64(const char *K0, int64_t V0, const char *K1 = nullptr,
                    int64_t V1 = 0) {
  char Buf[128];
  if (K1)
    std::snprintf(Buf, sizeof(Buf), "\"%s\":%" PRId64 ",\"%s\":%" PRId64, K0,
                  V0, K1, V1);
  else
    std::snprintf(Buf, sizeof(Buf), "\"%s\":%" PRId64, K0, V0);
  return Buf;
}

} // namespace

std::string TraceSink::exportChromeJson() const {
  // Tracks: tid 0 = the simulated device (ts = τ), tid 1 = toolchain
  // (ts = wall µs).
  constexpr int SimTid = 0, CompileTid = 1;
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;

  // Metadata names for the two tracks, so Perfetto labels them.
  appendEvent(Out, "thread_name", 'M', 0, SimTid,
              "\"name\":\"simulated device (ts = tau)\"", First);
  appendEvent(Out, "thread_name", 'M', 0, CompileTid,
              "\"name\":\"toolchain (wall clock)\"", First);

  // Region enter/commit/retry become balanced B/E pairs; a region still
  // open when the buffer ends is closed at the final simulated timestamp.
  int OpenRegions = 0;
  uint64_t LastSimTs = 0;
  for (size_t I = 0; I < Count; ++I) {
    const TraceEvent &E = Ring[(Head + I) % Ring.size()];
    const char *Name = traceEventKindName(E.Kind);
    switch (E.Kind) {
    case TraceEventKind::Reboot:
      appendEvent(Out, Name, 'i', E.Ts, SimTid, argsI64("epoch", E.A0), First);
      break;
    case TraceEventKind::Checkpoint:
      appendEvent(Out, Name, 'i', E.Ts, SimTid, argsI64("regs_saved", E.A0),
                  First);
      break;
    case TraceEventKind::RegionEnter:
      appendEvent(Out, Name, 'B', E.Ts, SimTid, argsI64("region", E.A0),
                  First);
      ++OpenRegions;
      break;
    case TraceEventKind::RegionCommit:
      if (OpenRegions > 0) {
        appendEvent(Out, Name, 'E', E.Ts, SimTid,
                    argsI64("region", E.A0, "undo_entries", E.A1), First);
        --OpenRegions;
      }
      break;
    case TraceEventKind::RegionRetry:
      if (OpenRegions > 0) {
        appendEvent(Out, "region", 'E', E.Ts, SimTid, {}, First);
        --OpenRegions;
      }
      appendEvent(Out, Name, 'i', E.Ts, SimTid,
                  argsI64("region", E.A0, "aborts", E.A1), First);
      break;
    case TraceEventKind::MonitorCheck:
      appendEvent(Out, Name, 'i', E.Ts, SimTid,
                  argsI64("site", E.A0, "failed", E.A1), First);
      break;
    case TraceEventKind::Violation: {
      std::string Args = argsI64("site", E.A0, "set", E.A1);
      Args += ",\"kind\":\"";
      appendEscaped(Args, E.Detail);
      Args += '"';
      appendEvent(Out, Name, 'i', E.Ts, SimTid, Args, First);
      break;
    }
    case TraceEventKind::SensorRead:
      appendEvent(Out, Name, 'i', E.Ts, SimTid,
                  argsI64("sensor", E.A0, "value", E.A1), First);
      break;
    case TraceEventKind::EnergyRecharge:
      appendEvent(Out, Name, 'i', E.Ts, SimTid, argsI64("off_cycles", E.A0),
                  First);
      break;
    case TraceEventKind::OracleVerdict: {
      std::string Args = argsI64("code", E.A0, "fused_inputs", E.A1);
      Args += ",\"verdict\":\"";
      appendEscaped(Args, E.Detail);
      Args += '"';
      appendEvent(Out, Name, 'i', E.Ts, SimTid, Args, First);
      break;
    }
    case TraceEventKind::CompileStart:
    case TraceEventKind::CompileEnd: {
      std::string Args = "\"name\":\"";
      appendEscaped(Args, E.Detail);
      Args += '"';
      appendEvent(Out, Name,
                  E.Kind == TraceEventKind::CompileStart ? 'B' : 'E', E.Ts,
                  CompileTid, Args, First);
      break;
    }
    }
    if (E.Kind != TraceEventKind::CompileStart &&
        E.Kind != TraceEventKind::CompileEnd && E.Ts > LastSimTs)
      LastSimTs = E.Ts;
  }
  for (; OpenRegions > 0; --OpenRegions)
    appendEvent(Out, "region", 'E', LastSimTs, SimTid, {}, First);

  Out += "\n],\"displayTimeUnit\":\"ns\"";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), ",\"otherData\":{\"dropped\":%zu}}",
                Dropped);
  Out += Buf;
  Out += '\n';
  return Out;
}

bool TraceSink::writeChromeJson(const std::string &Path,
                                std::string *Error) const {
  std::string Json = exportChromeJson();
  FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok && Error)
    *Error = "short write to " + Path;
  return Ok;
}

} // namespace ocelot
