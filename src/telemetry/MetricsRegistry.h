//===- MetricsRegistry.h - Named counters and histograms --------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named monotonic counters and value summaries (count /
/// sum / min / max), with deterministic text and JSON dumps (names are
/// kept sorted). Thread-safe: fleet workers compiling concurrently bump
/// the same registry.
///
/// This is *cold-path* instrumentation — the toolchain, harness, and
/// bench report use it (compile wall-time, artifact-cache hit-rate, peak
/// RSS). The interpreter hot loops never touch it; per-step data goes
/// through `PcProfile` (telemetry/Profile.h) and end-of-run aggregates
/// through `RunResult`.
///
/// `MetricsRegistry::global()` is the process-wide instance that
/// `Toolchain::compile` / `compileCached` feed; scoped consumers (tests)
/// can construct their own.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_TELEMETRY_METRICSREGISTRY_H
#define OCELOT_TELEMETRY_METRICSREGISTRY_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ocelot {

class MetricsRegistry {
public:
  struct Summary {
    uint64_t Count = 0;
    double Sum = 0;
    double Min = 0;
    double Max = 0;
  };

  /// The process-wide registry (toolchain compile metrics land here).
  static MetricsRegistry &global();

  /// Adds \p Delta to counter \p Name (creating it at 0).
  void add(const std::string &Name, uint64_t Delta = 1);

  /// Folds \p Value into summary \p Name.
  void observe(const std::string &Name, double Value);

  uint64_t counter(const std::string &Name) const;
  Summary summary(const std::string &Name) const;

  std::vector<std::pair<std::string, uint64_t>> counters() const;
  std::vector<std::pair<std::string, Summary>> summaries() const;

  /// One metric per line: `name value` for counters,
  /// `name count=N sum=S min=M max=X` for summaries. Sorted by name.
  std::string dumpText() const;

  /// `{"counters": {...}, "summaries": {name: {count, sum, min, max}}}`,
  /// sorted by name.
  std::string dumpJson() const;

  void reset();

private:
  mutable std::mutex Mu;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, Summary> Summaries;
};

/// Peak resident set size of this process in MiB (getrusage ru_maxrss),
/// or 0 where unsupported. Used by the bench report's bounded-memory gate.
double peakRssMb();

} // namespace ocelot

#endif // OCELOT_TELEMETRY_METRICSREGISTRY_H
