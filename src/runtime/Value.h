//===- Value.h - Runtime values with input taint ----------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values optionally carry *dynamic input taint* — the set of input
/// events (sensor, logical time, reboot epoch) the value depends on. This
/// implements the paper's taint-augmented semantics (Appendix B), which the
/// formal freshness / temporal-consistency checker (Definitions 2 and 3)
/// evaluates directly at run time.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_VALUE_H
#define OCELOT_RUNTIME_VALUE_H

#include "ir/Opcode.h"

#include <cstdint>
#include <vector>

namespace ocelot {

/// One input operation observed at run time.
struct InputEvent {
  int Sensor = -1;
  uint64_t Tau = 0;    ///< Logical time of collection.
  uint64_t Epoch = 0;  ///< Reboot count at collection.
  int64_t Value = 0;   ///< The sensed value (for traces / replay).

  bool operator==(const InputEvent &O) const {
    return Sensor == O.Sensor && Tau == O.Tau && Epoch == O.Epoch &&
           Value == O.Value;
  }
};

/// A runtime value: the 64-bit payload plus (when taint tracking is on) the
/// input events it depends on.
struct RtValue {
  int64_t V = 0;
  std::vector<InputEvent> Taint;

  RtValue() = default;
  explicit RtValue(int64_t V) : V(V) {}

  /// Merges another value's taint into this one (deduplicated).
  void mergeTaint(const RtValue &O) {
    for (const InputEvent &E : O.Taint)
      addTaint(E);
  }

  void addTaint(const InputEvent &E) {
    for (const InputEvent &Have : Taint)
      if (Have == E)
        return;
    Taint.push_back(E);
  }
};

/// One observable output (log / alarm / send / uart).
struct OutputEvent {
  OutputKind Kind = OutputKind::Log;
  std::vector<int64_t> Args;
  uint64_t Tau = 0;

  bool sameContent(const OutputEvent &O) const {
    return Kind == O.Kind && Args == O.Args;
  }
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_VALUE_H
