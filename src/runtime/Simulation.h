//===- Simulation.h - One simulated device over an artifact -----*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `Simulation` is one simulated intermittent device executing an
/// immutable `CompiledArtifact`. It owns *all* mutable state of a run —
/// the interpreter's NVM / logical time / energy store / RNG — while
/// sharing read-only inputs: the artifact's program, region metadata and
/// monitor plan, plus the immutable `SensorScenario` and `PowerSource`
/// named by the `RunConfig`. Because none of the shared pieces are
/// written, one artifact (and one scenario) can back any number of
/// Simulations running on different threads at once; two Simulations
/// built from the same (artifact, spec) produce bitwise identical results
/// regardless of what else runs concurrently.
///
/// This is the only supported way to execute a compiled program outside
/// `src/runtime/`; constructing an `Interpreter` directly is reserved for
/// the runtime itself.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_SIMULATION_H
#define OCELOT_RUNTIME_SIMULATION_H

#include "ocelot/Toolchain.h"
#include "runtime/Interpreter.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace ocelot {

/// Everything that varies per simulated device: the run configuration
/// (sensor scenario, power source, cost model, failure plan, energy
/// config, seed, monitor toggles). Copied into the Simulation, so a spec
/// can be reused — and tweaked per cell — when fanning one artifact
/// across a sweep. (The sensor world moved into `RunConfig::Sensors`;
/// build a `SensorScenario` via `SensorScenarioBuilder`.)
struct SimulationSpec {
  RunConfig Config;
};

/// One simulated device. Movable, not copyable (a device's NVM history is
/// not a value). Thread-compatible: use one Simulation per thread.
class Simulation {
public:
  Simulation(CompiledArtifact Artifact, SimulationSpec Spec)
      : A(std::move(Artifact)),
        Interp(std::make_unique<Interpreter>(
            A.program(), std::move(Spec.Config), &A.monitorPlan(),
            &A.regions(), A.imagePtr())) {}

  /// Convenience: a spec is just its RunConfig.
  Simulation(CompiledArtifact Artifact, RunConfig Config)
      : Simulation(std::move(Artifact), SimulationSpec{std::move(Config)}) {}

  /// Executes one activation of main() to completion (or abort). NVM, tau,
  /// the reboot epoch and the energy store persist across calls, as on a
  /// real device.
  RunResult runOnce() { return Interp->runOnce(); }

  /// Re-initializes NVM from the program's initializers (fresh device).
  void resetNvm() { Interp->resetNvm(); }

  /// Feeds inputs from \p Events instead of the sensor scenario (in
  /// order); used by the refinement replay. Pass std::nullopt to return
  /// to the scenario.
  void setReplayInputs(std::optional<std::vector<InputEvent>> Events) {
    Interp->setReplayInputs(std::move(Events));
  }
  size_t replayRemaining() const { return Interp->replayRemaining(); }

  /// Plain-value NVM snapshot for refinement comparison.
  std::vector<std::vector<int64_t>> nvmSnapshot() const {
    return Interp->nvmSnapshot();
  }

  uint64_t tau() const { return Interp->tau(); }
  uint64_t epoch() const { return Interp->epoch(); }
  const ViolationMonitor &monitor() const { return Interp->monitor(); }

  const CompiledArtifact &artifact() const { return A; }

private:
  CompiledArtifact A; ///< Shared, read-only; keeps the program alive.
  std::unique_ptr<Interpreter> Interp;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_SIMULATION_H
