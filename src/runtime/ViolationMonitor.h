//===- ViolationMonitor.h - Freshness/consistency violation detection -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two independent violation detectors, which tests cross-validate:
///
///  * Bit vector (the paper's §7.3 mechanism): one non-volatile bit per
///    sensor, set on input, cleared on power failure. On a use of a fresh
///    variable the dependent sensors' bits must be set; on an input in a
///    consistent set the other executed members' bits must be set.
///
///  * Formal (Definitions 2/3 over the taint-augmented semantics of
///    Appendix B): every value carries its input events (sensor, tau,
///    reboot epoch). A fresh use whose value carries an event from an
///    earlier epoch crossed a power failure; a consistent set whose
///    members' events span different epochs was split by one.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_VIOLATIONMONITOR_H
#define OCELOT_RUNTIME_VIOLATIONMONITOR_H

#include "runtime/MonitorPlan.h"
#include "runtime/Value.h"

#include <string>
#include <vector>

namespace ocelot {

class TraceSink;

struct ViolationRecord {
  enum class Kind {
    FreshBitVec,
    ConsistentBitVec,
    FreshFormal,
    ConsistentFormal,
  };
  Kind K;
  InstrRef Site;
  int SetId = -1;
  uint64_t Tau = 0;
  std::string Detail;
};

const char *violationKindName(ViolationRecord::Kind K);

class ViolationMonitor {
public:
  ViolationMonitor(const MonitorPlan &Plan, int NumSensors)
      : Plan(Plan) {
    (void)NumSensors;
    MemberExecuted.resize(Plan.Sets.size());
    for (size_t I = 0; I < Plan.Sets.size(); ++I)
      MemberExecuted[I].assign(Plan.Sets[I].Members.size(), false);
  }

  /// Clears per-run state (executed flags, formal set records). Called at
  /// the start of each main() activation.
  void beginRun();

  /// Clears the bit vector (the paper's "On power failure, the bit vector
  /// is cleared").
  void onPowerFailure();

  /// Input executed: sets the sensor bit, then runs the consistent-set
  /// member check for the dynamic instance identified by \p AbsChain.
  void onInput(InstrRef Site, const ProvChain &AbsChain, int Sensor,
               uint64_t Tau);

  /// About to execute a use of a fresh variable: bit-vector freshness
  /// check.
  void onFreshUse(InstrRef Site, uint64_t Tau);

  /// Formal freshness check: \p Taint is the used value's input events and
  /// \p Epoch the current reboot epoch.
  void onFreshUseFormal(InstrRef Site, const std::vector<InputEvent> &Taint,
                        uint64_t Epoch, uint64_t Tau);

  /// Formal consistency check at a Consistent marker execution.
  void onConsistentMarker(int SetId, uint32_t MarkerLabel,
                          const std::vector<InputEvent> &Taint,
                          uint64_t Epoch, uint64_t Tau);

  /// Violation records of the current run (cleared by beginRun).
  const std::vector<ViolationRecord> &violations() const { return Records; }
  bool sawFreshViolation() const { return FreshViolated; }
  bool sawConsistentViolation() const { return ConsistentViolated; }
  bool sawAny() const { return FreshViolated || ConsistentViolated; }

  /// Per-run flags (reset by beginRun; immune to the record-list cap).
  bool runFreshViolation() const { return RunFresh; }
  bool runConsistentViolation() const { return RunConsistent; }

  const MonitorPlan &plan() const { return Plan; }

  /// Attaches a telemetry sink: every check that runs becomes a
  /// monitor_check event and every recorded violation a violation event
  /// (src/telemetry/TraceSink.h). Null (the default) detaches; detection
  /// behavior is identical either way.
  void setTraceSink(TraceSink *T) { Sink = T; }

private:
  void record(ViolationRecord R);

  TraceSink *Sink = nullptr;
  MonitorPlan Plan;
  /// Non-volatile bit vector: one position per static input operation
  /// (§7.3: "Each sensor operation has a unique position in the bit
  /// vector"). Present = bit set.
  std::set<InstrRef> Bits;
  /// Per consistent set: which members executed in the current activation.
  std::vector<std::vector<bool>> MemberExecuted;
  /// Formal per-set records: (setId, marker label) -> events.
  std::map<std::pair<int, uint32_t>, std::vector<InputEvent>> SetRecords;
  std::vector<ViolationRecord> Records;
  bool FreshViolated = false;
  bool ConsistentViolated = false;
  bool RunFresh = false;
  bool RunConsistent = false;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_VIOLATIONMONITOR_H
