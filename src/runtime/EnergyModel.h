//===- EnergyModel.h - Capacitor + harvester energy model -------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Capybara-style energy front end (§6.3): a capacitor measured in cycle
/// units and a voltage-comparator low-power trigger whose threshold is
/// raised so a JIT checkpoint always fits in the remaining reserve. The
/// harvesting side — how full each refill gets and how long the device
/// stays off collecting it — is delegated to a pluggable `PowerSource`
/// (src/power/PowerSource.h): the paper's off-times are "dictated by the
/// physical environment", and the source *is* that environment. With no
/// source configured the model uses `legacyJitterSource()`, the original
/// uniform-jitter recharge math, bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_ENERGYMODEL_H
#define OCELOT_RUNTIME_ENERGYMODEL_H

#include "support/Rng.h"

#include <cstdint>
#include <memory>

namespace ocelot {

class PowerSource;

struct EnergyConfig {
  /// Usable energy per charge cycle, in instruction-cycle units. The
  /// default holds roughly two benchmark activations of work, so power
  /// failures interrupt most runs — matching the paper's RF-harvesting
  /// testbed where charging dominates (Fig. 8) and JIT builds violate
  /// policies frequently (Table 2(b)).
  uint64_t CapacityCycles = 2200;
  /// Reserve kept for the JIT checkpoint ISR (raised comparator trigger,
  /// §6.3); must cover the checkpoint of the deepest volatile context.
  uint64_t ReserveCycles = 350;
  /// Nominal energy harvested per off-time unit (cycles of energy per tau
  /// unit). Synthetic power sources scale this; trace-driven sources carry
  /// their own absolute rates.
  double ChargeRate = 0.1;
  /// Multiplicative jitter on each recharge duration (0 = deterministic).
  /// Used by the legacy-jitter source.
  double ChargeJitter = 0.25;
  /// Fraction of capacity by which each refill may fall short (harvesting
  /// variability). Without this, failures are phase-locked to fixed points
  /// of the program and can systematically miss (or hit) narrow windows.
  double RefillJitter = 0.2;
};

/// Tracks stored energy during execution. All consumption is in cycle
/// units; when the remaining energy drops to the reserve, the comparator
/// fires (PowerLow) and the runtime must stop within the reserve budget.
class EnergyModel {
public:
  /// \p Source decides refill targets and off-times; null selects the
  /// legacy uniform-jitter behavior. The source must be immutable (it is
  /// shared); per-recharge randomness comes from this model's private
  /// seed-derived Rng.
  EnergyModel(const EnergyConfig &Cfg, uint64_t Seed,
              std::shared_ptr<const PowerSource> Source = nullptr);

  /// Consumes \p Cycles of energy. \returns true if the comparator fired
  /// (energy at or below the reserve).
  bool consume(uint64_t Cycles) {
    Energy = Cycles >= Energy ? 0 : Energy - Cycles;
    return Energy <= Cfg.ReserveCycles;
  }

  bool low() const { return Energy <= Cfg.ReserveCycles; }
  uint64_t remaining() const { return Energy; }

  /// Recharges from the power source and \returns the off-time (tau units)
  /// it took — the paper's arbitrary "pick(n)" at reboot, here tied to
  /// harvest physics. \p Tau is the absolute logical time the reboot
  /// begins at; time-varying sources (solar, traces) phase against it.
  /// Whatever the source plans, the resulting level is clamped into
  /// (ReserveCycles, CapacityCycles] and the off-time is at least 1.
  uint64_t recharge(uint64_t Tau = 0);

  const EnergyConfig &config() const { return Cfg; }

private:
  EnergyConfig Cfg;
  Rng Rand;
  uint64_t Energy;
  std::shared_ptr<const PowerSource> Source;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_ENERGYMODEL_H
