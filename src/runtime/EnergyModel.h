//===- EnergyModel.h - Capacitor + harvester energy model -------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Capybara-style energy front end (§6.3): a capacitor measured in cycle
/// units, a voltage-comparator low-power trigger whose threshold is raised
/// so a JIT checkpoint always fits in the remaining reserve, and a
/// harvester that recharges at a configurable rate while the device is off
/// (the paper harvests from a PowerCast RF transmitter; off-times are
/// "dictated by the physical environment", which the jitter models here).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_ENERGYMODEL_H
#define OCELOT_RUNTIME_ENERGYMODEL_H

#include "support/Rng.h"

#include <cstdint>

namespace ocelot {

struct EnergyConfig {
  /// Usable energy per charge cycle, in instruction-cycle units. The
  /// default holds roughly two benchmark activations of work, so power
  /// failures interrupt most runs — matching the paper's RF-harvesting
  /// testbed where charging dominates (Fig. 8) and JIT builds violate
  /// policies frequently (Table 2(b)).
  uint64_t CapacityCycles = 2200;
  /// Reserve kept for the JIT checkpoint ISR (raised comparator trigger,
  /// §6.3); must cover the checkpoint of the deepest volatile context.
  uint64_t ReserveCycles = 350;
  /// Energy harvested per off-time unit (cycles of energy per tau unit).
  double ChargeRate = 0.1;
  /// Multiplicative jitter on each recharge duration (0 = deterministic).
  double ChargeJitter = 0.25;
  /// Fraction of capacity by which each refill may fall short (harvesting
  /// variability). Without this, failures are phase-locked to fixed points
  /// of the program and can systematically miss (or hit) narrow windows.
  double RefillJitter = 0.2;
};

/// Tracks stored energy during execution. All consumption is in cycle
/// units; when the remaining energy drops to the reserve, the comparator
/// fires (PowerLow) and the runtime must stop within the reserve budget.
class EnergyModel {
public:
  EnergyModel(const EnergyConfig &Cfg, uint64_t Seed)
      : Cfg(Cfg), Rand(Seed), Energy(Cfg.CapacityCycles) {}

  /// Consumes \p Cycles of energy. \returns true if the comparator fired
  /// (energy at or below the reserve).
  bool consume(uint64_t Cycles) {
    Energy = Cycles >= Energy ? 0 : Energy - Cycles;
    return Energy <= Cfg.ReserveCycles;
  }

  bool low() const { return Energy <= Cfg.ReserveCycles; }
  uint64_t remaining() const { return Energy; }

  /// Recharges (to capacity minus harvesting-variability shortfall) and
  /// \returns the off-time (tau units) it took — the paper's arbitrary
  /// "pick(n)" at reboot, here tied to harvest physics.
  uint64_t recharge() {
    uint64_t Target = Cfg.CapacityCycles;
    if (Cfg.RefillJitter > 0.0) {
      double Short = Cfg.RefillJitter * Rand.nextDouble();
      Target -= static_cast<uint64_t>(
          Short * static_cast<double>(Cfg.CapacityCycles));
      if (Target <= Cfg.ReserveCycles)
        Target = Cfg.ReserveCycles + 1;
    }
    uint64_t Deficit = Target > Energy ? Target - Energy : 0;
    double Time = static_cast<double>(Deficit) / Cfg.ChargeRate;
    if (Cfg.ChargeJitter > 0.0) {
      double Factor = 1.0 + Cfg.ChargeJitter * (2.0 * Rand.nextDouble() - 1.0);
      Time *= Factor;
    }
    Energy = Target;
    uint64_t T = static_cast<uint64_t>(Time);
    return T == 0 ? 1 : T;
  }

  const EnergyConfig &config() const { return Cfg; }

private:
  EnergyConfig Cfg;
  Rng Rand;
  uint64_t Energy;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_ENERGYMODEL_H
