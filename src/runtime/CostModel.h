//===- CostModel.h - Simulated cycle costs per operation class --*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_COSTMODEL_H
#define OCELOT_RUNTIME_COSTMODEL_H

#include "ir/Instruction.h"

#include <cstdint>

namespace ocelot {

/// Cycle costs per operation class. Values are abstract cycles; the
/// evaluation reports ratios, which depend only on relative magnitudes
/// (sensor reads and radio/UART output are expensive relative to ALU work,
/// checkpoints scale with saved state — as on the paper's MSP430 target).
struct CostModel {
  uint64_t Default = 1;
  uint64_t InputCost = 80;
  uint64_t OutputCost = 200;
  uint64_t CallCost = 2;
  uint64_t CheckpointBase = 120;
  uint64_t CheckpointPerReg = 1;
  uint64_t RestoreBase = 60;
  uint64_t RestorePerReg = 1;
  uint64_t AtomicStartCost = 10;
  /// Entering an (outermost) atomic region checkpoints the volatile
  /// execution context like a JIT checkpoint does (§6.3). Charged per
  /// active stack frame: virtual-register counts are inflated by loop
  /// unrolling, while a real MSP430 frame is a handful of words.
  uint64_t RegionEntryPerFrame = 8;
  uint64_t AtomicOmegaPerCell = 2; ///< Static-omega backup per cell.
  uint64_t UndoLogEntryCost = 3;
  uint64_t AtomicCommitCost = 6;

  /// Per-instruction cost depends only on the opcode, which is what lets
  /// the ExecutableImage fold this switch into a PC-indexed table.
  uint64_t costOfOp(Opcode Op) const;
  uint64_t costOf(const Instruction &I) const { return costOfOp(I.Op); }

  /// Equality lets an interpreter reuse the image's precomputed
  /// default-model cost table instead of materializing its own.
  bool operator==(const CostModel &) const = default;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_COSTMODEL_H
