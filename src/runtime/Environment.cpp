//===- Environment.cpp - Simulated sensor environment --------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Environment.h"

using namespace ocelot;

SensorSignal SensorSignal::constant(int64_t Base) {
  SensorSignal S;
  S.K = Kind::Constant;
  S.Base = Base;
  return S;
}

SensorSignal SensorSignal::step(int64_t Base, int64_t Amplitude,
                                uint64_t StepTau) {
  SensorSignal S;
  S.K = Kind::Step;
  S.Base = Base;
  S.Amplitude = Amplitude;
  S.StepTau = StepTau;
  return S;
}

SensorSignal SensorSignal::ramp(int64_t Base, int64_t Slope,
                                uint64_t Interval) {
  SensorSignal S;
  S.K = Kind::Ramp;
  S.Base = Base;
  S.Slope = Slope;
  S.Interval = Interval ? Interval : 1;
  return S;
}

SensorSignal SensorSignal::square(int64_t Base, int64_t Amplitude,
                                  uint64_t Interval) {
  SensorSignal S;
  S.K = Kind::Square;
  S.Base = Base;
  S.Amplitude = Amplitude;
  S.Interval = Interval ? Interval : 1;
  return S;
}

SensorSignal SensorSignal::noise(int64_t Base, int64_t Amplitude,
                                 uint64_t Interval, uint64_t Seed) {
  SensorSignal S;
  S.K = Kind::Noise;
  S.Base = Base;
  S.Amplitude = Amplitude;
  S.Interval = Interval ? Interval : 1;
  S.Seed = Seed;
  return S;
}

/// Stateless 64-bit mix (splitmix64 finalizer) so Noise signals are a pure
/// function of (seed, bucket).
static uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

int64_t SensorSignal::sample(uint64_t Tau) const {
  switch (K) {
  case Kind::Constant:
    return Base;
  case Kind::Step:
    return Tau >= StepTau ? Base + Amplitude : Base;
  case Kind::Ramp:
    return Base + Slope * static_cast<int64_t>(Tau / Interval);
  case Kind::Square:
    return ((Tau / Interval) & 1) ? Base + Amplitude : Base;
  case Kind::Noise: {
    if (Amplitude <= 0)
      return Base;
    uint64_t Bucket = Tau / Interval;
    uint64_t R = mix(Seed * 0x100000001b3ULL + Bucket);
    return Base +
           static_cast<int64_t>(R % static_cast<uint64_t>(Amplitude + 1));
  }
  }
  return Base;
}

void Environment::setSignal(int Id, SensorSignal S) {
  if (Id >= static_cast<int>(Signals.size()))
    Signals.resize(static_cast<size_t>(Id) + 1,
                   SensorSignal::noise(0, 100, 500, 7));
  Signals[static_cast<size_t>(Id)] = S;
}

int64_t Environment::sample(int Id, uint64_t Tau) const {
  if (Id < 0)
    return 0;
  if (Id < static_cast<int>(Signals.size()))
    return Signals[static_cast<size_t>(Id)].sample(Tau);
  // Unconfigured sensors default to per-sensor seeded noise.
  SensorSignal Default = SensorSignal::noise(
      0, 100, 500, 0x51ed2701 + static_cast<uint64_t>(Id) * 1315423911ULL);
  return Default.sample(Tau);
}
