//===- Environment.cpp - Deprecated shim over SensorScenario ---------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Environment.h"

using namespace ocelot;

void Environment::setSignal(int Id, SensorSignal S) {
  if (Id >= static_cast<int>(Signals.size()))
    Signals.resize(static_cast<size_t>(Id) + 1,
                   SensorSignal::noise(0, 100, 500, 7));
  Signals[static_cast<size_t>(Id)] = S;
}

int64_t Environment::sample(int Id, uint64_t Tau) const {
  if (Id < 0)
    return 0;
  if (Id < static_cast<int>(Signals.size()))
    return Signals[static_cast<size_t>(Id)].sample(Tau);
  // Unconfigured sensors: the scenario subsystem owns the default.
  return defaultSensorScenario()->sample(Id, Tau);
}

std::shared_ptr<const SensorScenario> Environment::toScenario() const {
  SensorScenario::Builder B;
  for (int Id = 0; Id < static_cast<int>(Signals.size()); ++Id)
    B.channel(Id, signalChannel(Signals[static_cast<size_t>(Id)]));
  return B.build();
}
