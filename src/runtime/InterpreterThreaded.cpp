//===- InterpreterThreaded.cpp - Computed-goto dispatch with superinstructions ---===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded dispatch engine: computed-goto direct-threaded dispatch
/// (with a portable switch fallback when the compiler lacks the labels-as-
/// values extension) over the image's ThreadedOp view, in which the
/// build-time peephole pass fused hot adjacent opcode pairs into
/// superinstructions and the superblock pass fused straight-line runs of
/// 3-6 instructions into variable-length chains
/// (ExecutableImage::buildThreadedView).
///
/// Like the flat engine it accelerates, every rule here must mirror the
/// tree engine exactly — same cost charging, same RNG draw sequence, same
/// monitor callbacks, same trap strings — so the three engines stay
/// bitwise-identical on every benchmark x model x plan x seed cell
/// (pinned by ExecImageTest and DifferentialFuzzTest). Three properties
/// carry that guarantee through fusion:
///
///  * A fused handler replicates the complete per-instruction step
///    header (failure injection, energy draw, cost/tau charging, monitor
///    checks) for *both* slots — only the dispatch between them is
///    elided — so a power failure can still strike between head and tail.
///  * A pair's tail keeps its plain dispatch code. A JIT reboot resumes
///    at the interrupted PC, which may be mid-pair; dispatching the
///    tail's plain code there is exactly the unfused semantics.
///  * Fusion never spans a leader (block start or post-call resume
///    point), so every branch, return and region re-entry lands on a
///    plain code.
///
/// Chains extend the same contract to 3-6 slots: every slot runs the full
/// step header (a power failure can strike between any two slots, and the
/// interrupted PC's plain code resumes it), only the final slot may
/// branch, and region bounds are never inside a chain. What chains add
/// over pairs is *in-chain register caching*: the run's most recent
/// destination register is mirrored in a local, so an accumulator-style
/// run reads its flowing value without round-tripping the register file.
/// The register file is still written at every slot — the cache elides
/// reads only — which is exactly what makes mid-chain resume sound: the
/// architectural state a reboot sees is always complete.
///
/// The loop is only ever instantiated taint-off; runOnceThreaded routes
/// taint-tracking configs to the flat loop's taint instantiation, where
/// dispatch cost is noise next to taint propagation. The Hot
/// instantiation additionally assumes no failure plan, no energy model
/// and no monitors — the steady-state throughput configuration — and
/// keeps PC/tau/lifetime counters in locals the whole run.
///
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "telemetry/Profile.h"
#include "telemetry/TraceSink.h"

#include <cassert>

using namespace ocelot;

namespace {

/// Exactly the flat engine's Bin arithmetic. Returns false on division
/// or modulo by zero; the caller raises the trap with its own site.
inline bool binEval(BinOp K, int64_t AV, int64_t BV, int64_t &V) {
  switch (K) {
  case BinOp::Add:
    V = AV + BV;
    return true;
  case BinOp::Sub:
    V = AV - BV;
    return true;
  case BinOp::Mul:
    V = AV * BV;
    return true;
  case BinOp::Div:
    if (BV == 0)
      return false;
    V = AV / BV;
    return true;
  case BinOp::Mod:
    if (BV == 0)
      return false;
    V = AV % BV;
    return true;
  case BinOp::And:
    V = AV & BV;
    return true;
  case BinOp::Or:
    V = AV | BV;
    return true;
  case BinOp::Xor:
    V = AV ^ BV;
    return true;
  case BinOp::Shl:
    V = AV << (BV & 63);
    return true;
  case BinOp::Shr:
    V = AV >> (BV & 63);
    return true;
  case BinOp::Eq:
    V = AV == BV;
    return true;
  case BinOp::Ne:
    V = AV != BV;
    return true;
  case BinOp::Lt:
    V = AV < BV;
    return true;
  case BinOp::Le:
    V = AV <= BV;
    return true;
  case BinOp::Gt:
    V = AV > BV;
    return true;
  case BinOp::Ge:
    V = AV >= BV;
    return true;
  case BinOp::LAnd:
    V = (AV != 0) && (BV != 0);
    return true;
  case BinOp::LOr:
    V = (AV != 0) || (BV != 0);
    return true;
  }
  return true; // Unreachable; silences -Wreturn-type.
}

} // namespace

RunResult Interpreter::runOnceThreaded() {
  // Taint tracking (the formal monitor forces it on) runs the flat
  // loop's taint instantiation: identical machine behavior, and taint
  // propagation dwarfs dispatch cost anyway.
  if (Cfg.TrackTaint)
    return runFlatLoop<true>();
  const bool Hot = Cfg.Plan.kind() == FailurePlan::Kind::None &&
                   Energy == nullptr && !Cfg.MonitorBitVector &&
                   !Cfg.MonitorFormal && !Cfg.Telemetry && !Cfg.Profile;
  return Hot ? runThreadedLoop<true>() : runThreadedLoop<false>();
}

template <bool Hot> RunResult Interpreter::runThreadedLoop() {
  RunResult R;
  Cfg.Plan.resetRun();
  Monitor->beginRun();
  size_t ViolationsBefore = Monitor->violations().size();

  FFrames.clear();
  FFrames.push_back(FlatFrame{/*ReturnPc=*/0, /*RegBase=*/0});
  RegStack.assign(Img->mainNumRegs(), RtValue());
  this->Pc = Img->mainEntryPc();
  ExecMode = Mode::Jit;
  Natom = 0;
  Undo.clear();
  PendingInputs.clear();
  PendingOutputs.clear();
  Committed.clear();
  AbortsThisRegion = 0;
  CurrentRegion = -1;
  [[maybe_unused]] uint64_t ConsecutiveFailures = 0;

  const FlatInst *const Code = Img->code().data();
  const ThreadedOp *const TOps = Img->threadedOps().data();
  const uint64_t *const Costs = CostTable;
  assert(Img->threadedOps().size() == Img->code().size());
  assert(!Cfg.TrackTaint && "threaded loop is the taint-free fast path");

  // Per-run constants, hoisted exactly like the flat loop's; the Hot
  // instantiation drops the checks they guard entirely (asserted below).
  [[maybe_unused]] const FailurePlan::Kind PlanKind = Cfg.Plan.kind();
  [[maybe_unused]] const bool PlanMayFireBefore =
      PlanKind == FailurePlan::Kind::Pathological ||
      PlanKind == FailurePlan::Kind::Random;
  [[maybe_unused]] const bool NeedEnergyCheck =
      Energy != nullptr || PlanKind == FailurePlan::Kind::Periodic;
  const bool BitVector = Cfg.MonitorBitVector;
  // Telemetry/profiling observers: the Hot instantiation excludes them
  // (runOnceThreaded routes observed runs here as non-Hot), so the Hot
  // fast path carries not even the null tests.
  [[maybe_unused]] TraceSink *const Telem = Cfg.Telemetry;
  [[maybe_unused]] PcProfile *const Prof = Cfg.Profile;
  [[maybe_unused]] uint32_t ProfPrevPc = ~0u;
  [[maybe_unused]] uint16_t ProfPrevOp = 0;
  assert(!(Hot && (PlanMayFireBefore || NeedEnergyCheck || BitVector ||
                   Telem || Prof)) &&
         "Hot instantiation requires no plan, no energy, no monitors, no "
         "telemetry");

  // Hot-loop state mirrored into locals (the members stay authoritative
  // for everything out of line): synced out before and back in after
  // every call that reads or writes Pc / tau / lifetime counters or can
  // replace the frame stack.
  uint32_t Pc = this->Pc;
  uint64_t Tau = this->Tau;
  uint64_t LifetimeOn = this->LifetimeOn;
  uint64_t OnCycles = R.OnCycles;
  // In the Hot instantiation every charge lands on OnCycles, Tau and
  // LifetimeOn alike (step costs and undo-log entries; there is no energy
  // model or failure plan to diverge them), so the loop keeps only
  // OnCycles as a running counter and derives the other two on demand
  // from their entry offsets — two fewer adds on every step. The offsets
  // are wrap-exact: (Tau - OnCycles) + OnCycles == Tau in uint64 even
  // when the subtraction wraps. Non-Hot keeps all three live (plans and
  // energy accounting read and reset them mid-run).
  uint64_t TauMinusOn = Tau - OnCycles;
  uint64_t LifeMinusOn = LifetimeOn - OnCycles;
  uint64_t Steps = R.Steps;
  uint32_t RegBase = FFrames.back().RegBase;
  // Current frame's register window. Every operand access previously went
  // through RegStack[RegBase + i] — re-loading the vector's data pointer
  // from memory each time, since the compiler must assume any opaque call
  // clobbers it. Hoisting the window into a local pointer drops a load
  // and an add from every register read and write; the refresh points are
  // exactly where the window can move: Call/Ret (resize + base change),
  // and SyncIn (a power-failure restore replaces the stack wholesale).
  RtValue *Regs = RegStack.data() + RegBase;
  const uint64_t MaxOnCycles = Cfg.MaxOnCyclesPerRun;
  // Headroom for the Hot batched chain prologue's budget guard: besides
  // the pre-summed base costs, each chained store can add at most one
  // undo-log charge, and a chain has at most MaxChainLen slots. A chain
  // whose worst case could cross the budget re-runs per-slot instead.
  [[maybe_unused]] const uint64_t ChainSlack =
      static_cast<uint64_t>(MaxChainLen) * Cfg.Costs.UndoLogEntryCost;
  const FlatInst *FI = Code + Pc;
  [[maybe_unused]] ThreadedOp TOp = ThreadedOp::Nop;
  uint64_t Cost = 0;

  auto SyncOut = [&] {
    this->Pc = Pc;
    if constexpr (Hot) {
      this->Tau = TauMinusOn + OnCycles;
      this->LifetimeOn = LifeMinusOn + OnCycles;
    } else {
      this->Tau = Tau;
      this->LifetimeOn = LifetimeOn;
    }
    R.OnCycles = OnCycles;
    R.Steps = Steps;
  };
  auto SyncIn = [&] {
    Pc = this->Pc;
    OnCycles = R.OnCycles;
    if constexpr (Hot) {
      TauMinusOn = this->Tau - OnCycles;
      LifeMinusOn = this->LifetimeOn - OnCycles;
    } else {
      Tau = this->Tau;
      LifetimeOn = this->LifetimeOn;
    }
    Steps = R.Steps;
    RegBase = FFrames.empty() ? 0 : FFrames.back().RegBase;
    Regs = RegStack.data() + RegBase;
  };

  // Raw operand payload — mirrors the flat loop's taint-off RawVal.
  auto RawVal = [&](const Operand &O) -> int64_t {
    if (O.isImm())
      return O.Imm;
    if (O.isReg())
      return Regs[O.Reg].V;
    return evalKindless().V;
  };

  // writeGlobalRaw with the tau/lifetime charges applied to the locals.
  auto StoreNvmRaw = [&](int G, int64_t Index, int64_t V) {
    assert(Index >= 0 && Index < static_cast<int64_t>(Img->globalSize(G)));
    if (ExecMode == Mode::Atomic) {
      if (Undo.logIfFirst(G, Index, nvmCell(G, Index))) {
        ++R.UndoLogEntries;
        OnCycles += Cfg.Costs.UndoLogEntryCost;
        if constexpr (!Hot) {
          LifetimeOn += Cfg.Costs.UndoLogEntryCost;
          Tau += Cfg.Costs.UndoLogEntryCost;
        }
      }
    }
    nvmCell(G, Index).V = V;
  };

  auto DivZeroTrap = [&](const FlatInst &I) {
    R.Trap = "division by zero at " + P.function(I.Func)->name() + "@" +
             std::to_string(I.Label);
  };
  auto BoundsTrap = [&](const FlatInst &I) {
    R.Trap = "array index out of bounds in " + P.function(I.Func)->name();
  };

// Current simulated time, valid in both instantiations: the Hot loop
// only advances OnCycles (see the locals above), so tau is its entry
// offset plus the counter; the non-Hot loop keeps Tau itself live.
#define OCELOT_TAU() (Hot ? TauMinusOn + OnCycles : Tau)

// One instruction's step header, identical to one flat-loop iteration
// header: budget check, failure injection, energy draw, cost/tau/step
// accounting, bit-vector use check, PC advance. Fused handlers invoke it
// a second time for their tail slot, so a power failure can still strike
// between the two halves (resuming at the tail's plain code).
#define OCELOT_STEP()                                                          \
  do {                                                                         \
    if (OnCycles > MaxOnCycles) {                                              \
      R.Trap = "on-cycle budget exceeded";                                     \
      goto LDone;                                                              \
    }                                                                          \
    FI = Code + Pc;                                                            \
    TOp = TOps[Pc];                                                            \
    if constexpr (!Hot) {                                                      \
      if (PlanMayFireBefore &&                                                 \
          Cfg.Plan.firesBefore(InstrRef(FI->Func, FI->Label), Rand)) {         \
        SyncOut();                                                             \
        powerFailFlat(R);                                                      \
        SyncIn();                                                              \
        goto LTop;                                                             \
      }                                                                        \
    }                                                                          \
    Cost = Costs[Pc];                                                          \
    if constexpr (!Hot) {                                                      \
      if (NeedEnergyCheck) {                                                   \
        this->LifetimeOn = LifetimeOn; /* periodic plans arm against it */     \
        if (checkEnergyAndPlan(Cost)) {                                        \
          ++ConsecutiveFailures;                                               \
          if (ConsecutiveFailures > Cfg.MaxAbortsPerRegion) {                  \
            R.Starved = true;                                                  \
            goto LDone;                                                        \
          }                                                                    \
          SyncOut();                                                           \
          powerFailFlat(R);                                                    \
          SyncIn();                                                            \
          goto LTop;                                                           \
        }                                                                      \
      }                                                                        \
      ConsecutiveFailures = 0;                                                 \
    }                                                                          \
    OnCycles += Cost;                                                          \
    if constexpr (!Hot) {                                                      \
      LifetimeOn += Cost;                                                      \
      Tau += Cost;                                                             \
    }                                                                          \
    ++Steps;                                                                   \
    if constexpr (!Hot) {                                                      \
      if (Prof) {                                                              \
        Prof->step(Pc, static_cast<uint16_t>(FI->Op), ProfPrevPc,              \
                   ProfPrevOp);                                                \
        ProfPrevPc = Pc;                                                       \
        ProfPrevOp = static_cast<uint16_t>(FI->Op);                            \
      }                                                                        \
      if (BitVector && FI->HasUseCheck)                                        \
        Monitor->onFreshUse(InstrRef(FI->Func, FI->Label), Tau);               \
    }                                                                          \
    ++Pc; /* Advance before executing (branches overwrite). */                 \
  } while (0)

// One chain slot's step header: OCELOT_STEP minus the dispatch-code load
// (a chain handler already knows what each slot executes; the TOps entry
// is only needed again when the chain ends and control re-dispatches).
// Keeping the full failure/energy/monitor ladder per slot is what lets a
// power failure strike between any two chain slots and resume at the
// interrupted PC's plain code.
#define OCELOT_CHAIN_STEP()                                                    \
  do {                                                                         \
    if (OnCycles > MaxOnCycles) {                                              \
      R.Trap = "on-cycle budget exceeded";                                     \
      goto LDone;                                                              \
    }                                                                          \
    FI = Code + Pc;                                                            \
    if constexpr (!Hot) {                                                      \
      if (PlanMayFireBefore &&                                                 \
          Cfg.Plan.firesBefore(InstrRef(FI->Func, FI->Label), Rand)) {         \
        SyncOut();                                                             \
        powerFailFlat(R);                                                      \
        SyncIn();                                                              \
        goto LTop;                                                             \
      }                                                                        \
    }                                                                          \
    Cost = Costs[Pc];                                                          \
    if constexpr (!Hot) {                                                      \
      if (NeedEnergyCheck) {                                                   \
        this->LifetimeOn = LifetimeOn; /* periodic plans arm against it */     \
        if (checkEnergyAndPlan(Cost)) {                                        \
          ++ConsecutiveFailures;                                               \
          if (ConsecutiveFailures > Cfg.MaxAbortsPerRegion) {                  \
            R.Starved = true;                                                  \
            goto LDone;                                                        \
          }                                                                    \
          SyncOut();                                                           \
          powerFailFlat(R);                                                    \
          SyncIn();                                                            \
          goto LTop;                                                           \
        }                                                                      \
      }                                                                        \
      ConsecutiveFailures = 0;                                                 \
    }                                                                          \
    OnCycles += Cost;                                                          \
    if constexpr (!Hot) {                                                      \
      LifetimeOn += Cost;                                                      \
      Tau += Cost;                                                             \
    }                                                                          \
    ++Steps;                                                                   \
    if constexpr (!Hot) {                                                      \
      if (Prof) {                                                              \
        Prof->step(Pc, static_cast<uint16_t>(FI->Op), ProfPrevPc,              \
                   ProfPrevOp);                                                \
        ProfPrevPc = Pc;                                                       \
        ProfPrevOp = static_cast<uint16_t>(FI->Op);                            \
      }                                                                        \
      if (BitVector && FI->HasUseCheck)                                        \
        Monitor->onFreshUse(InstrRef(FI->Func, FI->Label), Tau);               \
    }                                                                          \
    ++Pc; /* Advance before executing (branches overwrite). */                 \
  } while (0)

// The flat loop's post-instruction kind-less-operand conversion, with the
// site of \p INST (the instruction whose handler just ran). When the flag
// fired the run is over (the flat loop's next top-of-iteration check
// would exit), so this jumps straight to the epilogue — which lets the
// handler enders below skip the per-step trap re-check entirely.
#define OCELOT_KINDCHECK(INST)                                                 \
  if (SawKindlessOperand) {                                                    \
    SawKindlessOperand = false;                                                \
    if (R.Trap.empty())                                                        \
      R.Trap = "operand without a kind at " +                                  \
               P.function((INST).Func)->name() + "@" +                         \
               std::to_string((INST).Label) + " (lowering bug)";               \
    goto LDone;                                                                \
  }

// Ends a handler that just raised a trap. The flat loop sets the trap,
// runs the kind-less conversion (which must still clear the flag, and
// keeps the first trap), then exits at the next loop check — so: clear
// the flag, keep the trap, stop.
#define OCELOT_TRAPPED(INST)                                                   \
  do {                                                                         \
    OCELOT_KINDCHECK(INST)                                                     \
    goto LDone;                                                                \
  } while (0)

// Handler enders. OCELOT_NEXT for handlers that may have read a kind-less
// operand (any RawVal call); NOCHECK for handlers that provably cannot
// have set the flag.
//
// Both *replicate* the step header + dispatch instead of jumping back to
// a single shared loop head: with computed goto this gives every handler
// its own indirect branch, so the branch predictor learns per-handler
// successor distributions (the classic threaded-dispatch win; a shared
// dispatch site collapses them all into one unpredictable branch).
//
// Neither re-checks the flat loop's exit condition — every path that can
// make it true leaves the fast path on the spot: traps jump to LDone
// (budget and kind-less in the macros above, explicit ones via
// OCELOT_TRAPPED), Ret checks frame emptiness itself, and starvation and
// power failures happen out of line and resume through the fully-checked
// LTop.
#define OCELOT_NEXT_NOCHECK()                                                  \
  do {                                                                         \
    OCELOT_STEP();                                                             \
    OCELOT_DISPATCH();                                                         \
  } while (0)
#define OCELOT_NEXT(INST)                                                      \
  do {                                                                         \
    OCELOT_KINDCHECK(INST)                                                     \
    OCELOT_NEXT_NOCHECK();                                                     \
  } while (0)

#if defined(OCELOT_HAVE_COMPUTED_GOTO)
  // Direct-threaded dispatch: one indirect goto through a label table
  // indexed by the ThreadedOp code.
  static const void *const JumpTable[] = {
      &&LOp_Const,         &&LOp_Bin,          &&LOp_Un,
      &&LOp_Mov,           &&LOp_LoadG,        &&LOp_StoreG,
      &&LOp_LoadA,         &&LOp_StoreA,       &&LOp_LoadInd,
      &&LOp_StoreInd,      &&LOp_Input,        &&LOp_Call,
      &&LOp_Ret,           &&LOp_Br,           &&LOp_CondBr,
      &&LOp_Fresh,         &&LOp_Consistent,   &&LOp_AtomicStart,
      &&LOp_AtomicEnd,     &&LOp_Output,       &&LOp_Nop,
      &&LOp_FuseBinCondBr, &&LOp_FuseBinStoreG, &&LOp_FuseBinStoreA,
      &&LOp_FuseLoadGBin,  &&LOp_FuseLoadABin, &&LOp_FuseConstStoreG,
      &&LOp_FuseLoadGStoreG, &&LOp_FuseMovBin, &&LOp_FuseBinMov,
      &&LOp_FuseMovBr,     &&LOp_FuseBinBin,   &&LOp_FuseMovLoadA,
      &&LOp_FuseBinLoadA,  &&LOp_FuseLoadALoadA, &&LOp_FuseMovConsistent,
      &&LOp_FuseConsistentBin, &&LOp_FuseInputMov, &&LOp_FuseMovInput,
      &&LOp_FuseConsistentInput, &&LOp_FuseMovMov,
      &&LOp_FuseFreshConsistent, &&LOp_Chain3,   &&LOp_Chain4,
      &&LOp_Chain5,        &&LOp_Chain6};
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) == NumThreadedOps,
                "jump table must cover every ThreadedOp");
#define OCELOT_CASE(name) LOp_##name
#define OCELOT_DISPATCH() goto *JumpTable[static_cast<size_t>(TOp)]
#else
// Portable fallback: a switch in a loop. Same handlers, one extra
// bounds-checkable branch per dispatch.
#define OCELOT_CASE(name) case ThreadedOp::name
#define OCELOT_DISPATCH() goto LSwitch
#endif

  goto LTop;

LTop:
  if (FFrames.empty() || R.Starved || !R.Trap.empty())
    goto LDone;
  OCELOT_STEP();
  OCELOT_DISPATCH();

#if !defined(OCELOT_HAVE_COMPUTED_GOTO)
LSwitch:
  switch (TOp) {
#endif

  OCELOT_CASE(Const) : {
    Regs[FI->Dst].V = FI->A.Imm;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Mov) : {
    Regs[FI->Dst].V = RawVal(FI->A);
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Un) : {
    const int64_t AV = RawVal(FI->A);
    int64_t V = 0;
    switch (FI->UnKind) {
    case UnOp::Neg:
      V = -AV;
      break;
    case UnOp::Not:
      V = ~AV;
      break;
    case UnOp::LNot:
      V = AV == 0 ? 1 : 0;
      break;
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Bin) : {
    const int64_t AV = RawVal(FI->A);
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, AV, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(LoadG) : {
    Regs[FI->Dst].V =
        nvmCell(FI->GlobalId, 0).V;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(StoreG) : {
    StoreNvmRaw(FI->GlobalId, 0, RawVal(FI->A));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(LoadA) : {
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(StoreA) : {
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    StoreNvmRaw(FI->GlobalId, Idx, RawVal(FI->B));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(LoadInd) : {
    const int64_t G = RawVal(FI->A);
    assert(G >= 0 && G < P.numGlobals() && "bad reference value");
    Regs[FI->Dst].V =
        nvmCell(static_cast<int>(G), 0).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(StoreInd) : {
    const int64_t G = RawVal(FI->A);
    assert(G >= 0 && G < P.numGlobals() && "bad reference value");
    StoreNvmRaw(static_cast<int>(G), 0, RawVal(FI->B));
    OCELOT_NEXT(*FI);
  }

// The complete Input instruction body (replay-or-sample, register write,
// observer callbacks, trace event), shared by the plain handler and the
// Input-fused pairs below. Leaves the sampled value in \p RESULT_, a
// declared int64_t local; traps exit via goto LDone like every handler.
// The trace event is only materialized under RecordTrace — it was never
// observable otherwise.
#define OCELOT_INPUT_BODY(RESULT_)                                             \
  do {                                                                         \
    if (Replay) {                                                              \
      if (ReplayIdx >= Replay->size()) {                                       \
        R.Trap = "replay input queue exhausted";                               \
        goto LDone;                                                            \
      }                                                                        \
      const InputEvent &RE = (*Replay)[ReplayIdx++];                           \
      if (RE.Sensor != FI->SensorId) {                                         \
        R.Trap = "replay sensor mismatch";                                     \
        goto LDone;                                                            \
      }                                                                        \
      RESULT_ = RE.Value;                                                      \
    } else {                                                                   \
      RESULT_ = Sensors->sample(FI->SensorId, OCELOT_TAU());                   \
    }                                                                          \
    Regs[FI->Dst].V = RESULT_;                                                 \
    if constexpr (!Hot) {                                                      \
      if (Telem)                                                               \
        Telem->sensorRead(Tau, FI->SensorId, RESULT_);                         \
    }                                                                          \
    if (BitVector)                                                             \
      Monitor->onInput(InstrRef(FI->Func, FI->Label),                          \
                       currentChainFlat(FI->Func, FI->Label), FI->SensorId,    \
                       OCELOT_TAU());                                          \
    if (Cfg.RecordTrace) {                                                     \
      InputEvent E;                                                            \
      E.Sensor = FI->SensorId;                                                 \
      E.Tau = OCELOT_TAU();                                                    \
      E.Epoch = Epoch;                                                         \
      E.Value = RESULT_;                                                       \
      if (ExecMode == Mode::Atomic)                                            \
        PendingInputs.push_back(E);                                            \
      else                                                                     \
        Committed.Inputs.push_back(E);                                         \
    }                                                                          \
  } while (0)

  OCELOT_CASE(Input) : {
    int64_t V;
    OCELOT_INPUT_BODY(V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Call) : {
    // Pc already points at the fall-through instruction: the return
    // address; Code[ReturnPc - 1] recovers this call on return.
    const uint32_t NewBase = static_cast<uint32_t>(RegStack.size());
    RegStack.resize(NewBase + FI->CalleeNumRegs);
    Regs = RegStack.data() + RegBase; // resize may have moved the stack
    const Operand *Args = Img->args(*FI);
    for (uint32_t A = 0; A < FI->ArgsCount; ++A)
      RegStack[NewBase + A].V = RawVal(Args[A]);
    FFrames.push_back(FlatFrame{/*ReturnPc=*/Pc, /*RegBase=*/NewBase});
    RegBase = NewBase;
    Regs = RegStack.data() + NewBase;
    Pc = FI->CalleeEntryPc;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Ret) : {
    const FlatFrame F = FFrames.back();
    const int64_t V = FI->A.isNone() ? 0 : RawVal(FI->A);
    FFrames.pop_back();
    RegStack.resize(F.RegBase);
    if (!FFrames.empty()) {
      Pc = F.ReturnPc;
      RegBase = FFrames.back().RegBase;
      Regs = RegStack.data() + RegBase; // back to the caller's window
      const FlatInst &CallI = Code[F.ReturnPc - 1];
      if (CallI.Dst >= 0 && !FI->A.isNone())
        Regs[CallI.Dst].V = V;
    }
    OCELOT_KINDCHECK(*FI)
    if (FFrames.empty())
      goto LDone; // Main returned: the only fast-path run completion.
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Br) : {
    Pc = FI->Target;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(CondBr) : {
    const int64_t V = RawVal(FI->A);
    Pc = V != 0 ? FI->Target : FI->Target2;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Fresh) : {
    OCELOT_NEXT_NOCHECK(); // Checked at uses.
  }

  OCELOT_CASE(Consistent) : {
    OCELOT_NEXT_NOCHECK(); // Formal-monitor marker: taint-on only.
  }

  OCELOT_CASE(AtomicStart) : {
    SyncOut(); // Snapshot captures the member Pc / tau charges land there.
    enterAtomicFlat(*FI, R);
    SyncIn();
    goto LTop; // Re-enter through the fully-checked loop head.
  }

  OCELOT_CASE(AtomicEnd) : {
    if constexpr (!Hot)
      SyncOut(); // commitAtomic's telemetry hook reads the member tau.
    commitAtomic(R);
    goto LTop; // Re-enter through the fully-checked loop head.
  }

  OCELOT_CASE(Output) : {
    const Operand *Args = Img->args(*FI);
    if (!Cfg.RecordTrace) {
      // Args are still evaluated (same trap conversion for kind-less
      // operands), but the event is never materialized.
      for (uint32_t A = 0; A < FI->ArgsCount; ++A)
        (void)RawVal(Args[A]);
      OCELOT_NEXT(*FI);
    }
    OutputEvent E;
    E.Kind = FI->OutKind;
    E.Tau = OCELOT_TAU();
    E.Args.reserve(FI->ArgsCount);
    for (uint32_t A = 0; A < FI->ArgsCount; ++A)
      E.Args.push_back(RawVal(Args[A]));
    if (ExecMode == Mode::Atomic)
      PendingOutputs.push_back(E);
    else
      Committed.Outputs.push_back(std::move(E));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Nop) : {
    OCELOT_NEXT_NOCHECK();
  }

  // -- Superinstructions --------------------------------------------------
  // Each executes head then tail with the full step header replicated for
  // the tail (OCELOT_STEP), forwarding the head's result through a local
  // instead of re-reading the register file.

  OCELOT_CASE(FuseBinCondBr) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the CondBr testing H.Dst.
    Pc = V != 0 ? FI->Target : FI->Target2;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseBinStoreG) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the StoreG of H.Dst.
    StoreNvmRaw(FI->GlobalId, 0, V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseBinStoreA) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the StoreA whose value is H.Dst.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    StoreNvmRaw(FI->GlobalId, Idx, V);
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseLoadGBin) : {
    const FlatInst &H = *FI;
    const int64_t V0 = nvmCell(H.GlobalId, 0).V;
    Regs[H.Dst].V = V0;
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseLoadABin) : {
    const FlatInst &H = *FI;
    const int64_t Idx = RawVal(H.A);
    if (Idx < 0 || Idx >= static_cast<int64_t>(Img->globalSize(H.GlobalId))) {
      BoundsTrap(H);
      OCELOT_TRAPPED(H);
    }
    const int64_t V0 = nvmCell(H.GlobalId, Idx).V;
    Regs[H.Dst].V = V0;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseConstStoreG) : {
    const FlatInst &H = *FI;
    const int64_t V = H.A.Imm;
    Regs[H.Dst].V = V;
    OCELOT_STEP(); // Tail: the StoreG of H.Dst.
    StoreNvmRaw(FI->GlobalId, 0, V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseLoadGStoreG) : {
    const FlatInst &H = *FI;
    const int64_t V = nvmCell(H.GlobalId, 0).V;
    Regs[H.Dst].V = V;
    OCELOT_STEP(); // Tail: the StoreG of H.Dst.
    StoreNvmRaw(FI->GlobalId, 0, V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseMovBin) : {
    const FlatInst &H = *FI;
    const int64_t V0 = RawVal(H.A);
    Regs[H.Dst].V = V0;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseBinMov) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Mov copying H.Dst.
    Regs[FI->Dst].V = V;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseMovBr) : {
    const FlatInst &H = *FI;
    Regs[H.Dst].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the unconditional Br.
    Pc = FI->Target;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseBinBin) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V0 = 0;
    if (!binEval(H.BinKind, AV, BV, V0)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V = V0;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV2 = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV2, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  // Dispatch-elision pairs: no forwarding condition, so the tail executes
  // the plain handler body against the (already updated) register file.

  OCELOT_CASE(FuseMovLoadA) : {
    const FlatInst &H = *FI;
    Regs[H.Dst].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a LoadA.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseBinLoadA) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a LoadA.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseLoadALoadA) : {
    const FlatInst &H = *FI;
    const int64_t Idx0 = RawVal(H.A);
    if (Idx0 < 0 ||
        Idx0 >= static_cast<int64_t>(Img->globalSize(H.GlobalId))) {
      BoundsTrap(H);
      OCELOT_TRAPPED(H);
    }
    Regs[H.Dst].V =
        nvmCell(H.GlobalId, Idx0).V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a second LoadA.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseMovConsistent) : {
    const FlatInst &H = *FI;
    Regs[H.Dst].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a Consistent marker (taint-off no-op).
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseConsistentBin) : {
    OCELOT_STEP(); // Head was a no-op Consistent marker; tail: a Bin.
    const int64_t AV = RawVal(FI->A);
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, AV, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    Regs[FI->Dst].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseInputMov) : {
    int64_t V;
    OCELOT_INPUT_BODY(V);
    OCELOT_STEP(); // Tail: a Mov copying the freshly sampled register.
    Regs[FI->Dst].V = V;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseMovInput) : {
    const FlatInst &H = *FI;
    Regs[H.Dst].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: an Input.
    int64_t V;
    OCELOT_INPUT_BODY(V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseConsistentInput) : {
    OCELOT_STEP(); // Head was a no-op Consistent marker; tail: an Input.
    int64_t V;
    OCELOT_INPUT_BODY(V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseMovMov) : {
    const FlatInst &H = *FI;
    Regs[H.Dst].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a second Mov against the updated register file.
    Regs[FI->Dst].V = RawVal(FI->A);
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseFreshConsistent) : {
    OCELOT_STEP(); // Both slots are taint-off no-op markers.
    OCELOT_NEXT_NOCHECK();
  }

  // -- Superblock chains --------------------------------------------------
  // A ChainN head covers N straight-line slots under one dispatch. Each
  // slot runs the full step header (OCELOT_CHAIN_STEP) then one arm of
  // the slot executor below. The executor mirrors the plain handlers of
  // every chainable opcode exactly — same trap strings, same undo-log
  // charges, same kind-less conversion points — plus the in-chain
  // register cache: CacheReg/CacheVal mirror the most recently written
  // destination register, so a slot reading its predecessor's result
  // skips the register-file load. The register file itself is written at
  // every slot (reads are elided, writes never), keeping mid-chain
  // power-failure resume and region snapshots sound.

// Operand read through the chain cache: a register operand that names the
// cached destination reads the local; anything else falls back to the
// plain path (register file, immediate, or the kind-less conversion).
#define OCELOT_CHAIN_VAL(O)                                                    \
  ((O).isReg()                                                                 \
       ? ((O).Reg == CacheReg                                                  \
              ? CacheVal                                                       \
              : Regs[(O).Reg].V)            \
       : ((O).isImm() ? (O).Imm : evalKindless().V))

// Undoes the pre-charged accounting of the chain slots that will *not*
// execute because the current slot trapped (Hot batched mode only; see
// the chain handlers). At a trap in slot k the header has advanced Pc to
// k+1, and interior slots never overwrite Pc (Br/CondBr only occupy the
// final slot, which uses the plain trap macros), so [Pc, ChainEnd) is
// exactly the unexecuted remainder.
#define OCELOT_CHAIN_UNDO_REST()                                               \
  do {                                                                         \
    uint64_t GiveBack = 0;                                                     \
    for (uint32_t Q = Pc; Q < ChainEnd; ++Q)                                   \
      GiveBack += Costs[Q];                                                    \
    OnCycles -= GiveBack; /* Hot-only: tau/lifetime derive from this. */       \
    Steps -= ChainEnd - Pc;                                                    \
  } while (0)

// Trap enders for batch-charged interior slots: give back the unexecuted
// remainder, then trap exactly like the per-slot path.
#define OCELOT_CHAIN_TRAPPED_FIXUP(INST)                                       \
  do {                                                                         \
    OCELOT_CHAIN_UNDO_REST();                                                  \
    OCELOT_TRAPPED(INST);                                                      \
  } while (0)
#define OCELOT_CHAIN_KINDCHECK_FIXUP(INST)                                     \
  if (SawKindlessOperand) {                                                    \
    OCELOT_CHAIN_UNDO_REST();                                                  \
  }                                                                            \
  OCELOT_KINDCHECK(INST)

// One chain slot's execution, switching on the slot's base opcode. Every
// expansion is its own switch site, so each unrolled slot position gets
// its own branch-prediction state (the same reason OCELOT_NEXT replicates
// the dispatch). Only the builder-whitelisted opcodes appear; Br/CondBr
// only ever occupy a chain's final slot (builder invariant). The trap
// enders are parameters so the Hot batched path can substitute the
// accounting-fixup variants on interior slots.
#define OCELOT_CHAIN_EXEC(TRAP_, KC_)                                          \
  switch (FI->Op) {                                                            \
  case Opcode::Const: {                                                        \
    const int64_t V = FI->A.Imm;                                               \
    Regs[FI->Dst].V = V;                    \
    CacheReg = FI->Dst;                                                        \
    CacheVal = V;                                                              \
    break;                                                                     \
  }                                                                            \
  case Opcode::Mov: {                                                          \
    const int64_t V = OCELOT_CHAIN_VAL(FI->A);                                 \
    Regs[FI->Dst].V = V;                    \
    CacheReg = FI->Dst;                                                        \
    CacheVal = V;                                                              \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  case Opcode::Un: {                                                           \
    const int64_t AV = OCELOT_CHAIN_VAL(FI->A);                                \
    int64_t V = 0;                                                             \
    switch (FI->UnKind) {                                                      \
    case UnOp::Neg:                                                            \
      V = -AV;                                                                 \
      break;                                                                   \
    case UnOp::Not:                                                            \
      V = ~AV;                                                                 \
      break;                                                                   \
    case UnOp::LNot:                                                           \
      V = AV == 0 ? 1 : 0;                                                     \
      break;                                                                   \
    }                                                                          \
    Regs[FI->Dst].V = V;                    \
    CacheReg = FI->Dst;                                                        \
    CacheVal = V;                                                              \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  case Opcode::Bin: {                                                          \
    const int64_t AV = OCELOT_CHAIN_VAL(FI->A);                                \
    const int64_t BV = OCELOT_CHAIN_VAL(FI->B);                                \
    int64_t V = 0;                                                             \
    if (!binEval(FI->BinKind, AV, BV, V)) {                                    \
      DivZeroTrap(*FI);                                                        \
      TRAP_(*FI);                                                              \
    }                                                                          \
    Regs[FI->Dst].V = V;                    \
    CacheReg = FI->Dst;                                                        \
    CacheVal = V;                                                              \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  case Opcode::LoadG: {                                                        \
    const int64_t V = nvmCell(FI->GlobalId, 0).V;                              \
    Regs[FI->Dst].V = V;                    \
    CacheReg = FI->Dst;                                                        \
    CacheVal = V;                                                              \
    break;                                                                     \
  }                                                                            \
  case Opcode::StoreG: {                                                       \
    StoreNvmRaw(FI->GlobalId, 0, OCELOT_CHAIN_VAL(FI->A));                     \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  case Opcode::LoadA: {                                                        \
    const int64_t Idx = OCELOT_CHAIN_VAL(FI->A);                               \
    if (Idx < 0 ||                                                             \
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {          \
      BoundsTrap(*FI);                                                         \
      TRAP_(*FI);                                                              \
    }                                                                          \
    const int64_t V = nvmCell(FI->GlobalId, Idx).V;                            \
    Regs[FI->Dst].V = V;                    \
    CacheReg = FI->Dst;                                                        \
    CacheVal = V;                                                              \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  case Opcode::StoreA: {                                                       \
    const int64_t Idx = OCELOT_CHAIN_VAL(FI->A);                               \
    if (Idx < 0 ||                                                             \
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {          \
      BoundsTrap(*FI);                                                         \
      TRAP_(*FI);                                                              \
    }                                                                          \
    StoreNvmRaw(FI->GlobalId, Idx, OCELOT_CHAIN_VAL(FI->B));                   \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  case Opcode::Br: {                                                           \
    Pc = FI->Target;                                                           \
    break;                                                                     \
  }                                                                            \
  case Opcode::CondBr: {                                                       \
    const int64_t V = OCELOT_CHAIN_VAL(FI->A);                                 \
    Pc = V != 0 ? FI->Target : FI->Target2;                                    \
    KC_(*FI)                                                                   \
    break;                                                                     \
  }                                                                            \
  default: /* Fresh / Consistent / Nop: no-ops off the taint path. */          \
    break;                                                                     \
  }

// One interior/final chain slot: full step header, then the executor.
// This is the exact-accounting path — every instantiation that can
// observe per-slot state (failure plans, energy, monitors, profiling)
// runs it, as does the Hot path when a chain might brush the budget.
#define OCELOT_CHAIN_SLOT()                                                    \
  do {                                                                         \
    OCELOT_CHAIN_STEP();                                                       \
    OCELOT_CHAIN_EXEC(OCELOT_TRAPPED, OCELOT_KINDCHECK)                        \
  } while (0)

// The Hot batched chain prologue, run right after slot 0's executor.
// Charges the remaining NSLOTS slots' base costs in one shot so the
// interior slots can skip the per-slot accounting ladder entirely.
//
// Soundness: in the Hot instantiation nothing observes OnCycles / Tau /
// LifetimeOn / Steps between slots (no failure plan, no energy model, no
// monitors, no profiler; Input/Output are not chainable so no handler
// reads Tau), so charging early commutes with the slots' own effects
// (undo-log charges are additions, additions commute). The only per-slot
// check the ladder performs in Hot mode is the budget check — the guard
// below proves every skipped check false by requiring headroom for the
// batched costs plus the worst-case undo-log charges (ChainSlack). A
// chain too close to the budget falls back to plain re-dispatch at the
// next slot: OCELOT_NEXT_NOCHECK() re-enters the fully-checked per-slot
// path, which is exact. Traps inside the batch give back the unexecuted
// remainder (OCELOT_CHAIN_UNDO_REST), restoring per-slot totals.
#define OCELOT_CHAIN_BATCH(NSLOTS)                                             \
  uint64_t Rest = 0;                                                           \
  for (uint32_t Q = Pc; Q < Pc + (NSLOTS); ++Q)                                \
    Rest += Costs[Q];                                                          \
  if (OnCycles > MaxOnCycles || Rest + ChainSlack > MaxOnCycles - OnCycles) {  \
    OCELOT_NEXT_NOCHECK();                                                     \
  }                                                                            \
  const uint32_t ChainEnd = Pc + (NSLOTS);                                     \
  OnCycles += Rest; /* Hot-only: tau/lifetime derive from this. */             \
  Steps += (NSLOTS)

// A batch-charged interior slot: just the instruction fetch and the PC
// advance — accounting already happened in OCELOT_CHAIN_BATCH. Interior
// slots are never branches (builder invariant), so Pc is never
// overwritten and the trap fixups can name [Pc, ChainEnd) as the
// unexecuted remainder.
#define OCELOT_CHAIN_FAST_SLOT()                                               \
  do {                                                                         \
    FI = Code + Pc;                                                            \
    ++Pc;                                                                      \
    OCELOT_CHAIN_EXEC(OCELOT_CHAIN_TRAPPED_FIXUP,                              \
                      OCELOT_CHAIN_KINDCHECK_FIXUP)                            \
  } while (0)

// The batch-charged final slot. Nothing after it is pre-charged, so it
// traps through the plain macros — which also sidesteps the fixup's
// Pc-window arithmetic when a Br/CondBr here overwrites Pc.
#define OCELOT_CHAIN_FINAL_SLOT()                                              \
  do {                                                                         \
    FI = Code + Pc;                                                            \
    ++Pc;                                                                      \
    OCELOT_CHAIN_EXEC(OCELOT_TRAPPED, OCELOT_KINDCHECK)                        \
  } while (0)

  OCELOT_CASE(Chain3) : {
    int32_t CacheReg = -1;
    int64_t CacheVal = 0;
    // Slot 0: stepped by the dispatching OCELOT_STEP.
    OCELOT_CHAIN_EXEC(OCELOT_TRAPPED, OCELOT_KINDCHECK)
    if constexpr (Hot) {
      OCELOT_CHAIN_BATCH(2);
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FINAL_SLOT();
    } else {
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
    }
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Chain4) : {
    int32_t CacheReg = -1;
    int64_t CacheVal = 0;
    OCELOT_CHAIN_EXEC(OCELOT_TRAPPED, OCELOT_KINDCHECK)
    if constexpr (Hot) {
      OCELOT_CHAIN_BATCH(3);
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FINAL_SLOT();
    } else {
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
    }
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Chain5) : {
    int32_t CacheReg = -1;
    int64_t CacheVal = 0;
    OCELOT_CHAIN_EXEC(OCELOT_TRAPPED, OCELOT_KINDCHECK)
    if constexpr (Hot) {
      OCELOT_CHAIN_BATCH(4);
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FINAL_SLOT();
    } else {
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
    }
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Chain6) : {
    int32_t CacheReg = -1;
    int64_t CacheVal = 0;
    OCELOT_CHAIN_EXEC(OCELOT_TRAPPED, OCELOT_KINDCHECK)
    if constexpr (Hot) {
      OCELOT_CHAIN_BATCH(5);
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FAST_SLOT();
      OCELOT_CHAIN_FINAL_SLOT();
    } else {
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
      OCELOT_CHAIN_SLOT();
    }
    OCELOT_NEXT_NOCHECK();
  }

#if !defined(OCELOT_HAVE_COMPUTED_GOTO)
  }
  goto LDone; // Unreachable: every ThreadedOp has a case.
#endif

LDone:
  SyncOut();

  R.Completed = FFrames.empty() && R.Trap.empty() && !R.Starved;
  R.TraceData = std::move(Committed);
  Committed.clear();
  R.FinalTau = OCELOT_TAU();

  R.ViolatedFresh = Monitor->runFreshViolation();
  R.ViolatedConsistent = Monitor->runConsistentViolation();
  const auto &AllViolations = Monitor->violations();
  for (size_t I = ViolationsBefore; I < AllViolations.size(); ++I)
    R.Violations.push_back(AllViolations[I]);
  return R;

#undef OCELOT_TAU
#undef OCELOT_STEP
#undef OCELOT_CHAIN_STEP
#undef OCELOT_CHAIN_VAL
#undef OCELOT_CHAIN_EXEC
#undef OCELOT_CHAIN_SLOT
#undef OCELOT_CHAIN_UNDO_REST
#undef OCELOT_CHAIN_TRAPPED_FIXUP
#undef OCELOT_CHAIN_KINDCHECK_FIXUP
#undef OCELOT_CHAIN_BATCH
#undef OCELOT_CHAIN_FAST_SLOT
#undef OCELOT_CHAIN_FINAL_SLOT
#undef OCELOT_INPUT_BODY
#undef OCELOT_KINDCHECK
#undef OCELOT_TRAPPED
#undef OCELOT_NEXT
#undef OCELOT_NEXT_NOCHECK
#undef OCELOT_CASE
#undef OCELOT_DISPATCH
}

template RunResult Interpreter::runThreadedLoop<true>();
template RunResult Interpreter::runThreadedLoop<false>();
