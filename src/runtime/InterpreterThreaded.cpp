//===- InterpreterThreaded.cpp - Computed-goto dispatch with superinstructions ---===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The threaded dispatch engine: computed-goto direct-threaded dispatch
/// (with a portable switch fallback when the compiler lacks the labels-as-
/// values extension) over the image's ThreadedOp view, in which the
/// build-time peephole pass fused hot adjacent opcode pairs into
/// superinstructions (ExecutableImage::buildThreadedView).
///
/// Like the flat engine it accelerates, every rule here must mirror the
/// tree engine exactly — same cost charging, same RNG draw sequence, same
/// monitor callbacks, same trap strings — so the three engines stay
/// bitwise-identical on every benchmark x model x plan x seed cell
/// (pinned by ExecImageTest and DifferentialFuzzTest). Three properties
/// carry that guarantee through fusion:
///
///  * A fused handler replicates the complete per-instruction step
///    header (failure injection, energy draw, cost/tau charging, monitor
///    checks) for *both* slots — only the dispatch between them is
///    elided — so a power failure can still strike between head and tail.
///  * A pair's tail keeps its plain dispatch code. A JIT reboot resumes
///    at the interrupted PC, which may be mid-pair; dispatching the
///    tail's plain code there is exactly the unfused semantics.
///  * Fusion never spans a leader (block start or post-call resume
///    point), so every branch, return and region re-entry lands on a
///    plain code.
///
/// The loop is only ever instantiated taint-off; runOnceThreaded routes
/// taint-tracking configs to the flat loop's taint instantiation, where
/// dispatch cost is noise next to taint propagation. The Hot
/// instantiation additionally assumes no failure plan, no energy model
/// and no monitors — the steady-state throughput configuration — and
/// keeps PC/tau/lifetime counters in locals the whole run.
///
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "telemetry/Profile.h"
#include "telemetry/TraceSink.h"

#include <cassert>

using namespace ocelot;

namespace {

/// Exactly the flat engine's Bin arithmetic. Returns false on division
/// or modulo by zero; the caller raises the trap with its own site.
inline bool binEval(BinOp K, int64_t AV, int64_t BV, int64_t &V) {
  switch (K) {
  case BinOp::Add:
    V = AV + BV;
    return true;
  case BinOp::Sub:
    V = AV - BV;
    return true;
  case BinOp::Mul:
    V = AV * BV;
    return true;
  case BinOp::Div:
    if (BV == 0)
      return false;
    V = AV / BV;
    return true;
  case BinOp::Mod:
    if (BV == 0)
      return false;
    V = AV % BV;
    return true;
  case BinOp::And:
    V = AV & BV;
    return true;
  case BinOp::Or:
    V = AV | BV;
    return true;
  case BinOp::Xor:
    V = AV ^ BV;
    return true;
  case BinOp::Shl:
    V = AV << (BV & 63);
    return true;
  case BinOp::Shr:
    V = AV >> (BV & 63);
    return true;
  case BinOp::Eq:
    V = AV == BV;
    return true;
  case BinOp::Ne:
    V = AV != BV;
    return true;
  case BinOp::Lt:
    V = AV < BV;
    return true;
  case BinOp::Le:
    V = AV <= BV;
    return true;
  case BinOp::Gt:
    V = AV > BV;
    return true;
  case BinOp::Ge:
    V = AV >= BV;
    return true;
  case BinOp::LAnd:
    V = (AV != 0) && (BV != 0);
    return true;
  case BinOp::LOr:
    V = (AV != 0) || (BV != 0);
    return true;
  }
  return true; // Unreachable; silences -Wreturn-type.
}

} // namespace

RunResult Interpreter::runOnceThreaded() {
  // Taint tracking (the formal monitor forces it on) runs the flat
  // loop's taint instantiation: identical machine behavior, and taint
  // propagation dwarfs dispatch cost anyway.
  if (Cfg.TrackTaint)
    return runFlatLoop<true>();
  const bool Hot = Cfg.Plan.kind() == FailurePlan::Kind::None &&
                   Energy == nullptr && !Cfg.MonitorBitVector &&
                   !Cfg.MonitorFormal && !Cfg.Telemetry && !Cfg.Profile;
  return Hot ? runThreadedLoop<true>() : runThreadedLoop<false>();
}

template <bool Hot> RunResult Interpreter::runThreadedLoop() {
  RunResult R;
  Cfg.Plan.resetRun();
  Monitor->beginRun();
  size_t ViolationsBefore = Monitor->violations().size();

  FFrames.clear();
  FFrames.push_back(FlatFrame{/*ReturnPc=*/0, /*RegBase=*/0});
  RegStack.assign(Img->mainNumRegs(), RtValue());
  this->Pc = Img->mainEntryPc();
  ExecMode = Mode::Jit;
  Natom = 0;
  Undo.clear();
  PendingInputs.clear();
  PendingOutputs.clear();
  Committed.clear();
  AbortsThisRegion = 0;
  CurrentRegion = -1;
  [[maybe_unused]] uint64_t ConsecutiveFailures = 0;

  const FlatInst *const Code = Img->code().data();
  const ThreadedOp *const TOps = Img->threadedOps().data();
  const uint64_t *const Costs = CostTable;
  assert(Img->threadedOps().size() == Img->code().size());
  assert(!Cfg.TrackTaint && "threaded loop is the taint-free fast path");

  // Per-run constants, hoisted exactly like the flat loop's; the Hot
  // instantiation drops the checks they guard entirely (asserted below).
  [[maybe_unused]] const FailurePlan::Kind PlanKind = Cfg.Plan.kind();
  [[maybe_unused]] const bool PlanMayFireBefore =
      PlanKind == FailurePlan::Kind::Pathological ||
      PlanKind == FailurePlan::Kind::Random;
  [[maybe_unused]] const bool NeedEnergyCheck =
      Energy != nullptr || PlanKind == FailurePlan::Kind::Periodic;
  const bool BitVector = Cfg.MonitorBitVector;
  // Telemetry/profiling observers: the Hot instantiation excludes them
  // (runOnceThreaded routes observed runs here as non-Hot), so the Hot
  // fast path carries not even the null tests.
  [[maybe_unused]] TraceSink *const Telem = Cfg.Telemetry;
  [[maybe_unused]] PcProfile *const Prof = Cfg.Profile;
  [[maybe_unused]] uint32_t ProfPrevPc = ~0u;
  [[maybe_unused]] uint16_t ProfPrevOp = 0;
  assert(!(Hot && (PlanMayFireBefore || NeedEnergyCheck || BitVector ||
                   Telem || Prof)) &&
         "Hot instantiation requires no plan, no energy, no monitors, no "
         "telemetry");

  // Hot-loop state mirrored into locals (the members stay authoritative
  // for everything out of line): synced out before and back in after
  // every call that reads or writes Pc / tau / lifetime counters or can
  // replace the frame stack.
  uint32_t Pc = this->Pc;
  uint64_t Tau = this->Tau;
  uint64_t LifetimeOn = this->LifetimeOn;
  uint64_t OnCycles = R.OnCycles;
  uint64_t Steps = R.Steps;
  uint32_t RegBase = FFrames.back().RegBase;
  const uint64_t MaxOnCycles = Cfg.MaxOnCyclesPerRun;
  const FlatInst *FI = Code + Pc;
  [[maybe_unused]] ThreadedOp TOp = ThreadedOp::Nop;
  uint64_t Cost = 0;

  auto SyncOut = [&] {
    this->Pc = Pc;
    this->Tau = Tau;
    this->LifetimeOn = LifetimeOn;
    R.OnCycles = OnCycles;
    R.Steps = Steps;
  };
  auto SyncIn = [&] {
    Pc = this->Pc;
    Tau = this->Tau;
    LifetimeOn = this->LifetimeOn;
    OnCycles = R.OnCycles;
    Steps = R.Steps;
    RegBase = FFrames.empty() ? 0 : FFrames.back().RegBase;
  };

  // Raw operand payload — mirrors the flat loop's taint-off RawVal.
  auto RawVal = [&](const Operand &O) -> int64_t {
    if (O.isImm())
      return O.Imm;
    if (O.isReg())
      return RegStack[RegBase + static_cast<size_t>(O.Reg)].V;
    return evalKindless().V;
  };

  // writeGlobalRaw with the tau/lifetime charges applied to the locals.
  auto StoreNvmRaw = [&](int G, int64_t Index, int64_t V) {
    assert(Index >= 0 && Index < static_cast<int64_t>(Img->globalSize(G)));
    if (ExecMode == Mode::Atomic) {
      if (Undo.logIfFirst(G, Index, nvmCell(G, Index))) {
        ++R.UndoLogEntries;
        OnCycles += Cfg.Costs.UndoLogEntryCost;
        LifetimeOn += Cfg.Costs.UndoLogEntryCost;
        Tau += Cfg.Costs.UndoLogEntryCost;
      }
    }
    nvmCell(G, Index).V = V;
  };

  auto DivZeroTrap = [&](const FlatInst &I) {
    R.Trap = "division by zero at " + P.function(I.Func)->name() + "@" +
             std::to_string(I.Label);
  };
  auto BoundsTrap = [&](const FlatInst &I) {
    R.Trap = "array index out of bounds in " + P.function(I.Func)->name();
  };

// One instruction's step header, identical to one flat-loop iteration
// header: budget check, failure injection, energy draw, cost/tau/step
// accounting, bit-vector use check, PC advance. Fused handlers invoke it
// a second time for their tail slot, so a power failure can still strike
// between the two halves (resuming at the tail's plain code).
#define OCELOT_STEP()                                                          \
  do {                                                                         \
    if (OnCycles > MaxOnCycles) {                                              \
      R.Trap = "on-cycle budget exceeded";                                     \
      goto LDone;                                                              \
    }                                                                          \
    FI = Code + Pc;                                                            \
    TOp = TOps[Pc];                                                            \
    if constexpr (!Hot) {                                                      \
      if (PlanMayFireBefore &&                                                 \
          Cfg.Plan.firesBefore(InstrRef(FI->Func, FI->Label), Rand)) {         \
        SyncOut();                                                             \
        powerFailFlat(R);                                                      \
        SyncIn();                                                              \
        goto LTop;                                                             \
      }                                                                        \
    }                                                                          \
    Cost = Costs[Pc];                                                          \
    if constexpr (!Hot) {                                                      \
      if (NeedEnergyCheck) {                                                   \
        this->LifetimeOn = LifetimeOn; /* periodic plans arm against it */     \
        if (checkEnergyAndPlan(Cost)) {                                        \
          ++ConsecutiveFailures;                                               \
          if (ConsecutiveFailures > Cfg.MaxAbortsPerRegion) {                  \
            R.Starved = true;                                                  \
            goto LDone;                                                        \
          }                                                                    \
          SyncOut();                                                           \
          powerFailFlat(R);                                                    \
          SyncIn();                                                            \
          goto LTop;                                                           \
        }                                                                      \
      }                                                                        \
      ConsecutiveFailures = 0;                                                 \
    }                                                                          \
    OnCycles += Cost;                                                          \
    LifetimeOn += Cost;                                                        \
    Tau += Cost;                                                               \
    ++Steps;                                                                   \
    if constexpr (!Hot) {                                                      \
      if (Prof) {                                                              \
        Prof->step(Pc, static_cast<uint16_t>(FI->Op), ProfPrevPc,              \
                   ProfPrevOp);                                                \
        ProfPrevPc = Pc;                                                       \
        ProfPrevOp = static_cast<uint16_t>(FI->Op);                            \
      }                                                                        \
      if (BitVector && FI->HasUseCheck)                                        \
        Monitor->onFreshUse(InstrRef(FI->Func, FI->Label), Tau);               \
    }                                                                          \
    ++Pc; /* Advance before executing (branches overwrite). */                 \
  } while (0)

// The flat loop's post-instruction kind-less-operand conversion, with the
// site of \p INST (the instruction whose handler just ran). When the flag
// fired the run is over (the flat loop's next top-of-iteration check
// would exit), so this jumps straight to the epilogue — which lets the
// handler enders below skip the per-step trap re-check entirely.
#define OCELOT_KINDCHECK(INST)                                                 \
  if (SawKindlessOperand) {                                                    \
    SawKindlessOperand = false;                                                \
    if (R.Trap.empty())                                                        \
      R.Trap = "operand without a kind at " +                                  \
               P.function((INST).Func)->name() + "@" +                         \
               std::to_string((INST).Label) + " (lowering bug)";               \
    goto LDone;                                                                \
  }

// Ends a handler that just raised a trap. The flat loop sets the trap,
// runs the kind-less conversion (which must still clear the flag, and
// keeps the first trap), then exits at the next loop check — so: clear
// the flag, keep the trap, stop.
#define OCELOT_TRAPPED(INST)                                                   \
  do {                                                                         \
    OCELOT_KINDCHECK(INST)                                                     \
    goto LDone;                                                                \
  } while (0)

// Handler enders. OCELOT_NEXT for handlers that may have read a kind-less
// operand (any RawVal call); NOCHECK for handlers that provably cannot
// have set the flag.
//
// Both *replicate* the step header + dispatch instead of jumping back to
// a single shared loop head: with computed goto this gives every handler
// its own indirect branch, so the branch predictor learns per-handler
// successor distributions (the classic threaded-dispatch win; a shared
// dispatch site collapses them all into one unpredictable branch).
//
// Neither re-checks the flat loop's exit condition — every path that can
// make it true leaves the fast path on the spot: traps jump to LDone
// (budget and kind-less in the macros above, explicit ones via
// OCELOT_TRAPPED), Ret checks frame emptiness itself, and starvation and
// power failures happen out of line and resume through the fully-checked
// LTop.
#define OCELOT_NEXT_NOCHECK()                                                  \
  do {                                                                         \
    OCELOT_STEP();                                                             \
    OCELOT_DISPATCH();                                                         \
  } while (0)
#define OCELOT_NEXT(INST)                                                      \
  do {                                                                         \
    OCELOT_KINDCHECK(INST)                                                     \
    OCELOT_NEXT_NOCHECK();                                                     \
  } while (0)

#if defined(OCELOT_HAVE_COMPUTED_GOTO)
  // Direct-threaded dispatch: one indirect goto through a label table
  // indexed by the ThreadedOp code.
  static const void *const JumpTable[] = {
      &&LOp_Const,         &&LOp_Bin,          &&LOp_Un,
      &&LOp_Mov,           &&LOp_LoadG,        &&LOp_StoreG,
      &&LOp_LoadA,         &&LOp_StoreA,       &&LOp_LoadInd,
      &&LOp_StoreInd,      &&LOp_Input,        &&LOp_Call,
      &&LOp_Ret,           &&LOp_Br,           &&LOp_CondBr,
      &&LOp_Fresh,         &&LOp_Consistent,   &&LOp_AtomicStart,
      &&LOp_AtomicEnd,     &&LOp_Output,       &&LOp_Nop,
      &&LOp_FuseBinCondBr, &&LOp_FuseBinStoreG, &&LOp_FuseBinStoreA,
      &&LOp_FuseLoadGBin,  &&LOp_FuseLoadABin, &&LOp_FuseConstStoreG,
      &&LOp_FuseLoadGStoreG, &&LOp_FuseMovBin, &&LOp_FuseBinMov,
      &&LOp_FuseMovBr,     &&LOp_FuseBinBin,   &&LOp_FuseMovLoadA,
      &&LOp_FuseBinLoadA,  &&LOp_FuseLoadALoadA, &&LOp_FuseMovConsistent,
      &&LOp_FuseConsistentBin};
  static_assert(sizeof(JumpTable) / sizeof(JumpTable[0]) == NumThreadedOps,
                "jump table must cover every ThreadedOp");
#define OCELOT_CASE(name) LOp_##name
#define OCELOT_DISPATCH() goto *JumpTable[static_cast<size_t>(TOp)]
#else
// Portable fallback: a switch in a loop. Same handlers, one extra
// bounds-checkable branch per dispatch.
#define OCELOT_CASE(name) case ThreadedOp::name
#define OCELOT_DISPATCH() goto LSwitch
#endif

  goto LTop;

LTop:
  if (FFrames.empty() || R.Starved || !R.Trap.empty())
    goto LDone;
  OCELOT_STEP();
  OCELOT_DISPATCH();

#if !defined(OCELOT_HAVE_COMPUTED_GOTO)
LSwitch:
  switch (TOp) {
#endif

  OCELOT_CASE(Const) : {
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = FI->A.Imm;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Mov) : {
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = RawVal(FI->A);
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Un) : {
    const int64_t AV = RawVal(FI->A);
    int64_t V = 0;
    switch (FI->UnKind) {
    case UnOp::Neg:
      V = -AV;
      break;
    case UnOp::Not:
      V = ~AV;
      break;
    case UnOp::LNot:
      V = AV == 0 ? 1 : 0;
      break;
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Bin) : {
    const int64_t AV = RawVal(FI->A);
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, AV, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(LoadG) : {
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V =
        nvmCell(FI->GlobalId, 0).V;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(StoreG) : {
    StoreNvmRaw(FI->GlobalId, 0, RawVal(FI->A));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(LoadA) : {
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(StoreA) : {
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    StoreNvmRaw(FI->GlobalId, Idx, RawVal(FI->B));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(LoadInd) : {
    const int64_t G = RawVal(FI->A);
    assert(G >= 0 && G < P.numGlobals() && "bad reference value");
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V =
        nvmCell(static_cast<int>(G), 0).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(StoreInd) : {
    const int64_t G = RawVal(FI->A);
    assert(G >= 0 && G < P.numGlobals() && "bad reference value");
    StoreNvmRaw(static_cast<int>(G), 0, RawVal(FI->B));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Input) : {
    int64_t V;
    if (Replay) {
      if (ReplayIdx >= Replay->size()) {
        R.Trap = "replay input queue exhausted";
        goto LDone;
      }
      const InputEvent &E = (*Replay)[ReplayIdx++];
      if (E.Sensor != FI->SensorId) {
        R.Trap = "replay sensor mismatch";
        goto LDone;
      }
      V = E.Value;
    } else {
      V = Sensors->sample(FI->SensorId, Tau);
    }
    InputEvent E;
    E.Sensor = FI->SensorId;
    E.Tau = Tau;
    E.Epoch = Epoch;
    E.Value = V;
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    if constexpr (!Hot) {
      if (Telem)
        Telem->sensorRead(Tau, FI->SensorId, V);
    }
    if (BitVector)
      Monitor->onInput(InstrRef(FI->Func, FI->Label),
                       currentChainFlat(FI->Func, FI->Label), FI->SensorId,
                       Tau);
    if (Cfg.RecordTrace) {
      if (ExecMode == Mode::Atomic)
        PendingInputs.push_back(E);
      else
        Committed.Inputs.push_back(E);
    }
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Call) : {
    // Pc already points at the fall-through instruction: the return
    // address; Code[ReturnPc - 1] recovers this call on return.
    const uint32_t NewBase = static_cast<uint32_t>(RegStack.size());
    RegStack.resize(NewBase + FI->CalleeNumRegs);
    const Operand *Args = Img->args(*FI);
    for (uint32_t A = 0; A < FI->ArgsCount; ++A)
      RegStack[NewBase + A].V = RawVal(Args[A]);
    FFrames.push_back(FlatFrame{/*ReturnPc=*/Pc, /*RegBase=*/NewBase});
    RegBase = NewBase;
    Pc = FI->CalleeEntryPc;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Ret) : {
    const FlatFrame F = FFrames.back();
    const int64_t V = FI->A.isNone() ? 0 : RawVal(FI->A);
    FFrames.pop_back();
    RegStack.resize(F.RegBase);
    if (!FFrames.empty()) {
      Pc = F.ReturnPc;
      RegBase = FFrames.back().RegBase;
      const FlatInst &CallI = Code[F.ReturnPc - 1];
      if (CallI.Dst >= 0 && !FI->A.isNone())
        RegStack[RegBase + static_cast<size_t>(CallI.Dst)].V = V;
    }
    OCELOT_KINDCHECK(*FI)
    if (FFrames.empty())
      goto LDone; // Main returned: the only fast-path run completion.
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(Br) : {
    Pc = FI->Target;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(CondBr) : {
    const int64_t V = RawVal(FI->A);
    Pc = V != 0 ? FI->Target : FI->Target2;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Fresh) : {
    OCELOT_NEXT_NOCHECK(); // Checked at uses.
  }

  OCELOT_CASE(Consistent) : {
    OCELOT_NEXT_NOCHECK(); // Formal-monitor marker: taint-on only.
  }

  OCELOT_CASE(AtomicStart) : {
    SyncOut(); // Snapshot captures the member Pc / tau charges land there.
    enterAtomicFlat(*FI, R);
    SyncIn();
    goto LTop; // Re-enter through the fully-checked loop head.
  }

  OCELOT_CASE(AtomicEnd) : {
    if constexpr (!Hot)
      SyncOut(); // commitAtomic's telemetry hook reads the member tau.
    commitAtomic(R);
    goto LTop; // Re-enter through the fully-checked loop head.
  }

  OCELOT_CASE(Output) : {
    const Operand *Args = Img->args(*FI);
    if (!Cfg.RecordTrace) {
      // Args are still evaluated (same trap conversion for kind-less
      // operands), but the event is never materialized.
      for (uint32_t A = 0; A < FI->ArgsCount; ++A)
        (void)RawVal(Args[A]);
      OCELOT_NEXT(*FI);
    }
    OutputEvent E;
    E.Kind = FI->OutKind;
    E.Tau = Tau;
    E.Args.reserve(FI->ArgsCount);
    for (uint32_t A = 0; A < FI->ArgsCount; ++A)
      E.Args.push_back(RawVal(Args[A]));
    if (ExecMode == Mode::Atomic)
      PendingOutputs.push_back(E);
    else
      Committed.Outputs.push_back(std::move(E));
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(Nop) : {
    OCELOT_NEXT_NOCHECK();
  }

  // -- Superinstructions --------------------------------------------------
  // Each executes head then tail with the full step header replicated for
  // the tail (OCELOT_STEP), forwarding the head's result through a local
  // instead of re-reading the register file.

  OCELOT_CASE(FuseBinCondBr) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the CondBr testing H.Dst.
    Pc = V != 0 ? FI->Target : FI->Target2;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseBinStoreG) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the StoreG of H.Dst.
    StoreNvmRaw(FI->GlobalId, 0, V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseBinStoreA) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the StoreA whose value is H.Dst.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    StoreNvmRaw(FI->GlobalId, Idx, V);
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseLoadGBin) : {
    const FlatInst &H = *FI;
    const int64_t V0 = nvmCell(H.GlobalId, 0).V;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V0;
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseLoadABin) : {
    const FlatInst &H = *FI;
    const int64_t Idx = RawVal(H.A);
    if (Idx < 0 || Idx >= static_cast<int64_t>(Img->globalSize(H.GlobalId))) {
      BoundsTrap(H);
      OCELOT_TRAPPED(H);
    }
    const int64_t V0 = nvmCell(H.GlobalId, Idx).V;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V0;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseConstStoreG) : {
    const FlatInst &H = *FI;
    const int64_t V = H.A.Imm;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_STEP(); // Tail: the StoreG of H.Dst.
    StoreNvmRaw(FI->GlobalId, 0, V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseLoadGStoreG) : {
    const FlatInst &H = *FI;
    const int64_t V = nvmCell(H.GlobalId, 0).V;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_STEP(); // Tail: the StoreG of H.Dst.
    StoreNvmRaw(FI->GlobalId, 0, V);
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseMovBin) : {
    const FlatInst &H = *FI;
    const int64_t V0 = RawVal(H.A);
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V0;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseBinMov) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Mov copying H.Dst.
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseMovBr) : {
    const FlatInst &H = *FI;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the unconditional Br.
    Pc = FI->Target;
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseBinBin) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V0 = 0;
    if (!binEval(H.BinKind, AV, BV, V0)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V0;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: the Bin whose A operand is H.Dst.
    const int64_t BV2 = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, V0, BV2, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

  // Dispatch-elision pairs: no forwarding condition, so the tail executes
  // the plain handler body against the (already updated) register file.

  OCELOT_CASE(FuseMovLoadA) : {
    const FlatInst &H = *FI;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a LoadA.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseBinLoadA) : {
    const FlatInst &H = *FI;
    const int64_t AV = RawVal(H.A);
    const int64_t BV = RawVal(H.B);
    int64_t V = 0;
    if (!binEval(H.BinKind, AV, BV, V)) {
      DivZeroTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a LoadA.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseLoadALoadA) : {
    const FlatInst &H = *FI;
    const int64_t Idx0 = RawVal(H.A);
    if (Idx0 < 0 ||
        Idx0 >= static_cast<int64_t>(Img->globalSize(H.GlobalId))) {
      BoundsTrap(H);
      OCELOT_TRAPPED(H);
    }
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V =
        nvmCell(H.GlobalId, Idx0).V;
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a second LoadA.
    const int64_t Idx = RawVal(FI->A);
    if (Idx < 0 ||
        Idx >= static_cast<int64_t>(Img->globalSize(FI->GlobalId))) {
      BoundsTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V =
        nvmCell(FI->GlobalId, Idx).V;
    OCELOT_NEXT(*FI);
  }

  OCELOT_CASE(FuseMovConsistent) : {
    const FlatInst &H = *FI;
    RegStack[RegBase + static_cast<size_t>(H.Dst)].V = RawVal(H.A);
    OCELOT_KINDCHECK(H)
    OCELOT_STEP(); // Tail: a Consistent marker (taint-off no-op).
    OCELOT_NEXT_NOCHECK();
  }

  OCELOT_CASE(FuseConsistentBin) : {
    OCELOT_STEP(); // Head was a no-op Consistent marker; tail: a Bin.
    const int64_t AV = RawVal(FI->A);
    const int64_t BV = RawVal(FI->B);
    int64_t V = 0;
    if (!binEval(FI->BinKind, AV, BV, V)) {
      DivZeroTrap(*FI);
      OCELOT_TRAPPED(*FI);
    }
    RegStack[RegBase + static_cast<size_t>(FI->Dst)].V = V;
    OCELOT_NEXT(*FI);
  }

#if !defined(OCELOT_HAVE_COMPUTED_GOTO)
  }
  goto LDone; // Unreachable: every ThreadedOp has a case.
#endif

LDone:
  SyncOut();

  R.Completed = FFrames.empty() && R.Trap.empty() && !R.Starved;
  R.TraceData = std::move(Committed);
  Committed.clear();
  R.FinalTau = Tau;

  R.ViolatedFresh = Monitor->runFreshViolation();
  R.ViolatedConsistent = Monitor->runConsistentViolation();
  const auto &AllViolations = Monitor->violations();
  for (size_t I = ViolationsBefore; I < AllViolations.size(); ++I)
    R.Violations.push_back(AllViolations[I]);
  return R;

#undef OCELOT_STEP
#undef OCELOT_KINDCHECK
#undef OCELOT_TRAPPED
#undef OCELOT_NEXT
#undef OCELOT_NEXT_NOCHECK
#undef OCELOT_CASE
#undef OCELOT_DISPATCH
}

template RunResult Interpreter::runThreadedLoop<true>();
template RunResult Interpreter::runThreadedLoop<false>();
