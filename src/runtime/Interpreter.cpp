//===- Interpreter.cpp - Intermittent execution simulator ----------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Engine-independent interpreter state plus the tree-walking reference
/// engine. The flat PC-indexed engine lives in InterpreterFlat.cpp; the two
/// must stay observationally identical (ExecImageTest pins this).
///
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "runtime/ArenaPool.h"
#include "telemetry/TraceSink.h"

#include <cassert>

using namespace ocelot;

uint64_t CostModel::costOfOp(Opcode Op) const {
  switch (Op) {
  case Opcode::Input:
    return InputCost;
  case Opcode::Output:
    return OutputCost;
  case Opcode::Call:
  case Opcode::Ret:
    return CallCost;
  case Opcode::AtomicStart:
    return AtomicStartCost;
  case Opcode::AtomicEnd:
    return AtomicCommitCost;
  case Opcode::Fresh:
  case Opcode::Consistent:
  case Opcode::Nop:
    return 0; // Annotation markers are erased in real builds (§6.1).
  default:
    return Default;
  }
}

Interpreter::Interpreter(const Program &P, RunConfig Cfg,
                         const MonitorPlan *Plan,
                         const std::vector<RegionInfo> *Regions,
                         std::shared_ptr<const ExecutableImage> Image)
    : P(P), Cfg(std::move(Cfg)),
      Sensors(this->Cfg.Sensors ? this->Cfg.Sensors
                                : defaultSensorScenario()),
      Regions(Regions),
      Img(Image ? std::move(Image)
                : ExecutableImage::build(P, Regions, Plan)),
      Rand(this->Cfg.Seed) {
  static const MonitorPlan EmptyPlan;
  Monitor = std::make_unique<ViolationMonitor>(Plan ? *Plan : EmptyPlan,
                                               P.numSensors());
  Monitor->setTraceSink(this->Cfg.Telemetry);
  if (this->Cfg.Plan.isEnergyDriven())
    Energy = std::make_unique<EnergyModel>(
        this->Cfg.Energy, this->Cfg.Seed ^ 0xe4e4f00dULL, this->Cfg.Power);
  if (this->Cfg.MonitorFormal)
    this->Cfg.TrackTaint = true;
  // The oracle scores committed outputs by their fused input taint, so it
  // needs the same taint-augmented semantics as the formal monitors.
  if (this->Cfg.Oracle)
    this->Cfg.TrackTaint = true;
  // Fold the cost switch once: a PC-indexed table replaces per-step
  // CostModel::costOf calls. The default model reuses the image's table.
  if (this->Cfg.Costs == CostModel()) {
    CostTable = Img->defaultCosts().data();
  } else {
    OwnCosts = Img->costTableFor(this->Cfg.Costs);
    CostTable = OwnCosts.data();
  }
  // Borrow the two large per-Simulation buffers from the arena pool when
  // one is configured; resetNvm()/the dispatch loops size them as usual,
  // reusing the pooled capacity.
  if (this->Cfg.Arena) {
    Nvm = this->Cfg.Arena->take();
    RegStack = this->Cfg.Arena->take();
  }
  resetNvm();
}

Interpreter::~Interpreter() {
  if (Cfg.Arena) {
    Cfg.Arena->giveBack(std::move(Nvm));
    Cfg.Arena->giveBack(std::move(RegStack));
  }
}

void Interpreter::resetNvm() {
  // One flat cell array laid out by the image's global table.
  Nvm.assign(Img->nvmCells(), RtValue());
  for (int G = 0; G < P.numGlobals(); ++G) {
    const GlobalVar &GV = P.global(G);
    for (int I = 0; I < GV.Size; ++I)
      nvmCell(G, I) =
          RtValue(I < static_cast<int>(GV.Init.size())
                      ? GV.Init[static_cast<size_t>(I)]
                      : 0);
  }
}

void Interpreter::setReplayInputs(
    std::optional<std::vector<InputEvent>> Events) {
  Replay = std::move(Events);
  ReplayIdx = 0;
}

std::vector<std::vector<int64_t>> Interpreter::nvmSnapshot() const {
  std::vector<std::vector<int64_t>> Snap(
      static_cast<size_t>(P.numGlobals()));
  for (int G = 0; G < P.numGlobals(); ++G) {
    uint32_t Size = Img->globalSize(G);
    Snap[static_cast<size_t>(G)].reserve(Size);
    for (uint32_t I = 0; I < Size; ++I)
      Snap[static_cast<size_t>(G)].push_back(nvmCell(G, I).V);
  }
  return Snap;
}

const Instruction *Interpreter::fetch() const {
  const Frame &F = Frames.back();
  const Function *Fn = P.function(F.Func);
  assert(F.Block < Fn->numBlocks() && "bad block");
  const BasicBlock *BB = Fn->block(F.Block);
  assert(F.Idx < static_cast<int>(BB->size()) && "fell off a block");
  return &BB->instructions()[static_cast<size_t>(F.Idx)];
}

RtValue Interpreter::evalKindless() const {
  assert(false && "evaluated an operand without a kind (lowering bug)");
  // Release builds: surface the lowering bug as a structured trap from the
  // step loop instead of silently yielding 0.
  SawKindlessOperand = true;
  return RtValue(0);
}

RtValue Interpreter::eval(Operand O) const {
  if (O.isImm())
    return RtValue(O.Imm);
  if (O.isReg())
    return Frames.back().Regs[static_cast<size_t>(O.Reg)];
  return evalKindless();
}

ProvChain Interpreter::currentChain(uint32_t FinalLabel) const {
  ProvChain C;
  for (size_t I = 1; I < Frames.size(); ++I)
    C.push_back(InstrRef(Frames[I - 1].Func, Frames[I].CallSiteLabel));
  C.push_back(InstrRef(Frames.back().Func, FinalLabel));
  return C;
}

const RegionInfo *Interpreter::regionInfo(int RegionId) const {
  if (!Regions)
    return nullptr;
  for (const RegionInfo &R : *Regions)
    if (R.RegionId == RegionId)
      return &R;
  return nullptr;
}

void Interpreter::writeGlobal(int G, int64_t Index, RtValue V, RunResult &R) {
  assert(Index >= 0 &&
         Index < static_cast<int64_t>(Img->globalSize(G)));
  if (ExecMode == Mode::Atomic) {
    if (Undo.logIfFirst(G, Index, nvmCell(G, Index))) {
      ++R.UndoLogEntries;
      R.OnCycles += Cfg.Costs.UndoLogEntryCost;
      LifetimeOn += Cfg.Costs.UndoLogEntryCost;
      Tau += Cfg.Costs.UndoLogEntryCost;
    }
  }
  if (!Cfg.TrackTaint)
    V.Taint.clear();
  nvmCell(G, Index) = std::move(V);
}

void Interpreter::enterAtomic(const Instruction &I, RunResult &R) {
  if (ExecMode == Mode::Atomic) {
    ++Natom; // Atom-Start-Inner: flattening counter only.
    return;
  }
  // Atom-Start-Outer: snapshot volatile state positioned after the start.
  // Saving the volatile context costs like a JIT checkpoint (§6.3).
  uint64_t SaveCost = Cfg.Costs.RegionEntryPerFrame * Frames.size();
  R.OnCycles += SaveCost;
  LifetimeOn += SaveCost;
  Tau += SaveCost;
  if (Energy)
    Energy->consume(SaveCost);
  ExecMode = Mode::Atomic;
  CurrentRegion = I.RegionId;
  Natom = 0;
  AbortsThisRegion = 0;
  AtomicSnapshot = Frames;
  Undo.clear();
  if (Cfg.StaticOmega) {
    if (const RegionInfo *Info = regionInfo(I.RegionId)) {
      for (int G : Info->Omega) {
        uint32_t Size = Img->globalSize(G);
        for (uint32_t Idx = 0; Idx < Size; ++Idx) {
          if (Undo.logIfFirst(G, static_cast<int64_t>(Idx),
                              nvmCell(G, Idx))) {
            ++R.UndoLogEntries;
            R.OnCycles += Cfg.Costs.AtomicOmegaPerCell;
            LifetimeOn += Cfg.Costs.AtomicOmegaPerCell;
            Tau += Cfg.Costs.AtomicOmegaPerCell;
          }
        }
      }
    }
  }
  if (TraceSink *T = Cfg.Telemetry)
    T->regionEnter(Tau, CurrentRegion);
}

void Interpreter::commitAtomic(RunResult &R) {
  if (Natom > 0) {
    --Natom; // Atom-End-Inner.
    return;
  }
  if (TraceSink *T = Cfg.Telemetry)
    T->regionCommit(Tau, CurrentRegion, Undo.size());
  // Atom-End-Outer: effects become visible; pending events commit.
  for (InputEvent &E : PendingInputs)
    Committed.Inputs.push_back(E);
  for (OutputEvent &E : PendingOutputs)
    Committed.Outputs.push_back(E);
  for (OracleRecord &O : PendingOracle)
    CommittedOracle.push_back(std::move(O));
  PendingInputs.clear();
  PendingOutputs.clear();
  PendingOracle.clear();
  Undo.clear();
  ExecMode = Mode::Jit;
  CurrentRegion = -1;
  AbortsThisRegion = 0;
  ++R.AtomicCommits;
}

void Interpreter::recordOracleOutput(OutputKind Kind,
                                     std::vector<InputEvent> &&Inputs) {
  OracleRecord Rec;
  Rec.Kind = Kind;
  Rec.Tau = Tau;
  Rec.Epoch = Epoch;
  Rec.Inputs = std::move(Inputs);
  Rec.Verdict = classifyOracleInputs(Rec.Inputs, Epoch);
  if (TraceSink *T = Cfg.Telemetry)
    T->oracleVerdict(Tau, static_cast<int>(Rec.Verdict),
                     Rec.Inputs.size(), oracleVerdictName(Rec.Verdict));
  if (ExecMode == Mode::Atomic)
    PendingOracle.push_back(std::move(Rec));
  else
    CommittedOracle.push_back(std::move(Rec));
}

void Interpreter::finishOracle(RunResult &R) {
  if (!Cfg.Oracle)
    return;
  for (const OracleRecord &Rec : CommittedOracle) {
    switch (Rec.Verdict) {
    case OracleVerdict::Fresh:
      ++R.OracleFresh;
      break;
    case OracleVerdict::Stale:
      ++R.OracleStale;
      break;
    case OracleVerdict::CrossEpoch:
      ++R.OracleCrossEpoch;
      break;
    }
  }
  R.OracleRecords = std::move(CommittedOracle);
  CommittedOracle.clear();
}

void Interpreter::rebootCommon(RunResult &R, uint64_t TotalRegs) {
  ++R.Reboots;
  ++Epoch;
  ++Committed.Reboots;
  if (TraceSink *T = Cfg.Telemetry)
    T->reboot(Tau, Epoch);

  if (ExecMode == Mode::Jit) {
    // JIT-LowPower: the ISR checkpoints volatile state into NVM within the
    // raised-threshold reserve (§6.3).
    uint64_t CkptCost =
        Cfg.Costs.CheckpointBase + Cfg.Costs.CheckpointPerReg * TotalRegs;
    R.OnCycles += CkptCost;
    LifetimeOn += CkptCost;
    Tau += CkptCost;
    ++R.Checkpoints;
    if (TraceSink *T = Cfg.Telemetry)
      T->checkpoint(Tau, TotalRegs);
  }
  // Atom-LowPower: shut down immediately; nothing saved.

  uint64_t Off = Energy ? Energy->recharge(Tau) : Cfg.Plan.drawOffTime(Rand);
  if (TraceSink *T = Cfg.Telemetry)
    T->energyRecharge(Tau, Off);
  Tau += Off;
  R.OffCycles += Off;
  Monitor->onPowerFailure();
}

void Interpreter::powerFail(RunResult &R) {
  uint64_t TotalRegs = 0;
  for (const Frame &F : Frames)
    TotalRegs += F.Regs.size();
  rebootCommon(R, TotalRegs);

  if (ExecMode == Mode::Atomic) {
    // Atom-Reboot: apply the undo log, restore the region-entry context.
    Undo.restore([&](int G, int64_t Index, const RtValue &Old) {
      nvmCell(G, Index) = Old;
    });
    // In static mode the log *is* the region's backup and is retained for
    // the next attempt; dynamic mode re-logs on first write.
    if (!Cfg.StaticOmega)
      Undo.clear();
    Frames = AtomicSnapshot;
    Natom = 0;
    PendingInputs.clear();
    PendingOutputs.clear();
    PendingOracle.clear();
    ++R.AtomicAborts;
    ++AbortsThisRegion;
    if (TraceSink *T = Cfg.Telemetry)
      T->regionRetry(Tau, CurrentRegion, AbortsThisRegion);
    if (AbortsThisRegion > Cfg.MaxAbortsPerRegion) {
      R.Starved = true;
      Frames.clear();
    }
  } else {
    // JIT-Reboot: restore volatile state (identity here; costed).
    uint64_t RestCost =
        Cfg.Costs.RestoreBase + Cfg.Costs.RestorePerReg * TotalRegs;
    R.OnCycles += RestCost;
    LifetimeOn += RestCost;
    Tau += RestCost;
  }
}

bool Interpreter::checkEnergyAndPlan(uint64_t Cost) {
  if (Energy) {
    if (Energy->consume(Cost))
      return true;
    return false;
  }
  if (Cfg.Plan.kind() == FailurePlan::Kind::Periodic)
    return Cfg.Plan.firesAfterCycles(LifetimeOn);
  return false;
}

RunResult Interpreter::runOnce() {
  switch (Cfg.Dispatch) {
  case DispatchEngine::Tree:
    return runOnceTree();
  case DispatchEngine::Flat:
    return runOnceFlat();
  case DispatchEngine::Threaded:
    return runOnceThreaded();
  }
  return runOnceFlat(); // Unreachable; silences -Wreturn-type.
}

RunResult Interpreter::runOnceTree() {
  RunResult R;
  Cfg.Plan.resetRun();
  Monitor->beginRun();
  size_t ViolationsBefore = Monitor->violations().size();

  Frames.clear();
  Frame Main;
  Main.Func = P.mainFunction();
  Main.Regs.resize(
      static_cast<size_t>(P.function(P.mainFunction())->numRegs()));
  Frames.push_back(std::move(Main));
  ExecMode = Mode::Jit;
  Natom = 0;
  Undo.clear();
  PendingInputs.clear();
  PendingOutputs.clear();
  PendingOracle.clear();
  CommittedOracle.clear();
  Committed.clear();
  AbortsThisRegion = 0;
  CurrentRegion = -1;
  uint64_t ConsecutiveFailures = 0;

  while (!Frames.empty() && !R.Starved && R.Trap.empty()) {
    if (R.OnCycles > Cfg.MaxOnCyclesPerRun) {
      R.Trap = "on-cycle budget exceeded";
      break;
    }
    const Instruction *I = fetch();
    Frame &Top = Frames.back();
    InstrRef Site(Top.Func, I->Label);

    // Opcode-pair profiling (the fusion pass's input). Idx > 0 means the
    // previous slot of this block executed at the adjacent PC — exactly
    // the pairs the image's peephole pass may fuse.
    if (Cfg.OpcodePairCounts && Top.Idx > 0) {
      const Instruction &Prev =
          P.function(Top.Func)->block(Top.Block)->instructions()
              [static_cast<size_t>(Top.Idx - 1)];
      ++(*Cfg.OpcodePairCounts)[static_cast<size_t>(Prev.Op) *
                                    static_cast<size_t>(NumOpcodes) +
                                static_cast<size_t>(I->Op)];
    }

    // Failure injection before the instruction (pathological / random).
    if (Cfg.Plan.firesBefore(Site, Rand)) {
      powerFail(R);
      continue;
    }
    uint64_t Cost = Cfg.Costs.costOf(*I);
    if (checkEnergyAndPlan(Cost)) {
      ++ConsecutiveFailures;
      if (ConsecutiveFailures > Cfg.MaxAbortsPerRegion) {
        R.Starved = true;
        break;
      }
      powerFail(R);
      continue;
    }
    ConsecutiveFailures = 0;
    R.OnCycles += Cost;
    LifetimeOn += Cost;
    Tau += Cost;
    ++R.Steps;

    // Freshness checks fire when a use of a fresh variable executes.
    if (Cfg.MonitorBitVector)
      Monitor->onFreshUse(Site, Tau);
    if (Cfg.MonitorFormal) {
      auto It = Monitor->plan().UseRegs.find(Site);
      if (It != Monitor->plan().UseRegs.end())
        for (int Reg : It->second)
          Monitor->onFreshUseFormal(
              Site, Top.Regs[static_cast<size_t>(Reg)].Taint, Epoch, Tau);
    }

    ++Frames.back().Idx; // Advance before executing (branches overwrite).

    switch (I->Op) {
    case Opcode::Const:
      Frames.back().Regs[static_cast<size_t>(I->Dst)] = RtValue(I->A.Imm);
      break;
    case Opcode::Mov:
      Frames.back().Regs[static_cast<size_t>(I->Dst)] = eval(I->A);
      break;
    case Opcode::Un: {
      RtValue A = eval(I->A);
      int64_t V = 0;
      switch (I->UnKind) {
      case UnOp::Neg:
        V = -A.V;
        break;
      case UnOp::Not:
        V = ~A.V;
        break;
      case UnOp::LNot:
        V = A.V == 0 ? 1 : 0;
        break;
      }
      RtValue Out(V);
      Out.Taint = std::move(A.Taint);
      Frames.back().Regs[static_cast<size_t>(I->Dst)] = std::move(Out);
      break;
    }
    case Opcode::Bin: {
      RtValue A = eval(I->A);
      RtValue B = eval(I->B);
      int64_t V = 0;
      bool Ok = true;
      switch (I->BinKind) {
      case BinOp::Add:
        V = A.V + B.V;
        break;
      case BinOp::Sub:
        V = A.V - B.V;
        break;
      case BinOp::Mul:
        V = A.V * B.V;
        break;
      case BinOp::Div:
        if (B.V == 0)
          Ok = false;
        else
          V = A.V / B.V;
        break;
      case BinOp::Mod:
        if (B.V == 0)
          Ok = false;
        else
          V = A.V % B.V;
        break;
      case BinOp::And:
        V = A.V & B.V;
        break;
      case BinOp::Or:
        V = A.V | B.V;
        break;
      case BinOp::Xor:
        V = A.V ^ B.V;
        break;
      case BinOp::Shl:
        V = A.V << (B.V & 63);
        break;
      case BinOp::Shr:
        V = A.V >> (B.V & 63);
        break;
      case BinOp::Eq:
        V = A.V == B.V;
        break;
      case BinOp::Ne:
        V = A.V != B.V;
        break;
      case BinOp::Lt:
        V = A.V < B.V;
        break;
      case BinOp::Le:
        V = A.V <= B.V;
        break;
      case BinOp::Gt:
        V = A.V > B.V;
        break;
      case BinOp::Ge:
        V = A.V >= B.V;
        break;
      case BinOp::LAnd:
        V = (A.V != 0) && (B.V != 0);
        break;
      case BinOp::LOr:
        V = (A.V != 0) || (B.V != 0);
        break;
      }
      if (!Ok) {
        R.Trap = "division by zero at " +
                 P.function(Site.Func)->name() + "@" +
                 std::to_string(Site.Label);
        break;
      }
      RtValue Out(V);
      if (Cfg.TrackTaint) {
        Out.Taint = A.Taint;
        Out.mergeTaint(B);
      }
      Frames.back().Regs[static_cast<size_t>(I->Dst)] = std::move(Out);
      break;
    }
    case Opcode::LoadG:
      Frames.back().Regs[static_cast<size_t>(I->Dst)] =
          nvmCell(I->GlobalId, 0);
      break;
    case Opcode::StoreG:
      writeGlobal(I->GlobalId, 0, eval(I->A), R);
      break;
    case Opcode::LoadA: {
      int64_t Idx = eval(I->A).V;
      if (Idx < 0 ||
          Idx >= static_cast<int64_t>(Img->globalSize(I->GlobalId))) {
        R.Trap = "array index out of bounds in " +
                 P.function(Site.Func)->name();
        break;
      }
      Frames.back().Regs[static_cast<size_t>(I->Dst)] =
          nvmCell(I->GlobalId, Idx);
      break;
    }
    case Opcode::StoreA: {
      int64_t Idx = eval(I->A).V;
      if (Idx < 0 ||
          Idx >= static_cast<int64_t>(Img->globalSize(I->GlobalId))) {
        R.Trap = "array index out of bounds in " +
                 P.function(Site.Func)->name();
        break;
      }
      writeGlobal(I->GlobalId, Idx, eval(I->B), R);
      break;
    }
    case Opcode::LoadInd: {
      int64_t G = eval(I->A).V;
      assert(G >= 0 && G < P.numGlobals() && "bad reference value");
      Frames.back().Regs[static_cast<size_t>(I->Dst)] =
          nvmCell(static_cast<int>(G), 0);
      break;
    }
    case Opcode::StoreInd: {
      int64_t G = eval(I->A).V;
      assert(G >= 0 && G < P.numGlobals() && "bad reference value");
      writeGlobal(static_cast<int>(G), 0, eval(I->B), R);
      break;
    }
    case Opcode::Input: {
      int64_t V;
      if (Replay) {
        if (ReplayIdx >= Replay->size()) {
          R.Trap = "replay input queue exhausted";
          break;
        }
        const InputEvent &E = (*Replay)[ReplayIdx++];
        if (E.Sensor != I->SensorId) {
          R.Trap = "replay sensor mismatch";
          break;
        }
        V = E.Value;
      } else {
        V = Sensors->sample(I->SensorId, Tau);
      }
      InputEvent E;
      E.Sensor = I->SensorId;
      E.Tau = Tau;
      E.Epoch = Epoch;
      E.Value = V;
      RtValue Out(V);
      if (Cfg.TrackTaint)
        Out.Taint.push_back(E);
      Frames.back().Regs[static_cast<size_t>(I->Dst)] = std::move(Out);
      if (TraceSink *T = Cfg.Telemetry)
        T->sensorRead(Tau, I->SensorId, V);
      if (Cfg.MonitorBitVector)
        Monitor->onInput(Site, currentChain(I->Label), I->SensorId, Tau);
      if (Cfg.RecordTrace) {
        if (ExecMode == Mode::Atomic)
          PendingInputs.push_back(E);
        else
          Committed.Inputs.push_back(E);
      }
      break;
    }
    case Opcode::Call: {
      const Function *Callee = P.function(I->Callee);
      Frame NewFrame;
      NewFrame.Func = I->Callee;
      NewFrame.Regs.resize(static_cast<size_t>(Callee->numRegs()));
      for (size_t A = 0; A < I->Args.size(); ++A)
        NewFrame.Regs[A] = eval(I->Args[A]);
      NewFrame.RetDst = I->Dst;
      NewFrame.CallSiteLabel = I->Label;
      Frames.push_back(std::move(NewFrame));
      break;
    }
    case Opcode::Ret: {
      RtValue V = I->A.isNone() ? RtValue(0) : eval(I->A);
      int RetDst = Frames.back().RetDst;
      Frames.pop_back();
      if (!Frames.empty() && RetDst >= 0 && !I->A.isNone())
        Frames.back().Regs[static_cast<size_t>(RetDst)] = std::move(V);
      break;
    }
    case Opcode::Br:
      Frames.back().Block = I->Target;
      Frames.back().Idx = 0;
      break;
    case Opcode::CondBr: {
      int Target = eval(I->A).V != 0 ? I->Target : I->Target2;
      Frames.back().Block = Target;
      Frames.back().Idx = 0;
      break;
    }
    case Opcode::Fresh:
      break; // Checked at uses.
    case Opcode::Consistent:
      if (Cfg.MonitorFormal)
        Monitor->onConsistentMarker(I->SetId, I->Label, eval(I->A).Taint,
                                    Epoch, Tau);
      break;
    case Opcode::AtomicStart:
      enterAtomic(*I, R);
      break;
    case Opcode::AtomicEnd:
      commitAtomic(R);
      break;
    case Opcode::Output: {
      if (!Cfg.RecordTrace && !Cfg.Oracle) {
        // Args are still evaluated (same trap conversion for kind-less
        // operands), but the event is never materialized.
        for (const Operand &A : I->Args)
          (void)eval(A).V;
        break;
      }
      OutputEvent E;
      E.Kind = I->OutKind;
      E.Tau = Tau;
      std::vector<InputEvent> Fused;
      for (const Operand &A : I->Args) {
        const RtValue V = eval(A);
        E.Args.push_back(V.V);
        if (Cfg.Oracle)
          for (const InputEvent &T : V.Taint)
            Fused.push_back(T);
      }
      if (Cfg.Oracle)
        recordOracleOutput(E.Kind, std::move(Fused));
      if (Cfg.RecordTrace) {
        if (ExecMode == Mode::Atomic)
          PendingOutputs.push_back(E);
        else
          Committed.Outputs.push_back(std::move(E));
      }
      break;
    }
    case Opcode::Nop:
      break;
    }

    if (SawKindlessOperand) {
      SawKindlessOperand = false;
      if (R.Trap.empty())
        R.Trap = "operand without a kind at " +
                 P.function(Site.Func)->name() + "@" +
                 std::to_string(Site.Label) + " (lowering bug)";
    }
  }

  R.Completed = Frames.empty() && R.Trap.empty() && !R.Starved;
  R.TraceData = Committed;
  Committed.clear();
  R.FinalTau = Tau;
  finishOracle(R);

  R.ViolatedFresh = Monitor->runFreshViolation();
  R.ViolatedConsistent = Monitor->runConsistentViolation();
  const auto &AllViolations = Monitor->violations();
  for (size_t I = ViolationsBefore; I < AllViolations.size(); ++I)
    R.Violations.push_back(AllViolations[I]);
  return R;
}

bool ocelot::replayRefines(const Program &P, const MonitorPlan *Plan,
                           const Trace &T, int NumRuns,
                           const std::vector<std::vector<int64_t>> &FinalNvm,
                           std::string &Why) {
  RunConfig Cfg;
  Cfg.RecordTrace = true;
  Interpreter I(P, Cfg, Plan, nullptr);
  I.setReplayInputs(T.Inputs);

  std::vector<OutputEvent> ReplayOutputs;
  for (int Run = 0; Run < NumRuns; ++Run) {
    RunResult R = I.runOnce();
    if (!R.Completed) {
      Why = "replay run did not complete: " +
            (R.Trap.empty() ? std::string("starved") : R.Trap);
      return false;
    }
    for (const OutputEvent &E : R.TraceData.Outputs)
      ReplayOutputs.push_back(E);
  }
  if (I.replayRemaining() != 0) {
    Why = "replay consumed fewer inputs than the committed trace (" +
          std::to_string(I.replayRemaining()) + " left)";
    return false;
  }

  if (ReplayOutputs.size() != T.Outputs.size()) {
    Why = "output count mismatch: replay " +
          std::to_string(ReplayOutputs.size()) + " vs committed " +
          std::to_string(T.Outputs.size());
    return false;
  }
  for (size_t Idx = 0; Idx < ReplayOutputs.size(); ++Idx) {
    if (!ReplayOutputs[Idx].sameContent(T.Outputs[Idx])) {
      Why = "output " + std::to_string(Idx) + " diverged";
      return false;
    }
  }
  std::vector<std::vector<int64_t>> Snap = I.nvmSnapshot();
  if (Snap != FinalNvm) {
    Why = "final non-volatile memory diverged";
    return false;
  }
  return true;
}
