//===- EnergyModel.cpp - Capacitor + harvester energy model ----------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/EnergyModel.h"

#include "power/PowerSource.h"

using namespace ocelot;

EnergyModel::EnergyModel(const EnergyConfig &Cfg, uint64_t Seed,
                         std::shared_ptr<const PowerSource> Source)
    : Cfg(Cfg), Rand(Seed), Energy(Cfg.CapacityCycles),
      Source(Source ? std::move(Source) : legacyJitterSource()) {}

uint64_t EnergyModel::recharge(uint64_t Tau) {
  RechargePlan Plan = Source->planRecharge(Tau, Energy, Cfg, Rand);
  // Enforce the capacitor invariants centrally so every source — including
  // user-supplied traces — leaves the device able to make progress: the
  // level ends strictly above the comparator reserve and never above
  // capacity, and the device is dark for at least one tau unit.
  uint64_t Target = Plan.TargetEnergy;
  if (Target > Cfg.CapacityCycles)
    Target = Cfg.CapacityCycles;
  if (Target <= Cfg.ReserveCycles)
    Target = Cfg.ReserveCycles + 1;
  Energy = Target;
  return Plan.OffTime == 0 ? 1 : Plan.OffTime;
}
