//===- ArenaPool.h - Pooled Simulation state buffers ------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fleet shard runs tens of thousands of short-lived `Simulation`s, and
/// each one allocates the same two large buffers: the flat NVM cell array
/// and the shared register stack. `ArenaPool` recycles those buffers'
/// capacity across Simulations — an Interpreter whose `RunConfig::Arena`
/// is set takes its buffers from the pool at construction and gives them
/// back (cleared, capacity intact) at destruction, so a 10k-cell shard
/// performs a bounded number of large allocations instead of one pair per
/// cell.
///
/// Pooling is invisible to results: a taken buffer is always cleared or
/// re-assigned before use, so a pooled run is bitwise identical to an
/// unpooled one. The pool is thread-safe; one pool may serve all workers
/// of a shard.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_ARENAPOOL_H
#define OCELOT_RUNTIME_ARENAPOOL_H

#include "runtime/Value.h"

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace ocelot {

class ArenaPool {
public:
  struct Stats {
    uint64_t Taken = 0;    ///< Buffers handed out.
    uint64_t Reused = 0;   ///< ... of which came from the free list.
    uint64_t Returned = 0; ///< Buffers given back.
  };

  /// \returns an empty buffer, reusing pooled capacity when available.
  std::vector<RtValue> take() {
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Taken;
    if (Free.empty())
      return {};
    ++S.Reused;
    std::vector<RtValue> Buf = std::move(Free.back());
    Free.pop_back();
    return Buf;
  }

  /// Returns a retired buffer's capacity to the pool. The elements are
  /// destroyed here (per-value taint vectors are freed); only the outer
  /// allocation is retained.
  void giveBack(std::vector<RtValue> &&Buf) {
    if (Buf.capacity() == 0)
      return;
    Buf.clear();
    std::lock_guard<std::mutex> Lock(Mu);
    ++S.Returned;
    Free.push_back(std::move(Buf));
  }

  Stats stats() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return S;
  }

private:
  mutable std::mutex Mu;
  std::vector<std::vector<RtValue>> Free;
  Stats S;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_ARENAPOOL_H
