//===- Trace.cpp - Committed execution traces ----------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Trace.h"

using namespace ocelot;

std::string Trace::summary() const {
  std::string S = "trace: " + std::to_string(Inputs.size()) + " inputs, " +
                  std::to_string(Outputs.size()) + " outputs, " +
                  std::to_string(Reboots) + " reboots\n";
  for (const OutputEvent &O : Outputs) {
    S += "  ";
    S += outputKindName(O.Kind);
    S += "(";
    for (size_t I = 0; I < O.Args.size(); ++I) {
      if (I)
        S += ", ";
      S += std::to_string(O.Args[I]);
    }
    S += ") @" + std::to_string(O.Tau) + "\n";
  }
  return S;
}
