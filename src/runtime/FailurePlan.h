//===- FailurePlan.h - Power-failure injection ------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides when the low-power comparator fires during simulation:
///
///  * None — continuously powered execution;
///  * EnergyDriven — the capacitor model decides (Fig. 8, Table 2(b));
///  * Pathological — fail immediately before chosen instructions, once per
///    program run: the paper's §7.3 experiment ("power failures immediately
///    before the use of a fresh variable and between input operations in a
///    consistent set", Table 2(a));
///  * Periodic — every N cycles with jitter;
///  * Random — per-instruction probability.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_FAILUREPLAN_H
#define OCELOT_RUNTIME_FAILUREPLAN_H

#include "ir/Instruction.h"
#include "support/Rng.h"

#include <set>

namespace ocelot {

class FailurePlan {
public:
  enum class Kind { None, EnergyDriven, Pathological, Periodic, Random };

  static FailurePlan none();
  static FailurePlan energyDriven();
  static FailurePlan pathological(std::set<InstrRef> Points);
  static FailurePlan periodic(uint64_t PeriodCycles, double Jitter = 0.2);
  static FailurePlan random(double PerInstrProb);

  Kind kind() const { return K; }

  /// Off-time range for plans that are not energy-driven (tau units drawn
  /// uniformly per reboot).
  void setOffTime(uint64_t Lo, uint64_t Hi) {
    OffLo = Lo;
    OffHi = Hi < Lo ? Lo : Hi;
  }
  uint64_t drawOffTime(Rng &R) const {
    // nextInRangeU64 handles the full uint64_t range; the old cast through
    // nextInRange(int64_t) silently narrowed bounds above INT64_MAX.
    return R.nextInRangeU64(OffLo, OffHi);
  }

  /// Called at the start of each program run (main invocation): re-arms
  /// pathological points.
  void resetRun();

  /// \returns true if a failure must be injected immediately before
  /// executing \p I (pathological points fire once per run).
  bool firesBefore(InstrRef I, Rng &R);

  /// \returns true if a failure fires after consuming \p Cycles more cycles
  /// (periodic plans).
  bool firesAfterCycles(uint64_t TotalOnCycles);

  bool isEnergyDriven() const { return K == Kind::EnergyDriven; }

private:
  Kind K = Kind::None;
  std::set<InstrRef> Points;
  std::set<InstrRef> Fired;
  uint64_t Period = 0;
  double Jitter = 0.0;
  double Prob = 0.0;
  uint64_t NextAt = 0;
  uint64_t OffLo = 5000;
  uint64_t OffHi = 50000;
  bool NextArmed = false;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_FAILUREPLAN_H
