//===- ExecutableImage.h - Flat, precomputed execution form -----*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `ExecutableImage` is an immutable, flat execution form of a compiled
/// program, built once per `CompiledArtifact` and shared read-only by every
/// `Simulation` that executes it. It exists purely for interpreter speed:
///
///  * All functions are linearized into one contiguous instruction array;
///    a program counter replaces the `{Func, Block, Idx}` triple, so fetch
///    is a single indexed load instead of three pointer hops.
///  * Branch, call and fall-through targets are pre-resolved to absolute
///    PCs at build time.
///  * The per-instruction cycle cost (`CostModel::costOf`'s switch) is
///    folded into a PC-indexed table.
///  * Dense side tables map each PC to its monitor actions (bit-vector
///    fresh-use checks, formal-checker use registers) and each
///    `AtomicStart` to its region's flattened omega set, replacing the
///    per-step `MonitorPlan` map lookups and `RegionInfo` linear scans.
///  * A global-variable layout table assigns every non-volatile global a
///    base offset in one flat NVM array.
///
/// The image is a *pure acceleration structure*: it adds no semantics. The
/// interpreter's retained tree-walking engine executes the original
/// `Program` directly, and differential tests pin the two engines to
/// bitwise-identical results (see tests/ExecImageTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_EXECUTABLEIMAGE_H
#define OCELOT_RUNTIME_EXECUTABLEIMAGE_H

#include "analysis/WarAnalysis.h"
#include "ir/Program.h"
#include "runtime/CostModel.h"
#include "runtime/MonitorPlan.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ocelot {

/// One linearized instruction. A trimmed, fixed-size mirror of
/// `Instruction` with every target resolved to an absolute PC and the
/// variable-length payloads (call/output arguments, omega sets, monitored
/// registers) moved into shared pools indexed by [begin, begin+count)
/// spans. No strings, no vectors: stepping touches only this struct and
/// the pools, both contiguous.
struct FlatInst {
  Opcode Op = Opcode::Nop;
  bool HasUseCheck = false;  ///< Site is in MonitorPlan::UseChecks.
  uint16_t UseRegsCount = 0; ///< Formal-checker registers at this site.
  uint32_t Label = 0;        ///< Stable label (the paper's l in (f, l)).
  int32_t Func = -1;         ///< Enclosing function id (the paper's f).
  int32_t Block = -1;        ///< Source basic-block id (for disassembly).

  int32_t Dst = -1;
  Operand A, B;
  BinOp BinKind = BinOp::Add;
  UnOp UnKind = UnOp::Neg;

  int32_t GlobalId = -1;
  int32_t SensorId = -1;

  int32_t Callee = -1;         ///< Call target function id.
  uint32_t CalleeEntryPc = 0;  ///< Resolved entry PC of the callee.
  uint32_t CalleeNumRegs = 0;  ///< Callee register-file size.

  uint32_t Target = 0;  ///< Resolved PC: Br target / CondBr true target.
  uint32_t Target2 = 0; ///< Resolved PC: CondBr false target.

  int32_t SetId = -1;
  int32_t RegionId = -1;
  OutputKind OutKind = OutputKind::Log;

  uint32_t ArgsBegin = 0, ArgsCount = 0;   ///< Call/Output args span.
  uint32_t OmegaBegin = 0, OmegaCount = 0; ///< AtomicStart omega span.
  uint32_t UseRegsBegin = 0;               ///< Formal use-regs span.
};

/// Dispatch codes consumed by the threaded engine
/// (InterpreterThreaded.cpp). The first block mirrors `Opcode` one-to-one;
/// the rest are *superinstructions*: an image-build-time peephole pass
/// (the fusion pass) marks hot adjacent opcode pairs so the threaded
/// engine executes both with a single dispatch.
///
/// Fusion never rewrites the `FlatInst` array — costs, monitor flags and
/// omega spans stay per-PC and untouched. A fused pair is encoded purely
/// in this side table: the *head* slot gets a `Fuse*` code covering
/// [pc, pc+1], while the *tail* slot keeps its plain one-to-one code.
/// That tail code is load-bearing: a JIT reboot can resume execution in
/// the middle of a pair, and dispatching the tail's plain code there is
/// exactly the unfused semantics.
enum class ThreadedOp : uint8_t {
  // One-to-one with Opcode (same order; a FlatInst's opcode is its own
  // dispatch code when the slot is not a fused head).
  Const,
  Bin,
  Un,
  Mov,
  LoadG,
  StoreG,
  LoadA,
  StoreA,
  LoadInd,
  StoreInd,
  Input,
  Call,
  Ret,
  Br,
  CondBr,
  Fresh,
  Consistent,
  AtomicStart,
  AtomicEnd,
  Output,
  Nop,
  // Superinstructions (head slots only). Chosen from the dynamic
  // opcode-pair histogram of the benchmarks (bench/micro_runtime --pairs).
  FuseBinCondBr,   ///< Bin + CondBr testing the Bin's destination.
  FuseBinStoreG,   ///< Bin + StoreG storing the Bin's destination.
  FuseBinStoreA,   ///< Bin + StoreA storing the Bin's destination.
  FuseLoadGBin,    ///< LoadG + Bin whose A operand is the loaded register.
  FuseLoadABin,    ///< LoadA + Bin whose A operand is the loaded register.
  FuseConstStoreG, ///< Const + StoreG storing the constant's register.
  FuseLoadGStoreG, ///< LoadG + StoreG: global-to-global scalar copy.
  FuseMovBin,      ///< Mov + Bin whose A operand is the moved register.
  FuseBinMov,      ///< Bin + Mov copying the Bin's destination.
  FuseMovBr,       ///< Mov + unconditional Br.
  FuseBinBin,      ///< Bin + Bin whose A operand is the first's result.
  // Dispatch-elision-only pairs: no dataflow condition, the tail re-reads
  // the register file (already updated by the head) like a plain handler.
  FuseMovLoadA,      ///< Mov + LoadA.
  FuseBinLoadA,      ///< Bin + LoadA.
  FuseLoadALoadA,    ///< LoadA + LoadA.
  FuseMovConsistent, ///< Mov + Consistent (a taint-off no-op).
  FuseConsistentBin, ///< Consistent + Bin.
};

/// Total number of ThreadedOp codes (jump-table size).
constexpr size_t NumThreadedOps =
    static_cast<size_t>(ThreadedOp::FuseConsistentBin) + 1;
/// Codes >= this are fused heads.
constexpr ThreadedOp FirstFusedOp = ThreadedOp::FuseBinCondBr;

const char *threadedOpName(ThreadedOp Op);

/// Layout of one non-volatile global in the flat NVM array.
struct GlobalSlot {
  uint32_t Base = 0; ///< First cell index.
  uint32_t Size = 0; ///< Cell count (1 for scalars).
};

/// Per-function layout of the linearized code.
struct FuncLayout {
  uint32_t EntryPc = 0; ///< PC of the entry block's first instruction.
  uint32_t EndPc = 0;   ///< One past the function's last instruction.
  uint32_t NumRegs = 0; ///< Virtual register-file size.
};

class ExecutableImage {
public:
  /// Builds the image for \p P. \p Regions supplies the omega sets
  /// flattened next to each AtomicStart and \p Plan the monitor side
  /// tables; either may be null for programs without annotations.
  static std::shared_ptr<const ExecutableImage>
  build(const Program &P, const std::vector<RegionInfo> *Regions,
        const MonitorPlan *Plan);

  // -- Code --------------------------------------------------------------
  const std::vector<FlatInst> &code() const { return Code; }
  uint32_t size() const { return static_cast<uint32_t>(Code.size()); }
  const FuncLayout &func(int F) const {
    return Funcs[static_cast<size_t>(F)];
  }
  int numFunctions() const { return static_cast<int>(Funcs.size()); }
  uint32_t entryPc(int F) const { return func(F).EntryPc; }
  uint32_t mainEntryPc() const { return MainEntry; }
  uint32_t mainNumRegs() const { return MainRegs; }

  // -- Pools -------------------------------------------------------------
  const Operand *args(const FlatInst &I) const {
    return ArgPool.data() + I.ArgsBegin;
  }
  /// Globals of an AtomicStart's omega set, in ascending id order (the
  /// same order the tree engine reads out of RegionInfo::Omega).
  const int32_t *omegaGlobals(const FlatInst &I) const {
    return OmegaPool.data() + I.OmegaBegin;
  }
  /// Formal-checker registers at a fresh-use site, ascending (the same
  /// order as MonitorPlan::UseRegs' std::set).
  const int32_t *useRegs(const FlatInst &I) const {
    return UseRegPool.data() + I.UseRegsBegin;
  }

  // -- NVM layout --------------------------------------------------------
  const std::vector<GlobalSlot> &globals() const { return Globals; }
  uint32_t globalBase(int G) const {
    return Globals[static_cast<size_t>(G)].Base;
  }
  uint32_t globalSize(int G) const {
    return Globals[static_cast<size_t>(G)].Size;
  }
  /// Total NVM cells across all globals.
  uint32_t nvmCells() const { return NvmCellCount; }

  // -- Costs -------------------------------------------------------------
  /// PC-indexed cycle costs under the default CostModel. Interpreters
  /// running a non-default model materialize their own table with
  /// costTableFor.
  const std::vector<uint64_t> &defaultCosts() const { return DefaultCosts; }
  std::vector<uint64_t> costTableFor(const CostModel &Costs) const;

  // -- Threaded dispatch view --------------------------------------------
  /// PC-indexed dispatch codes for the threaded engine. Non-fused slots
  /// (including every fused pair's tail) carry their FlatInst's opcode
  /// verbatim; fused heads carry a Fuse* code covering [pc, pc+1].
  const std::vector<ThreadedOp> &threadedOps() const { return TOps; }
  ThreadedOp threadedOpAt(uint32_t Pc) const {
    return TOps[static_cast<size_t>(Pc)];
  }
  bool isFusedHead(uint32_t Pc) const {
    return TOps[static_cast<size_t>(Pc)] >= FirstFusedOp;
  }
  /// Number of fused pairs the peephole pass formed.
  uint32_t fusedPairCount() const { return FusedPairs; }
  /// True when \p Pc is a *leader*: a block start (function entries and
  /// branch targets included) or the resume point after a Call. Fusion
  /// never makes a leader a pair's tail, so every control transfer lands
  /// on a plain dispatch code. Exposed for the fusion-pass unit tests.
  bool isLeader(uint32_t Pc) const {
    return Leaders[static_cast<size_t>(Pc)] != 0;
  }

  /// Human-readable dump of the whole image: PC, opcode, resolved
  /// targets, cost, region/monitor annotations (ocelotc --disasm).
  /// \p P must be the program this image was built from (names only).
  std::string disassemble(const Program &P) const;

private:
  ExecutableImage() = default;

  /// Computes the leader set and runs the superinstruction peephole pass
  /// over the finished Code array, filling TOps/Leaders/FusedPairs.
  void buildThreadedView();

  std::vector<FlatInst> Code;
  std::vector<ThreadedOp> TOps;
  std::vector<uint8_t> Leaders;
  uint32_t FusedPairs = 0;
  std::vector<FuncLayout> Funcs;
  std::vector<Operand> ArgPool;
  std::vector<int32_t> OmegaPool;
  std::vector<int32_t> UseRegPool;
  std::vector<GlobalSlot> Globals;
  std::vector<uint64_t> DefaultCosts;
  uint32_t NvmCellCount = 0;
  uint32_t MainEntry = 0;
  uint32_t MainRegs = 0;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_EXECUTABLEIMAGE_H
