//===- ExecutableImage.h - Flat, precomputed execution form -----*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `ExecutableImage` is an immutable, flat execution form of a compiled
/// program, built once per `CompiledArtifact` and shared read-only by every
/// `Simulation` that executes it. It exists purely for interpreter speed:
///
///  * All functions are linearized into one contiguous instruction array;
///    a program counter replaces the `{Func, Block, Idx}` triple, so fetch
///    is a single indexed load instead of three pointer hops.
///  * Branch, call and fall-through targets are pre-resolved to absolute
///    PCs at build time.
///  * The per-instruction cycle cost (`CostModel::costOf`'s switch) is
///    folded into a PC-indexed table.
///  * Dense side tables map each PC to its monitor actions (bit-vector
///    fresh-use checks, formal-checker use registers) and each
///    `AtomicStart` to its region's flattened omega set, replacing the
///    per-step `MonitorPlan` map lookups and `RegionInfo` linear scans.
///  * A global-variable layout table assigns every non-volatile global a
///    base offset in one flat NVM array.
///
/// The image is a *pure acceleration structure*: it adds no semantics. The
/// interpreter's retained tree-walking engine executes the original
/// `Program` directly, and differential tests pin the two engines to
/// bitwise-identical results (see tests/ExecImageTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_EXECUTABLEIMAGE_H
#define OCELOT_RUNTIME_EXECUTABLEIMAGE_H

#include "analysis/WarAnalysis.h"
#include "ir/Program.h"
#include "runtime/CostModel.h"
#include "runtime/MonitorPlan.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ocelot {

/// One linearized instruction. A trimmed, fixed-size mirror of
/// `Instruction` with every target resolved to an absolute PC and the
/// variable-length payloads (call/output arguments, omega sets, monitored
/// registers) moved into shared pools indexed by [begin, begin+count)
/// spans. No strings, no vectors: stepping touches only this struct and
/// the pools, both contiguous.
struct FlatInst {
  Opcode Op = Opcode::Nop;
  bool HasUseCheck = false;  ///< Site is in MonitorPlan::UseChecks.
  uint16_t UseRegsCount = 0; ///< Formal-checker registers at this site.
  uint32_t Label = 0;        ///< Stable label (the paper's l in (f, l)).
  int32_t Func = -1;         ///< Enclosing function id (the paper's f).
  int32_t Block = -1;        ///< Source basic-block id (for disassembly).

  int32_t Dst = -1;
  Operand A, B;
  BinOp BinKind = BinOp::Add;
  UnOp UnKind = UnOp::Neg;

  int32_t GlobalId = -1;
  int32_t SensorId = -1;

  int32_t Callee = -1;         ///< Call target function id.
  uint32_t CalleeEntryPc = 0;  ///< Resolved entry PC of the callee.
  uint32_t CalleeNumRegs = 0;  ///< Callee register-file size.

  uint32_t Target = 0;  ///< Resolved PC: Br target / CondBr true target.
  uint32_t Target2 = 0; ///< Resolved PC: CondBr false target.

  int32_t SetId = -1;
  int32_t RegionId = -1;
  OutputKind OutKind = OutputKind::Log;

  uint32_t ArgsBegin = 0, ArgsCount = 0;   ///< Call/Output args span.
  uint32_t OmegaBegin = 0, OmegaCount = 0; ///< AtomicStart omega span.
  uint32_t UseRegsBegin = 0;               ///< Formal use-regs span.
};

/// Dispatch codes consumed by the threaded engine
/// (InterpreterThreaded.cpp). The first block mirrors `Opcode` one-to-one;
/// the rest are *superinstructions*: an image-build-time peephole pass
/// (the fusion pass) marks hot adjacent opcode pairs so the threaded
/// engine executes both with a single dispatch, and a superblock pass
/// marks whole straight-line runs (3-6 slots) as variable-length chains
/// dispatched once.
///
/// Fusion never rewrites the `FlatInst` array — costs, monitor flags and
/// omega spans stay per-PC and untouched. A fused pair is encoded purely
/// in this side table: the *head* slot gets a `Fuse*` code covering
/// [pc, pc+1], while the *tail* slot keeps its plain one-to-one code.
/// That tail code is load-bearing: a JIT reboot can resume execution in
/// the middle of a pair, and dispatching the tail's plain code there is
/// exactly the unfused semantics. Chains follow the same discipline: only
/// the head slot gets a `ChainN` code; every interior and tail slot keeps
/// its plain code, so a mid-chain power failure, trap or region abort
/// resumes with unfused semantics at the interrupted PC.
enum class ThreadedOp : uint8_t {
  // One-to-one with Opcode (same order; a FlatInst's opcode is its own
  // dispatch code when the slot is not a fused head).
  Const,
  Bin,
  Un,
  Mov,
  LoadG,
  StoreG,
  LoadA,
  StoreA,
  LoadInd,
  StoreInd,
  Input,
  Call,
  Ret,
  Br,
  CondBr,
  Fresh,
  Consistent,
  AtomicStart,
  AtomicEnd,
  Output,
  Nop,
  // Superinstructions (head slots only). Chosen from the dynamic
  // opcode-pair histogram of the benchmarks (bench/micro_runtime --pairs).
  FuseBinCondBr,   ///< Bin + CondBr testing the Bin's destination.
  FuseBinStoreG,   ///< Bin + StoreG storing the Bin's destination.
  FuseBinStoreA,   ///< Bin + StoreA storing the Bin's destination.
  FuseLoadGBin,    ///< LoadG + Bin whose A operand is the loaded register.
  FuseLoadABin,    ///< LoadA + Bin whose A operand is the loaded register.
  FuseConstStoreG, ///< Const + StoreG storing the constant's register.
  FuseLoadGStoreG, ///< LoadG + StoreG: global-to-global scalar copy.
  FuseMovBin,      ///< Mov + Bin whose A operand is the moved register.
  FuseBinMov,      ///< Bin + Mov copying the Bin's destination.
  FuseMovBr,       ///< Mov + unconditional Br.
  FuseBinBin,      ///< Bin + Bin whose A operand is the first's result.
  // Dispatch-elision-only pairs: no dataflow condition, the tail re-reads
  // the register file (already updated by the head) like a plain handler.
  FuseMovLoadA,      ///< Mov + LoadA.
  FuseBinLoadA,      ///< Bin + LoadA.
  FuseLoadALoadA,    ///< LoadA + LoadA.
  FuseMovConsistent, ///< Mov + Consistent (a taint-off no-op).
  FuseConsistentBin, ///< Consistent + Bin.
  // Sensor-adjacent pairs: the `let v = s(); use v` idiom makes
  // Input's neighbourhood ~14% of dynamic pair transitions.
  FuseInputMov,        ///< Input + Mov copying the sampled register.
  FuseMovInput,        ///< Mov + Input (no dataflow; Input has no reads).
  FuseConsistentInput, ///< Consistent + Input.
  FuseMovMov,          ///< Mov + Mov.
  FuseFreshConsistent, ///< Fresh + Consistent (two taint-off no-ops).
  // Superblock chains (head slots only): a straight-line run of 3-6
  // chainable instructions executed under one dispatch, with the run's
  // most recent destination register cached in a local between slots.
  // The chain's length is in the ChainLen side table; interior slots
  // keep their plain codes (mid-chain resume, like pair tails).
  Chain3,
  Chain4,
  Chain5,
  Chain6,
};

/// Total number of ThreadedOp codes (jump-table size).
constexpr size_t NumThreadedOps =
    static_cast<size_t>(ThreadedOp::Chain6) + 1;
/// Codes >= this are fused heads (pairs or chains).
constexpr ThreadedOp FirstFusedOp = ThreadedOp::FuseBinCondBr;
/// Codes >= this are superblock chain heads.
constexpr ThreadedOp FirstChainOp = ThreadedOp::Chain3;
/// Chain length bounds of the superblock pass.
constexpr uint32_t MinChainLen = 3;
constexpr uint32_t MaxChainLen = 6;

/// How the image-build-time fusion passes run. `Chains` (the default)
/// layers variable-length superblock chains over pair fusion; `Pairs` is
/// the PR 6 pair-only tier; `Off` disables both (plain dispatch codes
/// everywhere) for bisection.
enum class FusionMode : uint8_t { Off, Pairs, Chains };

const char *fusionModeName(FusionMode M);
/// Parses "off" / "pairs" / "chains"; returns false on anything else.
bool parseFusionMode(const std::string &Text, FusionMode &M);

const char *threadedOpName(ThreadedOp Op);

/// Layout of one non-volatile global in the flat NVM array.
struct GlobalSlot {
  uint32_t Base = 0; ///< First cell index.
  uint32_t Size = 0; ///< Cell count (1 for scalars).
};

/// Per-function layout of the linearized code.
struct FuncLayout {
  uint32_t EntryPc = 0; ///< PC of the entry block's first instruction.
  uint32_t EndPc = 0;   ///< One past the function's last instruction.
  uint32_t NumRegs = 0; ///< Virtual register-file size.
};

struct PcProfile;
struct PgoBundle;

class ExecutableImage {
public:
  /// Builds the image for \p P. \p Regions supplies the omega sets
  /// flattened next to each AtomicStart and \p Plan the monitor side
  /// tables; either may be null for programs without annotations.
  /// \p Fusion selects the superinstruction tier and \p Pgo optionally
  /// supplies measured heat: when the bundle holds a profile for this
  /// image's fingerprint, the superblock pass chains only runs whose
  /// every slot executed; otherwise the static loop-depth estimator
  /// decides. A bundle without a matching entry is ignored here — strict
  /// rejection is the CLI's job (ocelotc --pgo exits 1).
  static std::shared_ptr<const ExecutableImage>
  build(const Program &P, const std::vector<RegionInfo> *Regions,
        const MonitorPlan *Plan, FusionMode Fusion = FusionMode::Chains,
        const PgoBundle *Pgo = nullptr);

  // -- Code --------------------------------------------------------------
  const std::vector<FlatInst> &code() const { return Code; }
  uint32_t size() const { return static_cast<uint32_t>(Code.size()); }
  const FuncLayout &func(int F) const {
    return Funcs[static_cast<size_t>(F)];
  }
  int numFunctions() const { return static_cast<int>(Funcs.size()); }
  uint32_t entryPc(int F) const { return func(F).EntryPc; }
  uint32_t mainEntryPc() const { return MainEntry; }
  uint32_t mainNumRegs() const { return MainRegs; }

  // -- Pools -------------------------------------------------------------
  const Operand *args(const FlatInst &I) const {
    return ArgPool.data() + I.ArgsBegin;
  }
  /// Globals of an AtomicStart's omega set, in ascending id order (the
  /// same order the tree engine reads out of RegionInfo::Omega).
  const int32_t *omegaGlobals(const FlatInst &I) const {
    return OmegaPool.data() + I.OmegaBegin;
  }
  /// Formal-checker registers at a fresh-use site, ascending (the same
  /// order as MonitorPlan::UseRegs' std::set).
  const int32_t *useRegs(const FlatInst &I) const {
    return UseRegPool.data() + I.UseRegsBegin;
  }

  // -- NVM layout --------------------------------------------------------
  const std::vector<GlobalSlot> &globals() const { return Globals; }
  uint32_t globalBase(int G) const {
    return Globals[static_cast<size_t>(G)].Base;
  }
  uint32_t globalSize(int G) const {
    return Globals[static_cast<size_t>(G)].Size;
  }
  /// Total NVM cells across all globals.
  uint32_t nvmCells() const { return NvmCellCount; }

  // -- Costs -------------------------------------------------------------
  /// PC-indexed cycle costs under the default CostModel. Interpreters
  /// running a non-default model materialize their own table with
  /// costTableFor.
  const std::vector<uint64_t> &defaultCosts() const { return DefaultCosts; }
  std::vector<uint64_t> costTableFor(const CostModel &Costs) const;

  // -- Threaded dispatch view --------------------------------------------
  /// PC-indexed dispatch codes for the threaded engine. Non-fused slots
  /// (including every fused pair's tail and every chain's interior slot)
  /// carry their FlatInst's opcode verbatim; fused heads carry a Fuse*
  /// code covering [pc, pc+1] and chain heads a ChainN code covering
  /// [pc, pc+chainLenAt(pc)).
  const std::vector<ThreadedOp> &threadedOps() const { return TOps; }
  ThreadedOp threadedOpAt(uint32_t Pc) const {
    return TOps[static_cast<size_t>(Pc)];
  }
  /// True when \p Pc heads a fused *pair* (chain heads excluded).
  bool isFusedHead(uint32_t Pc) const {
    return TOps[static_cast<size_t>(Pc)] >= FirstFusedOp &&
           TOps[static_cast<size_t>(Pc)] < FirstChainOp;
  }
  /// True when \p Pc heads a superblock chain.
  bool isChainHead(uint32_t Pc) const {
    return TOps[static_cast<size_t>(Pc)] >= FirstChainOp;
  }
  /// Chain length at \p Pc: 0 unless \p Pc heads a chain, else 3-6.
  uint32_t chainLenAt(uint32_t Pc) const {
    return ChainLen[static_cast<size_t>(Pc)];
  }
  /// Number of fused pairs the peephole pass formed.
  uint32_t fusedPairCount() const { return FusedPairs; }
  /// Number of superblock chains the superblock pass formed.
  uint32_t fusedChainCount() const { return FusedChains; }
  /// The fusion tier this image was built with.
  FusionMode fusionMode() const { return Fusion; }
  /// True when the superblock pass consumed a matching PGO profile
  /// (chains selected by measured heat, not the static estimator).
  bool usedPgo() const { return UsedPgo; }
  /// Structural hash of the flat code (opcodes, operands, targets,
  /// globals): the key PGO profiles are stored and matched under. Two
  /// images of the same program layout share a fingerprint regardless of
  /// fusion tier, so a profile collected at any tier applies to all.
  uint64_t fingerprint() const { return Fingerprint; }
  /// True when \p Pc is a *leader*: a block start (function entries and
  /// branch targets included) or the resume point after a Call. Fusion
  /// never makes a leader a pair's tail, so every control transfer lands
  /// on a plain dispatch code. Exposed for the fusion-pass unit tests.
  bool isLeader(uint32_t Pc) const {
    return Leaders[static_cast<size_t>(Pc)] != 0;
  }

  /// Human-readable dump of the whole image: PC, opcode, resolved
  /// targets, cost, region/monitor annotations (ocelotc --disasm).
  /// \p P must be the program this image was built from (names only).
  std::string disassemble(const Program &P) const;

private:
  ExecutableImage() = default;

  /// Computes the leader set and runs the fusion passes (superblock
  /// chains, then pairs over the remaining gaps) over the finished Code
  /// array, filling TOps/Leaders/ChainLen/FusedPairs/FusedChains.
  /// \p Heat is the per-PC heat table (null: chain everything legal).
  void buildThreadedView(const std::vector<uint64_t> *Heat);

  std::vector<FlatInst> Code;
  std::vector<ThreadedOp> TOps;
  std::vector<uint8_t> Leaders;
  std::vector<uint8_t> ChainLen;
  uint32_t FusedPairs = 0;
  uint32_t FusedChains = 0;
  FusionMode Fusion = FusionMode::Chains;
  bool UsedPgo = false;
  uint64_t Fingerprint = 0;
  std::vector<FuncLayout> Funcs;
  std::vector<Operand> ArgPool;
  std::vector<int32_t> OmegaPool;
  std::vector<int32_t> UseRegPool;
  std::vector<GlobalSlot> Globals;
  std::vector<uint64_t> DefaultCosts;
  uint32_t NvmCellCount = 0;
  uint32_t MainEntry = 0;
  uint32_t MainRegs = 0;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_EXECUTABLEIMAGE_H
