//===- InterpreterFlat.cpp - PC-indexed dispatch over the ExecutableImage --------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat dispatch engine: the hot loop the whole evaluation runs on.
/// Fetch is one indexed load from the image's contiguous code array, cycle
/// costs come from a PC-indexed table, branch/call targets are pre-resolved
/// absolute PCs, and the monitor/region side tables replace the per-step
/// map lookups and linear scans of the tree engine (Interpreter.cpp). The
/// loop is specialized on taint tracking: with taint off (the default),
/// values move as raw int64 payloads with no RtValue temporaries.
///
/// Every rule here must mirror the tree engine exactly — same cost
/// charging, same RNG draw sequence, same monitor callbacks, same trap
/// strings — so that the two engines stay bitwise-identical on every
/// benchmark x model x plan x seed cell (pinned by ExecImageTest).
///
//===----------------------------------------------------------------------===//

#include "runtime/Interpreter.h"

#include "telemetry/Profile.h"
#include "telemetry/TraceSink.h"

#include <cassert>

using namespace ocelot;

RtValue Interpreter::evalFlat(Operand O) const {
  if (O.isImm())
    return RtValue(O.Imm);
  if (O.isReg())
    return RegStack[FFrames.back().RegBase + static_cast<size_t>(O.Reg)];
  return evalKindless();
}

ProvChain Interpreter::currentChainFlat(int Func, uint32_t FinalLabel) const {
  // Frame I was created by the call instruction at FFrames[I].ReturnPc - 1;
  // that instruction's Func field is the caller, mirroring the tree
  // engine's (Frames[I-1].Func, Frames[I].CallSiteLabel) pairs.
  ProvChain C;
  const FlatInst *Code = Img->code().data();
  for (size_t I = 1; I < FFrames.size(); ++I) {
    const FlatInst &CallI = Code[FFrames[I].ReturnPc - 1];
    C.push_back(InstrRef(CallI.Func, CallI.Label));
  }
  C.push_back(InstrRef(Func, FinalLabel));
  return C;
}

void Interpreter::writeGlobalRaw(int G, int64_t Index, int64_t V,
                                 RunResult &R) {
  assert(Index >= 0 && Index < static_cast<int64_t>(Img->globalSize(G)));
  if (ExecMode == Mode::Atomic) {
    if (Undo.logIfFirst(G, Index, nvmCell(G, Index))) {
      ++R.UndoLogEntries;
      R.OnCycles += Cfg.Costs.UndoLogEntryCost;
      LifetimeOn += Cfg.Costs.UndoLogEntryCost;
      Tau += Cfg.Costs.UndoLogEntryCost;
    }
  }
  // Taint is empty everywhere by the !TrackTaint invariant, so only the
  // payload moves (writeGlobal would clear-and-assign the same state).
  nvmCell(G, Index).V = V;
}

void Interpreter::enterAtomicFlat(const FlatInst &I, RunResult &R) {
  if (ExecMode == Mode::Atomic) {
    ++Natom; // Atom-Start-Inner: flattening counter only.
    return;
  }
  // Atom-Start-Outer: snapshot volatile state positioned after the start
  // (Pc has already advanced past the AtomicStart, like the tree engine's
  // Idx). Saving the volatile context costs like a JIT checkpoint (§6.3).
  uint64_t SaveCost = Cfg.Costs.RegionEntryPerFrame * FFrames.size();
  R.OnCycles += SaveCost;
  LifetimeOn += SaveCost;
  Tau += SaveCost;
  if (Energy)
    Energy->consume(SaveCost);
  ExecMode = Mode::Atomic;
  CurrentRegion = I.RegionId;
  Natom = 0;
  AbortsThisRegion = 0;
  FlatAtomicSnapshot.Frames = FFrames;
  FlatAtomicSnapshot.Regs = RegStack;
  FlatAtomicSnapshot.Pc = Pc;
  Undo.clear();
  if (Cfg.StaticOmega && I.OmegaCount) {
    // The omega set was flattened next to the region start at image build
    // time, in the same ascending order the tree engine reads out of
    // RegionInfo::Omega — identical undo-log entry sequence.
    const int32_t *Omega = Img->omegaGlobals(I);
    for (uint32_t OI = 0; OI < I.OmegaCount; ++OI) {
      int G = Omega[OI];
      uint32_t Size = Img->globalSize(G);
      for (uint32_t Idx = 0; Idx < Size; ++Idx) {
        if (Undo.logIfFirst(G, static_cast<int64_t>(Idx), nvmCell(G, Idx))) {
          ++R.UndoLogEntries;
          R.OnCycles += Cfg.Costs.AtomicOmegaPerCell;
          LifetimeOn += Cfg.Costs.AtomicOmegaPerCell;
          Tau += Cfg.Costs.AtomicOmegaPerCell;
        }
      }
    }
  }
  if (TraceSink *T = Cfg.Telemetry)
    T->regionEnter(Tau, CurrentRegion);
}

void Interpreter::powerFailFlat(RunResult &R) {
  // The register stack holds exactly every live frame's register file, so
  // its size equals the tree engine's per-frame sum.
  uint64_t TotalRegs = RegStack.size();
  rebootCommon(R, TotalRegs);

  if (ExecMode == Mode::Atomic) {
    // Atom-Reboot: apply the undo log, restore the region-entry context.
    Undo.restore([&](int G, int64_t Index, const RtValue &Old) {
      nvmCell(G, Index) = Old;
    });
    // In static mode the log *is* the region's backup and is retained for
    // the next attempt; dynamic mode re-logs on first write.
    if (!Cfg.StaticOmega)
      Undo.clear();
    FFrames = FlatAtomicSnapshot.Frames;
    RegStack = FlatAtomicSnapshot.Regs;
    Pc = FlatAtomicSnapshot.Pc;
    Natom = 0;
    PendingInputs.clear();
    PendingOutputs.clear();
    PendingOracle.clear();
    ++R.AtomicAborts;
    ++AbortsThisRegion;
    if (TraceSink *T = Cfg.Telemetry)
      T->regionRetry(Tau, CurrentRegion, AbortsThisRegion);
    if (AbortsThisRegion > Cfg.MaxAbortsPerRegion) {
      R.Starved = true;
      FFrames.clear();
      RegStack.clear();
    }
  } else {
    // JIT-Reboot: restore volatile state (identity here; costed). Pc is
    // untouched: execution resumes at the interrupted instruction.
    uint64_t RestCost =
        Cfg.Costs.RestoreBase + Cfg.Costs.RestorePerReg * TotalRegs;
    R.OnCycles += RestCost;
    LifetimeOn += RestCost;
    Tau += RestCost;
  }
}

RunResult Interpreter::runOnceFlat() {
  // TrackTaint is fixed at construction (MonitorFormal forces it on), so
  // each interpreter always runs one instantiation.
  return Cfg.TrackTaint ? runFlatLoop<true>() : runFlatLoop<false>();
}

template <bool TaintOn> RunResult Interpreter::runFlatLoop() {
  RunResult R;
  Cfg.Plan.resetRun();
  Monitor->beginRun();
  size_t ViolationsBefore = Monitor->violations().size();

  FFrames.clear();
  FFrames.push_back(FlatFrame{/*ReturnPc=*/0, /*RegBase=*/0});
  RegStack.assign(Img->mainNumRegs(), RtValue());
  Pc = Img->mainEntryPc();
  ExecMode = Mode::Jit;
  Natom = 0;
  Undo.clear();
  PendingInputs.clear();
  PendingOutputs.clear();
  PendingOracle.clear();
  CommittedOracle.clear();
  Committed.clear();
  AbortsThisRegion = 0;
  CurrentRegion = -1;
  uint64_t ConsecutiveFailures = 0;

  const FlatInst *Code = Img->code().data();
  const uint64_t *Costs = CostTable;
  // Per-run constants, hoisted out of the hot loop. Skipping a call is
  // legal only when it neither returns true nor mutates state (RNG draws,
  // periodic-plan re-arming, energy consumption).
  const FailurePlan::Kind PlanKind = Cfg.Plan.kind();
  const bool PlanMayFireBefore = PlanKind == FailurePlan::Kind::Pathological ||
                                 PlanKind == FailurePlan::Kind::Random;
  const bool NeedEnergyCheck =
      Energy != nullptr || PlanKind == FailurePlan::Kind::Periodic;
  const bool BitVector = Cfg.MonitorBitVector;
  const bool Formal = Cfg.MonitorFormal;
  assert((TaintOn || !Formal) && "MonitorFormal implies TrackTaint");
  // Telemetry/profiling observers: one predictable null test per step
  // when off; never any effect on results.
  TraceSink *const Telem = Cfg.Telemetry;
  PcProfile *const Prof = Cfg.Profile;
  uint32_t ProfPrevPc = ~0u;
  uint16_t ProfPrevOp = 0;

  // Raw operand payload — the taint-off fast path touches no RtValue.
  auto RawVal = [&](const Operand &O) -> int64_t {
    if (O.isImm())
      return O.Imm;
    if (O.isReg())
      return RegStack[FFrames.back().RegBase + static_cast<size_t>(O.Reg)]
          .V;
    return evalKindless().V;
  };

  while (!FFrames.empty() && !R.Starved && R.Trap.empty()) {
    if (R.OnCycles > Cfg.MaxOnCyclesPerRun) {
      R.Trap = "on-cycle budget exceeded";
      break;
    }
    const FlatInst &FI = Code[Pc];
    InstrRef Site(FI.Func, FI.Label);

    // Failure injection before the instruction (pathological / random).
    if (PlanMayFireBefore && Cfg.Plan.firesBefore(Site, Rand)) {
      powerFailFlat(R);
      continue;
    }
    uint64_t Cost = Costs[Pc];
    if (NeedEnergyCheck && checkEnergyAndPlan(Cost)) {
      ++ConsecutiveFailures;
      if (ConsecutiveFailures > Cfg.MaxAbortsPerRegion) {
        R.Starved = true;
        break;
      }
      powerFailFlat(R);
      continue;
    }
    ConsecutiveFailures = 0;
    R.OnCycles += Cost;
    LifetimeOn += Cost;
    Tau += Cost;
    ++R.Steps;
    if (Prof) {
      Prof->step(Pc, static_cast<uint16_t>(FI.Op), ProfPrevPc, ProfPrevOp);
      ProfPrevPc = Pc;
      ProfPrevOp = static_cast<uint16_t>(FI.Op);
    }

    const uint32_t RegBase = FFrames.back().RegBase;

    // Freshness checks fire when a use of a fresh variable executes. The
    // side tables make the common case (no check at this PC) two flag
    // tests instead of two map lookups.
    if (BitVector && FI.HasUseCheck)
      Monitor->onFreshUse(Site, Tau);
    if constexpr (TaintOn) {
      if (Formal && FI.UseRegsCount) {
        const int32_t *Regs = Img->useRegs(FI);
        for (uint16_t RI = 0; RI < FI.UseRegsCount; ++RI)
          Monitor->onFreshUseFormal(
              Site,
              RegStack[RegBase + static_cast<size_t>(Regs[RI])].Taint,
              Epoch, Tau);
      }
    }

    ++Pc; // Advance before executing (branches overwrite).

    switch (FI.Op) {
    case Opcode::Const:
      if constexpr (TaintOn)
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] = RtValue(FI.A.Imm);
      else
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V = FI.A.Imm;
      break;
    case Opcode::Mov:
      if constexpr (TaintOn)
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] = evalFlat(FI.A);
      else
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V = RawVal(FI.A);
      break;
    case Opcode::Un: {
      int64_t AV;
      RtValue A;
      if constexpr (TaintOn) {
        A = evalFlat(FI.A);
        AV = A.V;
      } else {
        AV = RawVal(FI.A);
      }
      int64_t V = 0;
      switch (FI.UnKind) {
      case UnOp::Neg:
        V = -AV;
        break;
      case UnOp::Not:
        V = ~AV;
        break;
      case UnOp::LNot:
        V = AV == 0 ? 1 : 0;
        break;
      }
      if constexpr (TaintOn) {
        RtValue Out(V);
        Out.Taint = std::move(A.Taint);
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] = std::move(Out);
      } else {
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V = V;
      }
      break;
    }
    case Opcode::Bin: {
      int64_t AV, BV;
      RtValue A, B;
      if constexpr (TaintOn) {
        A = evalFlat(FI.A);
        B = evalFlat(FI.B);
        AV = A.V;
        BV = B.V;
      } else {
        AV = RawVal(FI.A);
        BV = RawVal(FI.B);
      }
      int64_t V = 0;
      bool Ok = true;
      switch (FI.BinKind) {
      case BinOp::Add:
        V = AV + BV;
        break;
      case BinOp::Sub:
        V = AV - BV;
        break;
      case BinOp::Mul:
        V = AV * BV;
        break;
      case BinOp::Div:
        if (BV == 0)
          Ok = false;
        else
          V = AV / BV;
        break;
      case BinOp::Mod:
        if (BV == 0)
          Ok = false;
        else
          V = AV % BV;
        break;
      case BinOp::And:
        V = AV & BV;
        break;
      case BinOp::Or:
        V = AV | BV;
        break;
      case BinOp::Xor:
        V = AV ^ BV;
        break;
      case BinOp::Shl:
        V = AV << (BV & 63);
        break;
      case BinOp::Shr:
        V = AV >> (BV & 63);
        break;
      case BinOp::Eq:
        V = AV == BV;
        break;
      case BinOp::Ne:
        V = AV != BV;
        break;
      case BinOp::Lt:
        V = AV < BV;
        break;
      case BinOp::Le:
        V = AV <= BV;
        break;
      case BinOp::Gt:
        V = AV > BV;
        break;
      case BinOp::Ge:
        V = AV >= BV;
        break;
      case BinOp::LAnd:
        V = (AV != 0) && (BV != 0);
        break;
      case BinOp::LOr:
        V = (AV != 0) || (BV != 0);
        break;
      }
      if (!Ok) {
        R.Trap = "division by zero at " + P.function(Site.Func)->name() +
                 "@" + std::to_string(Site.Label);
        break;
      }
      if constexpr (TaintOn) {
        RtValue Out(V);
        Out.Taint = A.Taint;
        Out.mergeTaint(B);
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] = std::move(Out);
      } else {
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V = V;
      }
      break;
    }
    case Opcode::LoadG:
      if constexpr (TaintOn)
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] =
            nvmCell(FI.GlobalId, 0);
      else
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V =
            nvmCell(FI.GlobalId, 0).V;
      break;
    case Opcode::StoreG:
      if constexpr (TaintOn)
        writeGlobal(FI.GlobalId, 0, evalFlat(FI.A), R);
      else
        writeGlobalRaw(FI.GlobalId, 0, RawVal(FI.A), R);
      break;
    case Opcode::LoadA: {
      int64_t Idx = TaintOn ? evalFlat(FI.A).V : RawVal(FI.A);
      if (Idx < 0 ||
          Idx >= static_cast<int64_t>(Img->globalSize(FI.GlobalId))) {
        R.Trap = "array index out of bounds in " +
                 P.function(Site.Func)->name();
        break;
      }
      if constexpr (TaintOn)
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] =
            nvmCell(FI.GlobalId, Idx);
      else
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V =
            nvmCell(FI.GlobalId, Idx).V;
      break;
    }
    case Opcode::StoreA: {
      int64_t Idx = TaintOn ? evalFlat(FI.A).V : RawVal(FI.A);
      if (Idx < 0 ||
          Idx >= static_cast<int64_t>(Img->globalSize(FI.GlobalId))) {
        R.Trap = "array index out of bounds in " +
                 P.function(Site.Func)->name();
        break;
      }
      if constexpr (TaintOn)
        writeGlobal(FI.GlobalId, Idx, evalFlat(FI.B), R);
      else
        writeGlobalRaw(FI.GlobalId, Idx, RawVal(FI.B), R);
      break;
    }
    case Opcode::LoadInd: {
      int64_t G = TaintOn ? evalFlat(FI.A).V : RawVal(FI.A);
      assert(G >= 0 && G < P.numGlobals() && "bad reference value");
      if constexpr (TaintOn)
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] =
            nvmCell(static_cast<int>(G), 0);
      else
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V =
            nvmCell(static_cast<int>(G), 0).V;
      break;
    }
    case Opcode::StoreInd: {
      int64_t G = TaintOn ? evalFlat(FI.A).V : RawVal(FI.A);
      assert(G >= 0 && G < P.numGlobals() && "bad reference value");
      if constexpr (TaintOn)
        writeGlobal(static_cast<int>(G), 0, evalFlat(FI.B), R);
      else
        writeGlobalRaw(static_cast<int>(G), 0, RawVal(FI.B), R);
      break;
    }
    case Opcode::Input: {
      int64_t V;
      if (Replay) {
        if (ReplayIdx >= Replay->size()) {
          R.Trap = "replay input queue exhausted";
          break;
        }
        const InputEvent &E = (*Replay)[ReplayIdx++];
        if (E.Sensor != FI.SensorId) {
          R.Trap = "replay sensor mismatch";
          break;
        }
        V = E.Value;
      } else {
        V = Sensors->sample(FI.SensorId, Tau);
      }
      InputEvent E;
      E.Sensor = FI.SensorId;
      E.Tau = Tau;
      E.Epoch = Epoch;
      E.Value = V;
      if constexpr (TaintOn) {
        RtValue Out(V);
        Out.Taint.push_back(E);
        RegStack[RegBase + static_cast<size_t>(FI.Dst)] = std::move(Out);
      } else {
        RegStack[RegBase + static_cast<size_t>(FI.Dst)].V = V;
      }
      if (Telem)
        Telem->sensorRead(Tau, FI.SensorId, V);
      if (BitVector)
        Monitor->onInput(Site, currentChainFlat(FI.Func, FI.Label),
                         FI.SensorId, Tau);
      if (Cfg.RecordTrace) {
        if (ExecMode == Mode::Atomic)
          PendingInputs.push_back(E);
        else
          Committed.Inputs.push_back(E);
      }
      break;
    }
    case Opcode::Call: {
      // Pc already points at the fall-through instruction: that is the
      // return address, and Code[ReturnPc - 1] recovers this call (its
      // Dst / Label) when the frame returns or a chain is materialized.
      const uint32_t NewBase = static_cast<uint32_t>(RegStack.size());
      RegStack.resize(NewBase + FI.CalleeNumRegs);
      const Operand *Args = Img->args(FI);
      for (uint32_t A = 0; A < FI.ArgsCount; ++A) {
        if constexpr (TaintOn)
          RegStack[NewBase + A] = evalFlat(Args[A]);
        else
          RegStack[NewBase + A].V = RawVal(Args[A]);
      }
      FFrames.push_back(FlatFrame{/*ReturnPc=*/Pc, /*RegBase=*/NewBase});
      Pc = FI.CalleeEntryPc;
      break;
    }
    case Opcode::Ret: {
      FlatFrame F = FFrames.back();
      if constexpr (TaintOn) {
        RtValue V = FI.A.isNone() ? RtValue(0) : evalFlat(FI.A);
        FFrames.pop_back();
        RegStack.resize(F.RegBase);
        if (!FFrames.empty()) {
          Pc = F.ReturnPc;
          const FlatInst &CallI = Code[F.ReturnPc - 1];
          if (CallI.Dst >= 0 && !FI.A.isNone())
            RegStack[FFrames.back().RegBase +
                     static_cast<size_t>(CallI.Dst)] = std::move(V);
        }
      } else {
        int64_t V = FI.A.isNone() ? 0 : RawVal(FI.A);
        FFrames.pop_back();
        RegStack.resize(F.RegBase);
        if (!FFrames.empty()) {
          Pc = F.ReturnPc;
          const FlatInst &CallI = Code[F.ReturnPc - 1];
          if (CallI.Dst >= 0 && !FI.A.isNone())
            RegStack[FFrames.back().RegBase +
                     static_cast<size_t>(CallI.Dst)]
                .V = V;
        }
      }
      break;
    }
    case Opcode::Br:
      Pc = FI.Target;
      break;
    case Opcode::CondBr: {
      int64_t V = TaintOn ? evalFlat(FI.A).V : RawVal(FI.A);
      Pc = V != 0 ? FI.Target : FI.Target2;
      break;
    }
    case Opcode::Fresh:
      break; // Checked at uses.
    case Opcode::Consistent:
      if constexpr (TaintOn) {
        if (Formal)
          Monitor->onConsistentMarker(FI.SetId, FI.Label,
                                      evalFlat(FI.A).Taint, Epoch, Tau);
      }
      break;
    case Opcode::AtomicStart:
      enterAtomicFlat(FI, R);
      break;
    case Opcode::AtomicEnd:
      commitAtomic(R);
      break;
    case Opcode::Output: {
      const Operand *Args = Img->args(FI);
      // The oracle needs taint, which only the TaintOn instantiation
      // carries (RunConfig::Oracle implies TrackTaint, so taint-off loops
      // never see Cfg.Oracle set).
      const bool OracleOn = TaintOn && Cfg.Oracle;
      if (!Cfg.RecordTrace && !OracleOn) {
        // Args are still evaluated (kind-less operands must convert to
        // the same trap), but the event is never materialized.
        for (uint32_t A = 0; A < FI.ArgsCount; ++A)
          (void)(TaintOn ? evalFlat(Args[A]).V : RawVal(Args[A]));
        break;
      }
      OutputEvent E;
      E.Kind = FI.OutKind;
      E.Tau = Tau;
      E.Args.reserve(FI.ArgsCount);
      std::vector<InputEvent> Fused;
      for (uint32_t A = 0; A < FI.ArgsCount; ++A) {
        if constexpr (TaintOn) {
          const RtValue V = evalFlat(Args[A]);
          E.Args.push_back(V.V);
          if (OracleOn)
            for (const InputEvent &T : V.Taint)
              Fused.push_back(T);
        } else {
          E.Args.push_back(RawVal(Args[A]));
        }
      }
      if (OracleOn)
        recordOracleOutput(E.Kind, std::move(Fused));
      if (Cfg.RecordTrace) {
        if (ExecMode == Mode::Atomic)
          PendingOutputs.push_back(E);
        else
          Committed.Outputs.push_back(std::move(E));
      }
      break;
    }
    case Opcode::Nop:
      break;
    }

    if (SawKindlessOperand) {
      SawKindlessOperand = false;
      if (R.Trap.empty())
        R.Trap = "operand without a kind at " +
                 P.function(Site.Func)->name() + "@" +
                 std::to_string(Site.Label) + " (lowering bug)";
    }
  }

  R.Completed = FFrames.empty() && R.Trap.empty() && !R.Starved;
  R.TraceData = std::move(Committed);
  Committed.clear();
  R.FinalTau = Tau;
  finishOracle(R);

  R.ViolatedFresh = Monitor->runFreshViolation();
  R.ViolatedConsistent = Monitor->runConsistentViolation();
  const auto &AllViolations = Monitor->violations();
  for (size_t I = ViolationsBefore; I < AllViolations.size(); ++I)
    R.Violations.push_back(AllViolations[I]);
  return R;
}

template RunResult Interpreter::runFlatLoop<true>();
template RunResult Interpreter::runFlatLoop<false>();
