//===- ViolationMonitor.cpp - Freshness/consistency violation detection --------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ViolationMonitor.h"

#include "telemetry/TraceSink.h"

using namespace ocelot;

const char *ocelot::violationKindName(ViolationRecord::Kind K) {
  switch (K) {
  case ViolationRecord::Kind::FreshBitVec:
    return "fresh(bitvec)";
  case ViolationRecord::Kind::ConsistentBitVec:
    return "consistent(bitvec)";
  case ViolationRecord::Kind::FreshFormal:
    return "fresh(formal)";
  case ViolationRecord::Kind::ConsistentFormal:
    return "consistent(formal)";
  }
  return "?";
}

void ViolationMonitor::beginRun() {
  for (auto &Flags : MemberExecuted)
    std::fill(Flags.begin(), Flags.end(), false);
  SetRecords.clear();
  RunFresh = false;
  RunConsistent = false;
  // Records are per-run detail (the cumulative history is summarized by
  // the saw*() flags); clearing keeps the cap from starving later runs.
  Records.clear();
}

void ViolationMonitor::onPowerFailure() { Bits.clear(); }

void ViolationMonitor::record(ViolationRecord R) {
  if (Sink)
    Sink->violation(R.Tau, R.Site.Label, R.SetId, violationKindName(R.K));
  if (R.K == ViolationRecord::Kind::FreshBitVec ||
      R.K == ViolationRecord::Kind::FreshFormal) {
    FreshViolated = true;
    RunFresh = true;
  } else {
    ConsistentViolated = true;
    RunConsistent = true;
  }
  if (Records.size() < 256)
    Records.push_back(std::move(R));
}

void ViolationMonitor::onInput(InstrRef Site, const ProvChain &AbsChain,
                               int Sensor, uint64_t Tau) {
  (void)Sensor;
  // Consistent-set membership: match the dynamic call chain against the
  // plan's member chains. Checks run before this operation's bit is set,
  // since members reached through different call sites can share the same
  // static input instruction.
  bool Checked = false, Failed = false;
  for (size_t SI = 0; SI < Plan.Sets.size(); ++SI) {
    const ConsistentSetPlan &SP = Plan.Sets[SI];
    for (size_t MI = 0; MI < SP.Members.size(); ++MI) {
      if (SP.Members[MI] != AbsChain)
        continue;
      Checked = true;
      auto &Executed = MemberExecuted[SI];
      // Re-execution of an already-executed member starts a new dynamic
      // activation of the set (Definition 3 scopes consistency to one
      // activation of the declaring function).
      if (Executed[MI])
        std::fill(Executed.begin(), Executed.end(), false);
      // Check every *other* executed member: its operation's bit must
      // still be set, i.e. no power failure separated it from this input
      // (§7.3).
      for (size_t Other = 0; Other < SP.Members.size(); ++Other) {
        if (Other == MI || !Executed[Other])
          continue;
        if (!Bits.count(SP.Members[Other].back())) {
          Failed = true;
          ViolationRecord R;
          R.K = ViolationRecord::Kind::ConsistentBitVec;
          R.Site = Site;
          R.SetId = SP.SetId;
          R.Tau = Tau;
          R.Detail = "input collected after a power failure split "
                     "consistent set " +
                     std::to_string(SP.SetId);
          record(std::move(R));
          break;
        }
      }
      Executed[MI] = true;
    }
  }
  if (Sink && Checked)
    Sink->monitorCheck(Tau, Site.Label, Failed);
  Bits.insert(Site);
}

void ViolationMonitor::onFreshUse(InstrRef Site, uint64_t Tau) {
  auto It = Plan.UseChecks.find(Site);
  if (It == Plan.UseChecks.end())
    return;
  bool Failed = false;
  for (const InstrRef &InputOp : It->second) {
    if (!Bits.count(InputOp)) {
      Failed = true;
      ViolationRecord R;
      R.K = ViolationRecord::Kind::FreshBitVec;
      R.Site = Site;
      R.Tau = Tau;
      R.Detail = "use of stale input: operation @" +
                 std::to_string(InputOp.Label) +
                 "'s bit cleared by a power failure";
      record(std::move(R));
      break;
    }
  }
  if (Sink)
    Sink->monitorCheck(Tau, Site.Label, Failed);
}

void ViolationMonitor::onFreshUseFormal(InstrRef Site,
                                        const std::vector<InputEvent> &Taint,
                                        uint64_t Epoch, uint64_t Tau) {
  bool Failed = false;
  for (const InputEvent &E : Taint) {
    if (E.Epoch != Epoch) {
      Failed = true;
      ViolationRecord R;
      R.K = ViolationRecord::Kind::FreshFormal;
      R.Site = Site;
      R.Tau = Tau;
      R.Detail = "value depends on an input collected in reboot epoch " +
                 std::to_string(E.Epoch) + " but is used in epoch " +
                 std::to_string(Epoch);
      record(std::move(R));
      break;
    }
  }
  if (Sink)
    Sink->monitorCheck(Tau, Site.Label, Failed);
}

void ViolationMonitor::onConsistentMarker(int SetId, uint32_t MarkerLabel,
                                          const std::vector<InputEvent> &Taint,
                                          uint64_t Epoch, uint64_t Tau) {
  (void)Epoch;
  auto Key = std::make_pair(SetId, MarkerLabel);
  if (SetRecords.count(Key)) {
    // New dynamic activation of the set: drop the previous instance.
    for (auto It = SetRecords.begin(); It != SetRecords.end();) {
      if (It->first.first == SetId)
        It = SetRecords.erase(It);
      else
        ++It;
    }
  }
  SetRecords[Key] = Taint;

  // All events across the set's recorded members must share one epoch.
  bool HaveEpoch = false;
  uint64_t SetEpoch = 0;
  for (const auto &[K, Events] : SetRecords) {
    if (K.first != SetId)
      continue;
    for (const InputEvent &E : Events) {
      if (!HaveEpoch) {
        SetEpoch = E.Epoch;
        HaveEpoch = true;
      } else if (E.Epoch != SetEpoch) {
        ViolationRecord R;
        R.K = ViolationRecord::Kind::ConsistentFormal;
        R.SetId = SetId;
        R.Tau = Tau;
        R.Detail = "consistent set " + std::to_string(SetId) +
                   " holds inputs from reboot epochs " +
                   std::to_string(SetEpoch) + " and " +
                   std::to_string(E.Epoch);
        record(std::move(R));
        if (Sink)
          Sink->monitorCheck(Tau, MarkerLabel, true);
        return;
      }
    }
  }
  if (Sink)
    Sink->monitorCheck(Tau, MarkerLabel, false);
}
