//===- ExecutableImage.cpp - Flat, precomputed execution form --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutableImage.h"

#include "telemetry/Profile.h"

#include <cassert>
#include <cstdio>
#include <map>

using namespace ocelot;

namespace {

/// FNV-1a over the structural fields of the flat code: what the program
/// *is* (opcodes, operands, resolved targets, global/sensor bindings),
/// not how it is dispatched. The threaded view is derived after the hash,
/// so every fusion tier of the same program shares a fingerprint and a
/// PGO profile collected under any tier matches them all.
uint64_t hashCode(const std::vector<FlatInst> &Code) {
  uint64_t H = 0xcbf29ce484222325ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V;
    H *= 0x100000001b3ULL;
  };
  auto MixOperand = [&Mix](const Operand &O) {
    Mix(static_cast<uint64_t>(O.K) ^
        (static_cast<uint64_t>(static_cast<int64_t>(O.Reg)) << 8) ^
        (static_cast<uint64_t>(O.Imm) << 24));
  };
  Mix(Code.size());
  for (const FlatInst &FI : Code) {
    Mix(static_cast<uint64_t>(FI.Op));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(FI.Dst)));
    MixOperand(FI.A);
    MixOperand(FI.B);
    Mix(static_cast<uint64_t>(FI.BinKind) ^
        (static_cast<uint64_t>(FI.UnKind) << 8));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(FI.GlobalId)));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(FI.SensorId)));
    Mix(static_cast<uint64_t>(static_cast<int64_t>(FI.Func)));
    Mix(FI.Target);
    Mix(FI.Target2);
    Mix(static_cast<uint64_t>(static_cast<int64_t>(FI.Callee)));
  }
  return H;
}

/// The static heat estimator: loop-depth-weighted block frequencies
/// derived purely from the image's branch structure. A back edge (a
/// branch whose target is at or before it, within one function) brackets
/// a natural-loop body [target, branch]; every PC's heat is 8^depth,
/// clamped, so a doubly nested loop body outweighs its preheader 64:1.
/// Every reachable PC gets heat >= 1: under the static model all legal
/// straight-line runs qualify for chaining, and the weighting orders
/// them for diagnostics. A real PGO profile replaces this table with
/// measured PC counts, whose zeros keep cold code un-chained.
std::vector<uint64_t> staticHeat(const std::vector<FlatInst> &Code) {
  const size_t N = Code.size();
  std::vector<uint32_t> Depth(N, 0);
  for (size_t Pc = 0; Pc < N; ++Pc) {
    const FlatInst &FI = Code[Pc];
    if (FI.Op != Opcode::Br && FI.Op != Opcode::CondBr)
      continue;
    auto Mark = [&](uint32_t Target) {
      if (Target <= Pc && Code[Target].Func == FI.Func)
        for (size_t I = Target; I <= Pc; ++I)
          ++Depth[I];
    };
    Mark(FI.Target);
    if (FI.Op == Opcode::CondBr)
      Mark(FI.Target2);
  }
  std::vector<uint64_t> Heat(N, 0);
  for (size_t Pc = 0; Pc < N; ++Pc)
    Heat[Pc] = 1ULL << (3 * (Depth[Pc] > 6 ? 6u : Depth[Pc]));
  return Heat;
}

} // namespace

std::shared_ptr<const ExecutableImage>
ExecutableImage::build(const Program &P,
                       const std::vector<RegionInfo> *Regions,
                       const MonitorPlan *Plan, FusionMode Fusion,
                       const PgoBundle *Pgo) {
  auto Img = std::shared_ptr<ExecutableImage>(new ExecutableImage());

  // Pass 1: layout. Blocks are laid out in id order, so every PC is known
  // before any target is resolved. An empty block's PC coincides with the
  // next block's start (verified IR has no empty blocks).
  std::vector<std::vector<uint32_t>> BlockPc(
      static_cast<size_t>(P.numFunctions()));
  uint32_t Pc = 0;
  Img->Funcs.resize(static_cast<size_t>(P.numFunctions()));
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function *Fn = P.function(F);
    FuncLayout &L = Img->Funcs[static_cast<size_t>(F)];
    L.EntryPc = Pc;
    L.NumRegs = static_cast<uint32_t>(Fn->numRegs());
    BlockPc[static_cast<size_t>(F)].resize(
        static_cast<size_t>(Fn->numBlocks()));
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      BlockPc[static_cast<size_t>(F)][static_cast<size_t>(B)] = Pc;
      Pc += static_cast<uint32_t>(Fn->block(B)->size());
    }
    L.EndPc = Pc;
  }

  std::map<int, const RegionInfo *> RegionById;
  if (Regions)
    for (const RegionInfo &R : *Regions)
      RegionById[R.RegionId] = &R;

  // Pass 2: emit, resolving targets and flattening the side tables.
  Img->Code.reserve(Pc);
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function *Fn = P.function(F);
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      for (const Instruction &I : Fn->block(B)->instructions()) {
        FlatInst FI;
        FI.Op = I.Op;
        FI.Label = I.Label;
        FI.Func = F;
        FI.Block = B;
        FI.Dst = I.Dst;
        FI.A = I.A;
        FI.B = I.B;
        FI.BinKind = I.BinKind;
        FI.UnKind = I.UnKind;
        FI.GlobalId = I.GlobalId;
        FI.SensorId = I.SensorId;
        FI.SetId = I.SetId;
        FI.RegionId = I.RegionId;
        FI.OutKind = I.OutKind;

        if (!I.Args.empty()) {
          FI.ArgsBegin = static_cast<uint32_t>(Img->ArgPool.size());
          FI.ArgsCount = static_cast<uint32_t>(I.Args.size());
          Img->ArgPool.insert(Img->ArgPool.end(), I.Args.begin(),
                              I.Args.end());
        }

        if (I.Op == Opcode::Call && I.Callee >= 0) {
          FI.Callee = I.Callee;
          FI.CalleeEntryPc = Img->Funcs[static_cast<size_t>(I.Callee)].EntryPc;
          FI.CalleeNumRegs = Img->Funcs[static_cast<size_t>(I.Callee)].NumRegs;
        }
        if (I.Op == Opcode::Br || I.Op == Opcode::CondBr) {
          assert(I.Target >= 0 && I.Target < Fn->numBlocks() &&
                 "unresolved branch target");
          FI.Target =
              BlockPc[static_cast<size_t>(F)][static_cast<size_t>(I.Target)];
        }
        if (I.Op == Opcode::CondBr) {
          assert(I.Target2 >= 0 && I.Target2 < Fn->numBlocks() &&
                 "unresolved branch target");
          FI.Target2 =
              BlockPc[static_cast<size_t>(F)][static_cast<size_t>(I.Target2)];
        }

        // Static-omega backup set, flattened next to the region start in
        // the ascending order RegionInfo::Omega (a std::set) yields — the
        // tree engine's iteration order, so undo-log sequences match.
        if (I.Op == Opcode::AtomicStart) {
          auto It = RegionById.find(I.RegionId);
          if (It != RegionById.end() && !It->second->Omega.empty()) {
            FI.OmegaBegin = static_cast<uint32_t>(Img->OmegaPool.size());
            FI.OmegaCount = static_cast<uint32_t>(It->second->Omega.size());
            for (int G : It->second->Omega)
              Img->OmegaPool.push_back(G);
          }
        }

        // Monitor side tables: what would otherwise be one or two map
        // lookups per executed instruction becomes a flag and a span.
        if (Plan) {
          InstrRef Site(F, I.Label);
          FI.HasUseCheck = Plan->UseChecks.count(Site) != 0;
          auto UR = Plan->UseRegs.find(Site);
          if (UR != Plan->UseRegs.end() && !UR->second.empty()) {
            FI.UseRegsBegin = static_cast<uint32_t>(Img->UseRegPool.size());
            FI.UseRegsCount = static_cast<uint16_t>(UR->second.size());
            for (int Reg : UR->second)
              Img->UseRegPool.push_back(Reg);
          }
        }

        Img->Code.push_back(FI);
      }
    }
  }
  assert(Img->Code.size() == Pc && "layout / emission length mismatch");

  // NVM layout: every global gets a base offset in one flat cell array.
  Img->Globals.resize(static_cast<size_t>(P.numGlobals()));
  uint32_t Cell = 0;
  for (int G = 0; G < P.numGlobals(); ++G) {
    GlobalSlot &S = Img->Globals[static_cast<size_t>(G)];
    S.Base = Cell;
    S.Size = static_cast<uint32_t>(P.global(G).Size);
    Cell += S.Size;
  }
  Img->NvmCellCount = Cell;

  if (P.mainFunction() >= 0) {
    Img->MainEntry = Img->Funcs[static_cast<size_t>(P.mainFunction())].EntryPc;
    Img->MainRegs = Img->Funcs[static_cast<size_t>(P.mainFunction())].NumRegs;
  }

  Img->DefaultCosts = Img->costTableFor(CostModel());
  Img->Fingerprint = hashCode(Img->Code);
  Img->Fusion = Fusion;

  // Heat seam: measured PC counts when the bundle profiles this exact
  // image, else the static loop-depth estimator. A stale bundle (no
  // matching fingerprint, or a profile sized for different code) simply
  // falls back — the strict, user-facing rejection lives in the CLIs.
  std::vector<uint64_t> Heat;
  if (Fusion == FusionMode::Chains) {
    const PcProfile *Prof = Pgo ? Pgo->find(Img->Fingerprint) : nullptr;
    if (Prof && Prof->PcCounts.size() == Img->Code.size()) {
      Heat = Prof->PcCounts;
      Img->UsedPgo = true;
    } else {
      Heat = staticHeat(Img->Code);
    }
  }
  Img->buildThreadedView(Fusion == FusionMode::Chains ? &Heat : nullptr);
  return Img;
}

const char *ocelot::fusionModeName(FusionMode M) {
  switch (M) {
  case FusionMode::Off:
    return "off";
  case FusionMode::Pairs:
    return "pairs";
  case FusionMode::Chains:
    return "chains";
  }
  return "<invalid>";
}

bool ocelot::parseFusionMode(const std::string &Text, FusionMode &M) {
  if (Text == "off")
    M = FusionMode::Off;
  else if (Text == "pairs")
    M = FusionMode::Pairs;
  else if (Text == "chains")
    M = FusionMode::Chains;
  else
    return false;
  return true;
}

// The one-to-one ThreadedOp block must mirror Opcode exactly: the fusion
// pass seeds the dispatch table with a plain static_cast of each opcode.
static_assert(static_cast<int>(ThreadedOp::Const) ==
              static_cast<int>(Opcode::Const));
static_assert(static_cast<int>(ThreadedOp::Bin) ==
              static_cast<int>(Opcode::Bin));
static_assert(static_cast<int>(ThreadedOp::CondBr) ==
              static_cast<int>(Opcode::CondBr));
static_assert(static_cast<int>(ThreadedOp::AtomicStart) ==
              static_cast<int>(Opcode::AtomicStart));
static_assert(static_cast<int>(ThreadedOp::Nop) ==
              static_cast<int>(Opcode::Nop));
static_assert(static_cast<size_t>(FirstFusedOp) ==
              static_cast<size_t>(Opcode::Nop) + 1);
// Chain codes are contiguous and ordered by length: the superblock pass
// encodes a length-L head as Chain3 + (L - MinChainLen).
static_assert(static_cast<size_t>(ThreadedOp::Chain4) ==
              static_cast<size_t>(ThreadedOp::Chain3) + 1);
static_assert(static_cast<size_t>(ThreadedOp::Chain6) ==
              static_cast<size_t>(ThreadedOp::Chain3) + MaxChainLen -
                  MinChainLen);
static_assert(static_cast<size_t>(FirstChainOp) + 4 == NumThreadedOps);

namespace {

bool readsReg(const Operand &O, int32_t Reg) {
  return O.isReg() && O.Reg == Reg;
}

/// Matches the superinstruction patterns over an adjacent pair. Returns
/// the head's plain code when nothing matches. Forwarding patterns pair a
/// fall-through head (Const/Bin/Mov/LoadG/LoadA/Input) with a tail that
/// consumes the head's destination register, so the tail's input is the
/// head's result; dispatch-elision patterns have no dataflow condition
/// and their tails re-read the register file. AtomicStart/AtomicEnd are
/// in no pattern: fusion cannot cross a region boundary.
ThreadedOp fusePattern(const FlatInst &H, const FlatInst &T) {
  const ThreadedOp Plain = static_cast<ThreadedOp>(H.Op);
  // Consistent and Fresh are taint-marker no-ops with no destination
  // register; they are the only fusable heads without one. The
  // `consistent(v); use v` idiom the checker emits makes their
  // neighbourhood hot even though the markers themselves do nothing.
  if (H.Op == Opcode::Consistent) {
    if (T.Op == Opcode::Bin)
      return ThreadedOp::FuseConsistentBin;
    if (T.Op == Opcode::Input)
      return ThreadedOp::FuseConsistentInput;
    return Plain;
  }
  if (H.Op == Opcode::Fresh)
    return T.Op == Opcode::Consistent ? ThreadedOp::FuseFreshConsistent
                                      : Plain;
  if (H.Dst < 0)
    return Plain;
  switch (H.Op) {
  case Opcode::Bin:
    if (T.Op == Opcode::CondBr && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinCondBr;
    if (T.Op == Opcode::StoreG && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinStoreG;
    if (T.Op == Opcode::StoreA && readsReg(T.B, H.Dst))
      return ThreadedOp::FuseBinStoreA;
    if (T.Op == Opcode::Mov && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinMov;
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinBin;
    if (T.Op == Opcode::LoadA)
      return ThreadedOp::FuseBinLoadA;
    return Plain;
  case Opcode::Mov:
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseMovBin;
    if (T.Op == Opcode::Br)
      return ThreadedOp::FuseMovBr;
    if (T.Op == Opcode::LoadA)
      return ThreadedOp::FuseMovLoadA;
    if (T.Op == Opcode::Consistent)
      return ThreadedOp::FuseMovConsistent;
    if (T.Op == Opcode::Input)
      return ThreadedOp::FuseMovInput;
    if (T.Op == Opcode::Mov)
      return ThreadedOp::FuseMovMov;
    return Plain;
  case Opcode::Input:
    if (T.Op == Opcode::Mov && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseInputMov;
    return Plain;
  case Opcode::LoadG:
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseLoadGBin;
    if (T.Op == Opcode::StoreG && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseLoadGStoreG;
    return Plain;
  case Opcode::LoadA:
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseLoadABin;
    if (T.Op == Opcode::LoadA)
      return ThreadedOp::FuseLoadALoadA;
    return Plain;
  case Opcode::Const:
    if (T.Op == Opcode::StoreG && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseConstStoreG;
    return Plain;
  default:
    return Plain;
  }
}

} // namespace

const char *ocelot::threadedOpName(ThreadedOp Op) {
  if (Op < FirstFusedOp)
    return opcodeName(static_cast<Opcode>(Op));
  switch (Op) {
  case ThreadedOp::FuseBinCondBr:
    return "bin+condbr";
  case ThreadedOp::FuseBinStoreG:
    return "bin+storeg";
  case ThreadedOp::FuseBinStoreA:
    return "bin+storea";
  case ThreadedOp::FuseLoadGBin:
    return "loadg+bin";
  case ThreadedOp::FuseLoadABin:
    return "loada+bin";
  case ThreadedOp::FuseConstStoreG:
    return "const+storeg";
  case ThreadedOp::FuseLoadGStoreG:
    return "loadg+storeg";
  case ThreadedOp::FuseMovBin:
    return "mov+bin";
  case ThreadedOp::FuseBinMov:
    return "bin+mov";
  case ThreadedOp::FuseMovBr:
    return "mov+br";
  case ThreadedOp::FuseBinBin:
    return "bin+bin";
  case ThreadedOp::FuseMovLoadA:
    return "mov+loada";
  case ThreadedOp::FuseBinLoadA:
    return "bin+loada";
  case ThreadedOp::FuseLoadALoadA:
    return "loada+loada";
  case ThreadedOp::FuseMovConsistent:
    return "mov+consistent";
  case ThreadedOp::FuseConsistentBin:
    return "consistent+bin";
  case ThreadedOp::FuseInputMov:
    return "input+mov";
  case ThreadedOp::FuseMovInput:
    return "mov+input";
  case ThreadedOp::FuseConsistentInput:
    return "consistent+input";
  case ThreadedOp::FuseMovMov:
    return "mov+mov";
  case ThreadedOp::FuseFreshConsistent:
    return "fresh+consistent";
  case ThreadedOp::Chain3:
    return "chain3";
  case ThreadedOp::Chain4:
    return "chain4";
  case ThreadedOp::Chain5:
    return "chain5";
  case ThreadedOp::Chain6:
    return "chain6";
  default:
    return "<invalid>";
  }
}

namespace {

/// Opcodes legal in any chain slot: straight-line register/NVM work with
/// no out-of-line control (no Call/Ret, no region bounds, no Input or
/// Output — those handlers leave the fast path or touch trace queues).
/// Br/CondBr are legal only as a chain's *final* slot (they end the
/// straight line); the builder checks that position separately.
bool chainableMid(Opcode Op) {
  switch (Op) {
  case Opcode::Const:
  case Opcode::Bin:
  case Opcode::Un:
  case Opcode::Mov:
  case Opcode::LoadG:
  case Opcode::StoreG:
  case Opcode::LoadA:
  case Opcode::StoreA:
  case Opcode::Fresh:
  case Opcode::Consistent:
  case Opcode::Nop:
    return true;
  default:
    return false;
  }
}

bool chainTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr;
}

} // namespace

void ExecutableImage::buildThreadedView(const std::vector<uint64_t> *Heat) {
  const size_t N = Code.size();

  // Leaders: block starts (covers function entries and branch targets,
  // since verified IR only branches to block heads) plus the resume point
  // after every Call. A leader must keep a plain dispatch code so any
  // control transfer onto it — branch, return, or power-failure resume —
  // executes exactly the unfused instruction.
  Leaders.assign(N, 0);
  for (size_t Pc = 0; Pc < N; ++Pc) {
    const FlatInst &FI = Code[Pc];
    if (Pc == 0 || FI.Func != Code[Pc - 1].Func ||
        FI.Block != Code[Pc - 1].Block)
      Leaders[Pc] = 1;
    if (FI.Op == Opcode::Br || FI.Op == Opcode::CondBr) {
      if (FI.Target < N)
        Leaders[FI.Target] = 1;
      if (FI.Op == Opcode::CondBr && FI.Target2 < N)
        Leaders[FI.Target2] = 1;
    }
    if (FI.Op == Opcode::Call && Pc + 1 < N)
      Leaders[Pc + 1] = 1;
  }

  // Seed with the one-to-one mapping.
  TOps.resize(N);
  for (size_t Pc = 0; Pc < N; ++Pc)
    TOps[Pc] = static_cast<ThreadedOp>(Code[Pc].Op);
  ChainLen.assign(N, 0);
  FusedPairs = 0;
  FusedChains = 0;
  if (Fusion == FusionMode::Off)
    return;

  // Superblock pass (Chains tier only): greedily chain maximal
  // straight-line runs of hot, chainable instructions. A run may start at
  // a leader (jumping to a chain head executes the whole chain — the
  // point) but never *contains* one past its head, never crosses a
  // function or region bound (AtomicStart/AtomicEnd are not chainable),
  // and only its final slot may branch. Every slot must be hot
  // (heat > 0): with a PGO profile that chains exactly the code that
  // executed, leaving cold paths on the cheaper pair tier.
  std::vector<uint8_t> Taken(N, 0);
  if (Heat) {
    assert(Heat->size() == N && "heat table must be PC-indexed");
    size_t Pc = 0;
    while (Pc < N) {
      if (!chainableMid(Code[Pc].Op) || (*Heat)[Pc] == 0) {
        ++Pc;
        continue;
      }
      // Measure the maximal legal run [Pc, Pc + Run).
      size_t Run = 1;
      while (Pc + Run < N && !Leaders[Pc + Run] &&
             Code[Pc + Run].Func == Code[Pc].Func &&
             (*Heat)[Pc + Run] != 0) {
        if (chainTerminator(Code[Pc + Run].Op)) {
          ++Run; // A branch ends the straight line, inclusively.
          break;
        }
        if (!chainableMid(Code[Pc + Run].Op))
          break;
        ++Run;
      }
      // Pair-aware selection: a specialized pair handler saves a
      // dispatch *and* a step header and runs straight-line code, while
      // a chain slot still pays the slot executor's switch — wherever
      // the greedy pair tiling covers the run, pairs win. Simulate that
      // tiling (the pair pass below replays it verbatim over whatever
      // this pass leaves untaken, because every untaken position was
      // checked here with the same matcher) and chain only the maximal
      // pair-free gaps long enough to amortize a chain head. Each gap is
      // chunked into chains of MinChainLen..MaxChainLen so no remainder
      // shorter than MinChainLen is stranded: lengths 3-6 map 1:1, 7-9
      // split as (L-3)+3, anything longer sheds 6 at a time.
      auto ChainGap = [&](size_t GapStart, size_t GapEnd) {
        size_t Chunk = GapStart;
        size_t Left = GapEnd - GapStart;
        while (Left >= MinChainLen) {
          size_t C =
              Left <= MaxChainLen
                  ? Left
                  : (Left <= MaxChainLen + MinChainLen ? Left - MinChainLen
                                                       : MaxChainLen);
          TOps[Chunk] = static_cast<ThreadedOp>(
              static_cast<size_t>(ThreadedOp::Chain3) + C - MinChainLen);
          ChainLen[Chunk] = static_cast<uint8_t>(C);
          for (size_t I = 0; I < C; ++I)
            Taken[Chunk + I] = 1;
          ++FusedChains;
          assert(!chainTerminator(Code[Chunk].Op) && "branch heads a chain");
          Chunk += C;
          Left -= C;
        }
      };
      // The instruction just before the run (e.g. an unchainable Input
      // feeding the run's head Mov) can pair with the run's head; leave
      // the head to the pair pass in that case rather than chaining over
      // it.
      size_t GapStart = Pc;
      if (Pc > 0 && !Taken[Pc - 1] && !Leaders[Pc] &&
          Code[Pc - 1].Func == Code[Pc].Func &&
          fusePattern(Code[Pc - 1], Code[Pc]) >= FirstFusedOp)
        GapStart = Pc + 1;
      // Symmetrically, the run's last slot can pair with the instruction
      // just past the run (e.g. a Mov feeding an unchainable Input).
      size_t RunEnd = Pc + Run;
      if (RunEnd < N && !Leaders[RunEnd] &&
          Code[RunEnd - 1].Func == Code[RunEnd].Func &&
          fusePattern(Code[RunEnd - 1], Code[RunEnd]) >= FirstFusedOp)
        --RunEnd;
      for (size_t I = GapStart - Pc; Pc + I + 1 < RunEnd; ++I)
        if (fusePattern(Code[Pc + I], Code[Pc + I + 1]) >= FirstFusedOp) {
          ChainGap(GapStart, Pc + I);
          GapStart = Pc + I + 2;
          ++I;
        }
      if (GapStart <= RunEnd)
        ChainGap(GapStart, RunEnd);
      Pc += Run;
    }
  }

  // Pair pass over the remaining gaps: greedily fuse non-overlapping
  // adjacent pairs. Tails keep their plain code: a JIT reboot can leave
  // the resume PC in the middle of a pair, and dispatching the tail's
  // plain code there is the unfused semantics.
  for (size_t Pc = 0; Pc + 1 < N; ++Pc) {
    if (Taken[Pc] || Taken[Pc + 1])
      continue;
    if (Leaders[Pc + 1] || Code[Pc].Func != Code[Pc + 1].Func)
      continue;
    ThreadedOp Fused = fusePattern(Code[Pc], Code[Pc + 1]);
    if (Fused < FirstFusedOp)
      continue;
    TOps[Pc] = Fused;
    ++FusedPairs;
    ++Pc; // Non-overlapping: the tail cannot head another pair.
  }
}

std::vector<uint64_t>
ExecutableImage::costTableFor(const CostModel &Costs) const {
  std::vector<uint64_t> Table;
  Table.reserve(Code.size());
  for (const FlatInst &FI : Code)
    Table.push_back(Costs.costOfOp(FI.Op));
  return Table;
}

namespace {

std::string regName(int32_t R) { return "%" + std::to_string(R); }

/// Operand list "(a, b, c)" from a pool span.
std::string argList(const Operand *Args, uint32_t Count) {
  std::string Out = "(";
  for (uint32_t A = 0; A < Count; ++A) {
    if (A)
      Out += ", ";
    Out += Args[A].str();
  }
  return Out + ")";
}

} // namespace

std::string ExecutableImage::disassemble(const Program &P) const {
  std::string Out;
  Out += "; executable image: " + std::to_string(Code.size()) +
         " instruction(s), " + std::to_string(Funcs.size()) +
         " function(s), " + std::to_string(Globals.size()) +
         " global(s) in " + std::to_string(NvmCellCount) + " NVM cell(s), " +
         std::to_string(FusedPairs) + " fused pair(s), " +
         std::to_string(FusedChains) + " superblock chain(s) [fusion=" +
         fusionModeName(Fusion) + (UsedPgo ? ", pgo" : "") + "]\n";
  CostModel Default;
  for (int F = 0; F < numFunctions(); ++F) {
    const FuncLayout &L = func(F);
    Out += "\nfn " + P.function(F)->name() + " (f" + std::to_string(F) +
           ") entry=" + std::to_string(L.EntryPc) +
           " end=" + std::to_string(L.EndPc) +
           " regs=" + std::to_string(L.NumRegs) + "\n";
    int LastBlock = -1;
    for (uint32_t Pc = L.EntryPc; Pc < L.EndPc; ++Pc) {
      const FlatInst &FI = Code[Pc];
      if (FI.Block != LastBlock) {
        Out += "  b" + std::to_string(FI.Block) + ":\n";
        LastBlock = FI.Block;
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "    %5u  ", Pc);
      Out += Buf;
      std::string Body = opcodeName(FI.Op);
      switch (FI.Op) {
      case Opcode::Const:
        Body += " " + regName(FI.Dst) + ", " + std::to_string(FI.A.Imm);
        break;
      case Opcode::Mov:
        Body += " " + regName(FI.Dst) + ", " + FI.A.str();
        break;
      case Opcode::Un:
        Body += " " + regName(FI.Dst) + ", " +
                std::string(unOpName(FI.UnKind)) + FI.A.str();
        break;
      case Opcode::Bin:
        Body += " " + regName(FI.Dst) + ", " + FI.A.str() + " " +
                binOpName(FI.BinKind) + " " + FI.B.str();
        break;
      case Opcode::LoadG:
        Body += " " + regName(FI.Dst) + ", @" + P.global(FI.GlobalId).Name +
                " [nvm+" + std::to_string(globalBase(FI.GlobalId)) + "]";
        break;
      case Opcode::StoreG:
        Body += " @" + P.global(FI.GlobalId).Name + " [nvm+" +
                std::to_string(globalBase(FI.GlobalId)) + "], " + FI.A.str();
        break;
      case Opcode::LoadA:
        Body += " " + regName(FI.Dst) + ", @" + P.global(FI.GlobalId).Name +
                "[" + FI.A.str() + "] [nvm+" +
                std::to_string(globalBase(FI.GlobalId)) + "+i]";
        break;
      case Opcode::StoreA:
        Body += " @" + P.global(FI.GlobalId).Name + "[" + FI.A.str() +
                "] [nvm+" + std::to_string(globalBase(FI.GlobalId)) +
                "+i], " + FI.B.str();
        break;
      case Opcode::LoadInd:
        Body += " " + regName(FI.Dst) + ", *" + FI.A.str();
        break;
      case Opcode::StoreInd:
        Body += " *" + FI.A.str() + ", " + FI.B.str();
        break;
      case Opcode::Input:
        Body += " " + regName(FI.Dst) + ", sensor " +
                P.sensor(FI.SensorId).Name;
        break;
      case Opcode::Call:
        Body += " " + P.function(FI.Callee)->name() + " -> pc " +
                std::to_string(FI.CalleeEntryPc) +
                argList(args(FI), FI.ArgsCount);
        if (FI.Dst >= 0)
          Body += " dst=" + regName(FI.Dst);
        break;
      case Opcode::Ret:
        if (!FI.A.isNone())
          Body += " " + FI.A.str();
        break;
      case Opcode::Br:
        Body += " -> pc " + std::to_string(FI.Target);
        break;
      case Opcode::CondBr:
        Body += " " + FI.A.str() + " ? pc " + std::to_string(FI.Target) +
                " : pc " + std::to_string(FI.Target2);
        break;
      case Opcode::Fresh:
        Body += " " + FI.A.str();
        break;
      case Opcode::Consistent:
        Body += " " + FI.A.str() + ", set " + std::to_string(FI.SetId);
        break;
      case Opcode::AtomicStart:
      case Opcode::AtomicEnd:
        Body += " region r" + std::to_string(FI.RegionId);
        break;
      case Opcode::Output:
        Body += " " + std::string(outputKindName(FI.OutKind)) +
                argList(args(FI), FI.ArgsCount);
        break;
      case Opcode::Nop:
        break;
      }
      if (Body.size() < 44)
        Body.resize(44, ' ');
      Out += Body + " ; cost=" + std::to_string(Default.costOfOp(FI.Op));
      if (FI.Op == Opcode::AtomicStart && FI.OmegaCount) {
        Out += " omega={";
        const int32_t *Omega = omegaGlobals(FI);
        for (uint32_t G = 0; G < FI.OmegaCount; ++G) {
          if (G)
            Out += ", ";
          Out += P.global(Omega[G]).Name;
        }
        Out += "}";
      }
      if (FI.HasUseCheck)
        Out += " monitor=fresh-use";
      if (FI.UseRegsCount) {
        Out += " monitor-regs=[";
        const int32_t *Regs = useRegs(FI);
        for (uint32_t R = 0; R < FI.UseRegsCount; ++R) {
          if (R)
            Out += ", ";
          Out += regName(Regs[R]);
        }
        Out += "]";
      }
      if (isFusedHead(Pc))
        Out += " fused=" + std::string(threadedOpName(TOps[Pc]));
      else if (Pc > 0 && isFusedHead(Pc - 1))
        Out += " fused-tail";
      if (isChainHead(Pc)) {
        Out += " chain=" + std::to_string(chainLenAt(Pc));
      } else {
        // Interior/tail chain slots: find the owning head, if any.
        for (uint32_t Back = 1; Back < MaxChainLen && Back <= Pc; ++Back)
          if (isChainHead(Pc - Back) && chainLenAt(Pc - Back) > Back) {
            Out += " chain-slot=" + std::to_string(Back) + "/" +
                   std::to_string(chainLenAt(Pc - Back));
            break;
          }
      }
      Out += "\n";
    }
  }
  return Out;
}
