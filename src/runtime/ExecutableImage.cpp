//===- ExecutableImage.cpp - Flat, precomputed execution form --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutableImage.h"

#include <cassert>
#include <cstdio>
#include <map>

using namespace ocelot;

std::shared_ptr<const ExecutableImage>
ExecutableImage::build(const Program &P,
                       const std::vector<RegionInfo> *Regions,
                       const MonitorPlan *Plan) {
  auto Img = std::shared_ptr<ExecutableImage>(new ExecutableImage());

  // Pass 1: layout. Blocks are laid out in id order, so every PC is known
  // before any target is resolved. An empty block's PC coincides with the
  // next block's start (verified IR has no empty blocks).
  std::vector<std::vector<uint32_t>> BlockPc(
      static_cast<size_t>(P.numFunctions()));
  uint32_t Pc = 0;
  Img->Funcs.resize(static_cast<size_t>(P.numFunctions()));
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function *Fn = P.function(F);
    FuncLayout &L = Img->Funcs[static_cast<size_t>(F)];
    L.EntryPc = Pc;
    L.NumRegs = static_cast<uint32_t>(Fn->numRegs());
    BlockPc[static_cast<size_t>(F)].resize(
        static_cast<size_t>(Fn->numBlocks()));
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      BlockPc[static_cast<size_t>(F)][static_cast<size_t>(B)] = Pc;
      Pc += static_cast<uint32_t>(Fn->block(B)->size());
    }
    L.EndPc = Pc;
  }

  std::map<int, const RegionInfo *> RegionById;
  if (Regions)
    for (const RegionInfo &R : *Regions)
      RegionById[R.RegionId] = &R;

  // Pass 2: emit, resolving targets and flattening the side tables.
  Img->Code.reserve(Pc);
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function *Fn = P.function(F);
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      for (const Instruction &I : Fn->block(B)->instructions()) {
        FlatInst FI;
        FI.Op = I.Op;
        FI.Label = I.Label;
        FI.Func = F;
        FI.Block = B;
        FI.Dst = I.Dst;
        FI.A = I.A;
        FI.B = I.B;
        FI.BinKind = I.BinKind;
        FI.UnKind = I.UnKind;
        FI.GlobalId = I.GlobalId;
        FI.SensorId = I.SensorId;
        FI.SetId = I.SetId;
        FI.RegionId = I.RegionId;
        FI.OutKind = I.OutKind;

        if (!I.Args.empty()) {
          FI.ArgsBegin = static_cast<uint32_t>(Img->ArgPool.size());
          FI.ArgsCount = static_cast<uint32_t>(I.Args.size());
          Img->ArgPool.insert(Img->ArgPool.end(), I.Args.begin(),
                              I.Args.end());
        }

        if (I.Op == Opcode::Call && I.Callee >= 0) {
          FI.Callee = I.Callee;
          FI.CalleeEntryPc = Img->Funcs[static_cast<size_t>(I.Callee)].EntryPc;
          FI.CalleeNumRegs = Img->Funcs[static_cast<size_t>(I.Callee)].NumRegs;
        }
        if (I.Op == Opcode::Br || I.Op == Opcode::CondBr) {
          assert(I.Target >= 0 && I.Target < Fn->numBlocks() &&
                 "unresolved branch target");
          FI.Target =
              BlockPc[static_cast<size_t>(F)][static_cast<size_t>(I.Target)];
        }
        if (I.Op == Opcode::CondBr) {
          assert(I.Target2 >= 0 && I.Target2 < Fn->numBlocks() &&
                 "unresolved branch target");
          FI.Target2 =
              BlockPc[static_cast<size_t>(F)][static_cast<size_t>(I.Target2)];
        }

        // Static-omega backup set, flattened next to the region start in
        // the ascending order RegionInfo::Omega (a std::set) yields — the
        // tree engine's iteration order, so undo-log sequences match.
        if (I.Op == Opcode::AtomicStart) {
          auto It = RegionById.find(I.RegionId);
          if (It != RegionById.end() && !It->second->Omega.empty()) {
            FI.OmegaBegin = static_cast<uint32_t>(Img->OmegaPool.size());
            FI.OmegaCount = static_cast<uint32_t>(It->second->Omega.size());
            for (int G : It->second->Omega)
              Img->OmegaPool.push_back(G);
          }
        }

        // Monitor side tables: what would otherwise be one or two map
        // lookups per executed instruction becomes a flag and a span.
        if (Plan) {
          InstrRef Site(F, I.Label);
          FI.HasUseCheck = Plan->UseChecks.count(Site) != 0;
          auto UR = Plan->UseRegs.find(Site);
          if (UR != Plan->UseRegs.end() && !UR->second.empty()) {
            FI.UseRegsBegin = static_cast<uint32_t>(Img->UseRegPool.size());
            FI.UseRegsCount = static_cast<uint16_t>(UR->second.size());
            for (int Reg : UR->second)
              Img->UseRegPool.push_back(Reg);
          }
        }

        Img->Code.push_back(FI);
      }
    }
  }
  assert(Img->Code.size() == Pc && "layout / emission length mismatch");

  // NVM layout: every global gets a base offset in one flat cell array.
  Img->Globals.resize(static_cast<size_t>(P.numGlobals()));
  uint32_t Cell = 0;
  for (int G = 0; G < P.numGlobals(); ++G) {
    GlobalSlot &S = Img->Globals[static_cast<size_t>(G)];
    S.Base = Cell;
    S.Size = static_cast<uint32_t>(P.global(G).Size);
    Cell += S.Size;
  }
  Img->NvmCellCount = Cell;

  if (P.mainFunction() >= 0) {
    Img->MainEntry = Img->Funcs[static_cast<size_t>(P.mainFunction())].EntryPc;
    Img->MainRegs = Img->Funcs[static_cast<size_t>(P.mainFunction())].NumRegs;
  }

  Img->DefaultCosts = Img->costTableFor(CostModel());
  return Img;
}

std::vector<uint64_t>
ExecutableImage::costTableFor(const CostModel &Costs) const {
  std::vector<uint64_t> Table;
  Table.reserve(Code.size());
  for (const FlatInst &FI : Code)
    Table.push_back(Costs.costOfOp(FI.Op));
  return Table;
}

namespace {

std::string regName(int32_t R) { return "%" + std::to_string(R); }

/// Operand list "(a, b, c)" from a pool span.
std::string argList(const Operand *Args, uint32_t Count) {
  std::string Out = "(";
  for (uint32_t A = 0; A < Count; ++A) {
    if (A)
      Out += ", ";
    Out += Args[A].str();
  }
  return Out + ")";
}

} // namespace

std::string ExecutableImage::disassemble(const Program &P) const {
  std::string Out;
  Out += "; executable image: " + std::to_string(Code.size()) +
         " instruction(s), " + std::to_string(Funcs.size()) +
         " function(s), " + std::to_string(Globals.size()) +
         " global(s) in " + std::to_string(NvmCellCount) + " NVM cell(s)\n";
  CostModel Default;
  for (int F = 0; F < numFunctions(); ++F) {
    const FuncLayout &L = func(F);
    Out += "\nfn " + P.function(F)->name() + " (f" + std::to_string(F) +
           ") entry=" + std::to_string(L.EntryPc) +
           " end=" + std::to_string(L.EndPc) +
           " regs=" + std::to_string(L.NumRegs) + "\n";
    int LastBlock = -1;
    for (uint32_t Pc = L.EntryPc; Pc < L.EndPc; ++Pc) {
      const FlatInst &FI = Code[Pc];
      if (FI.Block != LastBlock) {
        Out += "  b" + std::to_string(FI.Block) + ":\n";
        LastBlock = FI.Block;
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "    %5u  ", Pc);
      Out += Buf;
      std::string Body = opcodeName(FI.Op);
      switch (FI.Op) {
      case Opcode::Const:
        Body += " " + regName(FI.Dst) + ", " + std::to_string(FI.A.Imm);
        break;
      case Opcode::Mov:
        Body += " " + regName(FI.Dst) + ", " + FI.A.str();
        break;
      case Opcode::Un:
        Body += " " + regName(FI.Dst) + ", " +
                std::string(unOpName(FI.UnKind)) + FI.A.str();
        break;
      case Opcode::Bin:
        Body += " " + regName(FI.Dst) + ", " + FI.A.str() + " " +
                binOpName(FI.BinKind) + " " + FI.B.str();
        break;
      case Opcode::LoadG:
        Body += " " + regName(FI.Dst) + ", @" + P.global(FI.GlobalId).Name +
                " [nvm+" + std::to_string(globalBase(FI.GlobalId)) + "]";
        break;
      case Opcode::StoreG:
        Body += " @" + P.global(FI.GlobalId).Name + " [nvm+" +
                std::to_string(globalBase(FI.GlobalId)) + "], " + FI.A.str();
        break;
      case Opcode::LoadA:
        Body += " " + regName(FI.Dst) + ", @" + P.global(FI.GlobalId).Name +
                "[" + FI.A.str() + "] [nvm+" +
                std::to_string(globalBase(FI.GlobalId)) + "+i]";
        break;
      case Opcode::StoreA:
        Body += " @" + P.global(FI.GlobalId).Name + "[" + FI.A.str() +
                "] [nvm+" + std::to_string(globalBase(FI.GlobalId)) +
                "+i], " + FI.B.str();
        break;
      case Opcode::LoadInd:
        Body += " " + regName(FI.Dst) + ", *" + FI.A.str();
        break;
      case Opcode::StoreInd:
        Body += " *" + FI.A.str() + ", " + FI.B.str();
        break;
      case Opcode::Input:
        Body += " " + regName(FI.Dst) + ", sensor " +
                P.sensor(FI.SensorId).Name;
        break;
      case Opcode::Call:
        Body += " " + P.function(FI.Callee)->name() + " -> pc " +
                std::to_string(FI.CalleeEntryPc) +
                argList(args(FI), FI.ArgsCount);
        if (FI.Dst >= 0)
          Body += " dst=" + regName(FI.Dst);
        break;
      case Opcode::Ret:
        if (!FI.A.isNone())
          Body += " " + FI.A.str();
        break;
      case Opcode::Br:
        Body += " -> pc " + std::to_string(FI.Target);
        break;
      case Opcode::CondBr:
        Body += " " + FI.A.str() + " ? pc " + std::to_string(FI.Target) +
                " : pc " + std::to_string(FI.Target2);
        break;
      case Opcode::Fresh:
        Body += " " + FI.A.str();
        break;
      case Opcode::Consistent:
        Body += " " + FI.A.str() + ", set " + std::to_string(FI.SetId);
        break;
      case Opcode::AtomicStart:
      case Opcode::AtomicEnd:
        Body += " region r" + std::to_string(FI.RegionId);
        break;
      case Opcode::Output:
        Body += " " + std::string(outputKindName(FI.OutKind)) +
                argList(args(FI), FI.ArgsCount);
        break;
      case Opcode::Nop:
        break;
      }
      if (Body.size() < 44)
        Body.resize(44, ' ');
      Out += Body + " ; cost=" + std::to_string(Default.costOfOp(FI.Op));
      if (FI.Op == Opcode::AtomicStart && FI.OmegaCount) {
        Out += " omega={";
        const int32_t *Omega = omegaGlobals(FI);
        for (uint32_t G = 0; G < FI.OmegaCount; ++G) {
          if (G)
            Out += ", ";
          Out += P.global(Omega[G]).Name;
        }
        Out += "}";
      }
      if (FI.HasUseCheck)
        Out += " monitor=fresh-use";
      if (FI.UseRegsCount) {
        Out += " monitor-regs=[";
        const int32_t *Regs = useRegs(FI);
        for (uint32_t R = 0; R < FI.UseRegsCount; ++R) {
          if (R)
            Out += ", ";
          Out += regName(Regs[R]);
        }
        Out += "]";
      }
      Out += "\n";
    }
  }
  return Out;
}
