//===- ExecutableImage.cpp - Flat, precomputed execution form --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/ExecutableImage.h"

#include <cassert>
#include <cstdio>
#include <map>

using namespace ocelot;

std::shared_ptr<const ExecutableImage>
ExecutableImage::build(const Program &P,
                       const std::vector<RegionInfo> *Regions,
                       const MonitorPlan *Plan) {
  auto Img = std::shared_ptr<ExecutableImage>(new ExecutableImage());

  // Pass 1: layout. Blocks are laid out in id order, so every PC is known
  // before any target is resolved. An empty block's PC coincides with the
  // next block's start (verified IR has no empty blocks).
  std::vector<std::vector<uint32_t>> BlockPc(
      static_cast<size_t>(P.numFunctions()));
  uint32_t Pc = 0;
  Img->Funcs.resize(static_cast<size_t>(P.numFunctions()));
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function *Fn = P.function(F);
    FuncLayout &L = Img->Funcs[static_cast<size_t>(F)];
    L.EntryPc = Pc;
    L.NumRegs = static_cast<uint32_t>(Fn->numRegs());
    BlockPc[static_cast<size_t>(F)].resize(
        static_cast<size_t>(Fn->numBlocks()));
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      BlockPc[static_cast<size_t>(F)][static_cast<size_t>(B)] = Pc;
      Pc += static_cast<uint32_t>(Fn->block(B)->size());
    }
    L.EndPc = Pc;
  }

  std::map<int, const RegionInfo *> RegionById;
  if (Regions)
    for (const RegionInfo &R : *Regions)
      RegionById[R.RegionId] = &R;

  // Pass 2: emit, resolving targets and flattening the side tables.
  Img->Code.reserve(Pc);
  for (int F = 0; F < P.numFunctions(); ++F) {
    const Function *Fn = P.function(F);
    for (int B = 0; B < Fn->numBlocks(); ++B) {
      for (const Instruction &I : Fn->block(B)->instructions()) {
        FlatInst FI;
        FI.Op = I.Op;
        FI.Label = I.Label;
        FI.Func = F;
        FI.Block = B;
        FI.Dst = I.Dst;
        FI.A = I.A;
        FI.B = I.B;
        FI.BinKind = I.BinKind;
        FI.UnKind = I.UnKind;
        FI.GlobalId = I.GlobalId;
        FI.SensorId = I.SensorId;
        FI.SetId = I.SetId;
        FI.RegionId = I.RegionId;
        FI.OutKind = I.OutKind;

        if (!I.Args.empty()) {
          FI.ArgsBegin = static_cast<uint32_t>(Img->ArgPool.size());
          FI.ArgsCount = static_cast<uint32_t>(I.Args.size());
          Img->ArgPool.insert(Img->ArgPool.end(), I.Args.begin(),
                              I.Args.end());
        }

        if (I.Op == Opcode::Call && I.Callee >= 0) {
          FI.Callee = I.Callee;
          FI.CalleeEntryPc = Img->Funcs[static_cast<size_t>(I.Callee)].EntryPc;
          FI.CalleeNumRegs = Img->Funcs[static_cast<size_t>(I.Callee)].NumRegs;
        }
        if (I.Op == Opcode::Br || I.Op == Opcode::CondBr) {
          assert(I.Target >= 0 && I.Target < Fn->numBlocks() &&
                 "unresolved branch target");
          FI.Target =
              BlockPc[static_cast<size_t>(F)][static_cast<size_t>(I.Target)];
        }
        if (I.Op == Opcode::CondBr) {
          assert(I.Target2 >= 0 && I.Target2 < Fn->numBlocks() &&
                 "unresolved branch target");
          FI.Target2 =
              BlockPc[static_cast<size_t>(F)][static_cast<size_t>(I.Target2)];
        }

        // Static-omega backup set, flattened next to the region start in
        // the ascending order RegionInfo::Omega (a std::set) yields — the
        // tree engine's iteration order, so undo-log sequences match.
        if (I.Op == Opcode::AtomicStart) {
          auto It = RegionById.find(I.RegionId);
          if (It != RegionById.end() && !It->second->Omega.empty()) {
            FI.OmegaBegin = static_cast<uint32_t>(Img->OmegaPool.size());
            FI.OmegaCount = static_cast<uint32_t>(It->second->Omega.size());
            for (int G : It->second->Omega)
              Img->OmegaPool.push_back(G);
          }
        }

        // Monitor side tables: what would otherwise be one or two map
        // lookups per executed instruction becomes a flag and a span.
        if (Plan) {
          InstrRef Site(F, I.Label);
          FI.HasUseCheck = Plan->UseChecks.count(Site) != 0;
          auto UR = Plan->UseRegs.find(Site);
          if (UR != Plan->UseRegs.end() && !UR->second.empty()) {
            FI.UseRegsBegin = static_cast<uint32_t>(Img->UseRegPool.size());
            FI.UseRegsCount = static_cast<uint16_t>(UR->second.size());
            for (int Reg : UR->second)
              Img->UseRegPool.push_back(Reg);
          }
        }

        Img->Code.push_back(FI);
      }
    }
  }
  assert(Img->Code.size() == Pc && "layout / emission length mismatch");

  // NVM layout: every global gets a base offset in one flat cell array.
  Img->Globals.resize(static_cast<size_t>(P.numGlobals()));
  uint32_t Cell = 0;
  for (int G = 0; G < P.numGlobals(); ++G) {
    GlobalSlot &S = Img->Globals[static_cast<size_t>(G)];
    S.Base = Cell;
    S.Size = static_cast<uint32_t>(P.global(G).Size);
    Cell += S.Size;
  }
  Img->NvmCellCount = Cell;

  if (P.mainFunction() >= 0) {
    Img->MainEntry = Img->Funcs[static_cast<size_t>(P.mainFunction())].EntryPc;
    Img->MainRegs = Img->Funcs[static_cast<size_t>(P.mainFunction())].NumRegs;
  }

  Img->DefaultCosts = Img->costTableFor(CostModel());
  Img->buildThreadedView();
  return Img;
}

// The one-to-one ThreadedOp block must mirror Opcode exactly: the fusion
// pass seeds the dispatch table with a plain static_cast of each opcode.
static_assert(static_cast<int>(ThreadedOp::Const) ==
              static_cast<int>(Opcode::Const));
static_assert(static_cast<int>(ThreadedOp::Bin) ==
              static_cast<int>(Opcode::Bin));
static_assert(static_cast<int>(ThreadedOp::CondBr) ==
              static_cast<int>(Opcode::CondBr));
static_assert(static_cast<int>(ThreadedOp::AtomicStart) ==
              static_cast<int>(Opcode::AtomicStart));
static_assert(static_cast<int>(ThreadedOp::Nop) ==
              static_cast<int>(Opcode::Nop));
static_assert(static_cast<size_t>(FirstFusedOp) ==
              static_cast<size_t>(Opcode::Nop) + 1);

namespace {

bool readsReg(const Operand &O, int32_t Reg) {
  return O.isReg() && O.Reg == Reg;
}

/// Matches the superinstruction patterns over an adjacent pair. Returns
/// the head's plain code when nothing matches. Forwarding patterns pair a
/// fall-through head (Const/Bin/Mov/LoadG/LoadA) with a tail that
/// consumes the head's destination register, so the tail's input is the
/// head's result; dispatch-elision patterns have no dataflow condition
/// and their tails re-read the register file. AtomicStart/AtomicEnd are
/// in no pattern: fusion cannot cross a region boundary.
ThreadedOp fusePattern(const FlatInst &H, const FlatInst &T) {
  const ThreadedOp Plain = static_cast<ThreadedOp>(H.Op);
  // Consistent is a taint-off no-op with no destination register; it is
  // the only fusable head without one.
  if (H.Op == Opcode::Consistent)
    return T.Op == Opcode::Bin ? ThreadedOp::FuseConsistentBin : Plain;
  if (H.Dst < 0)
    return Plain;
  switch (H.Op) {
  case Opcode::Bin:
    if (T.Op == Opcode::CondBr && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinCondBr;
    if (T.Op == Opcode::StoreG && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinStoreG;
    if (T.Op == Opcode::StoreA && readsReg(T.B, H.Dst))
      return ThreadedOp::FuseBinStoreA;
    if (T.Op == Opcode::Mov && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinMov;
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseBinBin;
    if (T.Op == Opcode::LoadA)
      return ThreadedOp::FuseBinLoadA;
    return Plain;
  case Opcode::Mov:
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseMovBin;
    if (T.Op == Opcode::Br)
      return ThreadedOp::FuseMovBr;
    if (T.Op == Opcode::LoadA)
      return ThreadedOp::FuseMovLoadA;
    if (T.Op == Opcode::Consistent)
      return ThreadedOp::FuseMovConsistent;
    return Plain;
  case Opcode::LoadG:
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseLoadGBin;
    if (T.Op == Opcode::StoreG && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseLoadGStoreG;
    return Plain;
  case Opcode::LoadA:
    if (T.Op == Opcode::Bin && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseLoadABin;
    if (T.Op == Opcode::LoadA)
      return ThreadedOp::FuseLoadALoadA;
    return Plain;
  case Opcode::Const:
    if (T.Op == Opcode::StoreG && readsReg(T.A, H.Dst))
      return ThreadedOp::FuseConstStoreG;
    return Plain;
  default:
    return Plain;
  }
}

} // namespace

const char *ocelot::threadedOpName(ThreadedOp Op) {
  if (Op < FirstFusedOp)
    return opcodeName(static_cast<Opcode>(Op));
  switch (Op) {
  case ThreadedOp::FuseBinCondBr:
    return "bin+condbr";
  case ThreadedOp::FuseBinStoreG:
    return "bin+storeg";
  case ThreadedOp::FuseBinStoreA:
    return "bin+storea";
  case ThreadedOp::FuseLoadGBin:
    return "loadg+bin";
  case ThreadedOp::FuseLoadABin:
    return "loada+bin";
  case ThreadedOp::FuseConstStoreG:
    return "const+storeg";
  case ThreadedOp::FuseLoadGStoreG:
    return "loadg+storeg";
  case ThreadedOp::FuseMovBin:
    return "mov+bin";
  case ThreadedOp::FuseBinMov:
    return "bin+mov";
  case ThreadedOp::FuseMovBr:
    return "mov+br";
  case ThreadedOp::FuseBinBin:
    return "bin+bin";
  case ThreadedOp::FuseMovLoadA:
    return "mov+loada";
  case ThreadedOp::FuseBinLoadA:
    return "bin+loada";
  case ThreadedOp::FuseLoadALoadA:
    return "loada+loada";
  case ThreadedOp::FuseMovConsistent:
    return "mov+consistent";
  case ThreadedOp::FuseConsistentBin:
    return "consistent+bin";
  default:
    return "<invalid>";
  }
}

void ExecutableImage::buildThreadedView() {
  const size_t N = Code.size();

  // Leaders: block starts (covers function entries and branch targets,
  // since verified IR only branches to block heads) plus the resume point
  // after every Call. A leader must keep a plain dispatch code so any
  // control transfer onto it — branch, return, or power-failure resume —
  // executes exactly the unfused instruction.
  Leaders.assign(N, 0);
  for (size_t Pc = 0; Pc < N; ++Pc) {
    const FlatInst &FI = Code[Pc];
    if (Pc == 0 || FI.Func != Code[Pc - 1].Func ||
        FI.Block != Code[Pc - 1].Block)
      Leaders[Pc] = 1;
    if (FI.Op == Opcode::Br || FI.Op == Opcode::CondBr) {
      if (FI.Target < N)
        Leaders[FI.Target] = 1;
      if (FI.Op == Opcode::CondBr && FI.Target2 < N)
        Leaders[FI.Target2] = 1;
    }
    if (FI.Op == Opcode::Call && Pc + 1 < N)
      Leaders[Pc + 1] = 1;
  }

  // Seed with the one-to-one mapping, then greedily fuse non-overlapping
  // adjacent pairs. Tails keep their plain code: a JIT reboot can leave
  // the resume PC in the middle of a pair, and dispatching the tail's
  // plain code there is the unfused semantics.
  TOps.resize(N);
  for (size_t Pc = 0; Pc < N; ++Pc)
    TOps[Pc] = static_cast<ThreadedOp>(Code[Pc].Op);
  FusedPairs = 0;
  for (size_t Pc = 0; Pc + 1 < N; ++Pc) {
    if (Leaders[Pc + 1] || Code[Pc].Func != Code[Pc + 1].Func)
      continue;
    ThreadedOp Fused = fusePattern(Code[Pc], Code[Pc + 1]);
    if (Fused < FirstFusedOp)
      continue;
    TOps[Pc] = Fused;
    ++FusedPairs;
    ++Pc; // Non-overlapping: the tail cannot head another pair.
  }
}

std::vector<uint64_t>
ExecutableImage::costTableFor(const CostModel &Costs) const {
  std::vector<uint64_t> Table;
  Table.reserve(Code.size());
  for (const FlatInst &FI : Code)
    Table.push_back(Costs.costOfOp(FI.Op));
  return Table;
}

namespace {

std::string regName(int32_t R) { return "%" + std::to_string(R); }

/// Operand list "(a, b, c)" from a pool span.
std::string argList(const Operand *Args, uint32_t Count) {
  std::string Out = "(";
  for (uint32_t A = 0; A < Count; ++A) {
    if (A)
      Out += ", ";
    Out += Args[A].str();
  }
  return Out + ")";
}

} // namespace

std::string ExecutableImage::disassemble(const Program &P) const {
  std::string Out;
  Out += "; executable image: " + std::to_string(Code.size()) +
         " instruction(s), " + std::to_string(Funcs.size()) +
         " function(s), " + std::to_string(Globals.size()) +
         " global(s) in " + std::to_string(NvmCellCount) + " NVM cell(s), " +
         std::to_string(FusedPairs) + " fused pair(s)\n";
  CostModel Default;
  for (int F = 0; F < numFunctions(); ++F) {
    const FuncLayout &L = func(F);
    Out += "\nfn " + P.function(F)->name() + " (f" + std::to_string(F) +
           ") entry=" + std::to_string(L.EntryPc) +
           " end=" + std::to_string(L.EndPc) +
           " regs=" + std::to_string(L.NumRegs) + "\n";
    int LastBlock = -1;
    for (uint32_t Pc = L.EntryPc; Pc < L.EndPc; ++Pc) {
      const FlatInst &FI = Code[Pc];
      if (FI.Block != LastBlock) {
        Out += "  b" + std::to_string(FI.Block) + ":\n";
        LastBlock = FI.Block;
      }
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "    %5u  ", Pc);
      Out += Buf;
      std::string Body = opcodeName(FI.Op);
      switch (FI.Op) {
      case Opcode::Const:
        Body += " " + regName(FI.Dst) + ", " + std::to_string(FI.A.Imm);
        break;
      case Opcode::Mov:
        Body += " " + regName(FI.Dst) + ", " + FI.A.str();
        break;
      case Opcode::Un:
        Body += " " + regName(FI.Dst) + ", " +
                std::string(unOpName(FI.UnKind)) + FI.A.str();
        break;
      case Opcode::Bin:
        Body += " " + regName(FI.Dst) + ", " + FI.A.str() + " " +
                binOpName(FI.BinKind) + " " + FI.B.str();
        break;
      case Opcode::LoadG:
        Body += " " + regName(FI.Dst) + ", @" + P.global(FI.GlobalId).Name +
                " [nvm+" + std::to_string(globalBase(FI.GlobalId)) + "]";
        break;
      case Opcode::StoreG:
        Body += " @" + P.global(FI.GlobalId).Name + " [nvm+" +
                std::to_string(globalBase(FI.GlobalId)) + "], " + FI.A.str();
        break;
      case Opcode::LoadA:
        Body += " " + regName(FI.Dst) + ", @" + P.global(FI.GlobalId).Name +
                "[" + FI.A.str() + "] [nvm+" +
                std::to_string(globalBase(FI.GlobalId)) + "+i]";
        break;
      case Opcode::StoreA:
        Body += " @" + P.global(FI.GlobalId).Name + "[" + FI.A.str() +
                "] [nvm+" + std::to_string(globalBase(FI.GlobalId)) +
                "+i], " + FI.B.str();
        break;
      case Opcode::LoadInd:
        Body += " " + regName(FI.Dst) + ", *" + FI.A.str();
        break;
      case Opcode::StoreInd:
        Body += " *" + FI.A.str() + ", " + FI.B.str();
        break;
      case Opcode::Input:
        Body += " " + regName(FI.Dst) + ", sensor " +
                P.sensor(FI.SensorId).Name;
        break;
      case Opcode::Call:
        Body += " " + P.function(FI.Callee)->name() + " -> pc " +
                std::to_string(FI.CalleeEntryPc) +
                argList(args(FI), FI.ArgsCount);
        if (FI.Dst >= 0)
          Body += " dst=" + regName(FI.Dst);
        break;
      case Opcode::Ret:
        if (!FI.A.isNone())
          Body += " " + FI.A.str();
        break;
      case Opcode::Br:
        Body += " -> pc " + std::to_string(FI.Target);
        break;
      case Opcode::CondBr:
        Body += " " + FI.A.str() + " ? pc " + std::to_string(FI.Target) +
                " : pc " + std::to_string(FI.Target2);
        break;
      case Opcode::Fresh:
        Body += " " + FI.A.str();
        break;
      case Opcode::Consistent:
        Body += " " + FI.A.str() + ", set " + std::to_string(FI.SetId);
        break;
      case Opcode::AtomicStart:
      case Opcode::AtomicEnd:
        Body += " region r" + std::to_string(FI.RegionId);
        break;
      case Opcode::Output:
        Body += " " + std::string(outputKindName(FI.OutKind)) +
                argList(args(FI), FI.ArgsCount);
        break;
      case Opcode::Nop:
        break;
      }
      if (Body.size() < 44)
        Body.resize(44, ' ');
      Out += Body + " ; cost=" + std::to_string(Default.costOfOp(FI.Op));
      if (FI.Op == Opcode::AtomicStart && FI.OmegaCount) {
        Out += " omega={";
        const int32_t *Omega = omegaGlobals(FI);
        for (uint32_t G = 0; G < FI.OmegaCount; ++G) {
          if (G)
            Out += ", ";
          Out += P.global(Omega[G]).Name;
        }
        Out += "}";
      }
      if (FI.HasUseCheck)
        Out += " monitor=fresh-use";
      if (FI.UseRegsCount) {
        Out += " monitor-regs=[";
        const int32_t *Regs = useRegs(FI);
        for (uint32_t R = 0; R < FI.UseRegsCount; ++R) {
          if (R)
            Out += ", ";
          Out += regName(Regs[R]);
        }
        Out += "]";
      }
      if (isFusedHead(Pc))
        Out += " fused=" + std::string(threadedOpName(TOps[Pc]));
      else if (Pc > 0 && isFusedHead(Pc - 1))
        Out += " fused-tail";
      Out += "\n";
    }
  }
  return Out;
}
