//===- Environment.h - Deprecated shim over SensorScenario ------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DEPRECATED compatibility shim. The sensor world is now the immutable
/// `SensorScenario` subsystem (src/sensors/): channels are pure functions
/// of logical time, scenarios are shareable across concurrent simulations,
/// presets live in `SensorScenarioRegistry`, and the runtime reads inputs
/// through `RunConfig::Sensors`.
///
/// `Environment` survives only as a tiny mutable builder for callers that
/// still configure sensors signal-by-signal: populate it, then pass
/// `Env.toScenario()` to `RunConfig::Sensors`. `SensorSignal` itself moved
/// to sensors/SensorChannel.h (re-exported here); new code should build
/// channels (`noiseChannel`, `signalChannel`, ...) and
/// `SensorScenario::Builder` directly. This header will be removed once
/// nothing constructs an `Environment`.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_ENVIRONMENT_H
#define OCELOT_RUNTIME_ENVIRONMENT_H

#include "sensors/SensorScenario.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace ocelot {

/// Mutable signal-by-signal sensor configuration (deprecated; see file
/// comment). Observationally identical to the pre-scenario Environment:
/// `sample` reads configured signals, gaps created by `setSignal` hold the
/// historical filler noise, and ids beyond the table read the per-id
/// seeded-noise default.
class Environment {
public:
  Environment() = default;

  /// Configures sensor \p Id (growing the table as needed).
  void setSignal(int Id, SensorSignal S);

  /// Default for sensors never configured: seeded noise, so experiments on
  /// unconfigured programs still observe time-varying inputs.
  int64_t sample(int Id, uint64_t Tau) const;

  int numConfigured() const { return static_cast<int>(Signals.size()); }

  /// Freezes the current configuration into an immutable scenario that
  /// samples bit-for-bit like this Environment — the migration path onto
  /// `RunConfig::Sensors`.
  std::shared_ptr<const SensorScenario> toScenario() const;

private:
  std::vector<SensorSignal> Signals;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_ENVIRONMENT_H
