//===- Environment.h - Simulated sensor environment -------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic sensor signals over logical time. The paper evaluates on
/// physical sensors (several already simulated in its own experiments,
/// Table 1); here each sensor is a pure function of logical time τ so
/// experiments are reproducible and staleness / inconsistency are
/// observable: a value sensed before a long power-off differs from the
/// environment after reboot.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_ENVIRONMENT_H
#define OCELOT_RUNTIME_ENVIRONMENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ocelot {

/// Signal shapes for one sensor.
struct SensorSignal {
  enum class Kind {
    Constant, ///< always Base
    Step,     ///< Base before StepTau, Base + Amplitude after
    Ramp,     ///< Base + Slope * (tau / Interval)
    Square,   ///< alternates Base / Base+Amplitude every Interval
    Noise,    ///< piecewise-constant pseudo-random in [Base, Base+Amplitude],
              ///< re-drawn every Interval (seeded, stateless in tau)
  };

  Kind K = Kind::Constant;
  int64_t Base = 0;
  int64_t Amplitude = 0;
  int64_t Slope = 0;
  uint64_t Interval = 1000;
  uint64_t StepTau = 0;
  uint64_t Seed = 1;

  static SensorSignal constant(int64_t Base);
  static SensorSignal step(int64_t Base, int64_t Amplitude, uint64_t StepTau);
  static SensorSignal ramp(int64_t Base, int64_t Slope, uint64_t Interval);
  static SensorSignal square(int64_t Base, int64_t Amplitude,
                             uint64_t Interval);
  static SensorSignal noise(int64_t Base, int64_t Amplitude,
                            uint64_t Interval, uint64_t Seed);

  int64_t sample(uint64_t Tau) const;
};

/// The program's sensor environment: one signal per sensor id.
class Environment {
public:
  Environment() = default;

  /// Configures sensor \p Id (growing the table as needed).
  void setSignal(int Id, SensorSignal S);

  /// Default for sensors never configured: seeded noise, so experiments on
  /// unconfigured programs still observe time-varying inputs.
  int64_t sample(int Id, uint64_t Tau) const;

  int numConfigured() const { return static_cast<int>(Signals.size()); }

private:
  std::vector<SensorSignal> Signals;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_ENVIRONMENT_H
