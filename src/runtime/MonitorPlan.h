//===- MonitorPlan.h - Instrumentation plan for the violation monitor -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static instrumentation data the compiler derives from policies for the
/// paper's §7.3 bit-vector violation detector: which sensors each fresh
/// use depends on, and the ordered members of each consistent set.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_MONITORPLAN_H
#define OCELOT_RUNTIME_MONITORPLAN_H

#include "ir/Instruction.h"

#include <map>
#include <set>
#include <vector>

namespace ocelot {

/// One consistent set: its member input operations (as absolute provenance
/// chains, so two dynamic calls to the same sensor wrapper are distinct
/// members) and each member's sensor.
struct ConsistentSetPlan {
  int SetId = -1;
  std::vector<ProvChain> Members; ///< Absolute chains, in policy order.
  std::vector<int> MemberSensors; ///< Sensor per member (for reporting).
};

/// The full instrumentation plan of a compiled program.
struct MonitorPlan {
  /// Fresh-use checks: instruction (a use of a fresh variable) -> sensors
  /// whose bit must still be set when the use executes (paper §7.3: "On the
  /// use of a fresh variable, the bits of any dependent sensors are
  /// checked").
  std::map<InstrRef, std::set<InstrRef>> UseChecks;

  /// Consistent-set member checks ("On an input operation in a consistent
  /// set, the bits of any preceding operations in the set are checked").
  std::vector<ConsistentSetPlan> Sets;

  /// For the formal checker: at each fresh use site, the registers holding
  /// fresh-annotated variables (whose dynamic taint epochs are inspected).
  std::map<InstrRef, std::set<int>> UseRegs;

  bool empty() const { return UseChecks.empty() && Sets.empty(); }
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_MONITORPLAN_H
