//===- Interpreter.h - Intermittent execution simulator ---------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes Ocelot IR under the paper's JIT + Atomics execution model
/// (Appendix H):
///
///  * Non-volatile memory (globals) persists across power failures;
///    volatile state (the frame stack with virtual registers) is saved by a
///    JIT checkpoint when the comparator fires, or restored to the region
///    entry snapshot with the undo log applied when power fails inside an
///    atomic region (rules JIT-LowPower / Atom-LowPower / *-Reboot).
///  * Logical time tau advances with each instruction's cycle cost and by
///    the recharge duration across each reboot — the "pick(n)" that makes
///    stale/inconsistent inputs observable.
///  * Nested atomic regions flatten via the natom counter
///    (Atom-Start-Inner / Atom-End-Inner).
///  * Optional dynamic taint (Appendix B) feeds the formal violation
///    checker; the bit-vector detector (§7.3) runs independently.
///
/// Three dispatch engines implement these semantics and are pinned to
/// bitwise-identical results by differential tests (ExecImageTest,
/// DifferentialFuzzTest):
///
///  * Threaded (the default) — computed-goto direct-threaded dispatch
///    (with a portable switch fallback) over the image's ThreadedOp view,
///    in which a build-time peephole pass fused hot adjacent opcode pairs
///    into superinstructions. Shares the flat engine's volatile state and
///    slow paths (power failure, region entry, commit).
///  * Flat — PC-indexed dispatch over the artifact's `ExecutableImage`:
///    one contiguous instruction array, pre-resolved branch/call targets,
///    a folded cost table, and dense monitor/region side tables. Frames
///    shrink to {ReturnPc, RegBase} over one shared register stack.
///  * Tree — the original tree-walking engine chasing
///    Program→Function→Block→Instruction pointers. Retained as the
///    reference semantics for differential tests and as the baseline for
///    the steps-per-second report (bench/micro_runtime --json).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_INTERPRETER_H
#define OCELOT_RUNTIME_INTERPRETER_H

#include "analysis/WarAnalysis.h"
#include "fusion/FusionOracle.h"
#include "ir/Program.h"
#include "runtime/CostModel.h"
#include "runtime/EnergyModel.h"
#include "runtime/ExecutableImage.h"
#include "sensors/SensorScenario.h"
#include "runtime/FailurePlan.h"
#include "runtime/MonitorPlan.h"
#include "runtime/Trace.h"
#include "runtime/UndoLog.h"
#include "runtime/ViolationMonitor.h"

#include <memory>
#include <optional>

namespace ocelot {

class ArenaPool;
class PowerSource;
class TraceSink;
struct PcProfile;

/// Which dispatch loop executes the program. All engines implement the
/// same semantics; Flat and Threaded are strictly accelerations.
enum class DispatchEngine {
  Flat,     ///< PC-indexed dispatch over the ExecutableImage.
  Tree,     ///< Original pointer-chasing walk of the Program (reference).
  Threaded, ///< Computed-goto dispatch with superinstructions (default).
};

struct RunConfig {
  CostModel Costs;
  FailurePlan Plan = FailurePlan::none();
  EnergyConfig Energy;
  /// Harvesting environment for energy-driven plans (src/power/): decides
  /// refill targets and off-times at each reboot. Null selects the
  /// legacy-jitter behavior, preserving the pre-subsystem recharge
  /// sequence bit-for-bit. Sources are immutable, so one instance may be
  /// shared by any number of concurrent simulations.
  std::shared_ptr<const PowerSource> Power;
  /// The sensed world (src/sensors/): one pure-function-of-τ channel per
  /// sensor id. Null selects `defaultSensorScenario()` (per-id seeded
  /// noise), preserving the pre-subsystem unconfigured behavior
  /// bit-for-bit. Scenarios are immutable, so one instance may be shared
  /// by any number of concurrent simulations.
  std::shared_ptr<const SensorScenario> Sensors;
  /// Optional buffer pool (src/runtime/ArenaPool.h): when set, the
  /// interpreter takes its flat NVM array and register stack from the
  /// pool and gives their capacity back at destruction, so a shard
  /// running thousands of Simulations reuses a bounded set of large
  /// allocations. Results are unaffected — pooled and unpooled runs are
  /// bitwise identical.
  std::shared_ptr<ArenaPool> Arena;
  uint64_t Seed = 1;
  DispatchEngine Dispatch = DispatchEngine::Threaded;
  bool TrackTaint = false;
  bool MonitorBitVector = false;
  bool MonitorFormal = false; ///< Implies TrackTaint.
  /// Input-epoch consistency oracle (src/fusion/FusionOracle.h): score
  /// every committed output against the reboot epochs of the inputs fused
  /// into it, independent of the monitors' enforcement. Implies
  /// TrackTaint; verdicts land in RunResult::OracleRecords and are
  /// byte-identical across all three engines.
  bool Oracle = false;
  bool StaticOmega = false;   ///< Back up omega at region entry instead of
                              ///< first-write logging.
  bool RecordTrace = false;
  uint64_t MaxOnCyclesPerRun = 50'000'000;
  uint64_t MaxAbortsPerRegion = 1000; ///< Starvation detector (§5.3).
  /// Optional dynamic opcode-pair histogram, filled by the *tree* engine
  /// only (the reference walk — profiling must not perturb the fast
  /// paths). When non-null it must hold NumOpcodes^2 counters; the count
  /// of executing PC-adjacent pair (prev, cur) lands at
  /// [prev * NumOpcodes + cur]. This is the data the superinstruction set
  /// in ExecutableImage's fusion pass was chosen from
  /// (bench/micro_runtime --pairs).
  std::vector<uint64_t> *OpcodePairCounts = nullptr;
  /// Optional structured run tracing (src/telemetry/TraceSink.h): when
  /// non-null the engines and the violation monitor record reboot /
  /// checkpoint / region / monitor / sensor / energy events with τ
  /// timestamps. Null (the default) costs one predictable branch per hook
  /// site and nothing on the threaded Hot path (a traced run takes the
  /// non-Hot loop); results are bitwise identical either way.
  TraceSink *Telemetry = nullptr;
  /// Optional per-PC / per-opcode-pair execution profile
  /// (src/telemetry/Profile.h), filled by the flat and threaded engines.
  /// Callers size it via PcProfile::prepare(image size, NumOpcodes). Same
  /// cost discipline as Telemetry; results are unaffected.
  PcProfile *Profile = nullptr;
};

/// The outcome of one main() activation.
struct RunResult {
  bool Completed = false;
  bool Starved = false; ///< An atomic region could not complete on the
                        ///< available energy (region too large, §5.3).
  std::string Trap;     ///< Non-empty on runtime error (bounds, div by 0).
  uint64_t OnCycles = 0;
  uint64_t OffCycles = 0;
  uint64_t Steps = 0; ///< Instructions executed (throughput accounting).
  uint64_t Reboots = 0;
  uint64_t Checkpoints = 0;
  uint64_t UndoLogEntries = 0;
  uint64_t AtomicCommits = 0;
  uint64_t AtomicAborts = 0;
  bool ViolatedFresh = false;
  bool ViolatedConsistent = false;
  std::vector<ViolationRecord> Violations;
  Trace TraceData;
  uint64_t FinalTau = 0;
  /// Oracle scoring of every committed output (RunConfig::Oracle; empty
  /// otherwise), in commit order with canonical input sets.
  std::vector<OracleRecord> OracleRecords;
  uint64_t OracleFresh = 0;      ///< Outputs scored OracleVerdict::Fresh.
  uint64_t OracleStale = 0;      ///< Outputs scored OracleVerdict::Stale.
  uint64_t OracleCrossEpoch = 0; ///< Outputs scored CrossEpoch.
};

class Interpreter {
public:
  /// \p Plan and \p Regions may be null/empty for programs without
  /// annotations. Inputs are read from `Cfg.Sensors` (null = the default
  /// noise scenario). NVM, tau, the reboot epoch and the energy store
  /// persist across runOnce() calls, as on a real device.
  ///
  /// \p Image is the precomputed execution form; pass the artifact's so N
  /// simulations share one image. When null, the interpreter builds its
  /// own (callers that only have a raw Program, e.g. the refinement
  /// replay).
  Interpreter(const Program &P, RunConfig Cfg,
              const MonitorPlan *Plan = nullptr,
              const std::vector<RegionInfo> *Regions = nullptr,
              std::shared_ptr<const ExecutableImage> Image = nullptr);

  /// Returns pooled buffers to Cfg.Arena when one is configured.
  ~Interpreter();

  /// Executes one activation of main() to completion (or abort).
  RunResult runOnce();

  /// Re-initializes NVM from the program's initializers (fresh device).
  void resetNvm();

  /// Feeds inputs from \p Events instead of the sensor scenario (in
  /// order); used by the refinement replay. Pass std::nullopt to return
  /// to the scenario.
  void setReplayInputs(std::optional<std::vector<InputEvent>> Events);

  /// Inputs left in the replay queue (0 when not replaying).
  size_t replayRemaining() const {
    return Replay ? Replay->size() - ReplayIdx : 0;
  }

  /// Plain-value NVM snapshot for refinement comparison.
  std::vector<std::vector<int64_t>> nvmSnapshot() const;

  uint64_t tau() const { return Tau; }
  uint64_t epoch() const { return Epoch; }
  const ViolationMonitor &monitor() const { return *Monitor; }
  const ExecutableImage &image() const { return *Img; }

private:
  // -- Tree engine (reference semantics) ---------------------------------
  struct Frame {
    int Func = -1;
    int Block = 0;
    int Idx = 0;
    std::vector<RtValue> Regs;
    int RetDst = -1;
    uint32_t CallSiteLabel = 0; ///< Label of the call in the caller.
  };

  // -- Flat engine (PC-indexed dispatch) ---------------------------------
  /// A call frame under flat dispatch: where to resume in the caller and
  /// where this frame's registers start on the shared register stack.
  /// Everything else (function id, call-site label, return destination) is
  /// recomputed from the image: the call instruction sits at ReturnPc - 1.
  struct FlatFrame {
    uint32_t ReturnPc = 0;
    uint32_t RegBase = 0;
  };
  /// Region-entry snapshot of the flat engine's volatile state.
  struct FlatSnapshot {
    std::vector<FlatFrame> Frames;
    std::vector<RtValue> Regs;
    uint32_t Pc = 0;
  };

  enum class Mode { Jit, Atomic };

  RunResult runOnceTree();
  RunResult runOnceFlat();
  RunResult runOnceThreaded();
  /// The flat dispatch loop, specialized on taint tracking: the taint-off
  /// instantiation (the default hot path) moves raw int64 payloads with no
  /// RtValue temporaries — legal because with TrackTaint off every taint
  /// vector in registers and NVM is empty by construction.
  template <bool TaintOn> RunResult runFlatLoop();
  /// The threaded dispatch loop (InterpreterThreaded.cpp): computed-goto
  /// (or switch-fallback) dispatch over the image's ThreadedOp view. Only
  /// ever instantiated taint-off — runOnceThreaded routes taint-tracking
  /// configs to runFlatLoop<true>, where dispatch cost is noise next to
  /// taint propagation. The Hot instantiation additionally assumes no
  /// failure plan, no energy model and no monitors (the steady-state
  /// throughput configuration), dropping the per-step failure/energy/
  /// monitor checks that the non-Hot instantiation performs exactly like
  /// the flat loop.
  template <bool Hot> RunResult runThreadedLoop();

  const Instruction *fetch() const;
  RtValue eval(Operand O) const;     ///< Tree engine operand read.
  RtValue evalFlat(Operand O) const; ///< Flat engine operand read.
  /// Both engines: a kind-less operand reaching eval is a lowering bug —
  /// assert in debug; in release the step loop turns it into a trap
  /// instead of silently yielding 0.
  RtValue evalKindless() const;
  void powerFail(RunResult &R);
  void powerFailFlat(RunResult &R);
  /// Engine-independent reboot core: charges the JIT checkpoint, draws the
  /// off time (folded into R.OffCycles and tau), clears the monitor bit
  /// vector.
  void rebootCommon(RunResult &R, uint64_t TotalRegs);
  void enterAtomic(const Instruction &I, RunResult &R);
  void enterAtomicFlat(const FlatInst &I, RunResult &R);
  void commitAtomic(RunResult &R);
  void writeGlobal(int G, int64_t Index, RtValue V, RunResult &R);
  /// Taint-off fast path: identical to writeGlobal for a taint-free value
  /// (same undo-log sequence and cost charging) without materializing an
  /// RtValue.
  void writeGlobalRaw(int G, int64_t Index, int64_t V, RunResult &R);
  ProvChain currentChain(uint32_t FinalLabel) const;
  ProvChain currentChainFlat(int Func, uint32_t FinalLabel) const;
  const RegionInfo *regionInfo(int RegionId) const;
  bool checkEnergyAndPlan(uint64_t Cost);

  /// Flat NVM addressing: cell \p Index of global \p G via the image's
  /// layout table.
  RtValue &nvmCell(int G, int64_t Index) {
    return Nvm[Img->globalBase(G) + static_cast<size_t>(Index)];
  }
  const RtValue &nvmCell(int G, int64_t Index) const {
    return Nvm[Img->globalBase(G) + static_cast<size_t>(Index)];
  }

  const Program &P;
  RunConfig Cfg;
  /// The sensed world; never null (Cfg.Sensors or the default scenario).
  /// Shared and immutable — reads are thread-safe pure functions of τ.
  std::shared_ptr<const SensorScenario> Sensors;
  const std::vector<RegionInfo> *Regions;
  std::shared_ptr<const ExecutableImage> Img;
  /// PC-indexed cycle costs under Cfg.Costs. Points at the image's
  /// default-model table when Cfg.Costs is the default; otherwise at
  /// OwnCosts.
  const uint64_t *CostTable = nullptr;
  std::vector<uint64_t> OwnCosts;

  // Non-volatile state (persists across runs and failures). One flat cell
  // array laid out by the image's global table; both engines address it
  // through nvmCell().
  std::vector<RtValue> Nvm;
  uint64_t Tau = 0;
  uint64_t Epoch = 0;
  /// Cumulative on-cycles across the device lifetime (periodic failure
  /// plans arm against this, not the per-run counter).
  uint64_t LifetimeOn = 0;
  std::unique_ptr<ViolationMonitor> Monitor;
  std::unique_ptr<EnergyModel> Energy;
  Rng Rand;

  // Volatile execution state (tree engine).
  std::vector<Frame> Frames;
  std::vector<Frame> AtomicSnapshot;
  // Volatile execution state (flat engine).
  std::vector<FlatFrame> FFrames;
  std::vector<RtValue> RegStack;
  uint32_t Pc = 0;
  FlatSnapshot FlatAtomicSnapshot;

  Mode ExecMode = Mode::Jit;
  // Atomic context (kappa_atom): undo log + nesting counter.
  UndoLog Undo;
  int Natom = 0;
  int CurrentRegion = -1;
  uint64_t AbortsThisRegion = 0;
  /// Set by eval/evalFlat on a kind-less operand (release builds); the
  /// step loops convert it into a structured trap.
  mutable bool SawKindlessOperand = false;

  // Trace buffering: committed vs pending (inside an open region).
  Trace Committed;
  std::vector<InputEvent> PendingInputs;
  std::vector<OutputEvent> PendingOutputs;

  /// Oracle records follow the exact pending/committed discipline of
  /// outputs: buffered while a region is open, spliced on commit,
  /// discarded on abort. Classification happens at emission — sound
  /// because a record only survives if its region commits in the same
  /// epoch it executed in (a power failure inside the region discards
  /// the pending records with the outputs).
  std::vector<OracleRecord> CommittedOracle;
  std::vector<OracleRecord> PendingOracle;

  /// Scores one output's fused taint (RunConfig::Oracle): canonicalizes
  /// \p Inputs, classifies against the current epoch, buffers the record
  /// per the pending/committed discipline, and emits a telemetry event.
  void recordOracleOutput(OutputKind Kind, std::vector<InputEvent> &&Inputs);

  /// Moves the run's committed oracle records and verdict counts into
  /// \p R (both engines' epilogues).
  void finishOracle(RunResult &R);

  std::optional<std::vector<InputEvent>> Replay;
  size_t ReplayIdx = 0;
};

/// Replays \p T (the committed trace of \p NumRuns main() activations on a
/// fresh device) against a continuous execution of \p P and compares
/// outputs and the final NVM against \p FinalNvm. \returns true when the
/// intermittent execution refines a continuous one; otherwise \p Why says
/// what diverged.
bool replayRefines(const Program &P, const MonitorPlan *Plan, const Trace &T,
                   int NumRuns,
                   const std::vector<std::vector<int64_t>> &FinalNvm,
                   std::string &Why);

} // namespace ocelot

#endif // OCELOT_RUNTIME_INTERPRETER_H
