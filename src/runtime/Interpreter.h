//===- Interpreter.h - Intermittent execution simulator ---------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes Ocelot IR under the paper's JIT + Atomics execution model
/// (Appendix H):
///
///  * Non-volatile memory (globals) persists across power failures;
///    volatile state (the frame stack with virtual registers) is saved by a
///    JIT checkpoint when the comparator fires, or restored to the region
///    entry snapshot with the undo log applied when power fails inside an
///    atomic region (rules JIT-LowPower / Atom-LowPower / *-Reboot).
///  * Logical time tau advances with each instruction's cycle cost and by
///    the recharge duration across each reboot — the "pick(n)" that makes
///    stale/inconsistent inputs observable.
///  * Nested atomic regions flatten via the natom counter
///    (Atom-Start-Inner / Atom-End-Inner).
///  * Optional dynamic taint (Appendix B) feeds the formal violation
///    checker; the bit-vector detector (§7.3) runs independently.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_INTERPRETER_H
#define OCELOT_RUNTIME_INTERPRETER_H

#include "analysis/WarAnalysis.h"
#include "ir/Program.h"
#include "runtime/EnergyModel.h"
#include "runtime/Environment.h"
#include "runtime/FailurePlan.h"
#include "runtime/MonitorPlan.h"
#include "runtime/Trace.h"
#include "runtime/UndoLog.h"
#include "runtime/ViolationMonitor.h"

#include <memory>
#include <optional>

namespace ocelot {

class PowerSource;

/// Cycle costs per operation class. Values are abstract cycles; the
/// evaluation reports ratios, which depend only on relative magnitudes
/// (sensor reads and radio/UART output are expensive relative to ALU work,
/// checkpoints scale with saved state — as on the paper's MSP430 target).
struct CostModel {
  uint64_t Default = 1;
  uint64_t InputCost = 80;
  uint64_t OutputCost = 200;
  uint64_t CallCost = 2;
  uint64_t CheckpointBase = 120;
  uint64_t CheckpointPerReg = 1;
  uint64_t RestoreBase = 60;
  uint64_t RestorePerReg = 1;
  uint64_t AtomicStartCost = 10;
  /// Entering an (outermost) atomic region checkpoints the volatile
  /// execution context like a JIT checkpoint does (§6.3). Charged per
  /// active stack frame: virtual-register counts are inflated by loop
  /// unrolling, while a real MSP430 frame is a handful of words.
  uint64_t RegionEntryPerFrame = 8;
  uint64_t AtomicOmegaPerCell = 2; ///< Static-omega backup per cell.
  uint64_t UndoLogEntryCost = 3;
  uint64_t AtomicCommitCost = 6;

  uint64_t costOf(const Instruction &I) const;
};

struct RunConfig {
  CostModel Costs;
  FailurePlan Plan = FailurePlan::none();
  EnergyConfig Energy;
  /// Harvesting environment for energy-driven plans (src/power/): decides
  /// refill targets and off-times at each reboot. Null selects the
  /// legacy-jitter behavior, preserving the pre-subsystem recharge
  /// sequence bit-for-bit. Sources are immutable, so one instance may be
  /// shared by any number of concurrent simulations.
  std::shared_ptr<const PowerSource> Power;
  uint64_t Seed = 1;
  bool TrackTaint = false;
  bool MonitorBitVector = false;
  bool MonitorFormal = false; ///< Implies TrackTaint.
  bool StaticOmega = false;   ///< Back up omega at region entry instead of
                              ///< first-write logging.
  bool RecordTrace = false;
  uint64_t MaxOnCyclesPerRun = 50'000'000;
  uint64_t MaxAbortsPerRegion = 1000; ///< Starvation detector (§5.3).
};

/// The outcome of one main() activation.
struct RunResult {
  bool Completed = false;
  bool Starved = false; ///< An atomic region could not complete on the
                        ///< available energy (region too large, §5.3).
  std::string Trap;     ///< Non-empty on runtime error (bounds, div by 0).
  uint64_t OnCycles = 0;
  uint64_t OffCycles = 0;
  uint64_t Reboots = 0;
  uint64_t Checkpoints = 0;
  uint64_t UndoLogEntries = 0;
  uint64_t AtomicCommits = 0;
  uint64_t AtomicAborts = 0;
  bool ViolatedFresh = false;
  bool ViolatedConsistent = false;
  std::vector<ViolationRecord> Violations;
  Trace TraceData;
  uint64_t FinalTau = 0;
};

class Interpreter {
public:
  /// \p Plan and \p Regions may be null/empty for programs without
  /// annotations. NVM, tau, the reboot epoch and the energy store persist
  /// across runOnce() calls, as on a real device.
  Interpreter(const Program &P, Environment &Env, RunConfig Cfg,
              const MonitorPlan *Plan = nullptr,
              const std::vector<RegionInfo> *Regions = nullptr);

  /// Executes one activation of main() to completion (or abort).
  RunResult runOnce();

  /// Re-initializes NVM from the program's initializers (fresh device).
  void resetNvm();

  /// Feeds inputs from \p Events instead of the environment (in order);
  /// used by the refinement replay. Pass std::nullopt to return to the
  /// environment.
  void setReplayInputs(std::optional<std::vector<InputEvent>> Events);

  /// Inputs left in the replay queue (0 when not replaying).
  size_t replayRemaining() const {
    return Replay ? Replay->size() - ReplayIdx : 0;
  }

  /// Plain-value NVM snapshot for refinement comparison.
  std::vector<std::vector<int64_t>> nvmSnapshot() const;

  uint64_t tau() const { return Tau; }
  uint64_t epoch() const { return Epoch; }
  const ViolationMonitor &monitor() const { return *Monitor; }

private:
  struct Frame {
    int Func = -1;
    int Block = 0;
    int Idx = 0;
    std::vector<RtValue> Regs;
    int RetDst = -1;
    uint32_t CallSiteLabel = 0; ///< Label of the call in the caller.
  };

  enum class Mode { Jit, Atomic };

  const Instruction *fetch() const;
  RtValue eval(Operand O) const;
  void powerFail(RunResult &R);
  void enterAtomic(const Instruction &I, RunResult &R);
  void commitAtomic(RunResult &R);
  void writeGlobal(int G, int64_t Index, RtValue V, RunResult &R);
  ProvChain currentChain(uint32_t FinalLabel) const;
  const RegionInfo *regionInfo(int RegionId) const;
  bool checkEnergyAndPlan(uint64_t Cost);

  const Program &P;
  Environment &Env;
  RunConfig Cfg;
  const std::vector<RegionInfo> *Regions;

  // Non-volatile state (persists across runs and failures).
  std::vector<std::vector<RtValue>> Nvm;
  uint64_t Tau = 0;
  uint64_t Epoch = 0;
  /// Cumulative on-cycles across the device lifetime (periodic failure
  /// plans arm against this, not the per-run counter).
  uint64_t LifetimeOn = 0;
  std::unique_ptr<ViolationMonitor> Monitor;
  std::unique_ptr<EnergyModel> Energy;
  Rng Rand;

  // Volatile execution state.
  std::vector<Frame> Frames;
  Mode ExecMode = Mode::Jit;
  // Atomic context (kappa_atom): snapshot + undo log + nesting counter.
  std::vector<Frame> AtomicSnapshot;
  UndoLog Undo;
  int Natom = 0;
  int CurrentRegion = -1;
  uint64_t AbortsThisRegion = 0;

  // Trace buffering: committed vs pending (inside an open region).
  Trace Committed;
  std::vector<InputEvent> PendingInputs;
  std::vector<OutputEvent> PendingOutputs;

  std::optional<std::vector<InputEvent>> Replay;
  size_t ReplayIdx = 0;
};

/// Replays \p T (the committed trace of \p NumRuns main() activations on a
/// fresh device) against a continuous execution of \p P and compares
/// outputs and the final NVM against \p FinalNvm. \returns true when the
/// intermittent execution refines a continuous one; otherwise \p Why says
/// what diverged.
bool replayRefines(const Program &P, const MonitorPlan *Plan, const Trace &T,
                   int NumRuns,
                   const std::vector<std::vector<int64_t>> &FinalNvm,
                   std::string &Why);

} // namespace ocelot

#endif // OCELOT_RUNTIME_INTERPRETER_H
