//===- FailurePlan.cpp - Power-failure injection -------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/FailurePlan.h"

using namespace ocelot;

FailurePlan FailurePlan::none() { return FailurePlan(); }

FailurePlan FailurePlan::energyDriven() {
  FailurePlan P;
  P.K = Kind::EnergyDriven;
  return P;
}

FailurePlan FailurePlan::pathological(std::set<InstrRef> Points) {
  FailurePlan P;
  P.K = Kind::Pathological;
  P.Points = std::move(Points);
  return P;
}

FailurePlan FailurePlan::periodic(uint64_t PeriodCycles, double Jitter) {
  FailurePlan P;
  P.K = Kind::Periodic;
  P.Period = PeriodCycles ? PeriodCycles : 1;
  P.Jitter = Jitter;
  return P;
}

FailurePlan FailurePlan::random(double PerInstrProb) {
  FailurePlan P;
  P.K = Kind::Random;
  P.Prob = PerInstrProb;
  return P;
}

void FailurePlan::resetRun() {
  Fired.clear();
}

bool FailurePlan::firesBefore(InstrRef I, Rng &R) {
  switch (K) {
  case Kind::Pathological:
    if (Points.count(I) && Fired.insert(I).second)
      return true;
    return false;
  case Kind::Random:
    return R.nextDouble() < Prob;
  default:
    return false;
  }
}

bool FailurePlan::firesAfterCycles(uint64_t TotalOnCycles) {
  if (K != Kind::Periodic)
    return false;
  if (!NextArmed) {
    NextAt = TotalOnCycles + Period;
    NextArmed = true;
  }
  if (TotalOnCycles < NextAt)
    return false;
  // Re-arm with jitter derived from the trigger time (deterministic).
  uint64_t JitterSpan =
      static_cast<uint64_t>(static_cast<double>(Period) * Jitter);
  uint64_t Wobble = JitterSpan ? (TotalOnCycles * 2654435761u) % (2 * JitterSpan)
                               : 0;
  NextAt = TotalOnCycles + Period - JitterSpan + Wobble;
  if (NextAt <= TotalOnCycles)
    NextAt = TotalOnCycles + 1;
  return true;
}
