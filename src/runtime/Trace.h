//===- Trace.h - Committed execution traces ---------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The committed trace of an intermittent execution: inputs and outputs
/// that survived (work rolled back by an aborted atomic region is
/// discarded). The refinement checker in the interpreter replays the trace
/// against a continuously powered execution — the paper's correctness
/// criterion that an intermittent execution must match *some* continuous
/// execution (§3.1, and the crash-refinement lineage in §9).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_TRACE_H
#define OCELOT_RUNTIME_TRACE_H

#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ocelot {

struct Trace {
  std::vector<InputEvent> Inputs;
  std::vector<OutputEvent> Outputs;
  uint64_t Reboots = 0;

  void clear() {
    Inputs.clear();
    Outputs.clear();
    Reboots = 0;
  }

  std::string summary() const;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_TRACE_H
