//===- UndoLog.h - Non-volatile undo logging for atomic regions -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The atomic-region runtime's undo log. Two modes, both implemented and
/// benchmarked:
///
///  * dynamic — log each non-volatile cell's old value on first write
///    within the region (precise, no analysis needed);
///  * static  — snapshot the region's omega = WAR ∪ EMW set at region entry
///    (the paper's startatom(aID, omega), from prior work's analyses
///    [Alpaca / OOPSLA'20] ported in §6.3).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_RUNTIME_UNDOLOG_H
#define OCELOT_RUNTIME_UNDOLOG_H

#include "runtime/Value.h"

#include <cstdint>
#include <map>
#include <utility>

namespace ocelot {

/// Key = (global id, element index); scalars use index 0.
class UndoLog {
public:
  /// Records the old value of a cell unless already logged.
  /// \returns true if a new entry was created (costs cycles).
  bool logIfFirst(int Global, int64_t Index, const RtValue &Old) {
    auto [It, Inserted] = Entries.try_emplace({Global, Index}, Old);
    (void)It;
    return Inserted;
  }

  bool contains(int Global, int64_t Index) const {
    return Entries.count({Global, Index}) != 0;
  }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  void clear() { Entries.clear(); }

  /// Applies all entries through \p Restore(global, index, old value).
  template <typename Fn> void restore(Fn &&Restore) const {
    for (const auto &[Key, Old] : Entries)
      Restore(Key.first, Key.second, Old);
  }

private:
  std::map<std::pair<int, int64_t>, RtValue> Entries;
};

} // namespace ocelot

#endif // OCELOT_RUNTIME_UNDOLOG_H
