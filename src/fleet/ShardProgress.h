//===- ShardProgress.h - Advisory per-shard progress heartbeats -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Live progress for fleet shards. A running shard appends throttled
/// heartbeat records (cells done, cells/sec, ETA) to a `.progress` JSONL
/// sidecar next to its result file; `ocelot-fleet status` renders the
/// last heartbeat of every shard in an output directory without touching
/// result bytes.
///
/// The sidecar is *advisory*: it is never fsynced, never read by resume
/// or merge, and a missing/truncated/corrupt one only degrades the
/// status display. The manifest stays the single durable source of truth
/// for what a shard has actually completed.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FLEET_SHARDPROGRESS_H
#define OCELOT_FLEET_SHARDPROGRESS_H

#include <chrono>
#include <cstddef>
#include <string>

namespace ocelot {

struct ShardRunOptions;

/// One heartbeat: a snapshot of a shard's position in its cell range.
struct ShardProgress {
  unsigned Shard = 0;
  unsigned ShardCount = 1;
  size_t CellsBegin = 0;
  size_t CellsEnd = 0;
  size_t CellsDone = 0;     ///< Cells durable from the range start.
  double CellsPerSec = 0;   ///< Throughput of this invocation so far.
  double EtaSec = 0;        ///< Remaining cells / CellsPerSec (0 if done).
  uint64_t WallMs = 0;      ///< Wall time since this invocation started.

  bool done() const { return CellsDone >= CellsEnd - CellsBegin; }
};

/// The shard's progress sidecar path (`<stem>.progress`), derived from
/// the plan like shardResultPath/shardManifestPath.
std::string shardProgressPath(const ShardRunOptions &Opts);

/// Throttled heartbeat appender. Each `heartbeat` call appends one JSONL
/// record unless the previous append was under MinInterval ago; `Force`
/// bypasses the throttle (used for the first and final heartbeats so a
/// shard is visible the moment it starts and accurate the moment it
/// ends). Append failures are deliberately ignored — progress must never
/// fail a shard.
class ProgressWriter {
public:
  explicit ProgressWriter(std::string Path, double MinIntervalSec = 0.5);

  void heartbeat(const ShardProgress &P, bool Force = false);

private:
  std::string Path;
  std::chrono::steady_clock::duration MinInterval;
  std::chrono::steady_clock::time_point LastAppend;
  bool Appended = false;
};

/// Reads the last well-formed heartbeat of \p Path into \p Out. Returns
/// false (without an error message — the sidecar is advisory) when the
/// file is missing, empty, or holds no parseable record.
bool readLastShardProgress(const std::string &Path, ShardProgress &Out);

} // namespace ocelot

#endif // OCELOT_FLEET_SHARDPROGRESS_H
