//===- ShardPlan.cpp - Deterministic sweep partitioning --------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/ShardPlan.h"

#include <cassert>
#include <cstdlib>

using namespace ocelot;

ShardPlan::ShardPlan(size_t Cells, unsigned Shards)
    : Cells(Cells), Shards(Shards ? Shards : 1) {}

ShardRange ShardPlan::range(unsigned Shard) const {
  assert(Shard < Shards && "shard index out of range");
  size_t Base = Cells / Shards;
  size_t Extra = Cells % Shards;
  // The first `Extra` shards hold Base + 1 cells, the rest Base.
  auto StartOf = [&](size_t I) {
    return I * Base + (I < Extra ? I : Extra);
  };
  return {StartOf(Shard), StartOf(Shard + 1)};
}

bool ocelot::parseShardSpec(const std::string &Spec, unsigned &Shard,
                            unsigned &Count, std::string &Error) {
  const char *Text = Spec.c_str();
  char *End = nullptr;
  long I = std::strtol(Text, &End, 10);
  if (End == Text || *End != '/') {
    Error = "bad shard spec '" + Spec + "' (want I/K, e.g. --shard=0/4)";
    return false;
  }
  const char *KText = End + 1;
  long K = std::strtol(KText, &End, 10);
  if (End == KText || *End != '\0' || K < 1 || I < 0 || I >= K) {
    Error = "bad shard spec '" + Spec +
            "' (want 0 <= I < K, e.g. --shard=0/4)";
    return false;
  }
  Shard = static_cast<unsigned>(I);
  Count = static_cast<unsigned>(K);
  return true;
}
