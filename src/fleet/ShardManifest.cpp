//===- ShardManifest.cpp - Durable per-shard progress record ---------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/ShardManifest.h"

#include "fleet/FleetSpec.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace ocelot;

namespace {

constexpr const char *Magic = "ocelot-fleet-manifest v1";

std::string serializeBody(const ShardManifest &M) {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "%s\n"
                "spec_hash %016" PRIx64 "\n"
                "shard %u/%u\n"
                "format %s\n"
                "cells %zu %zu %zu\n"
                "sink_offset %" PRIu64 "\n",
                Magic, M.SpecHash, M.Shard, M.ShardCount,
                sinkFormatName(M.Format), M.CellsBegin, M.CellsNext,
                M.CellsEnd, M.SinkOffset);
  return Buf;
}

bool syncParentDir(const std::string &Path) {
#ifndef _WIN32
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return false;
  bool Ok = ::fsync(Fd) == 0;
  ::close(Fd);
  return Ok;
#else
  (void)Path;
  return true;
#endif
}

} // namespace

bool ocelot::fileExists(const std::string &Path) {
#ifndef _WIN32
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
#else
  std::ifstream In(Path);
  return In.good();
#endif
}

bool ocelot::writeShardManifest(const std::string &Path,
                                const ShardManifest &M, std::string &Error) {
  std::string Body = serializeBody(M);
  char Sum[32];
  std::snprintf(Sum, sizeof(Sum), "checksum %016" PRIx64 "\n",
                fnv1a64(Body));
  std::string Tmp = Path + ".tmp";

  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F) {
    Error = "cannot create " + Tmp + ": " + std::strerror(errno);
    return false;
  }
  bool Ok = std::fwrite(Body.data(), 1, Body.size(), F) == Body.size() &&
            std::fwrite(Sum, 1, std::strlen(Sum), F) == std::strlen(Sum) &&
            std::fflush(F) == 0;
#ifndef _WIN32
  Ok = Ok && ::fsync(fileno(F)) == 0;
#endif
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    Error = "cannot write " + Tmp + ": " + std::strerror(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot replace " + Path + ": " + std::strerror(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  // Make the rename itself durable; a failure here is ignorable only in
  // the sense that the *previous* manifest is still valid, but report it
  // so the caller stops instead of advancing past an undurable record.
  if (!syncParentDir(Path)) {
    Error = "cannot fsync directory of " + Path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

bool ocelot::loadShardManifest(const std::string &Path, ShardManifest &M,
                               std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path + ": " + std::strerror(errno);
    return false;
  }
  std::ostringstream Raw;
  Raw << In.rdbuf();
  std::string Text = Raw.str();

  auto Corrupt = [&](const std::string &Why) {
    Error = "corrupt manifest " + Path + ": " + Why +
            " (delete the shard's manifest and result file to restart it "
            "from scratch)";
    return false;
  };

  // Split off the trailing checksum line and verify it covers the body.
  size_t SumPos = Text.rfind("checksum ");
  if (SumPos == std::string::npos || SumPos == 0 || Text[SumPos - 1] != '\n')
    return Corrupt("missing checksum line");
  std::string Body = Text.substr(0, SumPos);
  uint64_t WantSum = 0;
  if (std::sscanf(Text.c_str() + SumPos, "checksum %" SCNx64, &WantSum) != 1)
    return Corrupt("unreadable checksum line");
  if (fnv1a64(Body) != WantSum)
    return Corrupt("checksum mismatch (torn or edited write)");

  ShardManifest P;
  char FormatName[16] = {0};
  char MagicBuf[64] = {0};
  int Matched = std::sscanf(
      Body.c_str(),
      "%63[^\n]\n"
      "spec_hash %" SCNx64 "\n"
      "shard %u/%u\n"
      "format %15[^\n]\n"
      "cells %zu %zu %zu\n"
      "sink_offset %" SCNu64 "\n",
      MagicBuf, &P.SpecHash, &P.Shard, &P.ShardCount, FormatName,
      &P.CellsBegin, &P.CellsNext, &P.CellsEnd, &P.SinkOffset);
  if (Matched != 9 || std::string(MagicBuf) != Magic)
    return Corrupt("unrecognized layout");
  std::string Why;
  if (!parseSinkFormat(FormatName, P.Format, Why))
    return Corrupt(Why);
  if (P.ShardCount == 0 || P.Shard >= P.ShardCount ||
      P.CellsBegin > P.CellsNext || P.CellsNext > P.CellsEnd)
    return Corrupt("inconsistent progress fields");
  M = P;
  return true;
}
