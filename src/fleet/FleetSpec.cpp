//===- FleetSpec.cpp - Textual, hashable sweep grid spec -------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetSpec.h"

#include "fusion/FusionBenchmarks.h"
#include "power/PowerProfiles.h"
#include "sensors/SensorScenarios.h"

#include <cinttypes>
#include <cstdio>

using namespace ocelot;

uint64_t ocelot::fnv1a64(const std::string &Text) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::vector<std::string> ocelot::splitCommaList(const std::string &Value) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (Start <= Value.size()) {
    size_t Comma = Value.find(',', Start);
    if (Comma == std::string::npos)
      Comma = Value.size();
    std::string Tok = Value.substr(Start, Comma - Start);
    size_t B = Tok.find_first_not_of(" \t");
    size_t E = Tok.find_last_not_of(" \t");
    if (B != std::string::npos)
      Out.push_back(Tok.substr(B, E - B + 1));
    Start = Comma + 1;
  }
  return Out;
}

namespace {

void appendF(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void appendU(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

struct ModelName {
  const char *Name;
  ExecModel Model;
};
constexpr ModelName ModelNames[] = {
    {"jit", ExecModel::JitOnly},
    {"atomics", ExecModel::AtomicsOnly},
    {"ocelot", ExecModel::Ocelot},
    {"check", ExecModel::CheckOnly},
};

bool lookupModel(const std::string &Name, ExecModel &Out) {
  for (const ModelName &MN : ModelNames)
    if (Name == MN.Name) {
      Out = MN.Model;
      return true;
    }
  return false;
}

} // namespace

std::string FleetSpec::canonical() const {
  std::string T = "ocelot-fleet-spec v1\n";
  auto Names = [&](const char *Key, const std::vector<std::string> &Vs) {
    T += Key;
    for (const std::string &V : Vs) {
      T += ' ';
      T += V;
    }
    T += '\n';
  };
  Names("models", Models);
  Names("benchmarks", Benchmarks);
  for (const EnergyConfig &E : Energies) {
    T += "energy ";
    appendU(T, E.CapacityCycles);
    T += ' ';
    appendU(T, E.ReserveCycles);
    T += ' ';
    appendF(T, E.ChargeRate);
    T += ' ';
    appendF(T, E.ChargeJitter);
    T += ' ';
    appendF(T, E.RefillJitter);
    T += '\n';
  }
  Names("powers", Powers);
  Names("scenarios", Scenarios);
  T += "seeds";
  for (uint64_t S : Seeds) {
    T += ' ';
    appendU(T, S);
  }
  T += "\ntau ";
  appendU(T, TauBudget);
  T += "\nmonitors ";
  T += Monitors ? '1' : '0';
  T += "\noracle ";
  T += Oracle ? '1' : '0';
  T += '\n';
  return T;
}

uint64_t FleetSpec::hash() const { return fnv1a64(canonical()); }

bool FleetSpec::resolve(SweepSpec &Out, std::string &Error) const {
  Out = SweepSpec();
  if (Models.empty() || Benchmarks.empty() || Energies.empty() ||
      Seeds.empty()) {
    Error = "sweep spec needs at least one model, benchmark, energy config "
            "and seed";
    return false;
  }
  if (TauBudget == 0) {
    Error = "sweep spec needs a nonzero --tau simulated-time budget";
    return false;
  }
  for (const std::string &M : Models) {
    ExecModel Model;
    if (!lookupModel(M, Model)) {
      Error = "unknown model '" + M + "' (valid: jit, atomics, ocelot, check)";
      return false;
    }
    Out.Models.push_back(Model);
  }
  for (const std::string &B : Benchmarks) {
    const BenchmarkDef *Def = findBenchmark(B);
    if (!Def) {
      std::string Valid;
      for (const BenchmarkDef &Known : allBenchmarks()) {
        if (!Valid.empty())
          Valid += ", ";
        Valid += Known.Name;
      }
      for (const BenchmarkDef &Known : fusionBenchmarks()) {
        Valid += ", ";
        Valid += Known.Name;
      }
      Error = "unknown benchmark '" + B + "' (valid: " + Valid + ")";
      return false;
    }
    Out.Benchmarks.push_back(Def);
  }
  Out.Energies = Energies;
  // "default" maps to the nullptr column in both optional dimensions
  // (legacy-jitter power / the benchmark's own seeded noise) — the same
  // cell an empty vector's implicit single column evaluates.
  for (const std::string &P : Powers) {
    if (P == "default") {
      Out.Powers.push_back(nullptr);
      continue;
    }
    std::string Why;
    auto Src = resolvePowerSource(P, Why);
    if (!Src) {
      Error = "bad power '" + P + "': " + Why;
      return false;
    }
    Out.Powers.push_back(std::move(Src));
  }
  for (const std::string &Sc : Scenarios) {
    if (Sc == "default") {
      Out.Scenarios.push_back(nullptr);
      continue;
    }
    std::string Why;
    auto World = resolveSensorScenario(Sc, Why);
    if (!World) {
      Error = "bad scenario '" + Sc + "': " + Why;
      return false;
    }
    Out.Scenarios.push_back(std::move(World));
  }
  Out.Seeds = Seeds;
  Out.TauBudget = TauBudget;
  Out.Monitors = Monitors;
  Out.Oracle = Oracle;
  return true;
}
