//===- FleetRunner.h - Sharded, streaming, resumable sweeps -----*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet sweep service: evaluates one `ShardPlan` range of a
/// `FleetSpec` grid, streaming each cell to a `ResultSink` and
/// checkpointing a `ShardManifest` so a killed shard resumes from its
/// last durable cell — then merges K completed shard files into output
/// byte-identical to a sequential single-process run.
///
/// Determinism: every cell is seeded purely from the spec, cells are
/// *emitted* in flat cell-index order regardless of worker scheduling
/// (a bounded reorder window keeps memory independent of shard size),
/// and record serialization round-trips exactly — so
/// `run --shard=i/K` × K + `merge` ≡ `run --shard=0/1`, bitwise.
///
/// Memory: a shard holds the compiled artifacts of its (model, benchmark)
/// pairs, the reorder window (≈4×workers cells), and pooled simulation
/// arenas — never the whole grid. A 10k-cell shard streams in the same
/// bounded footprint as a 10-cell one.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FLEET_FLEETRUNNER_H
#define OCELOT_FLEET_FLEETRUNNER_H

#include "fleet/FleetSpec.h"
#include "fleet/ResultSink.h"
#include "fleet/ShardManifest.h"
#include "fleet/ShardPlan.h"

#include <string>

namespace ocelot {

/// How a shard invocation ended (when it returned success).
enum class ShardOutcome {
  Complete,    ///< Every cell of the range is evaluated and durable.
  Interrupted, ///< Stopped early (MaxCells); resume to continue.
};

/// Options for one `runShard` invocation.
struct ShardRunOptions {
  std::string OutDir;          ///< Directory for shard files + manifests.
  unsigned Shard = 0;          ///< Zero-based shard index.
  unsigned ShardCount = 1;     ///< Total shards in the plan.
  SinkFormat Format = SinkFormat::Jsonl;
  unsigned Workers = 1;        ///< Worker threads evaluating cells.
  /// Cells evaluated between checkpoints (sink fsync + manifest rewrite).
  /// 1 = checkpoint every cell (maximum durability); larger values trade
  /// re-computed cells after a crash for fewer fsyncs.
  size_t CheckpointEvery = 1;
  /// Stop after this many cells *this invocation* (0 = run to the end of
  /// the range). The shard exits as Interrupted; used by the CI kill /
  /// resume drill and the resume tests.
  size_t MaxCells = 0;
  bool Quiet = false;          ///< Suppress the per-shard progress line.
};

/// Shard file paths, derived from the plan so every process agrees.
std::string shardResultPath(const ShardRunOptions &Opts);
std::string shardManifestPath(const ShardRunOptions &Opts);

/// Evaluates (or resumes) one shard of \p Fleet. Returns false with an
/// actionable \p Error on I/O failure, unresolvable spec, or a manifest
/// from a different sweep; never aborts on bad input. On success
/// \p Outcome says whether the range completed or was interrupted.
bool runShard(const FleetSpec &Fleet, const ShardRunOptions &Opts,
              ShardOutcome &Outcome, std::string &Error);

/// Options for `mergeShards`.
struct MergeOptions {
  std::string OutDir;          ///< Where the shard files live.
  unsigned ShardCount = 1;
  SinkFormat Format = SinkFormat::Jsonl;
  std::string MergedPath;      ///< Output file (default OutDir/merged.<ext>).
};

/// Aggregate counters merge reports after validating every record.
struct MergeSummary {
  size_t Cells = 0;
  uint64_t CompletedRuns = 0;
  uint64_t ViolatingRuns = 0;
  size_t StarvedCells = 0;
  size_t TrappedCells = 0;
};

/// Validates that all K shards of \p Fleet are complete and consistent
/// (spec hash, coverage, per-line syntax), then writes their records in
/// cell order to MergedPath — byte-identical to a single sequential
/// shard's output. Returns false with an actionable \p Error naming the
/// offending shard (including the exact resume command for an incomplete
/// one).
bool mergeShards(const FleetSpec &Fleet, const MergeOptions &Opts,
                 MergeSummary &Summary, std::string &Error);

} // namespace ocelot

#endif // OCELOT_FLEET_FLEETRUNNER_H
