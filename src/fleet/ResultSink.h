//===- ResultSink.h - Streaming per-cell result sinks -----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming sinks for `SweepCellResult`s: instead of aggregating a whole
/// grid in memory the fleet runner appends one self-contained record per
/// cell to a JSONL or CSV file, so a shard's resident memory is bounded by
/// its reorder window, not its cell count. Records are emitted in flat
/// cell-index order, one line per cell, doubles formatted `%.17g` so a
/// read-back (`readResultFile`) reconstitutes every field bit-for-bit —
/// the property the shard-merge determinism invariant rests on: re-emitting
/// a parsed record reproduces the original line byte-for-byte.
///
/// Durability contract: `append` may buffer; after `flush` every appended
/// record is on stable storage (fsync) and `durableOffset` is the byte
/// offset a resume may truncate the file back to — any torn tail past it
/// is discarded and recomputed.
///
/// Adding a sink format safely: implement both the writer and the reader,
/// keep emission deterministic (fixed field order, `%.17g` doubles, no
/// locale dependence), and extend FleetTest's round-trip suite before
/// wiring it into the CLI (docs/ARCHITECTURE.md, "Fleet sweeps").
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FLEET_RESULTSINK_H
#define OCELOT_FLEET_RESULTSINK_H

#include "harness/SweepRunner.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ocelot {

/// The on-disk formats a fleet sweep can stream to.
enum class SinkFormat {
  Jsonl, ///< One JSON object per line.
  Csv,   ///< Header line + one row per cell (RFC-4180 quoting).
};

const char *sinkFormatName(SinkFormat F);
/// Parses a `--format=` value; returns false with \p Error on an unknown
/// name.
bool parseSinkFormat(const std::string &Name, SinkFormat &F,
                     std::string &Error);
/// Conventional file extension (without the dot) for \p F.
const char *sinkFormatExtension(SinkFormat F);

/// One streamed record: the flat cell index plus the evaluated cell.
struct CellRecord {
  size_t Cell = 0;
  SweepCellResult Result;
};

/// Append-only, in-order sink of cell records.
class ResultSink {
public:
  virtual ~ResultSink() = default;

  /// Appends one record. Records must arrive in increasing cell order;
  /// the writer buffers in user space until flush().
  virtual void append(const CellRecord &R) = 0;

  /// Flushes user-space buffers and fsyncs: every appended record is
  /// durable when this returns. \returns false (with \p Error set) when
  /// the OS reports a write failure — a shard must stop rather than
  /// record a manifest offset it cannot trust.
  virtual bool flush(std::string &Error) = 0;

  /// Byte offset of the end of the last flushed record. A resume
  /// truncates the file to the offset recorded in the manifest, which is
  /// always one of these values.
  virtual uint64_t durableOffset() const = 0;
};

/// Opens \p Path for streaming in \p Format.
///
/// \p ResumeAtOffset < 0 starts a fresh file (truncates, writes the CSV
/// header when applicable). Otherwise the file is truncated to exactly
/// \p ResumeAtOffset — dropping any torn tail from an interrupted shard —
/// and appending continues from there. Returns nullptr with \p Error on
/// I/O failure.
std::unique_ptr<ResultSink> openResultSink(const std::string &Path,
                                           SinkFormat Format,
                                           int64_t ResumeAtOffset,
                                           std::string &Error);

/// Reads every record of a result file written by the sink above.
/// Validates per-line syntax and field presence; on failure returns false
/// with a line-numbered message in \p Error. \p Out is in file order
/// (which for shard files is increasing cell order; the reader does not
/// enforce it — merge validates coverage against the plan).
bool readResultFile(const std::string &Path, SinkFormat Format,
                    std::vector<CellRecord> &Out, std::string &Error);

/// Serializes one record as a single line (including the trailing
/// newline) — the exact bytes the corresponding sink appends. Merge uses
/// this to rewrite validated shard records into the merged file so the
/// result is byte-identical to a sequential single-process run.
std::string formatCellRecord(const CellRecord &R, SinkFormat Format);

/// The CSV header line (including the trailing newline).
std::string csvHeaderLine();

} // namespace ocelot

#endif // OCELOT_FLEET_RESULTSINK_H
