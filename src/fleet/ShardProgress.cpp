//===- ShardProgress.cpp - Advisory per-shard progress heartbeats ----------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/ShardProgress.h"

#include "fleet/FleetRunner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace ocelot;

std::string ocelot::shardProgressPath(const ShardRunOptions &Opts) {
  // Derived from the manifest path so every process agrees on the stem.
  const std::string Suffix = ".manifest";
  std::string P = shardManifestPath(Opts);
  P.replace(P.size() - Suffix.size(), Suffix.size(), ".progress");
  return P;
}

ProgressWriter::ProgressWriter(std::string Path, double MinIntervalSec)
    : Path(std::move(Path)),
      MinInterval(std::chrono::duration_cast<
                  std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(MinIntervalSec))) {}

void ProgressWriter::heartbeat(const ShardProgress &P, bool Force) {
  auto Now = std::chrono::steady_clock::now();
  if (Appended && !Force && Now - LastAppend < MinInterval)
    return;
  std::FILE *F = std::fopen(Path.c_str(), "a");
  if (!F)
    return; // Advisory: a read-only dir must not fail the shard.
  std::fprintf(F,
               "{\"shard\": %u, \"of\": %u, \"cells_begin\": %zu, "
               "\"cells_end\": %zu, \"cells_done\": %zu, "
               "\"cells_per_sec\": %.3f, \"eta_sec\": %.3f, "
               "\"wall_ms\": %llu}\n",
               P.Shard, P.ShardCount, P.CellsBegin, P.CellsEnd, P.CellsDone,
               P.CellsPerSec, P.EtaSec,
               static_cast<unsigned long long>(P.WallMs));
  std::fclose(F);
  LastAppend = Now;
  Appended = true;
}

namespace {

/// Parses `"Key": <number>` out of one JSONL line. Returns false when the
/// key is absent or not followed by a number.
bool findNum(const std::string &Line, const char *Key, double &Val) {
  std::string Needle = std::string("\"") + Key + "\": ";
  size_t Pos = Line.find(Needle);
  if (Pos == std::string::npos)
    return false;
  const char *Start = Line.c_str() + Pos + Needle.size();
  char *End = nullptr;
  Val = std::strtod(Start, &End);
  return End != Start;
}

bool parseProgressLine(const std::string &Line, ShardProgress &Out) {
  double Shard, Of, Begin, End, Done, Rate, Eta, Wall;
  if (!findNum(Line, "shard", Shard) || !findNum(Line, "of", Of) ||
      !findNum(Line, "cells_begin", Begin) ||
      !findNum(Line, "cells_end", End) ||
      !findNum(Line, "cells_done", Done) ||
      !findNum(Line, "cells_per_sec", Rate) ||
      !findNum(Line, "eta_sec", Eta) || !findNum(Line, "wall_ms", Wall))
    return false;
  Out.Shard = static_cast<unsigned>(Shard);
  Out.ShardCount = static_cast<unsigned>(Of);
  Out.CellsBegin = static_cast<size_t>(Begin);
  Out.CellsEnd = static_cast<size_t>(End);
  Out.CellsDone = static_cast<size_t>(Done);
  Out.CellsPerSec = Rate;
  Out.EtaSec = Eta;
  Out.WallMs = static_cast<uint64_t>(Wall);
  return true;
}

} // namespace

bool ocelot::readLastShardProgress(const std::string &Path,
                                   ShardProgress &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  bool Found = false;
  std::string Line;
  char Buf[512];
  while (std::fgets(Buf, sizeof(Buf), F)) {
    Line = Buf;
    // A record interrupted mid-write has no trailing newline; skip it
    // rather than parse half a number.
    if (Line.empty() || Line.back() != '\n')
      continue;
    ShardProgress P;
    if (parseProgressLine(Line, P)) {
      Out = P;
      Found = true;
    }
  }
  std::fclose(F);
  return Found;
}
