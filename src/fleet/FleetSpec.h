//===- FleetSpec.h - Textual, hashable sweep grid spec ----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `SweepSpec` holds live pointers (benchmarks, power sources, sensor
/// scenarios), which two cooperating processes cannot compare. `FleetSpec`
/// is the textual form the fleet tools exchange instead: every dimension
/// is named by string or value, `canonical()` serializes it
/// deterministically, and `hash()` of that text is stamped into each
/// shard's manifest — so `merge` and `run --resume` can prove all parties
/// evaluated the *same* grid before trusting each other's bytes.
///
/// `resolve()` turns the names back into a `SweepSpec` through the same
/// registries the CLIs use (`findBenchmark`, `resolvePowerSource`,
/// `resolveSensorScenario`); the token `default` in the power/scenario
/// dimensions maps to the nullptr column (legacy-jitter power, the
/// benchmark's own seeded-noise world).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FLEET_FLEETSPEC_H
#define OCELOT_FLEET_FLEETSPEC_H

#include "harness/SweepRunner.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ocelot {

/// The fleet-level sweep description. Field order mirrors the cell
/// enumeration order of SweepSpec (model-major, seed-minor).
struct FleetSpec {
  std::vector<std::string> Models;     ///< "ocelot", "jit", "atomics", "check".
  std::vector<std::string> Benchmarks; ///< Names from allBenchmarks().
  std::vector<EnergyConfig> Energies;
  /// Power profile specs ("default" = the legacy-jitter nullptr column;
  /// otherwise anything resolvePowerSource accepts). Empty = one implicit
  /// "default" column, matching SweepSpec::powerCount().
  std::vector<std::string> Powers;
  /// Sensor scenario specs ("default" = the benchmark's own seeded noise).
  std::vector<std::string> Scenarios;
  std::vector<uint64_t> Seeds;
  uint64_t TauBudget = 0;
  bool Monitors = true;
  /// Score outputs with the input-epoch consistency oracle and carry the
  /// oracle/enforcement columns in every cell record (table7 grids).
  bool Oracle = false;

  /// Deterministic text serialization: one `key value...` line per field,
  /// doubles in %.17g. Equal specs produce equal text; this is what
  /// hash() digests and what `ocelot-fleet plan` prints.
  std::string canonical() const;

  /// FNV-1a 64 of canonical() — the spec fingerprint shards and manifests
  /// carry.
  uint64_t hash() const;

  /// Resolves every name into a runnable SweepSpec. On failure returns
  /// false and sets \p Error to an actionable message (unknown benchmark /
  /// model / power / scenario, zero tau budget, empty dimension).
  bool resolve(SweepSpec &Out, std::string &Error) const;
};

/// FNV-1a 64-bit over \p Text — shared by FleetSpec::hash and the
/// manifest's line checksum.
uint64_t fnv1a64(const std::string &Text);

/// Splits a comma-separated flag value ("a,b,c") into trimmed non-empty
/// tokens.
std::vector<std::string> splitCommaList(const std::string &Value);

} // namespace ocelot

#endif // OCELOT_FLEET_FLEETSPEC_H
