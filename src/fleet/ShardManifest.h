//===- ShardManifest.h - Durable per-shard progress record ------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint a fleet shard leaves behind so a killed process can
/// resume from its last durable cell. The manifest records the spec hash
/// (so a resume under a *different* grid is rejected, not silently
/// merged), the shard's range, the next cell to evaluate, and the result
/// file's durable byte offset.
///
/// Write protocol: serialize to `<path>.tmp`, fsync, rename over the real
/// path, fsync the directory. A crash leaves either the old manifest or
/// the new one — never a torn mix. The file additionally carries an FNV
/// checksum of its own lines, so a manifest that *was* torn some other
/// way (filesystem without atomic rename, manual edit) is detected and
/// reported rather than trusted.
///
/// The ordering invariant the resume correctness rests on: the result
/// sink is flushed (fsync) *before* the manifest advances. The manifest's
/// SinkOffset therefore never points past durable sink bytes; a resume
/// truncates the sink to SinkOffset, dropping at most a torn tail that
/// the restarted shard recomputes deterministically.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FLEET_SHARDMANIFEST_H
#define OCELOT_FLEET_SHARDMANIFEST_H

#include "fleet/ResultSink.h"

#include <cstdint>
#include <string>

namespace ocelot {

/// The durable progress record of one shard of one sweep.
struct ShardManifest {
  uint64_t SpecHash = 0;      ///< FleetSpec::hash() of the grid.
  unsigned Shard = 0;         ///< This shard's index.
  unsigned ShardCount = 1;    ///< Total shards in the plan.
  SinkFormat Format = SinkFormat::Jsonl;
  size_t CellsBegin = 0;      ///< First cell of the shard's range.
  size_t CellsNext = 0;       ///< Next cell to evaluate (resume point).
  size_t CellsEnd = 0;        ///< One past the shard's last cell.
  uint64_t SinkOffset = 0;    ///< Durable byte size of the result file.

  bool complete() const { return CellsNext == CellsEnd; }
};

/// Atomically replaces \p Path with \p M (tmp + fsync + rename + dir
/// fsync). Returns false with \p Error on I/O failure.
bool writeShardManifest(const std::string &Path, const ShardManifest &M,
                        std::string &Error);

/// Loads and validates \p Path. Checksum or syntax failures produce a
/// "corrupt manifest" error naming the path; they never abort.
bool loadShardManifest(const std::string &Path, ShardManifest &M,
                       std::string &Error);

/// True if \p Path exists (distinguishes "fresh shard" from "resume").
bool fileExists(const std::string &Path);

} // namespace ocelot

#endif // OCELOT_FLEET_SHARDMANIFEST_H
