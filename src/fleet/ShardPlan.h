//===- ShardPlan.h - Deterministic sweep partitioning -----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions a sweep's flat cell-index space `[0, Cells)` into K
/// contiguous, balanced, disjoint shard ranges so K independent processes
/// can each evaluate one range and a merge of their streamed outputs is
/// byte-identical to a single sequential run. The partition is a pure
/// function of (Cells, Shards): every process that agrees on the spec
/// agrees on the plan, with nothing to coordinate.
///
/// Contiguous ranges (rather than strided assignment) keep each shard's
/// cells grouped by (model, benchmark), which maximizes compiled-artifact
/// cache hits within a shard, and make merge a concatenation.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FLEET_SHARDPLAN_H
#define OCELOT_FLEET_SHARDPLAN_H

#include <cstddef>
#include <string>

namespace ocelot {

/// Half-open range of flat cell indices assigned to one shard.
struct ShardRange {
  size_t Begin = 0;
  size_t End = 0;

  size_t size() const { return End - Begin; }
  bool empty() const { return Begin == End; }
};

/// The deterministic partition of \p Cells cells into \p Shards
/// contiguous ranges whose sizes differ by at most one (the first
/// `Cells % Shards` shards get the extra cell).
class ShardPlan {
public:
  ShardPlan(size_t Cells, unsigned Shards);

  size_t cells() const { return Cells; }
  unsigned shards() const { return Shards; }

  /// The range of shard \p Shard (< shards()).
  ShardRange range(unsigned Shard) const;

private:
  size_t Cells;
  unsigned Shards;
};

/// Parses a `--shard=i/K` value (the text after the '='). On success
/// stores the zero-based index and the shard count and returns true;
/// otherwise sets \p Error to an actionable message and returns false.
bool parseShardSpec(const std::string &Spec, unsigned &Shard,
                    unsigned &Count, std::string &Error);

} // namespace ocelot

#endif // OCELOT_FLEET_SHARDPLAN_H
