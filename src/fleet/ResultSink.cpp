//===- ResultSink.cpp - Streaming per-cell result sinks --------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/ResultSink.h"

#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ocelot;

namespace {

/// Deterministic double formatting: %.17g round-trips every finite double
/// exactly through strtod, so parse + re-emit reproduces the bytes.
void appendDouble(std::string &Out, double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  Out += Buf;
}

void appendU64(std::string &Out, uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%" PRIu64, V);
  Out += Buf;
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendCsvField(std::string &Out, const std::string &S) {
  if (S.find_first_of(",\"\n\r") == std::string::npos) {
    Out += S;
    return;
  }
  Out += '"';
  for (char C : S) {
    if (C == '"')
      Out += '"';
    Out += C;
  }
  Out += '"';
}

// Field order shared by both formats (and the readers below).
constexpr const char *FieldNames[] = {
    "cell",           "model",
    "bench",          "energy",
    "power",          "scenario",
    "seed",           "completed_runs",
    "violating_runs", "oracle_fresh_outputs",
    "oracle_stale_outputs", "oracle_cross_epoch_outputs",
    "oracle_dirty_runs", "over_enforced_runs",
    "under_enforced_runs", "on_cycles_per_run",
    "off_cycles_per_run", "reboots_per_run",
    "starved",        "trapped",
    "trap"};
constexpr size_t NumFields = sizeof(FieldNames) / sizeof(FieldNames[0]);

/// A FILE*-backed append sink shared by both formats; the subclasses only
/// differ in their line serialization (formatCellRecord).
class FileSink final : public ResultSink {
public:
  FileSink(std::FILE *F, SinkFormat Format, uint64_t Offset)
      : F(F), Format(Format), Durable(Offset), Position(Offset) {}

  ~FileSink() override {
    if (F)
      std::fclose(F);
  }

  void append(const CellRecord &R) override {
    std::string Line = formatCellRecord(R, Format);
    std::fwrite(Line.data(), 1, Line.size(), F);
    Position += Line.size();
  }

  bool flush(std::string &Error) override {
    if (std::fflush(F) != 0) {
      Error = std::string("flush failed: ") + std::strerror(errno);
      return false;
    }
#ifndef _WIN32
    if (fsync(fileno(F)) != 0) {
      Error = std::string("fsync failed: ") + std::strerror(errno);
      return false;
    }
#endif
    Durable = Position;
    return true;
  }

  uint64_t durableOffset() const override { return Durable; }

private:
  std::FILE *F;
  SinkFormat Format;
  uint64_t Durable;
  uint64_t Position;
};

} // namespace

const char *ocelot::sinkFormatName(SinkFormat F) {
  return F == SinkFormat::Jsonl ? "jsonl" : "csv";
}

const char *ocelot::sinkFormatExtension(SinkFormat F) {
  return F == SinkFormat::Jsonl ? "jsonl" : "csv";
}

bool ocelot::parseSinkFormat(const std::string &Name, SinkFormat &F,
                             std::string &Error) {
  if (Name == "jsonl") {
    F = SinkFormat::Jsonl;
    return true;
  }
  if (Name == "csv") {
    F = SinkFormat::Csv;
    return true;
  }
  Error = "unknown result format '" + Name + "' (valid: jsonl, csv)";
  return false;
}

std::string ocelot::csvHeaderLine() {
  std::string H;
  for (size_t I = 0; I < NumFields; ++I) {
    if (I)
      H += ',';
    H += FieldNames[I];
  }
  H += '\n';
  return H;
}

std::string ocelot::formatCellRecord(const CellRecord &R, SinkFormat Format) {
  const SweepCellResult &C = R.Result;
  const IntermittentMetrics &M = C.Metrics;
  std::string L;
  if (Format == SinkFormat::Jsonl) {
    L += "{\"cell\": ";
    appendU64(L, R.Cell);
    L += ", \"model\": ";
    appendU64(L, C.Model);
    L += ", \"bench\": ";
    appendU64(L, C.Bench);
    L += ", \"energy\": ";
    appendU64(L, C.Energy);
    L += ", \"power\": ";
    appendU64(L, C.Power);
    L += ", \"scenario\": ";
    appendU64(L, C.Scenario);
    L += ", \"seed\": ";
    appendU64(L, C.Seed);
    L += ", \"completed_runs\": ";
    appendU64(L, M.CompletedRuns);
    L += ", \"violating_runs\": ";
    appendU64(L, M.ViolatingRuns);
    L += ", \"oracle_fresh_outputs\": ";
    appendU64(L, M.OracleFreshOutputs);
    L += ", \"oracle_stale_outputs\": ";
    appendU64(L, M.OracleStaleOutputs);
    L += ", \"oracle_cross_epoch_outputs\": ";
    appendU64(L, M.OracleCrossEpochOutputs);
    L += ", \"oracle_dirty_runs\": ";
    appendU64(L, M.OracleDirtyRuns);
    L += ", \"over_enforced_runs\": ";
    appendU64(L, M.OverEnforcedRuns);
    L += ", \"under_enforced_runs\": ";
    appendU64(L, M.UnderEnforcedRuns);
    L += ", \"on_cycles_per_run\": ";
    appendDouble(L, M.OnCyclesPerRun);
    L += ", \"off_cycles_per_run\": ";
    appendDouble(L, M.OffCyclesPerRun);
    L += ", \"reboots_per_run\": ";
    appendDouble(L, M.RebootsPerRun);
    L += ", \"starved\": ";
    L += M.Starved ? "true" : "false";
    L += ", \"trapped\": ";
    L += M.Trapped ? "true" : "false";
    L += ", \"trap\": ";
    appendJsonString(L, M.Trap);
    L += "}\n";
    return L;
  }
  appendU64(L, R.Cell);
  L += ',';
  appendU64(L, C.Model);
  L += ',';
  appendU64(L, C.Bench);
  L += ',';
  appendU64(L, C.Energy);
  L += ',';
  appendU64(L, C.Power);
  L += ',';
  appendU64(L, C.Scenario);
  L += ',';
  appendU64(L, C.Seed);
  L += ',';
  appendU64(L, M.CompletedRuns);
  L += ',';
  appendU64(L, M.ViolatingRuns);
  L += ',';
  appendU64(L, M.OracleFreshOutputs);
  L += ',';
  appendU64(L, M.OracleStaleOutputs);
  L += ',';
  appendU64(L, M.OracleCrossEpochOutputs);
  L += ',';
  appendU64(L, M.OracleDirtyRuns);
  L += ',';
  appendU64(L, M.OverEnforcedRuns);
  L += ',';
  appendU64(L, M.UnderEnforcedRuns);
  L += ',';
  appendDouble(L, M.OnCyclesPerRun);
  L += ',';
  appendDouble(L, M.OffCyclesPerRun);
  L += ',';
  appendDouble(L, M.RebootsPerRun);
  L += ',';
  L += M.Starved ? "1" : "0";
  L += ',';
  L += M.Trapped ? "1" : "0";
  L += ',';
  appendCsvField(L, M.Trap);
  L += '\n';
  return L;
}

std::unique_ptr<ResultSink> ocelot::openResultSink(const std::string &Path,
                                                   SinkFormat Format,
                                                   int64_t ResumeAtOffset,
                                                   std::string &Error) {
  if (ResumeAtOffset < 0) {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    if (!F) {
      Error = "cannot create " + Path + ": " + std::strerror(errno);
      return nullptr;
    }
    uint64_t Offset = 0;
    if (Format == SinkFormat::Csv) {
      std::string H = csvHeaderLine();
      std::fwrite(H.data(), 1, H.size(), F);
      Offset = H.size();
    }
    auto Sink = std::make_unique<FileSink>(F, Format, Offset);
    if (!Sink->flush(Error))
      return nullptr;
    return Sink;
  }

  // Resume: drop any torn tail past the manifest's durable offset, then
  // keep appending.
  std::FILE *F = std::fopen(Path.c_str(), "r+b");
  if (!F) {
    Error = "cannot reopen " + Path + " for resume: " + std::strerror(errno);
    return nullptr;
  }
#ifndef _WIN32
  if (ftruncate(fileno(F), static_cast<off_t>(ResumeAtOffset)) != 0) {
    Error = "cannot truncate " + Path + " to its durable offset: " +
            std::strerror(errno);
    std::fclose(F);
    return nullptr;
  }
#endif
  if (std::fseek(F, static_cast<long>(ResumeAtOffset), SEEK_SET) != 0) {
    Error = "cannot seek " + Path + ": " + std::strerror(errno);
    std::fclose(F);
    return nullptr;
  }
  return std::make_unique<FileSink>(F, Format,
                                    static_cast<uint64_t>(ResumeAtOffset));
}

// -- Readers ----------------------------------------------------------------

namespace {

/// Minimal scanner for the flat one-line JSON objects the sink emits.
/// Values are strings, unsigned/float numbers, or true/false — exactly
/// what formatCellRecord produces; anything else is a parse error.
class JsonLineScanner {
public:
  explicit JsonLineScanner(const std::string &S) : S(S) {}

  bool fail(const std::string &Why) {
    if (Err.empty())
      Err = Why;
    return false;
  }
  const std::string &error() const { return Err; }

  void skipWs() {
    while (I < S.size() && (S[I] == ' ' || S[I] == '\t'))
      ++I;
  }

  bool expect(char C) {
    skipWs();
    if (I >= S.size() || S[I] != C)
      return fail(std::string("expected '") + C + "'");
    ++I;
    return true;
  }

  bool atEnd() {
    skipWs();
    return I >= S.size();
  }

  bool peekIs(char C) {
    skipWs();
    return I < S.size() && S[I] == C;
  }

  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    Out.clear();
    while (I < S.size() && S[I] != '"') {
      char C = S[I++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (I >= S.size())
        return fail("unterminated escape");
      char E = S[I++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (I + 4 > S.size())
          return fail("truncated \\u escape");
        unsigned V = 0;
        for (int H = 0; H < 4; ++H) {
          char D = S[I++];
          V <<= 4;
          if (D >= '0' && D <= '9')
            V |= static_cast<unsigned>(D - '0');
          else if (D >= 'a' && D <= 'f')
            V |= static_cast<unsigned>(D - 'a' + 10);
          else if (D >= 'A' && D <= 'F')
            V |= static_cast<unsigned>(D - 'A' + 10);
          else
            return fail("bad \\u escape");
        }
        if (V > 0xff)
          return fail("non-latin1 \\u escape");
        Out += static_cast<char>(V);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
    if (I >= S.size())
      return fail("unterminated string");
    ++I; // Closing quote.
    return true;
  }

  /// The raw token of a number/true/false value.
  bool parseScalarToken(std::string &Out) {
    skipWs();
    size_t Start = I;
    while (I < S.size() && S[I] != ',' && S[I] != '}' && S[I] != ' ' &&
           S[I] != '\t')
      ++I;
    if (I == Start)
      return fail("expected a value");
    Out = S.substr(Start, I - Start);
    return true;
  }

private:
  const std::string &S;
  size_t I = 0;
  std::string Err;
};

bool parseU64(const std::string &Tok, uint64_t &Out) {
  if (Tok.empty() || Tok[0] == '-')
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Tok.c_str(), &End, 10);
  return End && *End == '\0' && errno == 0;
}

bool parseDouble(const std::string &Tok, double &Out) {
  if (Tok.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtod(Tok.c_str(), &End);
  if (!End || *End != '\0')
    return false;
  // Denormal underflow sets ERANGE but still yields the exact value %.17g
  // printed; only overflow (±HUGE_VAL) is a real failure.
  if (errno == ERANGE && (Out == HUGE_VAL || Out == -HUGE_VAL))
    return false;
  return true;
}

/// Assigns one parsed (key, raw-or-string value) pair into \p R. \p IsStr
/// says the value came from a JSON string / CSV field (so booleans in it
/// are the CSV 0/1 spelling).
bool assignField(CellRecord &R, const std::string &Key,
                 const std::string &Value, bool Csv, std::string &Why) {
  SweepCellResult &C = R.Result;
  IntermittentMetrics &M = C.Metrics;
  uint64_t U;
  double D;
  auto Size = [&](size_t &Field) {
    if (!parseU64(Value, U))
      return false;
    Field = static_cast<size_t>(U);
    return true;
  };
  auto Bool = [&](bool &Field) {
    if (Value == (Csv ? "1" : "true"))
      Field = true;
    else if (Value == (Csv ? "0" : "false"))
      Field = false;
    else
      return false;
    return true;
  };
  bool Ok;
  if (Key == "cell")
    Ok = Size(R.Cell);
  else if (Key == "model")
    Ok = Size(C.Model);
  else if (Key == "bench")
    Ok = Size(C.Bench);
  else if (Key == "energy")
    Ok = Size(C.Energy);
  else if (Key == "power")
    Ok = Size(C.Power);
  else if (Key == "scenario")
    Ok = Size(C.Scenario);
  else if (Key == "seed")
    Ok = Size(C.Seed);
  else if (Key == "completed_runs")
    Ok = parseU64(Value, M.CompletedRuns);
  else if (Key == "violating_runs")
    Ok = parseU64(Value, M.ViolatingRuns);
  else if (Key == "oracle_fresh_outputs")
    Ok = parseU64(Value, M.OracleFreshOutputs);
  else if (Key == "oracle_stale_outputs")
    Ok = parseU64(Value, M.OracleStaleOutputs);
  else if (Key == "oracle_cross_epoch_outputs")
    Ok = parseU64(Value, M.OracleCrossEpochOutputs);
  else if (Key == "oracle_dirty_runs")
    Ok = parseU64(Value, M.OracleDirtyRuns);
  else if (Key == "over_enforced_runs")
    Ok = parseU64(Value, M.OverEnforcedRuns);
  else if (Key == "under_enforced_runs")
    Ok = parseU64(Value, M.UnderEnforcedRuns);
  else if (Key == "on_cycles_per_run")
    Ok = parseDouble(Value, D), M.OnCyclesPerRun = D;
  else if (Key == "off_cycles_per_run")
    Ok = parseDouble(Value, D), M.OffCyclesPerRun = D;
  else if (Key == "reboots_per_run")
    Ok = parseDouble(Value, D), M.RebootsPerRun = D;
  else if (Key == "starved")
    Ok = Bool(M.Starved);
  else if (Key == "trapped")
    Ok = Bool(M.Trapped);
  else if (Key == "trap") {
    M.Trap = Value;
    Ok = true;
  } else {
    Why = "unknown field '" + Key + "'";
    return false;
  }
  if (!Ok) {
    Why = "bad value '" + Value + "' for field '" + Key + "'";
    return false;
  }
  return true;
}

bool parseJsonlLine(const std::string &Line, CellRecord &R,
                    std::string &Why) {
  JsonLineScanner Sc(Line);
  if (!Sc.expect('{'))
    return (Why = Sc.error(), false);
  size_t Seen = 0;
  bool SeenField[NumFields] = {};
  while (!Sc.peekIs('}')) {
    if (Seen && !Sc.expect(','))
      return (Why = Sc.error(), false);
    std::string Key, Value;
    if (!Sc.parseString(Key) || !Sc.expect(':'))
      return (Why = Sc.error(), false);
    if (Key == "trap") {
      if (!Sc.parseString(Value))
        return (Why = Sc.error(), false);
    } else if (!Sc.parseScalarToken(Value)) {
      return (Why = Sc.error(), false);
    }
    if (!assignField(R, Key, Value, /*Csv=*/false, Why))
      return false;
    for (size_t F = 0; F < NumFields; ++F)
      if (Key == FieldNames[F]) {
        if (SeenField[F])
          return (Why = "duplicate field '" + Key + "'", false);
        SeenField[F] = true;
      }
    ++Seen;
  }
  if (!Sc.expect('}') || !Sc.atEnd())
    return (Why = "trailing characters after the record", false);
  if (Seen != NumFields)
    return (Why = "record is missing fields", false);
  return true;
}

bool splitCsvLine(const std::string &Line, std::vector<std::string> &Fields,
                  std::string &Why) {
  Fields.clear();
  std::string Cur;
  bool InQuotes = false;
  for (size_t I = 0; I < Line.size(); ++I) {
    char C = Line[I];
    if (InQuotes) {
      if (C == '"') {
        if (I + 1 < Line.size() && Line[I + 1] == '"') {
          Cur += '"';
          ++I;
        } else {
          InQuotes = false;
        }
      } else {
        Cur += C;
      }
    } else if (C == '"' && Cur.empty()) {
      InQuotes = true;
    } else if (C == ',') {
      Fields.push_back(Cur);
      Cur.clear();
    } else {
      Cur += C;
    }
  }
  if (InQuotes) {
    Why = "unterminated quoted field";
    return false;
  }
  Fields.push_back(Cur);
  return true;
}

bool parseCsvLine(const std::string &Line, CellRecord &R, std::string &Why) {
  std::vector<std::string> Fields;
  if (!splitCsvLine(Line, Fields, Why))
    return false;
  if (Fields.size() != NumFields) {
    Why = "expected " + std::to_string(NumFields) + " fields, got " +
          std::to_string(Fields.size());
    return false;
  }
  for (size_t F = 0; F < NumFields; ++F)
    if (!assignField(R, FieldNames[F], Fields[F], /*Csv=*/true, Why))
      return false;
  return true;
}

} // namespace

bool ocelot::readResultFile(const std::string &Path, SinkFormat Format,
                            std::vector<CellRecord> &Out,
                            std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open " + Path + ": " + std::strerror(errno);
    return false;
  }
  Out.clear();
  std::string Line;
  size_t LineNo = 0;
  bool SawHeader = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Format == SinkFormat::Csv && !SawHeader) {
      SawHeader = true;
      std::string Want = csvHeaderLine();
      Want.pop_back(); // getline strips the newline.
      if (Line != Want) {
        Error = Path + ":1: bad CSV header (not a fleet result file?)";
        return false;
      }
      continue;
    }
    if (Line.empty())
      continue;
    // A quoted CSV field may legally contain a newline; keep pulling
    // continuation lines until the quotes balance.
    if (Format == SinkFormat::Csv) {
      std::vector<std::string> Probe;
      std::string QuoteWhy, More;
      while (!splitCsvLine(Line, Probe, QuoteWhy) && std::getline(In, More)) {
        ++LineNo;
        Line += '\n';
        Line += More;
      }
    }
    CellRecord R;
    std::string Why;
    bool Ok = Format == SinkFormat::Jsonl ? parseJsonlLine(Line, R, Why)
                                          : parseCsvLine(Line, R, Why);
    if (!Ok) {
      Error = Path + ":" + std::to_string(LineNo) + ": " + Why;
      return false;
    }
    Out.push_back(std::move(R));
  }
  if (Format == SinkFormat::Csv && !SawHeader) {
    Error = Path + ": empty file (missing CSV header)";
    return false;
  }
  return true;
}
