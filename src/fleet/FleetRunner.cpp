//===- FleetRunner.cpp - Sharded, streaming, resumable sweeps --------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fleet/FleetRunner.h"

#include "fleet/ShardProgress.h"
#include "harness/Experiment.h"
#include "runtime/ArenaPool.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

using namespace ocelot;

namespace {

std::string shardStem(const std::string &OutDir, unsigned Shard,
                      unsigned Count) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "/shard-%u-of-%u", Shard, Count);
  return OutDir + Buf;
}

/// Evaluates flat cell \p I of \p Spec against its precompiled artifact.
SweepCellResult evaluateCell(const SweepSpec &Spec, size_t I,
                             const CompiledBenchmark &CB,
                             const std::shared_ptr<ArenaPool> &Arena) {
  SweepCellResult R;
  SweepSpec::CellCoords C = Spec.cellAt(I);
  R.Model = C.Model;
  R.Bench = C.Bench;
  R.Energy = C.Energy;
  R.Power = C.Power;
  R.Scenario = C.Scenario;
  R.Seed = C.Seed;
  R.Metrics = measureIntermittent(
      CB, *Spec.Benchmarks[R.Bench], Spec.Energies[R.Energy], Spec.TauBudget,
      Spec.Seeds[R.Seed], Spec.Monitors,
      Spec.Powers.empty() ? nullptr : Spec.Powers[R.Power],
      Spec.Scenarios.empty() ? nullptr : Spec.Scenarios[R.Scenario], Arena);
  return R;
}

/// The (model, benchmark) pair index of flat cell \p I — monotone in I,
/// so a contiguous cell range needs a contiguous pair range.
size_t pairOf(const SweepSpec &Spec, size_t I) {
  SweepSpec::CellCoords C = Spec.cellAt(I);
  return C.Model * Spec.Benchmarks.size() + C.Bench;
}

} // namespace

std::string ocelot::shardResultPath(const ShardRunOptions &Opts) {
  return shardStem(Opts.OutDir, Opts.Shard, Opts.ShardCount) + "." +
         sinkFormatExtension(Opts.Format);
}

std::string ocelot::shardManifestPath(const ShardRunOptions &Opts) {
  return shardStem(Opts.OutDir, Opts.Shard, Opts.ShardCount) + ".manifest";
}

bool ocelot::runShard(const FleetSpec &Fleet, const ShardRunOptions &Opts,
                      ShardOutcome &Outcome, std::string &Error) {
  SweepSpec Spec;
  if (!Fleet.resolve(Spec, Error))
    return false;
  if (Opts.ShardCount == 0 || Opts.Shard >= Opts.ShardCount) {
    Error = "shard index out of range";
    return false;
  }
  const uint64_t SpecHash = Fleet.hash();
  const ShardPlan Plan(Spec.cellCount(), Opts.ShardCount);
  const ShardRange Range = Plan.range(Opts.Shard);
  const std::string ResultPath = shardResultPath(Opts);
  const std::string ManifestPath = shardManifestPath(Opts);

  // Fresh start or resume? The manifest decides; its spec hash guards
  // against resuming under a silently different grid.
  ShardManifest M;
  int64_t ResumeOffset = -1;
  if (fileExists(ManifestPath)) {
    if (!loadShardManifest(ManifestPath, M, Error))
      return false;
    if (M.SpecHash != SpecHash) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "%016" PRIx64 ", this invocation describes %016" PRIx64,
                    M.SpecHash, SpecHash);
      Error = ManifestPath + " was written for a different sweep (spec hash " +
              Buf +
              "); re-run with the original grid flags, or delete the shard's "
              "manifest and result file to restart under the new grid";
      return false;
    }
    if (M.Shard != Opts.Shard || M.ShardCount != Opts.ShardCount ||
        M.CellsBegin != Range.Begin || M.CellsEnd != Range.End ||
        M.Format != Opts.Format) {
      Error = ManifestPath + " does not match --shard=" +
              std::to_string(Opts.Shard) + "/" +
              std::to_string(Opts.ShardCount) + " --format=" +
              sinkFormatName(Opts.Format) +
              " (wrong shard spec for this output directory?)";
      return false;
    }
    if (!fileExists(ResultPath)) {
      Error = ManifestPath + " exists but " + ResultPath +
              " is missing; delete the manifest to restart the shard";
      return false;
    }
    ResumeOffset = static_cast<int64_t>(M.SinkOffset);
  } else {
    M.SpecHash = SpecHash;
    M.Shard = Opts.Shard;
    M.ShardCount = Opts.ShardCount;
    M.Format = Opts.Format;
    M.CellsBegin = Range.Begin;
    M.CellsNext = Range.Begin;
    M.CellsEnd = Range.End;
  }

  auto Sink = openResultSink(ResultPath, Opts.Format, ResumeOffset, Error);
  if (!Sink)
    return false;
  if (ResumeOffset < 0) {
    // Record the (header-only) file before evaluating anything, so even a
    // crash during the first cell resumes cleanly.
    M.SinkOffset = Sink->durableOffset();
    if (!writeShardManifest(ManifestPath, M, Error))
      return false;
  }

  const size_t Start = M.CellsNext;
  const size_t End =
      Opts.MaxCells ? std::min(Range.End, Start + Opts.MaxCells) : Range.End;
  const size_t Todo = End - Start;
  if (!Opts.Quiet)
    std::fprintf(stderr,
                 "[fleet: shard %u/%u cells [%zu, %zu) — running %zu of %zu "
                 "on %u worker(s)]\n",
                 Opts.Shard, Opts.ShardCount, Range.Begin, Range.End, Todo,
                 Range.size(), Opts.Workers);

  // Compile the shard's (model, benchmark) pairs up front — a contiguous
  // cell range touches a contiguous pair range. compileBenchmark goes
  // through the process-wide artifact cache, so across resumes and
  // co-located shards each distinct pair compiles exactly once.
  std::vector<CompiledBenchmark> Artifacts;
  size_t PairBase = 0;
  if (Todo) {
    PairBase = pairOf(Spec, Start);
    size_t PairLast = pairOf(Spec, End - 1);
    Artifacts.resize(PairLast - PairBase + 1);
    for (size_t P = PairBase; P <= PairLast; ++P)
      Artifacts[P - PairBase] =
          compileBenchmark(*Spec.Benchmarks[P % Spec.Benchmarks.size()],
                           Spec.Models[P / Spec.Benchmarks.size()]);
  }
  auto Arena = std::make_shared<ArenaPool>();
  auto ArtifactFor = [&](size_t Cell) -> const CompiledBenchmark & {
    return Artifacts[pairOf(Spec, Cell) - PairBase];
  };

  // Progress: throttled heartbeats to the advisory `.progress` sidecar
  // (what `ocelot-fleet status` renders) plus a periodic stderr line.
  // Both run on the writer thread only, observe wall time only, and never
  // touch result bytes — a traced, timed, or silent shard emits the same
  // result file byte for byte.
  ProgressWriter Progress(shardProgressPath(Opts));
  const auto WallStart = std::chrono::steady_clock::now();
  auto LastLine = WallStart;
  size_t DoneThisRun = 0;
  auto snapshotProgress = [&]() {
    auto Now = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(Now - WallStart).count();
    ShardProgress P;
    P.Shard = Opts.Shard;
    P.ShardCount = Opts.ShardCount;
    P.CellsBegin = Range.Begin;
    P.CellsEnd = Range.End;
    P.CellsDone = M.CellsNext - Range.Begin;
    P.CellsPerSec = Sec > 0 ? static_cast<double>(DoneThisRun) / Sec : 0;
    P.EtaSec = P.CellsPerSec > 0 ? static_cast<double>(Range.End -
                                                       M.CellsNext) /
                                       P.CellsPerSec
                                 : 0;
    P.WallMs = static_cast<uint64_t>(Sec * 1000.0);
    return P;
  };
  auto reportProgress = [&](bool Final) {
    ShardProgress P = snapshotProgress();
    Progress.heartbeat(P, Final);
    if (Opts.Quiet)
      return;
    auto Now = std::chrono::steady_clock::now();
    if (!Final && Now - LastLine < std::chrono::seconds(1))
      return;
    LastLine = Now;
    std::fprintf(stderr,
                 "[fleet: shard %u/%u %zu/%zu cells (%.1f%%) %.1f cells/s "
                 "eta %.0fs]\n",
                 P.Shard, P.ShardCount, P.CellsDone,
                 P.CellsEnd - P.CellsBegin,
                 P.CellsEnd > P.CellsBegin
                     ? 100.0 * static_cast<double>(P.CellsDone) /
                           static_cast<double>(P.CellsEnd - P.CellsBegin)
                     : 100.0,
                 P.CellsPerSec, P.EtaSec);
  };
  // First heartbeat before any cell: an in-flight shard is visible to
  // `status` the moment it starts (and a resumed shard re-announces its
  // position).
  Progress.heartbeat(snapshotProgress(), /*Force=*/true);

  // Emit cells strictly in order, checkpointing sink-then-manifest so the
  // manifest never points past durable bytes.
  size_t SinceCheckpoint = 0;
  auto Emit = [&](size_t Cell, const SweepCellResult &R,
                  std::string &Err) -> bool {
    Sink->append({Cell, R});
    M.CellsNext = Cell + 1;
    ++SinceCheckpoint;
    ++DoneThisRun;
    if (SinceCheckpoint >= std::max<size_t>(Opts.CheckpointEvery, 1) ||
        M.CellsNext == End) {
      if (!Sink->flush(Err))
        return false;
      M.SinkOffset = Sink->durableOffset();
      if (!writeShardManifest(ManifestPath, M, Err))
        return false;
      SinceCheckpoint = 0;
    }
    reportProgress(/*Final=*/M.CellsNext == End);
    return true;
  };

  bool Ok = true;
  if (Opts.Workers <= 1) {
    for (size_t I = Start; I < End && Ok; ++I)
      Ok = Emit(I, evaluateCell(Spec, I, ArtifactFor(I), Arena), Error);
  } else {
    // Bounded reorder window: workers claim cells atomically and park
    // results; the writer (this thread) drains them in order. Workers
    // stall once they run more than `Window` cells ahead of the writer,
    // so memory stays O(workers), not O(shard).
    const size_t Window = std::max<size_t>(4 * Opts.Workers, 16);
    std::mutex Mu;
    std::condition_variable RoomCv, ReadyCv;
    std::map<size_t, SweepCellResult> Parked;
    std::atomic<size_t> NextClaim{Start};
    size_t NextWrite = Start;
    bool Failed = false;

    auto Worker = [&] {
      for (size_t I = NextClaim.fetch_add(1); I < End;
           I = NextClaim.fetch_add(1)) {
        {
          std::unique_lock<std::mutex> Lk(Mu);
          RoomCv.wait(Lk, [&] { return Failed || I < NextWrite + Window; });
          if (Failed)
            return;
        }
        SweepCellResult R = evaluateCell(Spec, I, ArtifactFor(I), Arena);
        std::lock_guard<std::mutex> Lk(Mu);
        Parked.emplace(I, std::move(R));
        ReadyCv.notify_all();
      }
    };
    std::vector<std::thread> Pool;
    unsigned NThreads =
        static_cast<unsigned>(std::min<size_t>(Opts.Workers, Todo));
    Pool.reserve(NThreads);
    for (unsigned T = 0; T < NThreads; ++T)
      Pool.emplace_back(Worker);

    while (NextWrite < End) {
      SweepCellResult R;
      {
        std::unique_lock<std::mutex> Lk(Mu);
        ReadyCv.wait(Lk, [&] { return Parked.count(NextWrite) != 0; });
        R = std::move(Parked.begin()->second);
        Parked.erase(Parked.begin());
      }
      if (!Emit(NextWrite, R, Error)) {
        std::lock_guard<std::mutex> Lk(Mu);
        Failed = Ok = false;
        RoomCv.notify_all();
        break;
      }
      ++NextWrite;
      RoomCv.notify_all();
    }
    for (std::thread &Th : Pool)
      Th.join();
  }
  if (!Ok)
    return false;

  Outcome = End == Range.End ? ShardOutcome::Complete
                             : ShardOutcome::Interrupted;
  if (!Opts.Quiet && Outcome == ShardOutcome::Interrupted)
    std::fprintf(stderr,
                 "[fleet: shard %u/%u interrupted at cell %zu of [%zu, %zu); "
                 "re-run the same command to resume]\n",
                 Opts.Shard, Opts.ShardCount, End, Range.Begin, Range.End);
  return true;
}

bool ocelot::mergeShards(const FleetSpec &Fleet, const MergeOptions &Opts,
                         MergeSummary &Summary, std::string &Error) {
  SweepSpec Spec;
  if (!Fleet.resolve(Spec, Error))
    return false;
  const uint64_t SpecHash = Fleet.hash();
  const ShardPlan Plan(Spec.cellCount(), Opts.ShardCount);

  std::string MergedPath =
      Opts.MergedPath.empty()
          ? Opts.OutDir + "/merged." + sinkFormatExtension(Opts.Format)
          : Opts.MergedPath;
  auto Out = openResultSink(MergedPath, Opts.Format, -1, Error);
  if (!Out)
    return false;

  Summary = MergeSummary();
  for (unsigned S = 0; S < Opts.ShardCount; ++S) {
    ShardRunOptions ShardOpts;
    ShardOpts.OutDir = Opts.OutDir;
    ShardOpts.Shard = S;
    ShardOpts.ShardCount = Opts.ShardCount;
    ShardOpts.Format = Opts.Format;
    const std::string ManifestPath = shardManifestPath(ShardOpts);
    const std::string ResultPath = shardResultPath(ShardOpts);
    const ShardRange Range = Plan.range(S);

    ShardManifest M;
    if (!loadShardManifest(ManifestPath, M, Error))
      return false;
    if (M.SpecHash != SpecHash) {
      Error = ManifestPath + " belongs to a different sweep (spec hash "
              "mismatch); merge with the same grid flags its shards ran with";
      return false;
    }
    if (M.Shard != S || M.ShardCount != Opts.ShardCount ||
        M.CellsBegin != Range.Begin || M.CellsEnd != Range.End ||
        M.Format != Opts.Format) {
      Error = ManifestPath + " does not match shard " + std::to_string(S) +
              "/" + std::to_string(Opts.ShardCount) + " of this plan";
      return false;
    }
    if (!M.complete()) {
      Error = "shard " + std::to_string(S) + "/" +
              std::to_string(Opts.ShardCount) + " is incomplete (" +
              std::to_string(M.CellsNext - M.CellsBegin) + " of " +
              std::to_string(Range.size()) +
              " cells done); resume it first:\n  ocelot-fleet run --shard=" +
              std::to_string(S) + "/" + std::to_string(Opts.ShardCount) +
              " --out=" + Opts.OutDir + " <same grid flags>";
      return false;
    }

    std::vector<CellRecord> Records;
    if (!readResultFile(ResultPath, Opts.Format, Records, Error))
      return false;
    if (Records.size() != Range.size()) {
      Error = ResultPath + " holds " + std::to_string(Records.size()) +
              " records but the plan assigns " +
              std::to_string(Range.size()) +
              " cells; the shard file is stale or truncated — delete it and "
              "its manifest, then re-run the shard";
      return false;
    }
    for (size_t I = 0; I < Records.size(); ++I) {
      const CellRecord &R = Records[I];
      if (R.Cell != Range.Begin + I) {
        Error = ResultPath + ": record " + std::to_string(I) +
                " covers cell " + std::to_string(R.Cell) + ", expected " +
                std::to_string(Range.Begin + I);
        return false;
      }
      Out->append(R);
      ++Summary.Cells;
      Summary.CompletedRuns += R.Result.Metrics.CompletedRuns;
      Summary.ViolatingRuns += R.Result.Metrics.ViolatingRuns;
      Summary.StarvedCells += R.Result.Metrics.Starved ? 1 : 0;
      Summary.TrappedCells += R.Result.Metrics.Trapped ? 1 : 0;
    }
  }
  return Out->flush(Error);
}
