//===- CorrelatedScenarios.h - Shared-latent multi-channel worlds -*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correlated multi-sensor worlds for the fusion benchmarks: one seeded
/// latent process (the "environment") drives every channel, and each
/// channel observes it through its own lag, gain, offset and quantization
/// noise — the timestamped-primary / delayed-secondary shape of real
/// sensor-fusion stacks, where secondaries are time-aligned against a
/// primary channel.
///
/// Because all channels are pure functions of one latent signal, two reads
/// taken at the same τ agree up to per-channel noise, while reads split by
/// a long power-off straddle a latent transition — which is exactly the
/// hazard the input-epoch consistency oracle (FusionOracle.h) scores and
/// the table7 sweep measures per ExecModel.
///
/// The presets registered by `registerFusionScenarios` (called once from
/// `SensorScenarioRegistry::global()`):
///
///   fusion-calm      slow latent square, short lags, tiny jitter
///   fusion-lagged    moderate latent, secondaries trail by long lags
///   fusion-volatile  fast-moving latent noise, moderate jitter
///   fusion-storm     violent fast latent, long lags and heavy jitter
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FUSION_CORRELATEDSCENARIOS_H
#define OCELOT_FUSION_CORRELATEDSCENARIOS_H

#include "sensors/SensorScenario.h"

#include <cstdint>
#include <memory>

namespace ocelot {

class SensorScenarioRegistry;

/// Recipe for a correlated multi-channel scenario. Channel i observes the
/// latent process as
///
///   sample_i(τ) = jitter_i( latent(τ - i·LagStep) + i·OffsetStep )
///
/// with per-channel jitter seeded from (Seed, i). Channel 0 is the
/// primary (no lag, no offset).
struct CorrelatedSpec {
  SensorChannelPtr Latent;     ///< Required shared process.
  int NumChannels = 3;         ///< Derived channels (ids 0..N-1).
  uint64_t LagStep = 0;        ///< Per-channel observation lag (τ units).
  int64_t OffsetStep = 0;      ///< Per-channel calibration offset.
  int64_t JitterAmplitude = 0; ///< Per-read quantization noise (± units).
  uint64_t Seed = 1;           ///< Seeds the per-channel jitter.
};

/// Builds the scenario described by \p Spec. A null Latent yields the
/// default scenario (every channel unconfigured).
std::shared_ptr<const SensorScenario>
correlatedScenario(const CorrelatedSpec &Spec);

/// Registers the four fusion presets above into \p Reg. Called by
/// `SensorScenarioRegistry::global()` during pre-population, so the
/// presets are visible to `ocelotc --sensors=`, `ocelot-fleet` and every
/// sweep the moment the process starts.
void registerFusionScenarios(SensorScenarioRegistry &Reg);

} // namespace ocelot

#endif // OCELOT_FUSION_CORRELATEDSCENARIOS_H
