//===- CorrelatedScenarios.cpp - Shared-latent multi-channel worlds -------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fusion/CorrelatedScenarios.h"

#include "sensors/SensorScenarios.h"

using namespace ocelot;

std::shared_ptr<const SensorScenario>
ocelot::correlatedScenario(const CorrelatedSpec &Spec) {
  SensorScenario::Builder B;
  if (!Spec.Latent)
    return B.build();
  for (int I = 0; I < Spec.NumChannels; ++I) {
    uint64_t UI = static_cast<uint64_t>(I);
    SensorChannelPtr C =
        delayChannel(Spec.Latent, Spec.LagStep * UI);
    if (Spec.OffsetStep != 0)
      C = offsetChannel(std::move(C), Spec.OffsetStep * I);
    C = jitterChannel(std::move(C), Spec.JitterAmplitude,
                      Spec.Seed * 0x9e3779b97f4a7c15ULL + UI);
    B.channel(I, std::move(C));
  }
  return B.build();
}

void ocelot::registerFusionScenarios(SensorScenarioRegistry &Reg) {
  Reg.registerScenario(
      "fusion-calm",
      "correlated latent: slow square, short lags, tiny jitter", [] {
        CorrelatedSpec S;
        S.Latent = mixChannel(squareChannel(300, 400, 6000),
                              noiseChannel(0, 120, 1200, 0xF10D), 0.75);
        S.NumChannels = 4;
        S.LagStep = 40;
        S.OffsetStep = 5;
        S.JitterAmplitude = 3;
        S.Seed = 0xF10E;
        return correlatedScenario(S);
      });
  Reg.registerScenario(
      "fusion-lagged",
      "correlated latent: secondaries trail the primary by long lags", [] {
        CorrelatedSpec S;
        S.Latent = mixChannel(squareChannel(250, 500, 3500),
                              noiseChannel(0, 160, 700, 0xF20D), 0.7);
        S.NumChannels = 4;
        S.LagStep = 600;
        S.OffsetStep = 10;
        S.JitterAmplitude = 6;
        S.Seed = 0xF20E;
        return correlatedScenario(S);
      });
  Reg.registerScenario(
      "fusion-volatile",
      "correlated latent: fast-moving noise, moderate jitter", [] {
        CorrelatedSpec S;
        S.Latent = noiseChannel(200, 600, 250, 0xF30D);
        S.NumChannels = 4;
        S.LagStep = 80;
        S.OffsetStep = 0;
        S.JitterAmplitude = 12;
        S.Seed = 0xF30E;
        return correlatedScenario(S);
      });
  Reg.registerScenario(
      "fusion-storm",
      "correlated latent: violent fast swings, long lags, heavy jitter",
      [] {
        CorrelatedSpec S;
        S.Latent = mixChannel(squareChannel(150, 700, 900),
                              noiseChannel(0, 300, 120, 0xF40D), 0.6);
        S.NumChannels = 4;
        S.LagStep = 400;
        S.OffsetStep = 15;
        S.JitterAmplitude = 25;
        S.Seed = 0xF40E;
        return correlatedScenario(S);
      });
}
