//===- FusionOracle.cpp - Input-epoch consistency ground truth ------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fusion/FusionOracle.h"

#include <algorithm>
#include <tuple>

using namespace ocelot;

const char *ocelot::oracleVerdictName(OracleVerdict V) {
  switch (V) {
  case OracleVerdict::Fresh:
    return "fresh";
  case OracleVerdict::Stale:
    return "stale";
  case OracleVerdict::CrossEpoch:
    return "cross-epoch";
  }
  return "?";
}

OracleVerdict ocelot::classifyOracleInputs(std::vector<InputEvent> &Inputs,
                                           uint64_t EmitEpoch) {
  auto Key = [](const InputEvent &E) {
    return std::make_tuple(E.Sensor, E.Tau, E.Epoch, E.Value);
  };
  std::sort(Inputs.begin(), Inputs.end(),
            [&](const InputEvent &A, const InputEvent &B) {
              return Key(A) < Key(B);
            });
  Inputs.erase(std::unique(Inputs.begin(), Inputs.end()), Inputs.end());

  bool Stale = false;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    if (I > 0 && Inputs[I].Epoch != Inputs[I - 1].Epoch)
      return OracleVerdict::CrossEpoch;
    if (Inputs[I].Epoch < EmitEpoch)
      Stale = true;
  }
  return Stale ? OracleVerdict::Stale : OracleVerdict::Fresh;
}
