//===- FusionOracle.h - Input-epoch consistency ground truth ----*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input-epoch consistency oracle: ground truth about cross-channel
/// input fusion, independent of any ExecModel's enforcement machinery.
///
/// When `RunConfig::Oracle` is set, every committed output is tagged with
/// the canonical set of input events (sensor, tau, reboot epoch, value)
/// that flowed into its arguments — the same dynamic taint the formal
/// monitors consume — and classified:
///
///   * CrossEpoch — the fused inputs span two or more reboot epochs: a
///     power failure separated the reads that were combined into one
///     observable output. This is the paper's temporal-consistency hazard
///     (Definition 3) measured at the *output*, where it matters, rather
///     than at an annotation site.
///   * Stale      — all inputs share one epoch, but it is an earlier epoch
///     than the one the output was emitted in: the value crossed a power
///     failure between collection and emission (Definition 2's freshness
///     hazard, again measured at the output).
///   * Fresh      — every input was collected in the emission epoch (or
///     the output depends on no inputs at all).
///
/// The oracle sees *committed* outputs only: work rolled back by an
/// aborted atomic region never produced an observable output, so it is
/// not scored. Because classification is a pure function of the taint
/// sets that all three engines already compute identically, oracle
/// verdicts are byte-identical across tree / flat / threaded dispatch
/// and with superinstruction fusion on or off.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FUSION_FUSIONORACLE_H
#define OCELOT_FUSION_FUSIONORACLE_H

#include "runtime/Value.h"

#include <cstdint>
#include <vector>

namespace ocelot {

/// Oracle classification of one committed output.
enum class OracleVerdict : uint8_t {
  Fresh = 0,      ///< All fused inputs collected in the emission epoch.
  Stale = 1,      ///< One epoch, but earlier than the emission epoch.
  CrossEpoch = 2, ///< Fused inputs span two or more reboot epochs.
};

const char *oracleVerdictName(OracleVerdict V);

/// One committed output, scored. `Inputs` is canonical: sorted by
/// (Sensor, Tau, Epoch, Value) and deduplicated, so records compare
/// bitwise across engines regardless of evaluation order.
struct OracleRecord {
  OutputKind Kind = OutputKind::Log;
  uint64_t Tau = 0;   ///< Logical time of emission.
  uint64_t Epoch = 0; ///< Reboot epoch of emission (== commit epoch).
  std::vector<InputEvent> Inputs;
  OracleVerdict Verdict = OracleVerdict::Fresh;

  bool operator==(const OracleRecord &O) const {
    return Kind == O.Kind && Tau == O.Tau && Epoch == O.Epoch &&
           Inputs == O.Inputs && Verdict == O.Verdict;
  }
};

/// Canonicalizes \p Inputs in place (sort + dedup) and classifies them
/// against the emission epoch. The canonical order makes the record
/// independent of argument evaluation order and taint-merge order.
OracleVerdict classifyOracleInputs(std::vector<InputEvent> &Inputs,
                                   uint64_t EmitEpoch);

} // namespace ocelot

#endif // OCELOT_FUSION_FUSIONORACLE_H
