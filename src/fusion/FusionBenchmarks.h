//===- FusionBenchmarks.h - Cross-channel fusion workloads ------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fusion workloads for the table7 over/under-enforcement sweep — the
/// first benchmarks in the suite whose observable outputs *fuse* several
/// channels, so cross-epoch inconsistency can actually reach an output:
///
///   ekf_fusion    EKF-style correction: a primary estimate corrected by
///                 a delayed secondary; both outputs (estimate + drift)
///                 fuse the pair. Con on the pair.
///   alarm_voting  2-of-3 majority vote over three channels; the alarm
///                 output fuses all three, the heartbeat log is untainted
///                 (so monitor-flagged runs whose alarm branch is not
///                 taken are oracle-clean — measurable over-enforcement).
///
/// These are deliberately *not* part of `allBenchmarks()`: the six paper
/// benchmarks and every default table stay byte-identical. They are
/// reachable through `findBenchmark` (so `ocelot-fleet` and `ocelotc`
/// accept them by name) and swept by `bench/table7_fusion`.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FUSION_FUSIONBENCHMARKS_H
#define OCELOT_FUSION_FUSIONBENCHMARKS_H

#include "apps/Benchmarks.h"

namespace ocelot {

/// The fusion benchmarks, in table7 presentation order.
const std::vector<BenchmarkDef> &fusionBenchmarks();

} // namespace ocelot

#endif // OCELOT_FUSION_FUSIONBENCHMARKS_H
