//===- FusionBenchmarks.cpp - Cross-channel fusion workloads --------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fusion/FusionBenchmarks.h"

using namespace ocelot;

// -- EKF fusion ---------------------------------------------------------------
// A primary estimate corrected by a delayed secondary, CommRaT-style: both
// observable outputs (the corrected estimate and the drift packet) fuse
// the pair, so a power failure between the two reads puts inputs from two
// reboot epochs into one output — the cross-epoch hazard the oracle
// scores. The smoothing loop between the outputs widens the window in
// which a JIT checkpoint can strand the committed reads in an old epoch.

static const char *EkfFusionAnnotated = R"(
// EKF-style fusion: a primary estimate corrected by a delayed secondary.
io primary, secondary;

static steps = 0;

fn correct(p: int, s: int) -> int {
  return (p * 3 + s) / 4;
}

fn main() {
  let consistent(1) p = primary();
  let consistent(1) s = secondary();
  let est = correct(p, s);
  let mut innov = p - s;
  if innov < 0 {
    innov = 0 - innov;
  }
  log(est, innov);
  let mut gain = 0;
  for i in 0..8 {
    gain = gain + (est - gain) / 2;
  }
  send(gain);
  steps += 1;
}
)";

static const char *EkfFusionAtomics = R"(
// EKF-style fusion, manually regioned.
io primary, secondary;

static steps = 0;

fn correct(p: int, s: int) -> int {
  return (p * 3 + s) / 4;
}

fn main() {
  let mut p = 0;
  let mut s = 0;
  atomic {
    p = primary();
    Consistent(p, 1);
    s = secondary();
    Consistent(s, 1);
  }
  let est = correct(p, s);
  let mut innov = p - s;
  if innov < 0 {
    innov = 0 - innov;
  }
  atomic {
    log(est, innov);
  }
  let mut gain = 0;
  for i in 0..8 {
    gain = gain + (est - gain) / 2;
  }
  atomic {
    send(gain);
    steps += 1;
  }
}
)";

// -- Alarm voting -------------------------------------------------------------
// 2-of-3 majority vote over three correlated channels. The alarm output
// fuses all three reads; the heartbeat log carries only an untainted
// counter. A run where the monitors flag the read cluster but the vote
// falls short therefore commits only oracle-clean outputs — the
// over-enforcement case table7 measures.

static const char *AlarmVotingAnnotated = R"(
// 2-of-3 majority alarm over three correlated channels.
io gas, smoke, heat;

static checks = 0;
static alarms = 0;

fn vote(v: int, cut: int) -> int {
  if v > cut {
    return 1;
  }
  return 0;
}

fn main() {
  let consistent(1) g = gas();
  let consistent(1) s = smoke();
  let consistent(1) h = heat();
  let votes = vote(g, 480) + vote(s, 480) + vote(h, 500);
  let mut level = g + s;
  for i in 0..6 {
    level = level + (h - level) / 3;
  }
  if votes >= 2 {
    alarm(level, votes);
    alarms += 1;
  }
  log(checks);
  checks += 1;
}
)";

static const char *AlarmVotingAtomics = R"(
// 2-of-3 majority alarm, manually regioned.
io gas, smoke, heat;

static checks = 0;
static alarms = 0;

fn vote(v: int, cut: int) -> int {
  if v > cut {
    return 1;
  }
  return 0;
}

fn main() {
  let mut g = 0;
  let mut s = 0;
  let mut h = 0;
  atomic {
    g = gas();
    Consistent(g, 1);
    s = smoke();
    Consistent(s, 1);
    h = heat();
    Consistent(h, 1);
  }
  let votes = vote(g, 480) + vote(s, 480) + vote(h, 500);
  let mut level = g + s;
  for i in 0..6 {
    level = level + (h - level) / 3;
  }
  atomic {
    if votes >= 2 {
      alarm(level, votes);
      alarms += 1;
    }
    log(checks);
    checks += 1;
  }
}
)";

const std::vector<BenchmarkDef> &ocelot::fusionBenchmarks() {
  static const std::vector<BenchmarkDef> Benchmarks = {
      {"ekf_fusion",
       "CommRaT",
       EkfFusionAnnotated,
       EkfFusionAtomics,
       {"Prim", "Sec"},
       "Con"},
      {"alarm_voting",
       "Fusion",
       AlarmVotingAnnotated,
       AlarmVotingAtomics,
       {"Gas", "Smoke", "Heat"},
       "Con"},
  };
  return Benchmarks;
}
