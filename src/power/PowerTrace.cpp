//===- PowerTrace.cpp - Recorded harvest-rate time series ------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "power/PowerTrace.h"

#include "support/TimeSeriesCsv.h"

#include <cmath>

using namespace ocelot;

PowerTrace::PowerTrace(std::vector<Segment> Segs) : Segs(std::move(Segs)) {
  for (const Segment &S : this->Segs) {
    TotalTau += S.DurationTau;
    CycleEnergy += S.Rate * static_cast<double>(S.DurationTau);
  }
}

namespace {

/// The power instantiation of the shared time-series CSV format
/// (support/TimeSeriesCsv.h): rates must be >= 0 and some segment must
/// actually harvest, on top of the format-level rules.
const TimeSeriesCsvSpec &powerCsvSpec() {
  static const TimeSeriesCsvSpec Spec = {
      /*Header=*/"# ocelot power trace v1\n# duration_tau,charge_rate\n",
      /*Columns=*/"duration_tau,charge_rate",
      /*ValueName=*/"charge rate",
      /*FileNoun=*/"power trace",
      /*ValueNonNegative=*/true,
      /*SeriesCheck=*/
      [](const std::vector<TimeSeriesSegment> &Segs) -> std::string {
        double CycleEnergy = 0.0;
        for (const TimeSeriesSegment &S : Segs)
          CycleEnergy += S.Value * static_cast<double>(S.DurationTau);
        if (CycleEnergy <= 0.0)
          return "trace harvests no energy (all rates are 0)";
        return "";
      }};
  return Spec;
}

std::vector<TimeSeriesSegment>
toSeries(const std::vector<PowerTrace::Segment> &Segs) {
  std::vector<TimeSeriesSegment> Out;
  Out.reserve(Segs.size());
  for (const PowerTrace::Segment &S : Segs)
    Out.push_back({S.DurationTau, S.Rate});
  return Out;
}

std::vector<PowerTrace::Segment>
fromSeries(const std::vector<TimeSeriesSegment> &Segs) {
  std::vector<PowerTrace::Segment> Out;
  Out.reserve(Segs.size());
  for (const TimeSeriesSegment &S : Segs)
    Out.push_back({S.DurationTau, S.Value});
  return Out;
}

} // namespace

std::shared_ptr<const PowerTrace>
PowerTrace::Builder::build(std::string &Error) const {
  std::vector<std::string> Where;
  Where.reserve(Segs.size());
  for (size_t I = 0; I < Segs.size(); ++I)
    Where.push_back("segment " + std::to_string(I));
  Error = timeseries::validate(toSeries(Segs), powerCsvSpec(), Where);
  if (!Error.empty())
    return nullptr;
  return std::shared_ptr<const PowerTrace>(new PowerTrace(Segs));
}

double PowerTrace::rateAt(uint64_t Tau) const {
  uint64_t T = Tau % TotalTau;
  for (const Segment &S : Segs) {
    if (T < S.DurationTau)
      return S.Rate;
    T -= S.DurationTau;
  }
  return Segs.back().Rate; // Unreachable for a valid trace.
}

std::string PowerTrace::toCsv() const {
  return timeseries::toCsv(powerCsvSpec(), toSeries(Segs));
}

std::shared_ptr<const PowerTrace> PowerTrace::parseCsv(std::string_view Text,
                                                       std::string &Error) {
  std::vector<TimeSeriesSegment> Series;
  if (!timeseries::parseCsv(Text, powerCsvSpec(), Series, Error))
    return nullptr;
  return std::shared_ptr<const PowerTrace>(new PowerTrace(fromSeries(Series)));
}

std::shared_ptr<const PowerTrace>
PowerTrace::loadCsv(const std::string &Path, std::string &Error) {
  std::vector<TimeSeriesSegment> Series;
  if (!timeseries::loadFile(Path, powerCsvSpec(), Series, Error))
    return nullptr;
  return std::shared_ptr<const PowerTrace>(new PowerTrace(fromSeries(Series)));
}

bool PowerTrace::saveCsv(const std::string &Path, std::string &Error) const {
  return timeseries::saveFile(Path, powerCsvSpec(), toSeries(Segs), Error);
}

namespace {

/// Replays a PowerTrace cyclically against absolute logical time. Fully
/// deterministic: refills to capacity, off-time integrated exactly over
/// the trace's piecewise-constant segments.
class TracePowerSource final : public PowerSource {
public:
  explicit TracePowerSource(std::shared_ptr<const PowerTrace> Trace)
      : Trace(std::move(Trace)) {}

  const char *name() const override { return "trace"; }

  RechargePlan planRecharge(uint64_t Tau, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &) const override {
    uint64_t Target = Cfg.CapacityCycles;
    double Deficit =
        static_cast<double>(Target > StoredEnergy ? Target - StoredEnergy : 0);
    if (Deficit <= 0.0)
      return {Target, 1};

    // Off-times saturate here: a valid trace may still harvest almost
    // nothing per cycle (e.g. one tau at rate 1e-30), and the refill would
    // need astronomically many cycles — far past any simulation budget and
    // past what a float->uint64 cast can express. ~30k saturated reboots
    // still fit in uint64 tau, so the device reads as "effectively dead"
    // instead of hanging the planner.
    constexpr double MaxOffTau = 1e15;
    double EnergyPerCycle = Trace->energyPerCycle();
    double TotalTau = static_cast<double>(Trace->totalDurationTau());

    // Walk whole trace cycles first, then finish segment by segment.
    double WholeCycles = std::floor(Deficit / EnergyPerCycle);
    if (WholeCycles * TotalTau >= MaxOffTau)
      return {Target, static_cast<uint64_t>(MaxOffTau)};
    double Elapsed = WholeCycles * TotalTau;
    Deficit -= WholeCycles * EnergyPerCycle;

    uint64_t Offset = Tau % Trace->totalDurationTau();
    // Locate the segment containing Offset, then march. One full cycle's
    // gain exceeds the remaining deficit, so the march ends within about
    // one lap; the lap cap only guards float rounding at the extremes.
    size_t Idx = 0;
    uint64_t Into = Offset;
    while (Into >= Trace->segments()[Idx].DurationTau) {
      Into -= Trace->segments()[Idx].DurationTau;
      Idx = (Idx + 1) % Trace->segments().size();
    }
    size_t MaxSegs = 4 * Trace->segments().size();
    for (size_t N = 0; Deficit > 0.0 && N < MaxSegs; ++N) {
      const PowerTrace::Segment &S = Trace->segments()[Idx];
      double Span = static_cast<double>(S.DurationTau - Into);
      double Gain = S.Rate * Span;
      if (S.Rate > 0.0 && Gain >= Deficit) {
        Elapsed += Deficit / S.Rate;
        Deficit = 0.0;
        break;
      }
      Deficit -= Gain;
      Elapsed += Span;
      Into = 0;
      Idx = (Idx + 1) % Trace->segments().size();
    }
    if (Deficit > 0.0) // Rounding leftovers: settle at the average rate.
      Elapsed += Deficit / (EnergyPerCycle / TotalTau);
    if (Elapsed >= MaxOffTau)
      Elapsed = MaxOffTau;
    uint64_t T = static_cast<uint64_t>(std::ceil(Elapsed));
    return {Target, T == 0 ? 1 : T};
  }

private:
  std::shared_ptr<const PowerTrace> Trace;
};

} // namespace

std::shared_ptr<const PowerSource>
ocelot::traceSource(std::shared_ptr<const PowerTrace> Trace) {
  return std::make_shared<const TracePowerSource>(std::move(Trace));
}
