//===- PowerTrace.cpp - Recorded harvest-rate time series ------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "power/PowerTrace.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace ocelot;

PowerTrace::PowerTrace(std::vector<Segment> Segs) : Segs(std::move(Segs)) {
  for (const Segment &S : this->Segs) {
    TotalTau += S.DurationTau;
    CycleEnergy += S.Rate * static_cast<double>(S.DurationTau);
  }
}

namespace {

/// Shared validation for Builder::build and parseCsv. \returns an empty
/// string when the segments form a valid trace; otherwise the problem
/// (\p Where prefixes per-segment complaints, e.g. "line 4" or
/// "segment 2").
std::string validateSegments(const std::vector<PowerTrace::Segment> &Segs,
                             const std::vector<std::string> &Where) {
  if (Segs.empty())
    return "trace has no segments";
  double CycleEnergy = 0.0;
  uint64_t TotalTau = 0;
  for (size_t I = 0; I < Segs.size(); ++I) {
    if (Segs[I].DurationTau == 0)
      return Where[I] + ": segment duration must be > 0";
    if (!(Segs[I].Rate >= 0.0) || !std::isfinite(Segs[I].Rate))
      return Where[I] + ": charge rate must be finite and >= 0";
    if (TotalTau + Segs[I].DurationTau < TotalTau)
      return Where[I] + ": total trace duration overflows 64 bits";
    TotalTau += Segs[I].DurationTau;
    CycleEnergy += Segs[I].Rate * static_cast<double>(Segs[I].DurationTau);
  }
  if (CycleEnergy <= 0.0)
    return "trace harvests no energy (all rates are 0)";
  return "";
}

} // namespace

std::shared_ptr<const PowerTrace>
PowerTrace::Builder::build(std::string &Error) const {
  std::vector<std::string> Where;
  Where.reserve(Segs.size());
  for (size_t I = 0; I < Segs.size(); ++I)
    Where.push_back("segment " + std::to_string(I));
  Error = validateSegments(Segs, Where);
  if (!Error.empty())
    return nullptr;
  return std::shared_ptr<const PowerTrace>(new PowerTrace(Segs));
}

double PowerTrace::rateAt(uint64_t Tau) const {
  uint64_t T = Tau % TotalTau;
  for (const Segment &S : Segs) {
    if (T < S.DurationTau)
      return S.Rate;
    T -= S.DurationTau;
  }
  return Segs.back().Rate; // Unreachable for a valid trace.
}

std::string PowerTrace::toCsv() const {
  std::string Out = "# ocelot power trace v1\n# duration_tau,charge_rate\n";
  char Buf[64];
  for (const Segment &S : Segs) {
    // %.17g round-trips any double exactly, so save -> load -> save is the
    // identity on the text as well as the segments.
    std::snprintf(Buf, sizeof(Buf), "%llu,%.17g\n",
                  static_cast<unsigned long long>(S.DurationTau), S.Rate);
    Out += Buf;
  }
  return Out;
}

std::shared_ptr<const PowerTrace> PowerTrace::parseCsv(std::string_view Text,
                                                       std::string &Error) {
  std::vector<Segment> Segs;
  std::vector<std::string> Where;
  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    std::string_view Line = Text.substr(
        Pos, Eol == std::string_view::npos ? std::string_view::npos
                                           : Eol - Pos);
    Pos = Eol == std::string_view::npos ? Text.size() + 1 : Eol + 1;
    ++LineNo;
    // Trim whitespace; skip blanks and # comments.
    while (!Line.empty() && (Line.front() == ' ' || Line.front() == '\t' ||
                             Line.front() == '\r'))
      Line.remove_prefix(1);
    while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\t' ||
                             Line.back() == '\r'))
      Line.remove_suffix(1);
    if (Line.empty() || Line.front() == '#')
      continue;

    // Parse strictly: an unsigned decimal duration (no sign — sscanf %llu
    // would silently wrap "-100" to ~2^64), a comma, a finite double rate,
    // and nothing else.
    std::string Ln(Line);
    std::string BadLine = "line " + std::to_string(LineNo) +
                          ": expected 'duration_tau,charge_rate', got '" +
                          Ln + "'";
    const char *C = Ln.c_str();
    if (!std::isdigit(static_cast<unsigned char>(*C))) {
      Error = BadLine;
      return nullptr;
    }
    char *End = nullptr;
    errno = 0;
    unsigned long long Dur = std::strtoull(C, &End, 10);
    if (errno == ERANGE) {
      Error = "line " + std::to_string(LineNo) +
              ": segment duration exceeds 64 bits";
      return nullptr;
    }
    if (*End != ',') {
      Error = BadLine;
      return nullptr;
    }
    Segment S;
    const char *RateStart = End + 1;
    S.Rate = std::strtod(RateStart, &End);
    if (End == RateStart || *End != '\0') {
      Error = BadLine;
      return nullptr;
    }
    S.DurationTau = Dur;
    Segs.push_back(S);
    Where.push_back("line " + std::to_string(LineNo));
  }
  Error = validateSegments(Segs, Where);
  if (!Error.empty())
    return nullptr;
  return std::shared_ptr<const PowerTrace>(new PowerTrace(std::move(Segs)));
}

std::shared_ptr<const PowerTrace>
PowerTrace::loadCsv(const std::string &Path, std::string &Error) {
  std::ifstream In(Path);
  if (!In) {
    Error = "cannot open power trace '" + Path + "'";
    return nullptr;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::shared_ptr<const PowerTrace> T = parseCsv(Buf.str(), Error);
  if (!T)
    Error = Path + ": " + Error;
  return T;
}

bool PowerTrace::saveCsv(const std::string &Path, std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot write power trace '" + Path + "'";
    return false;
  }
  Out << toCsv();
  Out.flush();
  if (!Out) {
    Error = "error writing power trace '" + Path + "'";
    return false;
  }
  return true;
}

namespace {

/// Replays a PowerTrace cyclically against absolute logical time. Fully
/// deterministic: refills to capacity, off-time integrated exactly over
/// the trace's piecewise-constant segments.
class TracePowerSource final : public PowerSource {
public:
  explicit TracePowerSource(std::shared_ptr<const PowerTrace> Trace)
      : Trace(std::move(Trace)) {}

  const char *name() const override { return "trace"; }

  RechargePlan planRecharge(uint64_t Tau, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &) const override {
    uint64_t Target = Cfg.CapacityCycles;
    double Deficit =
        static_cast<double>(Target > StoredEnergy ? Target - StoredEnergy : 0);
    if (Deficit <= 0.0)
      return {Target, 1};

    // Off-times saturate here: a valid trace may still harvest almost
    // nothing per cycle (e.g. one tau at rate 1e-30), and the refill would
    // need astronomically many cycles — far past any simulation budget and
    // past what a float->uint64 cast can express. ~30k saturated reboots
    // still fit in uint64 tau, so the device reads as "effectively dead"
    // instead of hanging the planner.
    constexpr double MaxOffTau = 1e15;
    double EnergyPerCycle = Trace->energyPerCycle();
    double TotalTau = static_cast<double>(Trace->totalDurationTau());

    // Walk whole trace cycles first, then finish segment by segment.
    double WholeCycles = std::floor(Deficit / EnergyPerCycle);
    if (WholeCycles * TotalTau >= MaxOffTau)
      return {Target, static_cast<uint64_t>(MaxOffTau)};
    double Elapsed = WholeCycles * TotalTau;
    Deficit -= WholeCycles * EnergyPerCycle;

    uint64_t Offset = Tau % Trace->totalDurationTau();
    // Locate the segment containing Offset, then march. One full cycle's
    // gain exceeds the remaining deficit, so the march ends within about
    // one lap; the lap cap only guards float rounding at the extremes.
    size_t Idx = 0;
    uint64_t Into = Offset;
    while (Into >= Trace->segments()[Idx].DurationTau) {
      Into -= Trace->segments()[Idx].DurationTau;
      Idx = (Idx + 1) % Trace->segments().size();
    }
    size_t MaxSegs = 4 * Trace->segments().size();
    for (size_t N = 0; Deficit > 0.0 && N < MaxSegs; ++N) {
      const PowerTrace::Segment &S = Trace->segments()[Idx];
      double Span = static_cast<double>(S.DurationTau - Into);
      double Gain = S.Rate * Span;
      if (S.Rate > 0.0 && Gain >= Deficit) {
        Elapsed += Deficit / S.Rate;
        Deficit = 0.0;
        break;
      }
      Deficit -= Gain;
      Elapsed += Span;
      Into = 0;
      Idx = (Idx + 1) % Trace->segments().size();
    }
    if (Deficit > 0.0) // Rounding leftovers: settle at the average rate.
      Elapsed += Deficit / (EnergyPerCycle / TotalTau);
    if (Elapsed >= MaxOffTau)
      Elapsed = MaxOffTau;
    uint64_t T = static_cast<uint64_t>(std::ceil(Elapsed));
    return {Target, T == 0 ? 1 : T};
  }

private:
  std::shared_ptr<const PowerTrace> Trace;
};

} // namespace

std::shared_ptr<const PowerSource>
ocelot::traceSource(std::shared_ptr<const PowerTrace> Trace) {
  return std::make_shared<const TracePowerSource>(std::move(Trace));
}
