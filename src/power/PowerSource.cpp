//===- PowerSource.cpp - Pluggable energy-harvesting sources ---------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "power/PowerSource.h"

#include <algorithm>
#include <cmath>

using namespace ocelot;

namespace {

/// Minimum effective harvest rate (cycles per tau). Nonpositive configured
/// rates — constantSource(0), EnergyConfig::ChargeRate = 0 — clamp here so
/// planning always terminates with a finite (if astronomical) off-time
/// instead of dividing by zero or spinning forever.
constexpr double MinHarvestRate = 1e-9;

/// Refill target with the configured harvesting-variability shortfall —
/// the same draw the legacy model makes, shared by the synthetic sources
/// so `EnergyConfig::RefillJitter` keeps meaning one thing everywhere.
uint64_t drawRefillTarget(const EnergyConfig &Cfg, Rng &R) {
  uint64_t Target = Cfg.CapacityCycles;
  if (Cfg.RefillJitter > 0.0) {
    double Short = Cfg.RefillJitter * R.nextDouble();
    Target -= static_cast<uint64_t>(Short *
                                    static_cast<double>(Cfg.CapacityCycles));
    if (Target <= Cfg.ReserveCycles)
      Target = Cfg.ReserveCycles + 1;
  }
  return Target;
}

/// Marches logical time forward from \p StartTau in \p StepTau chunks,
/// harvesting `Rate(t)` (clamped up to \p FloorRate so progress is always
/// positive) until \p Deficit cycles have accumulated. \returns the
/// elapsed off-time. The final partial step is resolved at the step's own
/// rate, so constant-rate profiles integrate exactly. The march is capped
/// at a generous step budget — far beyond any realistic recharge — after
/// which the remainder is settled at the floor rate in closed form, so a
/// degenerate environment (everything clamped to MinHarvestRate) yields
/// an astronomical-but-finite off-time instead of an unbounded loop.
template <typename RateFn>
uint64_t integrateOffTime(uint64_t StartTau, double Deficit, double StepTau,
                          double FloorRate, RateFn Rate) {
  if (Deficit <= 0.0)
    return 1;
  constexpr int MaxSteps = 100'000;
  double Need = Deficit;
  double Elapsed = 0.0;
  for (int Steps = 0; Steps < MaxSteps; ++Steps) {
    double Rt = std::max(Rate(StartTau + static_cast<uint64_t>(Elapsed)),
                         FloorRate);
    double Gain = Rt * StepTau;
    if (Gain >= Need) {
      Elapsed += Need / Rt;
      Need = 0.0;
      break;
    }
    Need -= Gain;
    Elapsed += StepTau;
  }
  if (Need > 0.0)
    Elapsed += Need / FloorRate;
  uint64_t T = static_cast<uint64_t>(std::ceil(Elapsed));
  return T == 0 ? 1 : T;
}

//===----------------------------------------------------------------------===//
// legacy-jitter
//===----------------------------------------------------------------------===//

/// The pre-subsystem recharge math, preserved exactly: one nextDouble()
/// for the refill shortfall (when RefillJitter > 0), one for the duration
/// jitter (when ChargeJitter > 0), same arithmetic and rounding. The
/// default tables (table2a/2b, fig8) reproduce bit-for-bit through this.
class LegacyJitterSource final : public PowerSource {
public:
  const char *name() const override { return "legacy-jitter"; }

  RechargePlan planRecharge(uint64_t, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &R) const override {
    uint64_t Target = drawRefillTarget(Cfg, R);
    uint64_t Deficit = Target > StoredEnergy ? Target - StoredEnergy : 0;
    double Time = static_cast<double>(Deficit) / Cfg.ChargeRate;
    if (Cfg.ChargeJitter > 0.0) {
      double Factor = 1.0 + Cfg.ChargeJitter * (2.0 * R.nextDouble() - 1.0);
      Time *= Factor;
    }
    uint64_t T = static_cast<uint64_t>(Time);
    return {Target, T == 0 ? 1 : T};
  }
};

//===----------------------------------------------------------------------===//
// constant
//===----------------------------------------------------------------------===//

class ConstantSource final : public PowerSource {
public:
  explicit ConstantSource(double Scale) : Scale(Scale) {}

  const char *name() const override { return "constant"; }

  RechargePlan planRecharge(uint64_t, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &) const override {
    uint64_t Target = Cfg.CapacityCycles;
    double Deficit =
        static_cast<double>(Target > StoredEnergy ? Target - StoredEnergy : 0);
    double Rate = std::max(Scale * Cfg.ChargeRate, MinHarvestRate);
    uint64_t T = static_cast<uint64_t>(std::ceil(Deficit / Rate));
    return {Target, T == 0 ? 1 : T};
  }

private:
  double Scale;
};

//===----------------------------------------------------------------------===//
// solar
//===----------------------------------------------------------------------===//

class DiurnalSolarSource final : public PowerSource {
public:
  explicit DiurnalSolarSource(SolarParams P) : P(P) {
    if (this->P.PeriodTau == 0) // Zero period would divide by zero below.
      this->P.PeriodTau = 1;
  }

  const char *name() const override { return "solar"; }

  RechargePlan planRecharge(uint64_t Tau, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &R) const override {
    uint64_t Target = drawRefillTarget(Cfg, R);
    // One cloud factor per recharge: the sky during this charge window.
    double Cloud = 0.55 + 0.45 * R.nextDouble();
    double Peak = P.PeakScale * Cfg.ChargeRate * Cloud;
    double Night = P.NightScale * Cfg.ChargeRate;
    double Deficit =
        static_cast<double>(Target > StoredEnergy ? Target - StoredEnergy : 0);
    double Step = static_cast<double>(P.PeriodTau) / 400.0;
    auto Rate = [&](uint64_t T) {
      double Phase = static_cast<double>(T % P.PeriodTau) /
                     static_cast<double>(P.PeriodTau);
      if (Phase >= P.DayFraction)
        return Night;
      double S = std::sin(3.141592653589793 * Phase / P.DayFraction);
      return std::max(Night, Peak * S * S);
    };
    uint64_t Off = integrateOffTime(
        Tau, Deficit, Step, std::max(0.005 * Cfg.ChargeRate, MinHarvestRate),
        Rate);
    return {Target, Off};
  }

private:
  SolarParams P;
};

//===----------------------------------------------------------------------===//
// rf-burst
//===----------------------------------------------------------------------===//

class BurstyRfSource final : public PowerSource {
public:
  explicit BurstyRfSource(RfParams P) : P(P) {
    if (this->P.BurstPeriodTau == 0) // Zero period: modulo/nextBelow UB.
      this->P.BurstPeriodTau = 1;
  }

  const char *name() const override { return "rf-burst"; }

  RechargePlan planRecharge(uint64_t Tau, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &R) const override {
    uint64_t Target = drawRefillTarget(Cfg, R);
    // The receiver's reboot is not synchronized to the transmitter's duty
    // cycle: each recharge sees the burst train at a fresh phase.
    uint64_t Phase = R.nextBelow(P.BurstPeriodTau);
    double Burst = P.BurstScale * Cfg.ChargeRate;
    double Idle = P.IdleScale * Cfg.ChargeRate;
    double Deficit =
        static_cast<double>(Target > StoredEnergy ? Target - StoredEnergy : 0);
    double Step = static_cast<double>(P.BurstPeriodTau) / 80.0;
    auto Rate = [&](uint64_t T) {
      double X = static_cast<double>((T + Phase) % P.BurstPeriodTau) /
                 static_cast<double>(P.BurstPeriodTau);
      return X < P.DutyCycle ? Burst : Idle;
    };
    uint64_t Off = integrateOffTime(
        Tau, Deficit, Step, std::max(0.01 * Cfg.ChargeRate, MinHarvestRate),
        Rate);
    return {Target, Off};
  }

private:
  RfParams P;
};

//===----------------------------------------------------------------------===//
// kinetic
//===----------------------------------------------------------------------===//

class KineticImpulseSource final : public PowerSource {
public:
  explicit KineticImpulseSource(KineticParams P) : P(P) {}

  const char *name() const override { return "kinetic"; }

  RechargePlan planRecharge(uint64_t, uint64_t StoredEnergy,
                            const EnergyConfig &Cfg, Rng &R) const override {
    uint64_t Target = drawRefillTarget(Cfg, R);
    double Deficit =
        static_cast<double>(Target > StoredEnergy ? Target - StoredEnergy : 0);
    double Elapsed = 0.0;
    // Impulses arrive with exponential gaps (truncated so one tail draw
    // cannot dwarf the whole simulation) and jittered energies. Like
    // integrateOffTime, the walk is step-capped and the remainder settled
    // in closed form, so degenerate parameters (nonpositive impulse
    // energy) yield a huge-but-finite off-time instead of an unbounded
    // loop of RNG draws.
    constexpr int MaxImpulses = 100'000;
    double Impulse = std::max(P.ImpulseEnergyCycles, MinHarvestRate);
    double MeanGap = std::max(1.0, P.MeanImpulseGapTau);
    for (int N = 0; Deficit > 0.0 && N < MaxImpulses; ++N) {
      double U = R.nextDouble();
      double Gap = -std::log(1.0 - U) * P.MeanImpulseGapTau;
      Gap = std::min(Gap, 8.0 * P.MeanImpulseGapTau);
      Elapsed += std::max(1.0, Gap);
      Deficit -= (0.5 + R.nextDouble()) * Impulse;
    }
    if (Deficit > 0.0)
      Elapsed += (Deficit / Impulse) * MeanGap;
    uint64_t T = static_cast<uint64_t>(std::ceil(Elapsed));
    return {Target, T == 0 ? 1 : T};
  }

private:
  KineticParams P;
};

} // namespace

std::shared_ptr<const PowerSource> ocelot::legacyJitterSource() {
  static const std::shared_ptr<const PowerSource> S =
      std::make_shared<const LegacyJitterSource>();
  return S;
}

std::shared_ptr<const PowerSource> ocelot::constantSource(double Scale) {
  return std::make_shared<const ConstantSource>(Scale);
}

std::shared_ptr<const PowerSource>
ocelot::diurnalSolarSource(SolarParams P) {
  return std::make_shared<const DiurnalSolarSource>(P);
}

std::shared_ptr<const PowerSource> ocelot::burstyRfSource(RfParams P) {
  return std::make_shared<const BurstyRfSource>(P);
}

std::shared_ptr<const PowerSource>
ocelot::kineticImpulseSource(KineticParams P) {
  return std::make_shared<const KineticImpulseSource>(P);
}
