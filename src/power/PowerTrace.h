//===- PowerTrace.h - Recorded harvest-rate time series ---------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A `PowerTrace` is a piecewise-constant charge-rate time series: an
/// ordered list of segments, each holding a rate (cycles of energy per tau
/// unit, absolute — not scaled by `EnergyConfig::ChargeRate`) for a
/// duration. Traces come from the in-memory `Builder` or from CSV:
///
/// ```csv
/// # ocelot power trace v1
/// # duration_tau,charge_rate
/// 50000,0.40
/// 150000,0.02
/// ```
///
/// Comment lines start with `#`; each data line is one segment. A valid
/// trace has at least one segment, every duration > 0, every rate >= 0 and
/// finite, and a positive total harvest (an all-zero trace would never
/// recharge anything). Loading reports the first problem with its line
/// number. Traces are immutable once built, so one trace can back any
/// number of concurrent simulations; `traceSource` wraps one as a
/// `PowerSource` that replays it cyclically against absolute logical time.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_POWER_POWERTRACE_H
#define OCELOT_POWER_POWERTRACE_H

#include "power/PowerSource.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace ocelot {

class PowerTrace {
public:
  struct Segment {
    uint64_t DurationTau = 0; ///< How long this rate holds.
    double Rate = 0.0;        ///< Cycles of energy per tau unit.
  };

  /// Accumulates segments, then validates and freezes them into a trace.
  class Builder {
  public:
    /// Appends one segment; returns *this for chaining.
    Builder &segment(uint64_t DurationTau, double Rate) {
      Segs.push_back({DurationTau, Rate});
      return *this;
    }

    /// Validates and builds. On failure returns nullptr and sets \p Error.
    std::shared_ptr<const PowerTrace> build(std::string &Error) const;

  private:
    std::vector<Segment> Segs;
  };

  const std::vector<Segment> &segments() const { return Segs; }
  /// Sum of all segment durations (> 0 for a valid trace).
  uint64_t totalDurationTau() const { return TotalTau; }
  /// Total energy harvested over one full cycle of the trace (> 0).
  double energyPerCycle() const { return CycleEnergy; }

  /// The charge rate in effect at absolute time \p Tau (the trace repeats
  /// with period totalDurationTau()).
  double rateAt(uint64_t Tau) const;

  /// Renders the trace as CSV text (the same format parseCsv reads; a
  /// parse of the output yields identical segments).
  std::string toCsv() const;

  /// Parses CSV text. On failure returns nullptr and sets \p Error to a
  /// message naming the offending line.
  static std::shared_ptr<const PowerTrace> parseCsv(std::string_view Text,
                                                    std::string &Error);

  /// Reads and parses \p Path. On failure returns nullptr and sets
  /// \p Error (file errors and parse errors alike).
  static std::shared_ptr<const PowerTrace> loadCsv(const std::string &Path,
                                                   std::string &Error);

  /// Writes toCsv() to \p Path; returns false and sets \p Error on I/O
  /// failure.
  bool saveCsv(const std::string &Path, std::string &Error) const;

private:
  explicit PowerTrace(std::vector<Segment> Segs);

  std::vector<Segment> Segs;
  uint64_t TotalTau = 0;
  double CycleEnergy = 0.0;
};

/// Wraps an immutable trace as a `PowerSource` ("trace"). The source is
/// fully deterministic: it refills to capacity and derives the off-time
/// purely from the trace's rates starting at the reboot's absolute time.
std::shared_ptr<const PowerSource>
traceSource(std::shared_ptr<const PowerTrace> Trace);

} // namespace ocelot

#endif // OCELOT_POWER_POWERTRACE_H
