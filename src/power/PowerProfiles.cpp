//===- PowerProfiles.cpp - Named harvesting-environment presets ------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "power/PowerProfiles.h"

#include "power/PowerTrace.h"

using namespace ocelot;

PowerProfileRegistry &PowerProfileRegistry::global() {
  static PowerProfileRegistry *R = [] {
    auto *Reg = new PowerProfileRegistry();
    Reg->registerProfile(
        "legacy-jitter",
        "uniform-jitter capacitor refill (pre-subsystem default)",
        [] { return legacyJitterSource(); });
    Reg->registerProfile("bench-constant",
                         "ideal constant bench supply at the nominal rate",
                         [] { return constantSource(1.0); });
    Reg->registerProfile(
        "solar-outdoor",
        "diurnal solar: sin^2 day bump, night trickle, cloud fading",
        [] { return diurnalSolarSource(); });
    Reg->registerProfile(
        "rf-office",
        "duty-cycled RF charger with unsynchronized wake-up phase",
        [] { return burstyRfSource(); });
    Reg->registerProfile(
        "kinetic-walker",
        "discrete motion-harvest impulses with exponential gaps",
        [] { return kineticImpulseSource(); });
    return Reg;
  }();
  return *R;
}

void PowerProfileRegistry::registerProfile(const std::string &Name,
                                           const std::string &Description,
                                           Factory F) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries[Name] = Entry{Description, std::move(F)};
}

std::shared_ptr<const PowerSource>
PowerProfileRegistry::create(const std::string &Name) const {
  Factory F;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Entries.find(Name);
    if (It == Entries.end())
      return nullptr;
    F = It->second.Make;
  }
  return F();
}

std::string PowerProfileRegistry::describe(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Entries.find(Name);
  return It == Entries.end() ? std::string() : It->second.Description;
}

std::vector<std::string> PowerProfileRegistry::names() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<std::string> Out;
  Out.reserve(Entries.size());
  for (const auto &[Name, E] : Entries)
    Out.push_back(Name); // std::map iterates sorted.
  return Out;
}

bool PowerProfileRegistry::contains(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.count(Name) != 0;
}

std::shared_ptr<const PowerSource>
ocelot::resolvePowerSource(const std::string &Spec, std::string &Error) {
  bool LooksLikePath = Spec.find('/') != std::string::npos ||
                       (Spec.size() > 4 &&
                        Spec.compare(Spec.size() - 4, 4, ".csv") == 0);
  if (LooksLikePath) {
    std::shared_ptr<const PowerTrace> T = PowerTrace::loadCsv(Spec, Error);
    if (!T)
      return nullptr;
    return traceSource(std::move(T));
  }
  if (std::shared_ptr<const PowerSource> S =
          PowerProfileRegistry::global().create(Spec))
    return S;
  Error = "unknown power profile '" + Spec + "' (valid profiles:";
  for (const std::string &N : PowerProfileRegistry::global().names())
    Error += " " + N;
  Error += "; or a path to a power-trace CSV)";
  return nullptr;
}
