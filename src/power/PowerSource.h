//===- PowerSource.h - Pluggable energy-harvesting sources ------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The harvesting side of the energy front end. The paper's off-times are
/// "dictated by the physical environment"; a `PowerSource` is that
/// environment: given the logical time a reboot begins and the capacitor's
/// state, it decides how full the refill gets and how long the device stays
/// dark harvesting it. Sources are immutable after construction — all
/// per-recharge randomness flows through the caller's `Rng` — so one source
/// instance can back any number of concurrent `Simulation`s, exactly like a
/// `CompiledArtifact`.
///
/// Concrete sources:
///  * `legacyJitterSource`  — the original `EnergyModel` recharge math
///    (uniform refill shortfall + multiplicative duration jitter),
///    bit-for-bit. The default when `RunConfig::Power` is unset.
///  * `constantSource`      — ideal bench supply; fully deterministic.
///  * `diurnalSolarSource`  — sinusoidal day/night cycle with cloud fading.
///  * `burstyRfSource`      — duty-cycled RF charger with unsynchronized
///    wake-up phase (the paper's PowerCast testbed, roughly).
///  * `kineticImpulseSource`— discrete harvest impulses (footsteps,
///    vibration) with exponential inter-arrival times.
///  * `traceSource`         — replays a `PowerTrace` time series
///    (PowerTrace.h); named presets live in `PowerProfileRegistry`
///    (PowerProfiles.h).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_POWER_POWERSOURCE_H
#define OCELOT_POWER_POWERSOURCE_H

#include "runtime/EnergyModel.h"
#include "support/Rng.h"

#include <cstdint>
#include <memory>

namespace ocelot {

/// One planned reboot-recharge: where the capacitor ends up and how long
/// the harvest took. `EnergyModel::recharge` clamps `TargetEnergy` into
/// (ReserveCycles, CapacityCycles] and raises `OffTime` to at least 1, so
/// sources may return raw values.
struct RechargePlan {
  uint64_t TargetEnergy = 0; ///< Capacitor level after the refill (cycles).
  uint64_t OffTime = 0;      ///< Harvest duration (tau units).
};

/// A harvesting environment. Implementations must be immutable after
/// construction and draw all randomness from the passed `Rng` (which is the
/// owning `EnergyModel`'s private, seed-derived stream): two sources of the
/// same configuration given the same Rng state plan identical recharges,
/// which is what makes whole-simulation determinism hold per seed.
class PowerSource {
public:
  virtual ~PowerSource() = default;

  /// Short stable identifier ("legacy-jitter", "solar", "trace", ...).
  virtual const char *name() const = 0;

  /// Plans the recharge for a reboot that begins at logical time \p Tau
  /// with \p StoredEnergy cycles left in the capacitor. \p Cfg supplies the
  /// capacitor geometry and the nominal harvest rate that synthetic
  /// sources scale.
  virtual RechargePlan planRecharge(uint64_t Tau, uint64_t StoredEnergy,
                                    const EnergyConfig &Cfg,
                                    Rng &R) const = 0;
};

/// The pre-subsystem `EnergyModel` recharge behavior, preserved exactly:
/// same RNG draw sequence, same arithmetic, same results. Stateless; the
/// returned instance is shared.
std::shared_ptr<const PowerSource> legacyJitterSource();

/// Ideal bench supply harvesting at `Scale * Cfg.ChargeRate`, always
/// refilling to capacity. Draws no randomness at all.
std::shared_ptr<const PowerSource> constantSource(double Scale = 1.0);

/// Diurnal solar harvesting: a sin^2 irradiance bump over the day fraction
/// of each period, a trickle at night, and a per-recharge cloud factor.
struct SolarParams {
  uint64_t PeriodTau = 1'500'000; ///< One simulated "day".
  double DayFraction = 0.55;      ///< Fraction of the period with sun.
  double PeakScale = 5.0;         ///< Peak rate, in units of Cfg.ChargeRate.
  double NightScale = 0.02;       ///< Night trickle, same units.
};
std::shared_ptr<const PowerSource> diurnalSolarSource(SolarParams P = {});

/// Duty-cycled RF charging: a transmitter bursts for `DutyCycle` of each
/// period; the receiver's reboot is not synchronized to the burst, so each
/// recharge draws a uniform phase offset.
struct RfParams {
  uint64_t BurstPeriodTau = 40'000;
  double DutyCycle = 0.3;
  double BurstScale = 3.0; ///< In-burst rate, units of Cfg.ChargeRate.
  double IdleScale = 0.05; ///< Between-burst trickle, same units.
};
std::shared_ptr<const PowerSource> burstyRfSource(RfParams P = {});

/// Kinetic/vibration harvesting: energy arrives as discrete impulses with
/// exponential inter-arrival gaps; the device wakes when enough impulses
/// have accumulated.
struct KineticParams {
  double MeanImpulseGapTau = 9'000;  ///< Mean gap between impulses.
  double ImpulseEnergyCycles = 400;  ///< Mean energy per impulse.
};
std::shared_ptr<const PowerSource> kineticImpulseSource(KineticParams P = {});

} // namespace ocelot

#endif // OCELOT_POWER_POWERSOURCE_H
