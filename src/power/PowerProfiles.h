//===- PowerProfiles.h - Named harvesting-environment presets ---*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String-addressable presets over the `PowerSource` zoo, so every layer —
/// `ocelotc --power=...`, `SweepSpec::Powers`, bench drivers, user code —
/// names harvesting environments the same way. The registry ships with:
///
///   legacy-jitter   the pre-subsystem recharge math (the default)
///   bench-constant  ideal constant bench supply
///   solar-outdoor   diurnal solar with cloud fading
///   rf-office       duty-cycled RF charging, unsynchronized phase
///   kinetic-walker  discrete motion-harvest impulses
///
/// `resolvePowerSource` additionally accepts a path to a `PowerTrace` CSV
/// (anything containing a path separator or ending in ".csv"), covering
/// the `--power=<profile|file.csv>` CLI contract in one place.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_POWER_POWERPROFILES_H
#define OCELOT_POWER_POWERPROFILES_H

#include "power/PowerSource.h"

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ocelot {

/// Thread-safe name -> PowerSource factory map. The global() instance is
/// pre-populated with the built-in profiles above; tests and applications
/// may register more (re-registering a name replaces it).
class PowerProfileRegistry {
public:
  using Factory = std::function<std::shared_ptr<const PowerSource>()>;

  /// The process-wide registry with the built-in profiles.
  static PowerProfileRegistry &global();

  /// Registers (or replaces) \p Name.
  void registerProfile(const std::string &Name,
                       const std::string &Description, Factory F);

  /// \returns the source for \p Name, or nullptr if unknown.
  std::shared_ptr<const PowerSource> create(const std::string &Name) const;

  /// One-line description of \p Name (empty if unknown).
  std::string describe(const std::string &Name) const;

  /// All registered names, sorted, e.g. for error messages and --help.
  std::vector<std::string> names() const;

  bool contains(const std::string &Name) const;

  PowerProfileRegistry() = default;
  PowerProfileRegistry(const PowerProfileRegistry &) = delete;
  PowerProfileRegistry &operator=(const PowerProfileRegistry &) = delete;

private:
  struct Entry {
    std::string Description;
    Factory Make;
  };

  mutable std::mutex Mu;
  std::map<std::string, Entry> Entries;
};

/// Resolves a `--power=` spec: a registered profile name, or a path to a
/// power-trace CSV (recognized by a '/' in the spec or a ".csv" suffix).
/// On failure returns nullptr and sets \p Error to a message listing the
/// valid profile names (or the trace loader's complaint).
std::shared_ptr<const PowerSource>
resolvePowerSource(const std::string &Spec, std::string &Error);

} // namespace ocelot

#endif // OCELOT_POWER_POWERPROFILES_H
