//===- Benchmarks.cpp - The paper's six evaluation benchmarks -------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"

#include "fusion/FusionBenchmarks.h"

using namespace ocelot;

// -- Activity (TICS) ---------------------------------------------------------
// Accelerometer window -> feature -> classification. The window samples form
// a consistent set; the derived feature must be fresh through classification
// and logging.

static const char *ActivityAnnotated = R"(
// Activity recognition (from the TICS artifact, ported to OCL).
io accel_x, accel_y, accel_z;

static history: [int; 16];
static hist_idx = 0;
static moving_count = 0;
static total_count = 0;
static duty_cycle = 0;
static churn = 0;

fn sample_feature() -> int {
  let mut sx = 0;
  let mut sy = 0;
  let mut sz = 0;
  for i in 0..4 {
    let consistent(1) ax = accel_x();
    let consistent(1) ay = accel_y();
    let consistent(1) az = accel_z();
    sx = sx + ax;
    sy = sy + ay;
    sz = sz + az;
  }
  let mx = sx / 4;
  let my = sy / 4;
  let mz = sz / 4;
  return mx * mx + my * my + mz * mz;
}

fn classify(feat: int) -> int {
  if feat > 2500 {
    return 1;
  }
  return 0;
}

// Sliding-window statistics over past classifications; no timing
// constraints apply (runs under plain JIT checkpoints in Ocelot builds).
fn update_stats(cls: int) {
  history[hist_idx] = cls;
  hist_idx = (hist_idx + 1) % 16;
  if cls == 1 {
    moving_count += 1;
  }
  total_count += 1;
  let mut active = 0;
  for i in 0..16 {
    active = active + history[i];
  }
  let mut transitions = 0;
  for i in 0..15 {
    if history[i + 1] != history[i] {
      transitions = transitions + 1;
    }
  }
  duty_cycle = (active * 100) / 16;
  churn = transitions;
}

fn main() {
  let feat = sample_feature();
  Fresh(feat);
  let cls = classify(feat);
  log(cls, feat);
  update_stats(cls);
}
)";

static const char *ActivityAtomics = R"(
// Activity recognition, manually regioned (Atomics-only configuration).
io accel_x, accel_y, accel_z;

static history: [int; 16];
static hist_idx = 0;
static moving_count = 0;
static total_count = 0;
static duty_cycle = 0;
static churn = 0;

fn sample_feature() -> int {
  let mut sx = 0;
  let mut sy = 0;
  let mut sz = 0;
  atomic {
    for i in 0..4 {
      let consistent(1) ax = accel_x();
      let consistent(1) ay = accel_y();
      let consistent(1) az = accel_z();
      sx = sx + ax;
      sy = sy + ay;
      sz = sz + az;
    }
  }
  let mx = sx / 4;
  let my = sy / 4;
  let mz = sz / 4;
  return mx * mx + my * my + mz * mz;
}

fn classify(feat: int) -> int {
  if feat > 2500 {
    return 1;
  }
  return 0;
}

fn update_stats(cls: int) {
  atomic {
    history[hist_idx] = cls;
    hist_idx = (hist_idx + 1) % 16;
    if cls == 1 {
      moving_count += 1;
    }
    total_count += 1;
    let mut active = 0;
    for i in 0..16 {
      active = active + history[i];
    }
    let mut transitions = 0;
    for i in 0..15 {
      if history[i + 1] != history[i] {
        transitions = transitions + 1;
      }
    }
    duty_cycle = (active * 100) / 16;
    churn = transitions;
  }
}

fn main() {
  let mut feat = 0;
  let mut cls = 0;
  atomic {
    feat = sample_feature();
    Fresh(feat);
    cls = classify(feat);
    log(cls, feat);
  }
  update_stats(cls);
}
)";

// -- Greenhouse (TICS) -------------------------------------------------------

static const char *GreenhouseAnnotated = R"(
// Greenhouse monitor: the humidity/temperature pair must be consistent.
io humidity, temperature;

static readings = 0;
static vent_events = 0;

fn read_humidity() -> int {
  let raw = humidity();
  return (raw * 103) / 100 + 2;
}

fn read_temperature() -> int {
  let raw = temperature();
  return (raw * 99) / 100 - 1;
}

fn main() {
  let consistent(1) h = read_humidity();
  let consistent(1) t = read_temperature();
  let vpd = t * 8 - h * 2;
  if vpd > 300 {
    send(vpd);
    vent_events += 1;
  }
  log(h, t);
  readings += 1;
}
)";

static const char *GreenhouseAtomics = R"(
// Greenhouse monitor, manually regioned.
io humidity, temperature;

static readings = 0;
static vent_events = 0;

fn read_humidity() -> int {
  let raw = humidity();
  return (raw * 103) / 100 + 2;
}

fn read_temperature() -> int {
  let raw = temperature();
  return (raw * 99) / 100 - 1;
}

fn main() {
  let mut h = 0;
  let mut t = 0;
  atomic {
    h = read_humidity();
    Consistent(h, 1);
    t = read_temperature();
    Consistent(t, 1);
  }
  let vpd = t * 8 - h * 2;
  atomic {
    if vpd > 300 {
      send(vpd);
      vent_events += 1;
    }
    log(h, t);
    readings += 1;
  }
}
)";

// -- Photo (Samoyed) ---------------------------------------------------------

static const char *PhotoAnnotated = R"(
// Photo: average of five photoresistor readings taken together.
io photo;

static captures = 0;

fn main() {
  let mut sum = 0;
  for i in 0..5 {
    let consistent(1) p = photo();
    sum = sum + p;
  }
  let avg = sum / 5;
  log(avg);
  captures += 1;
}
)";

static const char *PhotoAtomics = R"(
// Photo, manually regioned.
io photo;

static captures = 0;

fn main() {
  let mut sum = 0;
  atomic {
    for i in 0..5 {
      let consistent(1) p = photo();
      sum = sum + p;
    }
  }
  let avg = sum / 5;
  atomic {
    log(avg);
    captures += 1;
  }
}
)";

// -- SendPhoto (Samoyed) -----------------------------------------------------

static const char *SendPhotoAnnotated = R"(
// SendPhoto: sample the photoresistor; radio a packet if the value is high.
io photo;

static sends = 0;

fn main() {
  let p = photo();
  Fresh(p);
  if p > 180 {
    send(p);
    sends += 1;
  }
  log(p);
}
)";

static const char *SendPhotoAtomics = R"(
// SendPhoto, manually regioned.
io photo;

static sends = 0;

fn main() {
  let mut p = 0;
  atomic {
    p = photo();
    Fresh(p);
    if p > 180 {
      send(p);
      sends += 1;
    }
    log(p);
  }
}
)";

// -- CEM (DINO) ---------------------------------------------------------------
// Compression logger: one sensed value, then lookup/insertion into a
// compressed log (a probed dictionary) plus a periodic decay pass. The
// freshness constraint covers only a few instructions, so Ocelot's inferred
// region is small while Atomics-only pays undo-logging for all of the
// dictionary work (the paper's 2.5x outlier, §7.2).

static const char *CemAnnotated = R"(
// CEM compression logger (from DINO), ported to OCL: one sensed value is
// quantized and a window of deltas is folded into a compressed dictionary
// (fixed-width probe so both build variants do identical work).
io temperature;

static dict_keys: [int; 64];
static dict_counts: [int; 64];
static inserts = 0;
static evictions = 0;

fn hash_key(k: int) -> int {
  return (k * 31 + 17) % 64;
}

fn dict_insert(k: int) -> int {
  let h = hash_key(k);
  let mut slot = -1;
  for i in 0..8 {
    let idx = (h + i) % 64;
    if slot < 0 {
      if dict_keys[idx] == k {
        dict_counts[idx] += 1;
        slot = idx;
      } else {
        if dict_keys[idx] == 0 {
          dict_keys[idx] = k;
          dict_counts[idx] = 1;
          slot = idx;
        }
      }
    }
  }
  if slot < 0 {
    dict_keys[h] = k;
    dict_counts[h] = 1;
    evictions += 1;
    slot = h;
  }
  return slot;
}

fn decay_pass() {
  for i in 0..64 {
    let c = dict_counts[i];
    if c > 1 {
      dict_counts[i] = c - c / 4;
    }
  }
}

fn main() {
  let t = temperature();
  Fresh(t);
  let key = t / 4 + 1;
  let mut checksum = 0;
  for w in 0..4 {
    let slot = dict_insert(key + w * 7);
    checksum = checksum + slot;
  }
  inserts += 4;
  if inserts % 32 == 0 {
    decay_pass();
  }
  log(checksum, key);
}
)";

static const char *CemAtomics = R"(
// CEM compression logger, divided into atomic regions throughout, in the
// task-granularity style of DINO: every probe step, eviction, decay chunk
// and bookkeeping step is its own region.
io temperature;

static dict_keys: [int; 64];
static dict_counts: [int; 64];
static inserts = 0;
static evictions = 0;

fn hash_key(k: int) -> int {
  return (k * 31 + 17) % 64;
}

fn dict_insert(k: int) -> int {
  let h = hash_key(k);
  let mut slot = -1;
  for i in 0..8 {
    atomic {
      if slot < 0 {
        let idx = (h + i) % 64;
        if dict_keys[idx] == k {
          dict_counts[idx] += 1;
          slot = idx;
        } else {
          if dict_keys[idx] == 0 {
            dict_keys[idx] = k;
            dict_counts[idx] = 1;
            slot = idx;
          }
        }
      }
    }
  }
  atomic {
    if slot < 0 {
      dict_keys[h] = k;
      dict_counts[h] = 1;
      evictions += 1;
      slot = h;
    }
  }
  return slot;
}

fn decay_pass() {
  for c in 0..4 {
    atomic {
      for i in 0..16 {
        let j = c * 16 + i;
        let v = dict_counts[j];
        if v > 1 {
          dict_counts[j] = v - v / 4;
        }
      }
    }
  }
}

fn main() {
  let mut t = 0;
  let mut key = 0;
  atomic {
    t = temperature();
    Fresh(t);
    key = t / 4 + 1;
  }
  let mut checksum = 0;
  for w in 0..4 {
    let slot = dict_insert(key + w * 7);
    checksum = checksum + slot;
  }
  atomic {
    inserts += 4;
  }
  if inserts % 32 == 0 {
    decay_pass();
  }
  atomic {
    log(checksum, key);
  }
}
)";

// -- Tire (this paper, Fig. 9) -------------------------------------------------

static const char *TireAnnotated = R"(
// Tire safety monitor (the paper's own application, Fig. 9): the burst-tire
// decision must be made on fresh data, and the pressure delta must be
// temporally consistent with the motion estimate.
io pressure, tire_temp, accel;

static base_pressure = 450;
static urgent_warnings = 0;
static warnings = 0;
static samples = 0;
static pressure_log: [int; 16];
static log_head = 0;
static smooth = 0;
static trend = 0;

fn read_motion() -> int {
  let mut m = 0;
  for i in 0..4 {
    let a = accel();
    m = m + a * a;
  }
  return m / 4;
}

fn compensate(p: int, t: int) -> int {
  return p - (t * 2) / 10;
}

// Post-decision bookkeeping: moving average and trend over the pressure
// history. No timing constraints apply here — this is the bulk of the
// program that runs under plain JIT checkpointing in the Ocelot build.
fn update_history(d: int) {
  pressure_log[log_head] = d;
  log_head = (log_head + 1) % 16;
  let mut acc = 0;
  for i in 0..16 {
    acc = acc + pressure_log[i];
  }
  smooth = acc / 16;
  let mut rising = 0;
  for i in 0..15 {
    if pressure_log[i + 1] > pressure_log[i] {
      rising = rising + 1;
    }
  }
  trend = rising;
  samples += 1;
}

fn main() {
  let consistent(2) p = pressure();
  let consistent(2) t = tire_temp();
  let avg_diff = compensate(p, t) - base_pressure;
  FreshConsistent(avg_diff, 1);
  let motion = read_motion();
  FreshConsistent(motion, 1);
  // History keeps a copy: the log entry itself has no freshness
  // requirement, so bookkeeping stays outside the constrained window.
  let logged = avg_diff * 1;
  if motion > 900 && avg_diff < -50 {
    send(avg_diff);
    urgent_warnings += 1;
  } else {
    if avg_diff < -20 {
      log(avg_diff);
      warnings += 1;
    }
  }
  update_history(logged);
}
)";

static const char *TireAtomics = R"(
// Tire safety monitor, manually regioned: a frequently executing region in
// read_motion nests inside the large region in main (§7.2's note on Tire).
io pressure, tire_temp, accel;

static base_pressure = 450;
static urgent_warnings = 0;
static warnings = 0;
static samples = 0;
static pressure_log: [int; 16];
static log_head = 0;
static smooth = 0;
static trend = 0;

fn read_motion() -> int {
  let mut m = 0;
  atomic {
    for i in 0..4 {
      let a = accel();
      m = m + a * a;
    }
  }
  return m / 4;
}

fn compensate(p: int, t: int) -> int {
  return p - (t * 2) / 10;
}

fn update_history(d: int) {
  atomic {
    pressure_log[log_head] = d;
    log_head = (log_head + 1) % 16;
    let mut acc = 0;
    for i in 0..16 {
      acc = acc + pressure_log[i];
    }
    smooth = acc / 16;
    let mut rising = 0;
    for i in 0..15 {
      if pressure_log[i + 1] > pressure_log[i] {
        rising = rising + 1;
      }
    }
    trend = rising;
    samples += 1;
  }
}

fn main() {
  let mut p = 0;
  let mut t = 0;
  let mut avg_diff = 0;
  let mut motion = 0;
  let mut logged = 0;
  atomic {
    p = pressure();
    Consistent(p, 2);
    t = tire_temp();
    Consistent(t, 2);
    avg_diff = compensate(p, t) - base_pressure;
    FreshConsistent(avg_diff, 1);
    motion = read_motion();
    FreshConsistent(motion, 1);
    logged = avg_diff * 1;
    if motion > 900 && avg_diff < -50 {
      send(avg_diff);
      urgent_warnings += 1;
    } else {
      if avg_diff < -20 {
        log(avg_diff);
        warnings += 1;
      }
    }
  }
  update_history(logged);
}
)";

std::shared_ptr<const SensorScenario>
BenchmarkDef::scenario(uint64_t Seed) const {
  auto S = [&](uint64_t Salt) { return Seed * 0x9e3779b9ULL + Salt; };
  SensorScenario::Builder B;
  if (Name == "activity") {
    B.channel(0, noiseChannel(-60, 120, 200, S(1)));
    B.channel(1, noiseChannel(-60, 120, 230, S(2)));
    B.channel(2, noiseChannel(-60, 120, 260, S(3)));
  } else if (Name == "greenhouse") {
    B.channel(0, noiseChannel(20, 60, 400, S(4)));   // humidity
    B.channel(1, noiseChannel(30, 30, 600, S(5)));   // temperature
  } else if (Name == "photo" || Name == "send_photo") {
    B.channel(0, noiseChannel(50, 200, 300, S(6)));
  } else if (Name == "cem") {
    B.channel(0, noiseChannel(0, 120, 500, S(7)));
  } else if (Name == "tire") {
    B.channel(0, noiseChannel(350, 150, 350, S(8))); // pressure
    B.channel(1, noiseChannel(10, 40, 500, S(9)));   // temp
    B.channel(2, noiseChannel(-40, 80, 150, S(10))); // accel
  } else if (Name == "ekf_fusion") {
    B.channel(0, noiseChannel(300, 400, 280, S(11))); // primary
    B.channel(1, noiseChannel(320, 380, 360, S(12))); // secondary
  } else if (Name == "alarm_voting") {
    B.channel(0, noiseChannel(250, 500, 300, S(13))); // gas
    B.channel(1, noiseChannel(260, 480, 340, S(14))); // smoke
    B.channel(2, noiseChannel(240, 520, 380, S(15))); // heat
  }
  return B.build();
}

const std::vector<BenchmarkDef> &ocelot::allBenchmarks() {
  static const std::vector<BenchmarkDef> Benchmarks = {
      {"activity",
       "TICS",
       ActivityAnnotated,
       ActivityAtomics,
       {"Accel*"},
       "Con, Fresh"},
      {"cem", "DINO", CemAnnotated, CemAtomics, {"Temp*"}, "Fresh"},
      {"greenhouse",
       "TICS",
       GreenhouseAnnotated,
       GreenhouseAtomics,
       {"Hum", "Temp"},
       "Con"},
      {"photo", "Samoyed", PhotoAnnotated, PhotoAtomics, {"Photo"}, "Con"},
      {"send_photo",
       "Samoyed",
       SendPhotoAnnotated,
       SendPhotoAtomics,
       {"Photo"},
       "Fresh"},
      {"tire",
       "Ocelot",
       TireAnnotated,
       TireAtomics,
       {"Pres*", "Temp*", "Accel*"},
       "Fresh, Con, FreshCon"},
  };
  return Benchmarks;
}

const BenchmarkDef *ocelot::findBenchmark(const std::string &Name) {
  for (const BenchmarkDef &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  // The fusion workloads are addressable by name but deliberately not in
  // allBenchmarks(): the paper tables sweep only the six paper programs.
  for (const BenchmarkDef &B : fusionBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}
