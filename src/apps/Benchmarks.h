//===- Benchmarks.h - The paper's six evaluation benchmarks -----*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OCL ports of the paper's benchmarks (Table 1):
///
///   Activity   (TICS)    accel window features + classification; Con+Fresh
///   Greenhouse (TICS)    humidity/temperature pair;              Con
///   Photo      (Samoyed) average of 5 photoresistor readings;    Con
///   SendPhoto  (Samoyed) sample + conditional radio send;        Fresh
///   CEM        (DINO)    temperature into compression log;       Fresh
///   Tire       (Ocelot)  pressure/temp/accel tire monitor;       Fresh+Con,
///                        FreshCon on the same data (Fig. 9)
///
/// Each benchmark has two sources: the annotated program (used for the
/// JIT-only and Ocelot builds) and a manually regioned variant for the
/// Atomics-only configuration ("entirely divided into atomic regions",
/// §7.2, with regions placed where inferred regions would go).
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_APPS_BENCHMARKS_H
#define OCELOT_APPS_BENCHMARKS_H

#include "sensors/SensorScenario.h"

#include <memory>
#include <string>
#include <vector>

namespace ocelot {

struct BenchmarkDef {
  std::string Name;
  std::string Origin;       ///< Paper/system the benchmark comes from.
  const char *AnnotatedSrc; ///< Annotations only (JIT-only / Ocelot builds).
  const char *AtomicsSrc;   ///< Manual atomic regions (Atomics-only build).
  std::vector<std::string> Sensors;
  std::string Constraints;  ///< Table 1's constraint column.

  /// The benchmark's default sensor world (time-varying noise channels
  /// seeded from \p Seed) — what every measurement uses when no explicit
  /// `SensorScenario` is requested. Samples bit-for-bit like the
  /// pre-scenario `setupEnvironment`.
  std::shared_ptr<const SensorScenario> scenario(uint64_t Seed) const;
};

/// All six benchmarks in the paper's presentation order.
const std::vector<BenchmarkDef> &allBenchmarks();

/// Lookup by name; nullptr if unknown.
const BenchmarkDef *findBenchmark(const std::string &Name);

} // namespace ocelot

#endif // OCELOT_APPS_BENCHMARKS_H
