//===- ocelot_fleet.cpp - Sharded sweep service CLI -------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet sweep front end:
///
///   ocelot-fleet plan  [grid flags] --shards=K
///       Print the canonical spec, its hash, and every shard's cell range.
///   ocelot-fleet run   [grid flags] --shard=i/K --out=DIR
///       Evaluate (or resume) one shard, streaming results + checkpoints
///       into DIR. Exit 0 = shard complete, 3 = interrupted (--max-cells).
///   ocelot-fleet merge [grid flags] --shards=K --out=DIR [--merged=PATH]
///       Validate all K shards and write the merged file — byte-identical
///       to `run --shard=0/1` over the same grid.
///   ocelot-fleet status DIR
///       Render per-shard progress for every shard in DIR: durable cells
///       from the manifests, live throughput/ETA from the advisory
///       `.progress` heartbeats. Works on in-flight and completed sweeps
///       and never touches result bytes.
///
/// Grid flags (shared by all subcommands; the *same* flags must be passed
/// to every shard and to merge — the spec hash enforces this):
///
///   --benchmarks=a,b,..  default: all six paper benchmarks
///   --models=m,..        jit|atomics|ocelot|check (default: ocelot,jit)
///   --energy=CAP:RES[:RATE:CJ:RJ]   repeatable; default: one default config
///   --powers=p,..        power profiles / trace CSVs; `default` = legacy
///   --scenarios=s,..     sensor scenarios / trace CSVs; `default` = bench's
///   --seeds=n,..         default: 99
///   --tau=N              simulated-time budget per cell (required)
///   --no-monitors        disarm the violation detectors
///   --oracle             score outputs with the input-epoch consistency
///                        oracle (fills the oracle_* / *_enforced_runs
///                        columns; part of the spec hash)
///
/// Run flags: --format=jsonl|csv, --workers=N, --checkpoint-every=N,
/// --max-cells=N (stop early; exit 3), --quiet,
/// --fusion=off|pairs|chains (threaded-view fusion tier; default chains),
/// --pgo=FILE (a `--pgo-out` bundle driving superblock-chain selection).
/// Fusion tier and PGO change per-cell wall time only, never result
/// bytes, so they are run-local knobs — not part of the spec hash — and
/// shards of one sweep may legally mix them.
///
/// All bad input exits 1 with a message on stderr; nothing here aborts.
///
//===----------------------------------------------------------------------===//

#include "fleet/FleetRunner.h"
#include "fleet/ShardProgress.h"
#include "harness/Experiment.h"
#include "telemetry/Profile.h"

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#ifndef _WIN32
#include <dirent.h>
#include <sys/stat.h>
#endif

using namespace ocelot;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: ocelot-fleet <plan|run|merge> [grid flags] ...\n"
      "  plan  --shards=K                 show the spec hash and shard "
      "ranges\n"
      "  run   --shard=i/K --out=DIR      evaluate or resume one shard\n"
      "        [--format=jsonl|csv] [--workers=N] [--checkpoint-every=N]\n"
      "        [--max-cells=N] [--quiet] [--fusion=off|pairs|chains]\n"
      "        [--pgo=FILE]\n"
      "  merge --shards=K --out=DIR       validate + merge all shards\n"
      "        [--format=jsonl|csv] [--merged=PATH]\n"
      "  status DIR                       per-shard progress of a sweep "
      "directory\n"
      "grid flags: --benchmarks= --models= --energy=CAP:RES[:RATE:CJ:RJ]\n"
      "            --powers= --scenarios= --seeds= --tau=N --no-monitors\n"
      "            --oracle\n");
  return 1;
}

int fail(const std::string &Msg) {
  std::fprintf(stderr, "error: %s\n", Msg.c_str());
  return 1;
}

bool parseU64Flag(const std::string &Value, uint64_t &Out) {
  if (Value.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  Out = std::strtoull(Value.c_str(), &End, 10);
  return End && *End == '\0' && errno == 0;
}

/// --energy=CAP:RES[:RATE:CJ:RJ]; trailing fields keep their defaults.
bool parseEnergyFlag(const std::string &Value, EnergyConfig &Out,
                     std::string &Error) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (Start <= Value.size()) {
    size_t Colon = Value.find(':', Start);
    if (Colon == std::string::npos)
      Colon = Value.size();
    Parts.push_back(Value.substr(Start, Colon - Start));
    Start = Colon + 1;
  }
  auto Bad = [&] {
    Error = "bad --energy value '" + Value +
            "' (want CAP:RES[:RATE:CHARGE_JITTER:REFILL_JITTER])";
    return false;
  };
  if (Parts.size() < 2 || Parts.size() > 5)
    return Bad();
  uint64_t U;
  if (!parseU64Flag(Parts[0], U))
    return Bad();
  Out.CapacityCycles = U;
  if (!parseU64Flag(Parts[1], U))
    return Bad();
  Out.ReserveCycles = U;
  double *Doubles[] = {&Out.ChargeRate, &Out.ChargeJitter, &Out.RefillJitter};
  for (size_t I = 2; I < Parts.size(); ++I) {
    errno = 0;
    char *End = nullptr;
    double D = std::strtod(Parts[I].c_str(), &End);
    if (Parts[I].empty() || !End || *End != '\0' || errno != 0)
      return Bad();
    *Doubles[I - 2] = D;
  }
  return true;
}

bool ensureDir(const std::string &Path, std::string &Error) {
#ifndef _WIN32
  // mkdir -p: create each component, tolerating ones that exist.
  for (size_t I = 1; I <= Path.size(); ++I) {
    if (I != Path.size() && Path[I] != '/')
      continue;
    std::string Prefix = Path.substr(0, I);
    if (::mkdir(Prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      Error = "cannot create directory " + Prefix + ": " +
              std::strerror(errno);
      return false;
    }
  }
#else
  (void)Path;
  (void)Error;
#endif
  return true;
}

/// `ocelot-fleet status DIR`: one row per manifest found in DIR. Durable
/// progress comes from the manifest (the source of truth); rate and ETA
/// come from the last `.progress` heartbeat when one exists. Needs no
/// grid flags — everything is read from the shard files themselves.
int runStatus(const std::string &Dir) {
#ifdef _WIN32
  return fail("status is not supported on this platform");
#else
  struct Row {
    unsigned Shard = 0, ShardCount = 1;
    ShardManifest M;
    ShardProgress P;
    bool HaveProgress = false;
  };
  std::vector<Row> Rows;
  DIR *D = ::opendir(Dir.c_str());
  if (!D)
    return fail("cannot open directory " + Dir + ": " +
                std::strerror(errno));
  while (struct dirent *E = ::readdir(D)) {
    unsigned Shard, Count;
    char Tail;
    // Only `shard-i-of-K.manifest` names; %c rejects longer suffixes.
    if (std::sscanf(E->d_name, "shard-%u-of-%u.manifes%c", &Shard, &Count,
                    &Tail) != 3 ||
        Tail != 't' ||
        std::strlen(E->d_name) !=
            static_cast<size_t>(std::snprintf(nullptr, 0,
                                              "shard-%u-of-%u.manifest",
                                              Shard, Count)))
      continue;
    Row R;
    R.Shard = Shard;
    R.ShardCount = Count;
    std::string Error;
    if (!loadShardManifest(Dir + "/" + E->d_name, R.M, Error)) {
      std::fprintf(stderr, "warning: %s\n", Error.c_str());
      continue;
    }
    ShardRunOptions Opts;
    Opts.OutDir = Dir;
    Opts.Shard = Shard;
    Opts.ShardCount = Count;
    R.HaveProgress = readLastShardProgress(shardProgressPath(Opts), R.P);
    Rows.push_back(std::move(R));
  }
  ::closedir(D);
  if (Rows.empty())
    return fail("no shard manifests in " + Dir);
  std::sort(Rows.begin(), Rows.end(), [](const Row &A, const Row &B) {
    return A.ShardCount != B.ShardCount ? A.ShardCount < B.ShardCount
                                        : A.Shard < B.Shard;
  });

  std::printf("%-8s %-16s %12s %12s %10s %8s  %s\n", "shard", "cells",
              "durable", "observed", "cells/s", "eta", "state");
  size_t TotalCells = 0, TotalDone = 0;
  unsigned Complete = 0;
  for (const Row &R : Rows) {
    size_t Range = R.M.CellsEnd - R.M.CellsBegin;
    size_t Durable = R.M.CellsNext - R.M.CellsBegin;
    TotalCells += Range;
    TotalDone += Durable;
    Complete += R.M.complete() ? 1 : 0;
    char Id[32], Cells[48], Dur[32], Obs[32], Rate[32], Eta[32];
    std::snprintf(Id, sizeof(Id), "%u/%u", R.Shard, R.ShardCount);
    std::snprintf(Cells, sizeof(Cells), "[%zu, %zu)", R.M.CellsBegin,
                  R.M.CellsEnd);
    std::snprintf(Dur, sizeof(Dur), "%zu/%zu", Durable, Range);
    if (R.HaveProgress) {
      std::snprintf(Obs, sizeof(Obs), "%zu/%zu", R.P.CellsDone, Range);
      std::snprintf(Rate, sizeof(Rate), "%.1f", R.P.CellsPerSec);
      if (R.M.complete() || R.P.done())
        std::snprintf(Eta, sizeof(Eta), "-");
      else
        std::snprintf(Eta, sizeof(Eta), "%.0fs", R.P.EtaSec);
    } else {
      std::snprintf(Obs, sizeof(Obs), "-");
      std::snprintf(Rate, sizeof(Rate), "-");
      std::snprintf(Eta, sizeof(Eta), "-");
    }
    std::printf("%-8s %-16s %12s %12s %10s %8s  %s\n", Id, Cells, Dur, Obs,
                Rate, Eta, R.M.complete() ? "complete" : "in progress");
  }
  std::printf("total: %zu/%zu cells durable, %u/%zu shard(s) complete\n",
              TotalDone, TotalCells, Complete, Rows.size());
  // Exit 0 when the sweep is done, 3 while shards remain — scripts can
  // poll `status` the way they check `run`'s interrupted exit code.
  return Complete == Rows.size() ? 0 : 3;
#endif
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  if (Cmd == "status") {
    std::string Dir;
    for (int I = 2; I < argc; ++I) {
      std::string Arg = argv[I];
      if (Arg.rfind("--out=", 0) == 0)
        Dir = Arg.substr(6);
      else if (!Arg.empty() && Arg[0] != '-' && Dir.empty())
        Dir = Arg;
      else
        return fail("unknown status argument '" + Arg + "'");
    }
    if (Dir.empty())
      return fail("status needs a sweep directory: ocelot-fleet status DIR");
    return runStatus(Dir);
  }
  if (Cmd != "plan" && Cmd != "run" && Cmd != "merge") {
    std::fprintf(stderr, "error: unknown subcommand '%s'\n", Cmd.c_str());
    return usage();
  }

  FleetSpec Fleet;
  Fleet.Models = {"ocelot", "jit"};
  for (const BenchmarkDef &B : allBenchmarks())
    Fleet.Benchmarks.push_back(B.Name);
  Fleet.Powers = {"default"};
  Fleet.Scenarios = {"default"};
  Fleet.Seeds = {99};

  ShardRunOptions Run;
  MergeOptions Merge;
  unsigned Shards = 1;
  bool HaveShard = false, HaveOut = false, HaveEnergy = false;
  std::string Error;

  for (int I = 2; I < argc; ++I) {
    std::string Arg = argv[I];
    auto Value = [&](const char *Prefix) {
      return Arg.substr(std::strlen(Prefix));
    };
    uint64_t U = 0;
    if (Arg.rfind("--benchmarks=", 0) == 0) {
      Fleet.Benchmarks = splitCommaList(Value("--benchmarks="));
    } else if (Arg.rfind("--models=", 0) == 0) {
      Fleet.Models = splitCommaList(Value("--models="));
    } else if (Arg.rfind("--energy=", 0) == 0) {
      EnergyConfig E;
      if (!parseEnergyFlag(Value("--energy="), E, Error))
        return fail(Error);
      if (!HaveEnergy)
        Fleet.Energies.clear();
      HaveEnergy = true;
      Fleet.Energies.push_back(E);
    } else if (Arg.rfind("--powers=", 0) == 0) {
      Fleet.Powers = splitCommaList(Value("--powers="));
    } else if (Arg.rfind("--scenarios=", 0) == 0) {
      Fleet.Scenarios = splitCommaList(Value("--scenarios="));
    } else if (Arg.rfind("--seeds=", 0) == 0) {
      Fleet.Seeds.clear();
      for (const std::string &S : splitCommaList(Value("--seeds="))) {
        if (!parseU64Flag(S, U))
          return fail("bad --seeds value '" + S + "'");
        Fleet.Seeds.push_back(U);
      }
    } else if (Arg.rfind("--tau=", 0) == 0) {
      if (!parseU64Flag(Value("--tau="), Fleet.TauBudget))
        return fail("bad --tau value '" + Value("--tau=") + "'");
    } else if (Arg == "--no-monitors") {
      Fleet.Monitors = false;
    } else if (Arg == "--oracle") {
      Fleet.Oracle = true;
    } else if (Arg.rfind("--shard=", 0) == 0) {
      if (!parseShardSpec(Value("--shard="), Run.Shard, Run.ShardCount,
                          Error))
        return fail(Error);
      HaveShard = true;
    } else if (Arg.rfind("--shards=", 0) == 0) {
      if (!parseU64Flag(Value("--shards="), U) || U == 0)
        return fail("bad --shards value '" + Value("--shards=") +
                    "' (want >= 1)");
      Shards = static_cast<unsigned>(U);
    } else if (Arg.rfind("--out=", 0) == 0) {
      Run.OutDir = Merge.OutDir = Value("--out=");
      HaveOut = true;
    } else if (Arg.rfind("--format=", 0) == 0) {
      SinkFormat F;
      if (!parseSinkFormat(Value("--format="), F, Error))
        return fail(Error);
      Run.Format = Merge.Format = F;
    } else if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseWorkersFlag(Value("--workers=").c_str(), Run.Workers))
        return 1;
    } else if (Arg.rfind("--checkpoint-every=", 0) == 0) {
      if (!parseU64Flag(Value("--checkpoint-every="), U) || U == 0)
        return fail("bad --checkpoint-every value (want >= 1)");
      Run.CheckpointEvery = static_cast<size_t>(U);
    } else if (Arg.rfind("--max-cells=", 0) == 0) {
      if (!parseU64Flag(Value("--max-cells="), U) || U == 0)
        return fail("bad --max-cells value (want >= 1)");
      Run.MaxCells = static_cast<size_t>(U);
    } else if (Arg.rfind("--merged=", 0) == 0) {
      Merge.MergedPath = Value("--merged=");
    } else if (Arg.rfind("--fusion=", 0) == 0) {
      FusionMode F;
      if (!parseFusionMode(Value("--fusion="), F))
        return fail("unknown fusion tier '" + Value("--fusion=") +
                    "' (valid: off, pairs, chains)");
      setBenchFusion(F);
    } else if (Arg.rfind("--pgo=", 0) == 0) {
      auto Bundle = PgoBundle::load(Value("--pgo="), Error);
      if (!Bundle)
        return fail(Error);
      setBenchPgo(std::move(Bundle));
    } else if (Arg == "--quiet") {
      Run.Quiet = true;
    } else {
      return fail("unknown flag '" + Arg + "'");
    }
  }
  if (Fleet.Energies.empty())
    Fleet.Energies.push_back(EnergyConfig());

  // Resolve early so every subcommand rejects a bad grid the same way.
  SweepSpec Spec;
  if (!Fleet.resolve(Spec, Error))
    return fail(Error);

  if (Cmd == "plan") {
    ShardPlan Plan(Spec.cellCount(), Shards);
    std::printf("%s", Fleet.canonical().c_str());
    std::printf("spec-hash %016" PRIx64 "\n", Fleet.hash());
    std::printf("cells %zu\n", Plan.cells());
    for (unsigned S = 0; S < Plan.shards(); ++S) {
      ShardRange R = Plan.range(S);
      std::printf("shard %u/%u cells [%zu, %zu) (%zu)\n", S, Plan.shards(),
                  R.Begin, R.End, R.size());
    }
    return 0;
  }

  if (!HaveOut)
    return fail("missing --out=DIR");
  if (Cmd == "run") {
    if (!HaveShard)
      return fail("missing --shard=i/K");
    if (!ensureDir(Run.OutDir, Error))
      return fail(Error);
    ShardOutcome Outcome;
    if (!runShard(Fleet, Run, Outcome, Error))
      return fail(Error);
    return Outcome == ShardOutcome::Complete ? 0 : 3;
  }

  // merge
  Merge.ShardCount = Shards;
  MergeSummary Summary;
  if (!mergeShards(Fleet, Merge, Summary, Error))
    return fail(Error);
  std::printf("merged %zu cells: %" PRIu64 " completed runs, %" PRIu64
              " violating, %zu starved cell(s), %zu trapped cell(s)\n",
              Summary.Cells, Summary.CompletedRuns, Summary.ViolatingRuns,
              Summary.StarvedCells, Summary.TrappedCells);
  return 0;
}
