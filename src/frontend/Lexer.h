//===- Lexer.h - OCL lexer --------------------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FRONTEND_LEXER_H
#define OCELOT_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace ocelot {

/// Tokenizes an OCL source buffer. Supports '//' line and '/* */' block
/// comments; reports malformed characters and unterminated comments to the
/// diagnostics engine and continues.
class Lexer {
public:
  Lexer(std::string Source, DiagnosticEngine &Diags);

  /// Lexes the whole buffer. The result always ends with an Eof token.
  std::vector<Token> lexAll();

private:
  char peek(int Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Src.size(); }
  SourceLoc loc() const { return SourceLoc(Line, Col); }
  void skipTrivia();
  Token lexToken();
  Token makeToken(TokKind K, SourceLoc Loc) const;

  std::string Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace ocelot

#endif // OCELOT_FRONTEND_LEXER_H
