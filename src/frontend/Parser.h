//===- Parser.h - OCL recursive-descent parser ------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FRONTEND_PARSER_H
#define OCELOT_FRONTEND_PARSER_H

#include "frontend/Ast.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace ocelot {

/// Parses an OCL source buffer into a Module. On error the parser reports a
/// diagnostic and attempts to resynchronize at statement boundaries; callers
/// must consult the diagnostics engine before using the result.
class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Toks(std::move(Tokens)), Diags(Diags) {}

  /// Convenience: lex + parse a source string.
  static std::unique_ptr<Module> parseSource(const std::string &Source,
                                             DiagnosticEngine &Diags);

  std::unique_ptr<Module> parseModule();

private:
  const Token &peek(int Ahead = 0) const;
  const Token &cur() const { return peek(0); }
  Token advance();
  bool check(TokKind K) const { return cur().Kind == K; }
  bool accept(TokKind K);
  Token expect(TokKind K, const char *Context);
  void error(const std::string &Msg);
  void syncToStmtBoundary();

  // Items.
  void parseIoDecl(Module &M);
  void parseStaticDecl(Module &M);
  void parseFnDecl(Module &M);
  Type parseType();

  // Statements.
  std::vector<StmtPtr> parseBlock();
  StmtPtr parseStmt();
  StmtPtr parseLet();
  StmtPtr parseIf();
  StmtPtr parseFor();
  StmtPtr parseAnnot();
  StmtPtr parseOutput(OutputKind K);

  // Expressions (precedence climbing).
  ExprPtr parseExpr();
  ExprPtr parseLogicalOr();
  ExprPtr parseLogicalAnd();
  ExprPtr parseComparison();
  ExprPtr parseBitOr();
  ExprPtr parseBitXor();
  ExprPtr parseBitAnd();
  ExprPtr parseShift();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePrimary();

  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace ocelot

#endif // OCELOT_FRONTEND_PARSER_H
