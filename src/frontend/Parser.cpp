//===- Parser.cpp - OCL recursive-descent parser ------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

using namespace ocelot;

/// Deep-copies an expression. Used to desugar compound indexed assignment
/// (a[i] += e) into a[i] = a[i] + e; Sema restricts such indexes to pure
/// expressions so double evaluation is safe.
static ExprPtr cloneExpr(const Expr &E) {
  auto C = std::make_unique<Expr>();
  C->Kind = E.Kind;
  C->Loc = E.Loc;
  C->IntValue = E.IntValue;
  C->BoolValue = E.BoolValue;
  C->Name = E.Name;
  C->UnOp = E.UnOp;
  C->BinKind = E.BinKind;
  for (const ExprPtr &Child : E.Children)
    C->Children.push_back(cloneExpr(*Child));
  return C;
}

std::unique_ptr<Module> Parser::parseSource(const std::string &Source,
                                            DiagnosticEngine &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  return P.parseModule();
}

const Token &Parser::peek(int Ahead) const {
  size_t I = Pos + static_cast<size_t>(Ahead);
  if (I >= Toks.size())
    I = Toks.size() - 1; // Eof sentinel.
  return Toks[I];
}

Token Parser::advance() {
  Token T = cur();
  if (Pos + 1 < Toks.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

Token Parser::expect(TokKind K, const char *Context) {
  if (check(K))
    return advance();
  error(std::string("expected ") + tokKindName(K) + " " + Context +
        ", found " + tokKindName(cur().Kind));
  return cur();
}

void Parser::error(const std::string &Msg) { Diags.error(cur().Loc, Msg); }

void Parser::syncToStmtBoundary() {
  while (!check(TokKind::Eof) && !check(TokKind::Semi) &&
         !check(TokKind::RBrace))
    advance();
  accept(TokKind::Semi);
}

std::unique_ptr<Module> Parser::parseModule() {
  auto M = std::make_unique<Module>();
  while (!check(TokKind::Eof)) {
    switch (cur().Kind) {
    case TokKind::KwIo:
      parseIoDecl(*M);
      break;
    case TokKind::KwStatic:
      parseStaticDecl(*M);
      break;
    case TokKind::KwFn:
      parseFnDecl(*M);
      break;
    default:
      error("expected 'io', 'static' or 'fn' at top level, found " +
            std::string(tokKindName(cur().Kind)));
      advance();
      break;
    }
    if (Diags.errorCount() > 50)
      break; // Avoid diagnostic floods on garbage input.
  }
  return M;
}

void Parser::parseIoDecl(Module &M) {
  IoDecl D;
  D.Loc = cur().Loc;
  expect(TokKind::KwIo, "to begin io declaration");
  do {
    Token Name = expect(TokKind::Ident, "in io declaration");
    D.Names.push_back(Name.Text);
  } while (accept(TokKind::Comma));
  expect(TokKind::Semi, "after io declaration");
  M.Ios.push_back(std::move(D));
}

void Parser::parseStaticDecl(Module &M) {
  StaticDecl D;
  D.Loc = cur().Loc;
  expect(TokKind::KwStatic, "to begin static declaration");
  D.Name = expect(TokKind::Ident, "in static declaration").Text;
  if (accept(TokKind::Colon)) {
    // static buf: [int; 16];
    expect(TokKind::LBracket, "in static array type");
    expect(TokKind::Ident, "element type in static array"); // 'int' etc.
    expect(TokKind::Semi, "in static array type");
    D.ArraySize = expect(TokKind::IntLit, "array size").IntValue;
    D.IsArray = true;
    expect(TokKind::RBracket, "to close static array type");
  }
  if (accept(TokKind::Assign)) {
    bool Negative = accept(TokKind::Minus);
    D.InitValue = expect(TokKind::IntLit, "static initializer").IntValue;
    if (Negative)
      D.InitValue = -D.InitValue;
  }
  expect(TokKind::Semi, "after static declaration");
  M.Statics.push_back(std::move(D));
}

Type Parser::parseType() {
  if (accept(TokKind::Amp)) {
    // Reference type: &int / &u16 / ...
    expect(TokKind::Ident, "after '&' in type");
    return Type::Ref;
  }
  Token T = expect(TokKind::Ident, "in type position");
  if (T.Text == "bool")
    return Type::Bool;
  // All integer spellings (int, i32, u16, u32, i64, usize...) map to Int.
  return Type::Int;
}

void Parser::parseFnDecl(Module &M) {
  FnDecl F;
  F.Loc = cur().Loc;
  expect(TokKind::KwFn, "to begin function");
  F.Name = expect(TokKind::Ident, "function name").Text;
  expect(TokKind::LParen, "after function name");
  if (!check(TokKind::RParen)) {
    do {
      ParamDecl P;
      P.Loc = cur().Loc;
      P.Name = expect(TokKind::Ident, "parameter name").Text;
      expect(TokKind::Colon, "after parameter name");
      P.Ty = parseType();
      F.Params.push_back(std::move(P));
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "to close parameter list");
  if (accept(TokKind::Arrow))
    F.RetTy = parseType();
  F.Body = parseBlock();
  M.Functions.push_back(std::move(F));
}

std::vector<StmtPtr> Parser::parseBlock() {
  std::vector<StmtPtr> Stmts;
  expect(TokKind::LBrace, "to begin block");
  while (!check(TokKind::RBrace) && !check(TokKind::Eof)) {
    StmtPtr S = parseStmt();
    if (S)
      Stmts.push_back(std::move(S));
    else
      syncToStmtBoundary();
  }
  expect(TokKind::RBrace, "to close block");
  return Stmts;
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::KwLet:
    return parseLet();
  case TokKind::KwIf:
    return parseIf();
  case TokKind::KwFor:
    return parseFor();
  case TokKind::KwBreak: {
    advance();
    expect(TokKind::Semi, "after 'break'");
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Break;
    S->Loc = Loc;
    return S;
  }
  case TokKind::KwContinue: {
    advance();
    expect(TokKind::Semi, "after 'continue'");
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Continue;
    S->Loc = Loc;
    return S;
  }
  case TokKind::KwReturn: {
    advance();
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Return;
    S->Loc = Loc;
    if (!check(TokKind::Semi))
      S->Value2 = parseExpr();
    expect(TokKind::Semi, "after return");
    return S;
  }
  case TokKind::KwAtomic: {
    advance();
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Atomic;
    S->Loc = Loc;
    S->Body = parseBlock();
    return S;
  }
  case TokKind::KwFreshAnnot:
  case TokKind::KwConsistentAnnot:
  case TokKind::KwFreshConsistentAnnot:
    return parseAnnot();
  case TokKind::KwLog:
    advance();
    return parseOutput(OutputKind::Log);
  case TokKind::KwAlarm:
    advance();
    return parseOutput(OutputKind::Alarm);
  case TokKind::KwSend:
    advance();
    return parseOutput(OutputKind::Send);
  case TokKind::KwUart:
    advance();
    return parseOutput(OutputKind::Uart);
  case TokKind::LBrace: {
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Block;
    S->Loc = Loc;
    S->Body = parseBlock();
    return S;
  }
  case TokKind::Star: {
    // *r = e;
    advance();
    Token Name = expect(TokKind::Ident, "after '*' in assignment");
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::Assign;
    S->Loc = Loc;
    S->Target = AssignTarget::Deref;
    S->Name = Name.Text;
    TokKind AssignKind = cur().Kind;
    if (AssignKind == TokKind::PlusAssign ||
        AssignKind == TokKind::MinusAssign ||
        AssignKind == TokKind::StarAssign) {
      advance();
      ExprPtr Rhs = parseExpr();
      BinOp Op = AssignKind == TokKind::PlusAssign  ? BinOp::Add
                 : AssignKind == TokKind::MinusAssign ? BinOp::Sub
                                                      : BinOp::Mul;
      ExprPtr Lhs = Expr::makeUnary(AstUnOp::Deref,
                                    Expr::makeVar(Name.Text, Loc), Loc);
      S->Value = Expr::makeBinary(Op, std::move(Lhs), std::move(Rhs), Loc);
    } else {
      expect(TokKind::Assign, "in deref assignment");
      S->Value = parseExpr();
    }
    expect(TokKind::Semi, "after assignment");
    return S;
  }
  case TokKind::Ident: {
    // Assignment or expression statement.
    if (peek(1).Kind == TokKind::Assign || peek(1).Kind == TokKind::PlusAssign ||
        peek(1).Kind == TokKind::MinusAssign ||
        peek(1).Kind == TokKind::StarAssign) {
      Token Name = advance();
      TokKind AssignKind = advance().Kind;
      auto S = std::make_unique<Stmt>();
      S->Kind = StmtKind::Assign;
      S->Loc = Loc;
      S->Target = AssignTarget::Var;
      S->Name = Name.Text;
      ExprPtr Rhs = parseExpr();
      if (AssignKind != TokKind::Assign) {
        BinOp Op = AssignKind == TokKind::PlusAssign  ? BinOp::Add
                   : AssignKind == TokKind::MinusAssign ? BinOp::Sub
                                                        : BinOp::Mul;
        Rhs = Expr::makeBinary(Op, Expr::makeVar(Name.Text, Loc),
                               std::move(Rhs), Loc);
      }
      S->Value = std::move(Rhs);
      expect(TokKind::Semi, "after assignment");
      return S;
    }
    if (peek(1).Kind == TokKind::LBracket) {
      // Could be a[i] = e; — or an expression statement starting with index.
      // Scan for matching ']' followed by an assignment operator.
      size_t Save = Pos;
      Token Name = advance();
      advance(); // [
      int Depth = 1;
      while (Depth > 0 && !check(TokKind::Eof)) {
        if (check(TokKind::LBracket))
          ++Depth;
        else if (check(TokKind::RBracket))
          --Depth;
        if (Depth > 0)
          advance();
      }
      bool IsIndexedAssign = false;
      if (check(TokKind::RBracket)) {
        TokKind After = peek(1).Kind;
        IsIndexedAssign = After == TokKind::Assign ||
                          After == TokKind::PlusAssign ||
                          After == TokKind::MinusAssign ||
                          After == TokKind::StarAssign;
      }
      Pos = Save;
      if (IsIndexedAssign) {
        advance(); // name
        advance(); // [
        ExprPtr Idx = parseExpr();
        expect(TokKind::RBracket, "to close index");
        TokKind AssignKind = advance().Kind;
        auto S = std::make_unique<Stmt>();
        S->Kind = StmtKind::Assign;
        S->Loc = Loc;
        S->Target = AssignTarget::Index;
        S->Name = Name.Text;
        ExprPtr Rhs = parseExpr();
        if (AssignKind != TokKind::Assign) {
          BinOp Op = AssignKind == TokKind::PlusAssign  ? BinOp::Add
                     : AssignKind == TokKind::MinusAssign ? BinOp::Sub
                                                          : BinOp::Mul;
          Rhs = Expr::makeBinary(
              Op, Expr::makeIndex(Name.Text, cloneExpr(*Idx), Loc),
              std::move(Rhs), Loc);
        }
        S->IndexExpr = std::move(Idx);
        S->Value = std::move(Rhs);
        expect(TokKind::Semi, "after assignment");
        return S;
      }
    }
    // Fall through: expression statement.
    auto S = std::make_unique<Stmt>();
    S->Kind = StmtKind::ExprStmt;
    S->Loc = Loc;
    S->Value2 = parseExpr();
    expect(TokKind::Semi, "after expression statement");
    return S;
  }
  default:
    error("unexpected token " + std::string(tokKindName(cur().Kind)) +
          " at start of statement");
    return nullptr;
  }
}

StmtPtr Parser::parseLet() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwLet, "to begin let");
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Let;
  S->Loc = Loc;
  // 'mut' is accepted and ignored: all OCL lets are mutable (paper §4.1).
  if (check(TokKind::Ident) && cur().Text == "mut")
    advance();
  if (accept(TokKind::KwFresh))
    S->IsFresh = true;
  else if (accept(TokKind::KwConsistent)) {
    S->IsConsistent = true;
    expect(TokKind::LParen, "after 'consistent'");
    S->ConsistentSet =
        static_cast<int>(expect(TokKind::IntLit, "consistent set id").IntValue);
    expect(TokKind::RParen, "to close consistent set id");
  }
  S->Name = expect(TokKind::Ident, "variable name in let").Text;
  if (accept(TokKind::Colon))
    parseType(); // Type ascription is accepted and checked by Sema via init.
  expect(TokKind::Assign, "in let");
  if (check(TokKind::LBracket)) {
    // Array literal: [v; N]
    advance();
    bool Negative = accept(TokKind::Minus);
    S->ArrayInitValue = expect(TokKind::IntLit, "array init value").IntValue;
    if (Negative)
      S->ArrayInitValue = -S->ArrayInitValue;
    expect(TokKind::Semi, "in array literal");
    S->ArraySize = expect(TokKind::IntLit, "array size").IntValue;
    expect(TokKind::RBracket, "to close array literal");
    S->IsArray = true;
  } else {
    S->Init = parseExpr();
  }
  expect(TokKind::Semi, "after let");
  return S;
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwIf, "to begin if");
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Loc = Loc;
  S->Cond = parseExpr();
  S->Then = parseBlock();
  if (accept(TokKind::KwElse)) {
    if (check(TokKind::KwIf)) {
      StmtPtr Nested = parseIf();
      S->Else.push_back(std::move(Nested));
    } else {
      S->Else = parseBlock();
    }
  }
  return S;
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = cur().Loc;
  expect(TokKind::KwFor, "to begin for");
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::For;
  S->Loc = Loc;
  S->Name = expect(TokKind::Ident, "loop variable").Text;
  expect(TokKind::KwIn, "in for loop");
  S->LoopLo = expect(TokKind::IntLit, "loop lower bound").IntValue;
  expect(TokKind::DotDot, "in loop range");
  S->LoopHi = expect(TokKind::IntLit, "loop upper bound").IntValue;
  S->Body = parseBlock();
  return S;
}

StmtPtr Parser::parseAnnot() {
  SourceLoc Loc = cur().Loc;
  TokKind K = advance().Kind;
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Annot;
  S->Loc = Loc;
  expect(TokKind::LParen, "after annotation keyword");
  accept(TokKind::Amp); // Tire writes FreshConsistent(&currMotion, 1).
  S->Name = expect(TokKind::Ident, "annotated variable").Text;
  if (K == TokKind::KwFreshAnnot) {
    S->AnnotFresh = true;
  } else {
    S->AnnotConsistent = true;
    if (K == TokKind::KwFreshConsistentAnnot)
      S->AnnotFresh = true;
    expect(TokKind::Comma, "before consistent set id");
    S->AnnotSet =
        static_cast<int>(expect(TokKind::IntLit, "consistent set id").IntValue);
  }
  expect(TokKind::RParen, "to close annotation");
  expect(TokKind::Semi, "after annotation");
  return S;
}

StmtPtr Parser::parseOutput(OutputKind K) {
  SourceLoc Loc = cur().Loc;
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Output;
  S->Loc = Loc;
  S->OutKind = K;
  expect(TokKind::LParen, "after output keyword");
  if (!check(TokKind::RParen)) {
    do {
      S->OutArgs.push_back(parseExpr());
    } while (accept(TokKind::Comma));
  }
  expect(TokKind::RParen, "to close output");
  expect(TokKind::Semi, "after output");
  return S;
}

// -- Expressions -------------------------------------------------------------

ExprPtr Parser::parseExpr() { return parseLogicalOr(); }

ExprPtr Parser::parseLogicalOr() {
  ExprPtr L = parseLogicalAnd();
  while (check(TokKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseLogicalAnd();
    L = Expr::makeBinary(BinOp::LOr, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprPtr Parser::parseLogicalAnd() {
  ExprPtr L = parseComparison();
  while (check(TokKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseComparison();
    L = Expr::makeBinary(BinOp::LAnd, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprPtr Parser::parseComparison() {
  ExprPtr L = parseBitOr();
  for (;;) {
    BinOp Op;
    switch (cur().Kind) {
    case TokKind::Lt:
      Op = BinOp::Lt;
      break;
    case TokKind::Le:
      Op = BinOp::Le;
      break;
    case TokKind::Gt:
      Op = BinOp::Gt;
      break;
    case TokKind::Ge:
      Op = BinOp::Ge;
      break;
    case TokKind::EqEq:
      Op = BinOp::Eq;
      break;
    case TokKind::NotEq:
      Op = BinOp::Ne;
      break;
    default:
      return L;
    }
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseBitOr();
    L = Expr::makeBinary(Op, std::move(L), std::move(R), Loc);
  }
}

ExprPtr Parser::parseBitOr() {
  ExprPtr L = parseBitXor();
  while (check(TokKind::Pipe)) {
    SourceLoc Loc = advance().Loc;
    L = Expr::makeBinary(BinOp::Or, std::move(L), parseBitXor(), Loc);
  }
  return L;
}

ExprPtr Parser::parseBitXor() {
  ExprPtr L = parseBitAnd();
  while (check(TokKind::Caret)) {
    SourceLoc Loc = advance().Loc;
    L = Expr::makeBinary(BinOp::Xor, std::move(L), parseBitAnd(), Loc);
  }
  return L;
}

ExprPtr Parser::parseBitAnd() {
  ExprPtr L = parseShift();
  while (check(TokKind::Amp)) {
    SourceLoc Loc = advance().Loc;
    L = Expr::makeBinary(BinOp::And, std::move(L), parseShift(), Loc);
  }
  return L;
}

ExprPtr Parser::parseShift() {
  ExprPtr L = parseAdditive();
  for (;;) {
    BinOp Op;
    if (check(TokKind::Shl))
      Op = BinOp::Shl;
    else if (check(TokKind::Shr))
      Op = BinOp::Shr;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = Expr::makeBinary(Op, std::move(L), parseAdditive(), Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  for (;;) {
    BinOp Op;
    if (check(TokKind::Plus))
      Op = BinOp::Add;
    else if (check(TokKind::Minus))
      Op = BinOp::Sub;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = Expr::makeBinary(Op, std::move(L), parseMultiplicative(), Loc);
  }
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  for (;;) {
    BinOp Op;
    if (check(TokKind::Star))
      Op = BinOp::Mul;
    else if (check(TokKind::Slash))
      Op = BinOp::Div;
    else if (check(TokKind::Percent))
      Op = BinOp::Mod;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    L = Expr::makeBinary(Op, std::move(L), parseUnary(), Loc);
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = cur().Loc;
  if (accept(TokKind::Minus))
    return Expr::makeUnary(AstUnOp::Neg, parseUnary(), Loc);
  if (accept(TokKind::Bang))
    return Expr::makeUnary(AstUnOp::LogNot, parseUnary(), Loc);
  if (accept(TokKind::Tilde))
    return Expr::makeUnary(AstUnOp::BitNot, parseUnary(), Loc);
  if (accept(TokKind::Star))
    return Expr::makeUnary(AstUnOp::Deref, parseUnary(), Loc);
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokKind::IntLit: {
    Token T = advance();
    return Expr::makeInt(T.IntValue, Loc);
  }
  case TokKind::KwTrue:
    advance();
    return Expr::makeBool(true, Loc);
  case TokKind::KwFalse:
    advance();
    return Expr::makeBool(false, Loc);
  case TokKind::LParen: {
    advance();
    ExprPtr E = parseExpr();
    expect(TokKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokKind::Amp: {
    advance();
    Token Name = expect(TokKind::Ident, "after '&'");
    return Expr::makeAddrOf(Name.Text, Loc);
  }
  case TokKind::Ident: {
    Token Name = advance();
    if (accept(TokKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!check(TokKind::RParen)) {
        do {
          // '&x' directly in argument position is a reference argument;
          // anywhere else '&' is bitwise-and.
          if (check(TokKind::Amp) && peek(1).Kind == TokKind::Ident &&
              (peek(2).Kind == TokKind::Comma ||
               peek(2).Kind == TokKind::RParen)) {
            SourceLoc ALoc = advance().Loc;
            Token RefName = advance();
            Args.push_back(Expr::makeAddrOf(RefName.Text, ALoc));
          } else {
            Args.push_back(parseExpr());
          }
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "to close call");
      return Expr::makeCall(Name.Text, std::move(Args), Loc);
    }
    if (accept(TokKind::LBracket)) {
      ExprPtr Idx = parseExpr();
      expect(TokKind::RBracket, "to close index");
      return Expr::makeIndex(Name.Text, std::move(Idx), Loc);
    }
    return Expr::makeVar(Name.Text, Loc);
  }
  default:
    error("expected expression, found " +
          std::string(tokKindName(cur().Kind)));
    advance();
    return Expr::makeInt(0, Loc);
  }
}
