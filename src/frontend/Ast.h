//===- Ast.h - OCL abstract syntax tree -------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the OCL modeling language — the paper's Appendix A language
/// (values, references, arrays, if, let, calls, inputs, annotations, atomic
/// regions) extended with bounded for loops (which lowering unrolls, as the
/// paper assumes), break/continue, compound assignment sugar and output
/// builtins.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FRONTEND_AST_H
#define OCELOT_FRONTEND_AST_H

#include "ir/Opcode.h"
#include "ir/Type.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace ocelot {

// -- Expressions -----------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  IntLit,  ///< 42
  BoolLit, ///< true / false
  Var,     ///< x
  Unary,   ///< -e, !e, ~e, *r (deref of a reference parameter)
  Binary,  ///< e1 op e2 (including short-circuit && and ||)
  Call,    ///< f(args) — user function or io-declared sensor
  Index,   ///< a[e]
  AddrOf,  ///< &x — only valid directly as a call argument
};

/// Unary operators at the AST level; Deref is OCL '*r'.
enum class AstUnOp { Neg, BitNot, LogNot, Deref };

struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  // IntLit / BoolLit.
  int64_t IntValue = 0;
  bool BoolValue = false;

  // Var / Call / AddrOf / Index: the referenced name.
  std::string Name;

  // Unary.
  AstUnOp UnOp = AstUnOp::Neg;

  // Binary.
  BinOp BinKind = BinOp::Add;

  // Children: Unary/Index use [0] (and Index target is Name); Binary uses
  // [0], [1]; Call uses all as arguments.
  std::vector<ExprPtr> Children;

  static ExprPtr makeInt(int64_t V, SourceLoc Loc);
  static ExprPtr makeBool(bool V, SourceLoc Loc);
  static ExprPtr makeVar(std::string Name, SourceLoc Loc);
  static ExprPtr makeUnary(AstUnOp Op, ExprPtr Operand, SourceLoc Loc);
  static ExprPtr makeBinary(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc);
  static ExprPtr makeCall(std::string Name, std::vector<ExprPtr> Args,
                          SourceLoc Loc);
  static ExprPtr makeIndex(std::string Name, ExprPtr Idx, SourceLoc Loc);
  static ExprPtr makeAddrOf(std::string Name, SourceLoc Loc);
};

// -- Statements --------------------------------------------------------------

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  Let,      ///< let [fresh|consistent(n)] x [: ty] = e;  or let a = [init; N];
  Assign,   ///< x = e; a[i] = e; *r = e; (+=, -=, *= desugared by parser)
  If,       ///< if e { } else { }
  For,      ///< for i in lo..hi { }  (constant bounds)
  Break,    ///< break;
  Continue, ///< continue;
  Return,   ///< return e?;
  ExprStmt, ///< call-expression statement
  Atomic,   ///< atomic { ... } — manual region
  Annot,    ///< Fresh(x); Consistent(x, n); FreshConsistent(x, n);
  Output,   ///< log(...)/alarm()/send(...)/uart(...)
  Block,    ///< nested { ... }
};

/// Assignment target flavor.
enum class AssignTarget { Var, Index, Deref };

struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  // Let.
  std::string Name;
  bool IsFresh = false;       ///< let fresh x = e
  bool IsConsistent = false;  ///< let consistent(n) x = e
  int ConsistentSet = -1;
  ExprPtr Init;               ///< Scalar initializer.
  bool IsArray = false;       ///< let a = [v; N];
  int64_t ArrayInitValue = 0;
  int64_t ArraySize = 0;

  // Assign.
  AssignTarget Target = AssignTarget::Var;
  ExprPtr IndexExpr; ///< For Index targets.
  ExprPtr Value;

  // If.
  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;

  // For.
  int64_t LoopLo = 0;
  int64_t LoopHi = 0;
  std::vector<StmtPtr> Body; ///< For / Atomic / Block bodies.

  // Return / ExprStmt.
  ExprPtr Value2; ///< Return value or the expression of an ExprStmt.

  // Annot: Name is the variable; flags say which annotations apply.
  bool AnnotFresh = false;
  bool AnnotConsistent = false;
  int AnnotSet = -1;

  // Output.
  OutputKind OutKind = OutputKind::Log;
  std::vector<ExprPtr> OutArgs;
};

// -- Top-level items ---------------------------------------------------------

struct ParamDecl {
  std::string Name;
  Type Ty = Type::Int; ///< Int, Bool or Ref.
  SourceLoc Loc;
};

struct FnDecl {
  std::string Name;
  std::vector<ParamDecl> Params;
  Type RetTy = Type::Unit;
  std::vector<StmtPtr> Body;
  SourceLoc Loc;
};

struct IoDecl {
  std::vector<std::string> Names;
  SourceLoc Loc;
};

struct StaticDecl {
  std::string Name;
  bool IsArray = false;
  int64_t ArraySize = 1;
  int64_t InitValue = 0;
  SourceLoc Loc;
};

/// A parsed OCL compilation unit.
struct Module {
  std::vector<IoDecl> Ios;
  std::vector<StaticDecl> Statics;
  std::vector<FnDecl> Functions;
};

} // namespace ocelot

#endif // OCELOT_FRONTEND_AST_H
