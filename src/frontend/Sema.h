//===- Sema.h - OCL semantic checks -----------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for OCL. Enforces the restrictions the paper's formal
/// system relies on: no recursion, references created only at call sites
/// (ownership — the Rust property §3.3 leans on), annotations name declared
/// variables, bounded loops, and ordinary type/scope rules.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FRONTEND_SEMA_H
#define OCELOT_FRONTEND_SEMA_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"

namespace ocelot {

/// Checks \p M; reports problems to \p Diags.
/// \returns true when the module is semantically valid.
bool checkModule(const Module &M, DiagnosticEngine &Diags);

} // namespace ocelot

#endif // OCELOT_FRONTEND_SEMA_H
