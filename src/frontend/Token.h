//===- Token.h - OCL lexical tokens -----------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FRONTEND_TOKEN_H
#define OCELOT_FRONTEND_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace ocelot {

enum class TokKind {
  Eof,
  Ident,
  IntLit,
  // Keywords.
  KwFn,
  KwLet,
  KwFresh,      // 'fresh' in let bindings
  KwConsistent, // 'consistent' in let bindings
  KwFreshAnnot,      // 'Fresh' standalone annotation
  KwConsistentAnnot, // 'Consistent' standalone annotation
  KwFreshConsistentAnnot, // 'FreshConsistent': both at once (Tire, Fig. 9)
  KwIf,
  KwElse,
  KwFor,
  KwIn,
  KwBreak,
  KwContinue,
  KwReturn,
  KwAtomic,
  KwIo,
  KwStatic,
  KwTrue,
  KwFalse,
  KwLog,
  KwAlarm,
  KwSend,
  KwUart,
  // Punctuation / operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Colon,
  Arrow,   // ->
  DotDot,  // ..
  Amp,     // &
  AmpAmp,  // &&
  Pipe,    // |
  PipePipe,// ||
  Caret,   // ^
  Bang,    // !
  Tilde,   // ~
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Shl, // <<
  Shr, // >>
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,// -=
  StarAssign, // *=
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;  ///< Identifier spelling.
  int64_t IntValue = 0;
  SourceLoc Loc;
};

const char *tokKindName(TokKind K);

} // namespace ocelot

#endif // OCELOT_FRONTEND_TOKEN_H
