//===- Lexer.cpp - OCL lexer -----------------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cctype>
#include <map>

using namespace ocelot;

const char *ocelot::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of file";
  case TokKind::Ident:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwLet:
    return "'let'";
  case TokKind::KwFresh:
    return "'fresh'";
  case TokKind::KwConsistent:
    return "'consistent'";
  case TokKind::KwFreshAnnot:
    return "'Fresh'";
  case TokKind::KwConsistentAnnot:
    return "'Consistent'";
  case TokKind::KwFreshConsistentAnnot:
    return "'FreshConsistent'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwFor:
    return "'for'";
  case TokKind::KwIn:
    return "'in'";
  case TokKind::KwBreak:
    return "'break'";
  case TokKind::KwContinue:
    return "'continue'";
  case TokKind::KwReturn:
    return "'return'";
  case TokKind::KwAtomic:
    return "'atomic'";
  case TokKind::KwIo:
    return "'io'";
  case TokKind::KwStatic:
    return "'static'";
  case TokKind::KwTrue:
    return "'true'";
  case TokKind::KwFalse:
    return "'false'";
  case TokKind::KwLog:
    return "'log'";
  case TokKind::KwAlarm:
    return "'alarm'";
  case TokKind::KwSend:
    return "'send'";
  case TokKind::KwUart:
    return "'uart'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::LBracket:
    return "'['";
  case TokKind::RBracket:
    return "']'";
  case TokKind::Semi:
    return "';'";
  case TokKind::Comma:
    return "','";
  case TokKind::Colon:
    return "':'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::DotDot:
    return "'..'";
  case TokKind::Amp:
    return "'&'";
  case TokKind::AmpAmp:
    return "'&&'";
  case TokKind::Pipe:
    return "'|'";
  case TokKind::PipePipe:
    return "'||'";
  case TokKind::Caret:
    return "'^'";
  case TokKind::Bang:
    return "'!'";
  case TokKind::Tilde:
    return "'~'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Shl:
    return "'<<'";
  case TokKind::Shr:
    return "'>>'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Assign:
    return "'='";
  case TokKind::PlusAssign:
    return "'+='";
  case TokKind::MinusAssign:
    return "'-='";
  case TokKind::StarAssign:
    return "'*='";
  }
  return "?";
}

Lexer::Lexer(std::string Source, DiagnosticEngine &Diags)
    : Src(std::move(Source)), Diags(Diags) {}

char Lexer::peek(int Ahead) const {
  size_t P = Pos + static_cast<size_t>(Ahead);
  return P < Src.size() ? Src[P] : '\0';
}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  for (;;) {
    if (atEnd())
      return;
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      bool Closed = false;
      while (!atEnd()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokKind K, SourceLoc Loc) const {
  Token T;
  T.Kind = K;
  T.Loc = Loc;
  return T;
}

static const std::map<std::string, TokKind> &keywordMap() {
  static const std::map<std::string, TokKind> Map = {
      {"fn", TokKind::KwFn},
      {"let", TokKind::KwLet},
      {"fresh", TokKind::KwFresh},
      {"consistent", TokKind::KwConsistent},
      {"Fresh", TokKind::KwFreshAnnot},
      {"Consistent", TokKind::KwConsistentAnnot},
      {"FreshConsistent", TokKind::KwFreshConsistentAnnot},
      {"if", TokKind::KwIf},
      {"else", TokKind::KwElse},
      {"for", TokKind::KwFor},
      {"in", TokKind::KwIn},
      {"break", TokKind::KwBreak},
      {"continue", TokKind::KwContinue},
      {"return", TokKind::KwReturn},
      {"atomic", TokKind::KwAtomic},
      {"io", TokKind::KwIo},
      {"static", TokKind::KwStatic},
      {"true", TokKind::KwTrue},
      {"false", TokKind::KwFalse},
      {"log", TokKind::KwLog},
      {"alarm", TokKind::KwAlarm},
      {"send", TokKind::KwSend},
      {"uart", TokKind::KwUart},
  };
  return Map;
}

Token Lexer::lexToken() {
  skipTrivia();
  SourceLoc L = loc();
  if (atEnd())
    return makeToken(TokKind::Eof, L);

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_'))
      Text += advance();
    auto It = keywordMap().find(Text);
    Token T = makeToken(It == keywordMap().end() ? TokKind::Ident : It->second,
                        L);
    T.Text = Text;
    return T;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t V = C - '0';
    bool Hex = false;
    if (C == '0' && (peek() == 'x' || peek() == 'X')) {
      advance();
      Hex = true;
      V = 0;
    }
    while (!atEnd()) {
      char D = peek();
      if (Hex && std::isxdigit(static_cast<unsigned char>(D))) {
        advance();
        int Digit = std::isdigit(static_cast<unsigned char>(D))
                        ? D - '0'
                        : std::tolower(D) - 'a' + 10;
        V = V * 16 + Digit;
      } else if (!Hex && std::isdigit(static_cast<unsigned char>(D))) {
        advance();
        V = V * 10 + (D - '0');
      } else if (D == '_') {
        advance(); // digit separator
      } else {
        break;
      }
    }
    Token T = makeToken(TokKind::IntLit, L);
    T.IntValue = V;
    return T;
  }

  auto Two = [&](char Next, TokKind IfTwo, TokKind IfOne) {
    if (peek() == Next) {
      advance();
      return makeToken(IfTwo, L);
    }
    return makeToken(IfOne, L);
  };

  switch (C) {
  case '(':
    return makeToken(TokKind::LParen, L);
  case ')':
    return makeToken(TokKind::RParen, L);
  case '{':
    return makeToken(TokKind::LBrace, L);
  case '}':
    return makeToken(TokKind::RBrace, L);
  case '[':
    return makeToken(TokKind::LBracket, L);
  case ']':
    return makeToken(TokKind::RBracket, L);
  case ';':
    return makeToken(TokKind::Semi, L);
  case ',':
    return makeToken(TokKind::Comma, L);
  case ':':
    return makeToken(TokKind::Colon, L);
  case '^':
    return makeToken(TokKind::Caret, L);
  case '~':
    return makeToken(TokKind::Tilde, L);
  case '%':
    return makeToken(TokKind::Percent, L);
  case '.':
    if (peek() == '.') {
      advance();
      return makeToken(TokKind::DotDot, L);
    }
    Diags.error(L, "unexpected character '.'");
    return lexToken();
  case '&':
    return Two('&', TokKind::AmpAmp, TokKind::Amp);
  case '|':
    return Two('|', TokKind::PipePipe, TokKind::Pipe);
  case '!':
    return Two('=', TokKind::NotEq, TokKind::Bang);
  case '+':
    return Two('=', TokKind::PlusAssign, TokKind::Plus);
  case '-':
    if (peek() == '>') {
      advance();
      return makeToken(TokKind::Arrow, L);
    }
    return Two('=', TokKind::MinusAssign, TokKind::Minus);
  case '*':
    return Two('=', TokKind::StarAssign, TokKind::Star);
  case '/':
    return makeToken(TokKind::Slash, L);
  case '<':
    if (peek() == '<') {
      advance();
      return makeToken(TokKind::Shl, L);
    }
    return Two('=', TokKind::Le, TokKind::Lt);
  case '>':
    if (peek() == '>') {
      advance();
      return makeToken(TokKind::Shr, L);
    }
    return Two('=', TokKind::Ge, TokKind::Gt);
  case '=':
    return Two('=', TokKind::EqEq, TokKind::Assign);
  default:
    Diags.error(L, std::string("unexpected character '") + C + "'");
    return lexToken();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Toks;
  for (;;) {
    Token T = lexToken();
    bool IsEof = T.Kind == TokKind::Eof;
    Toks.push_back(std::move(T));
    if (IsEof)
      return Toks;
  }
}
