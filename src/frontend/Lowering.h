//===- Lowering.h - AST to Ocelot IR ----------------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a semantically valid OCL module to IR:
///   * bounded for loops are fully unrolled (the paper's language assumes
///     bound loops are unrolled to ifs, §4.1);
///   * every `return` branches to a single exit block, giving each function
///     the "return landing pad" that makes post-dominance well-behaved
///     (§6.2);
///   * local arrays and address-taken locals are promoted to function-static
///     non-volatile globals (sound because recursion is rejected), matching
///     NVRAM-main-memory intermittent platforms;
///   * short-circuit && / || become control flow;
///   * manual `atomic { }` blocks become AtomicStart/AtomicEnd bounds.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_FRONTEND_LOWERING_H
#define OCELOT_FRONTEND_LOWERING_H

#include "frontend/Ast.h"
#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <memory>

namespace ocelot {

/// Lowers \p M (which must have passed Sema) into a fresh Program.
/// \returns nullptr and reports diagnostics on internal failure.
std::unique_ptr<Program> lowerModule(const Module &M, DiagnosticEngine &Diags);

} // namespace ocelot

#endif // OCELOT_FRONTEND_LOWERING_H
