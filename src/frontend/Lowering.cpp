//===- Lowering.cpp - AST to Ocelot IR ------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Lowering.h"

#include "ir/IRBuilder.h"

#include <cassert>
#include <map>
#include <set>

using namespace ocelot;

namespace {

/// Where a source-level name lives after lowering.
struct Slot {
  enum class Kind { Reg, Global, GlobalArray, RefParam };
  Kind K = Kind::Reg;
  int Index = -1; ///< Register index or global id.
};

class Lowerer {
public:
  Lowerer(const Module &M, DiagnosticEngine &Diags)
      : M(M), Diags(Diags), P(std::make_unique<Program>()), B(*P) {}

  std::unique_ptr<Program> run() {
    declareTopLevel();
    for (const FnDecl &Fn : M.Functions)
      lowerFunction(Fn);
    const Function *Main = P->functionByName("main");
    assert(Main && "sema guarantees main exists");
    P->setMainFunction(Main->id());
    if (Diags.hasErrors())
      return nullptr;
    return std::move(P);
  }

private:
  // -- Top-level ------------------------------------------------------------

  void declareTopLevel() {
    for (const IoDecl &Io : M.Ios)
      for (const std::string &Name : Io.Names)
        P->addSensor({Name, Io.Loc});
    for (const StaticDecl &S : M.Statics) {
      GlobalVar G;
      G.Name = S.Name;
      G.Size = S.IsArray ? static_cast<int>(S.ArraySize) : 1;
      G.Init.assign(static_cast<size_t>(G.Size), S.InitValue);
      G.Loc = S.Loc;
      P->addGlobal(std::move(G));
    }
    // Declare all signatures before lowering any body so calls resolve.
    for (const FnDecl &Fn : M.Functions) {
      Function *F = P->addFunction(Fn.Name);
      for (const ParamDecl &Par : Fn.Params)
        F->addParam(Par.Name, Par.Ty == Type::Ref);
      F->setHasReturnValue(Fn.RetTy != Type::Unit);
    }
  }

  // -- Scopes -----------------------------------------------------------------

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void bind(const std::string &Name, Slot S) { Scopes.back()[Name] = S; }

  Slot resolve(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    int Gid = P->findGlobal(Name);
    assert(Gid >= 0 && "sema guarantees names resolve");
    Slot S;
    S.K = isArrayStatic(Name) ? Slot::Kind::GlobalArray : Slot::Kind::Global;
    S.Index = Gid;
    return S;
  }

  bool isArrayStatic(const std::string &Name) const {
    for (const StaticDecl &S : M.Statics)
      if (S.Name == Name)
        return S.IsArray;
    return false;
  }

  // -- Address-taken scan ----------------------------------------------------

  void scanAddrTaken(const Expr &E, std::set<std::string> &Out) {
    if (E.Kind == ExprKind::AddrOf)
      Out.insert(E.Name);
    for (const ExprPtr &C : E.Children)
      scanAddrTaken(*C, Out);
  }

  void scanAddrTaken(const std::vector<StmtPtr> &Stmts,
                     std::set<std::string> &Out) {
    for (const StmtPtr &S : Stmts) {
      if (S->Init)
        scanAddrTaken(*S->Init, Out);
      if (S->IndexExpr)
        scanAddrTaken(*S->IndexExpr, Out);
      if (S->Value)
        scanAddrTaken(*S->Value, Out);
      if (S->Cond)
        scanAddrTaken(*S->Cond, Out);
      if (S->Value2)
        scanAddrTaken(*S->Value2, Out);
      for (const ExprPtr &A : S->OutArgs)
        scanAddrTaken(*A, Out);
      scanAddrTaken(S->Then, Out);
      scanAddrTaken(S->Else, Out);
      scanAddrTaken(S->Body, Out);
    }
  }

  /// Returns (creating on first use) the function-static global that backs a
  /// promoted local. Promoted names are unique per (function, variable).
  int promotedGlobal(const std::string &Var, int Size, SourceLoc Loc) {
    std::string Name = F->name() + "::" + Var;
    int Gid = P->findGlobal(Name);
    if (Gid >= 0)
      return Gid;
    GlobalVar G;
    G.Name = Name;
    G.Size = Size;
    G.Init.assign(static_cast<size_t>(Size), 0);
    G.IsPromotedLocal = true;
    G.Loc = Loc;
    return P->addGlobal(std::move(G));
  }

  // -- Block plumbing ----------------------------------------------------------

  bool terminated() const { return B.blockPtr()->hasTerminator(); }

  // -- Expressions --------------------------------------------------------------

  Operand lowerExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return Operand::imm(E.IntValue);
    case ExprKind::BoolLit:
      return Operand::imm(E.BoolValue ? 1 : 0);
    case ExprKind::Var: {
      Slot S = resolve(E.Name);
      switch (S.K) {
      case Slot::Kind::Reg:
        return Operand::reg(S.Index);
      case Slot::Kind::Global:
        return Operand::reg(B.emitLoadG(S.Index, E.Loc));
      case Slot::Kind::RefParam:
        // Only reachable as the operand of a deref ('*r'); the register
        // holds the reference value itself.
        return Operand::reg(S.Index);
      case Slot::Kind::GlobalArray:
        assert(false && "sema rejects direct use of arrays as scalars");
        return Operand::imm(0);
      }
      return Operand::imm(0);
    }
    case ExprKind::Unary: {
      if (E.UnOp == AstUnOp::Deref) {
        Operand Ref = lowerExpr(*E.Children[0]);
        return Operand::reg(B.emitLoadInd(Ref, E.Loc));
      }
      Operand A = lowerExpr(*E.Children[0]);
      UnOp Op = E.UnOp == AstUnOp::Neg     ? UnOp::Neg
                : E.UnOp == AstUnOp::BitNot ? UnOp::Not
                                            : UnOp::LNot;
      return Operand::reg(B.emitUn(Op, A, E.Loc));
    }
    case ExprKind::Binary: {
      if (E.BinKind == BinOp::LAnd || E.BinKind == BinOp::LOr)
        return lowerShortCircuit(E);
      Operand L = lowerExpr(*E.Children[0]);
      Operand R = lowerExpr(*E.Children[1]);
      return Operand::reg(B.emitBin(E.BinKind, L, R, E.Loc));
    }
    case ExprKind::Call:
      return lowerCall(E, /*WantValue=*/true);
    case ExprKind::Index: {
      Slot S = resolve(E.Name);
      assert(S.K == Slot::Kind::GlobalArray && "sema checks array indexing");
      Operand Idx = lowerExpr(*E.Children[0]);
      return Operand::reg(B.emitLoadA(S.Index, Idx, E.Loc));
    }
    case ExprKind::AddrOf:
      assert(false && "AddrOf handled at call sites");
      return Operand::imm(0);
    }
    return Operand::imm(0);
  }

  Operand lowerShortCircuit(const Expr &E) {
    // result = L; if (need RHS) result = R;
    int Result = F->newReg();
    Operand L = lowerExpr(*E.Children[0]);
    B.emitMovTo(Result, L, E.Loc);
    BasicBlock *RhsBB = F->addBlock("sc.rhs");
    BasicBlock *JoinBB = F->addBlock("sc.join");
    if (E.BinKind == BinOp::LAnd)
      B.emitCondBr(Operand::reg(Result), RhsBB->id(), JoinBB->id(), E.Loc);
    else
      B.emitCondBr(Operand::reg(Result), JoinBB->id(), RhsBB->id(), E.Loc);
    B.setBlock(RhsBB);
    Operand R = lowerExpr(*E.Children[1]);
    B.emitMovTo(Result, R, E.Loc);
    B.emitBr(JoinBB->id(), E.Loc);
    B.setBlock(JoinBB);
    return Operand::reg(Result);
  }

  Operand lowerCall(const Expr &E, bool WantValue) {
    int SensorId = P->findSensor(E.Name);
    if (SensorId >= 0)
      return Operand::reg(B.emitInput(SensorId, E.Loc));

    Function *Callee = P->functionByName(E.Name);
    assert(Callee && "sema checks calls resolve");
    std::vector<Operand> Args;
    std::vector<int> RefGlobals;
    for (size_t I = 0; I < E.Children.size(); ++I) {
      const Expr &Arg = *E.Children[I];
      if (Arg.Kind == ExprKind::AddrOf) {
        Slot S = resolve(Arg.Name);
        assert((S.K == Slot::Kind::Global) &&
               "address-taken locals are promoted; statics are globals");
        // The reference value is the global id itself.
        Args.push_back(Operand::imm(S.Index));
        RefGlobals.push_back(S.Index);
      } else {
        Args.push_back(lowerExpr(Arg));
        RefGlobals.push_back(-1);
      }
    }
    int Dst = -1;
    if (WantValue && Callee->hasReturnValue())
      Dst = F->newReg();
    B.emitCall(Dst, Callee->id(), std::move(Args), std::move(RefGlobals),
               E.Loc);
    return Dst >= 0 ? Operand::reg(Dst) : Operand::none();
  }

  /// Reads the current value of a scalar variable (for annotations).
  Operand readVar(const std::string &Name, SourceLoc Loc) {
    Slot S = resolve(Name);
    if (S.K == Slot::Kind::Reg)
      return Operand::reg(S.Index);
    assert(S.K == Slot::Kind::Global && "annotations apply to scalars");
    return Operand::reg(B.emitLoadG(S.Index, Loc));
  }

  // -- Statements ------------------------------------------------------------

  void lowerStmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts) {
      if (terminated())
        return; // Unreachable code after return/break/continue.
      lowerStmt(*S);
    }
  }

  void lowerStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Let:
      lowerLet(S);
      break;
    case StmtKind::Assign:
      lowerAssign(S);
      break;
    case StmtKind::If:
      lowerIf(S);
      break;
    case StmtKind::For:
      lowerFor(S);
      break;
    case StmtKind::Break:
      assert(!LoopStack.empty());
      B.emitBr(LoopStack.back().second, S.Loc);
      break;
    case StmtKind::Continue:
      assert(!LoopStack.empty());
      B.emitBr(LoopStack.back().first, S.Loc);
      break;
    case StmtKind::Return:
      if (S.Value2) {
        Operand V = lowerExpr(*S.Value2);
        B.emitMovTo(RetReg, V, S.Loc);
      }
      B.emitBr(ExitBB->id(), S.Loc);
      break;
    case StmtKind::ExprStmt:
      lowerCall(*S.Value2, /*WantValue=*/false);
      break;
    case StmtKind::Atomic: {
      int RegionId = P->newRegionId();
      B.emitAtomicStart(RegionId, S.Loc);
      pushScope();
      lowerStmts(S.Body);
      popScope();
      assert(!terminated() && "sema rejects control flow out of atomic");
      B.emitAtomicEnd(RegionId, S.Loc);
      break;
    }
    case StmtKind::Annot: {
      Operand V = readVar(S.Name, S.Loc);
      if (S.AnnotFresh)
        B.emitFresh(V, S.Name, S.Loc);
      if (S.AnnotConsistent)
        B.emitConsistent(V, S.AnnotSet, S.Name, S.Loc);
      break;
    }
    case StmtKind::Output: {
      std::vector<Operand> Args;
      for (const ExprPtr &A : S.OutArgs)
        Args.push_back(lowerExpr(*A));
      B.emitOutput(S.OutKind, std::move(Args), S.Loc);
      break;
    }
    case StmtKind::Block:
      pushScope();
      lowerStmts(S.Body);
      popScope();
      break;
    }
  }

  void lowerLet(const Stmt &S) {
    if (S.IsArray) {
      int Gid =
          promotedGlobal(S.Name, static_cast<int>(S.ArraySize), S.Loc);
      // Re-initialize the array at the declaration point to preserve
      // per-activation semantics of the promoted local.
      for (int64_t I = 0; I < S.ArraySize; ++I)
        B.emitStoreA(Gid, Operand::imm(I), Operand::imm(S.ArrayInitValue),
                     S.Loc);
      Slot Sl;
      Sl.K = Slot::Kind::GlobalArray;
      Sl.Index = Gid;
      bind(S.Name, Sl);
      return;
    }

    Operand Init = lowerExpr(*S.Init);
    Operand VarValue;
    if (AddrTaken.count(S.Name)) {
      int Gid = promotedGlobal(S.Name, 1, S.Loc);
      B.emitStoreG(Gid, Init, S.Loc);
      Slot Sl;
      Sl.K = Slot::Kind::Global;
      Sl.Index = Gid;
      bind(S.Name, Sl);
      if (S.IsFresh || S.IsConsistent)
        VarValue = Operand::reg(B.emitLoadG(Gid, S.Loc));
    } else {
      int Reg = F->newReg();
      B.emitMovTo(Reg, Init, S.Loc);
      Slot Sl;
      Sl.K = Slot::Kind::Reg;
      Sl.Index = Reg;
      bind(S.Name, Sl);
      VarValue = Operand::reg(Reg);
    }
    if (S.IsFresh)
      B.emitFresh(VarValue, S.Name, S.Loc);
    if (S.IsConsistent)
      B.emitConsistent(VarValue, S.ConsistentSet, S.Name, S.Loc);
  }

  void lowerAssign(const Stmt &S) {
    switch (S.Target) {
    case AssignTarget::Var: {
      Operand V = lowerExpr(*S.Value);
      Slot Sl = resolve(S.Name);
      if (Sl.K == Slot::Kind::Reg)
        B.emitMovTo(Sl.Index, V, S.Loc);
      else {
        assert(Sl.K == Slot::Kind::Global);
        B.emitStoreG(Sl.Index, V, S.Loc);
      }
      break;
    }
    case AssignTarget::Index: {
      Slot Sl = resolve(S.Name);
      assert(Sl.K == Slot::Kind::GlobalArray);
      Operand Idx = lowerExpr(*S.IndexExpr);
      Operand V = lowerExpr(*S.Value);
      B.emitStoreA(Sl.Index, Idx, V, S.Loc);
      break;
    }
    case AssignTarget::Deref: {
      Slot Sl = resolve(S.Name);
      assert(Sl.K == Slot::Kind::RefParam);
      Operand V = lowerExpr(*S.Value);
      B.emitStoreInd(Operand::reg(Sl.Index), V, S.Loc);
      break;
    }
    }
  }

  void lowerIf(const Stmt &S) {
    Operand Cond = lowerExpr(*S.Cond);
    BasicBlock *ThenBB = F->addBlock("if.then");
    BasicBlock *ElseBB = S.Else.empty() ? nullptr : F->addBlock("if.else");
    BasicBlock *JoinBB = F->addBlock("if.join");
    B.emitCondBr(Cond, ThenBB->id(), ElseBB ? ElseBB->id() : JoinBB->id(),
                 S.Loc);
    B.setBlock(ThenBB);
    pushScope();
    lowerStmts(S.Then);
    popScope();
    if (!terminated())
      B.emitBr(JoinBB->id(), S.Loc);
    if (ElseBB) {
      B.setBlock(ElseBB);
      pushScope();
      lowerStmts(S.Else);
      popScope();
      if (!terminated())
        B.emitBr(JoinBB->id(), S.Loc);
    }
    B.setBlock(JoinBB);
  }

  void lowerFor(const Stmt &S) {
    int64_t N = S.LoopHi - S.LoopLo;
    BasicBlock *ExitLoop = F->addBlock("for.exit");
    if (N <= 0) {
      B.emitBr(ExitLoop->id(), S.Loc);
      B.setBlock(ExitLoop);
      return;
    }
    std::vector<BasicBlock *> Iters;
    Iters.reserve(static_cast<size_t>(N));
    for (int64_t I = 0; I < N; ++I)
      Iters.push_back(F->addBlock("for.iter" + std::to_string(I)));
    B.emitBr(Iters[0]->id(), S.Loc);
    for (int64_t I = 0; I < N; ++I) {
      B.setBlock(Iters[I]);
      int NextId =
          I + 1 < N ? Iters[static_cast<size_t>(I + 1)]->id() : ExitLoop->id();
      LoopStack.push_back({NextId, ExitLoop->id()});
      pushScope();
      int IterReg = F->newReg();
      B.emitMovTo(IterReg, Operand::imm(S.LoopLo + I), S.Loc);
      Slot Sl;
      Sl.K = Slot::Kind::Reg;
      Sl.Index = IterReg;
      bind(S.Name, Sl);
      lowerStmts(S.Body);
      popScope();
      LoopStack.pop_back();
      if (!terminated())
        B.emitBr(NextId, S.Loc);
    }
    B.setBlock(ExitLoop);
  }

  // -- Functions ---------------------------------------------------------------

  void lowerFunction(const FnDecl &Fn) {
    F = P->functionByName(Fn.Name);
    B.setFunction(F);
    Scopes.clear();
    LoopStack.clear();
    AddrTaken.clear();
    scanAddrTaken(Fn.Body, AddrTaken);

    BasicBlock *Entry = F->addBlock("entry");
    ExitBB = F->addBlock("exit");
    B.setBlock(Entry);
    pushScope();
    for (int I = 0; I < F->numParams(); ++I) {
      Slot Sl;
      Sl.K = F->paramIsRef(I) ? Slot::Kind::RefParam : Slot::Kind::Reg;
      Sl.Index = I;
      bind(F->paramName(I), Sl);
    }
    RetReg = F->hasReturnValue() ? F->newReg() : -1;

    lowerStmts(Fn.Body);
    if (!terminated())
      B.emitBr(ExitBB->id(), Fn.Loc);

    B.setBlock(ExitBB);
    B.emitRet(F->hasReturnValue() ? Operand::reg(RetReg) : Operand::none(),
              Fn.Loc);
    popScope();
  }

  const Module &M;
  DiagnosticEngine &Diags;
  std::unique_ptr<Program> P;
  IRBuilder B;

  Function *F = nullptr;
  std::vector<std::map<std::string, Slot>> Scopes;
  std::set<std::string> AddrTaken;
  /// (continue target, break target) for the innermost unrolled iteration.
  std::vector<std::pair<int, int>> LoopStack;
  int RetReg = -1;
  BasicBlock *ExitBB = nullptr;
};

} // namespace

std::unique_ptr<Program> ocelot::lowerModule(const Module &M,
                                             DiagnosticEngine &Diags) {
  return Lowerer(M, Diags).run();
}
