//===- Sema.cpp - OCL semantic checks ------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Sema.h"

#include <map>
#include <set>
#include <vector>

using namespace ocelot;

namespace {

struct VarInfo {
  Type Ty = Type::Int;
  bool IsArray = false;
  bool IsStatic = false;
  /// Parameters and loop variables cannot have their address taken (only
  /// let-bound locals and statics can back a reference).
  bool NoAddr = false;
};

struct FnSig {
  std::vector<Type> Params;
  Type Ret = Type::Unit;
  const FnDecl *Decl = nullptr;
};

class SemaChecker {
public:
  SemaChecker(const Module &M, DiagnosticEngine &Diags) : M(M), Diags(Diags) {}

  bool run() {
    collectTopLevel();
    if (Diags.hasErrors())
      return false;
    for (const FnDecl &F : M.Functions)
      checkFunction(F);
    checkNoRecursion();
    if (!Funcs.count("main"))
      Diags.error({}, "program has no 'main' function");
    else if (!Funcs["main"].Params.empty())
      Diags.error(Funcs["main"].Decl->Loc, "'main' must take no parameters");
    return !Diags.hasErrors();
  }

private:
  void error(SourceLoc Loc, const std::string &Msg) { Diags.error(Loc, Msg); }

  void collectTopLevel() {
    for (const IoDecl &Io : M.Ios)
      for (const std::string &Name : Io.Names)
        if (!Sensors.insert(Name).second)
          error(Io.Loc, "duplicate io declaration '" + Name + "'");
    for (const StaticDecl &S : M.Statics) {
      if (Sensors.count(S.Name) || Statics.count(S.Name)) {
        error(S.Loc, "duplicate top-level name '" + S.Name + "'");
        continue;
      }
      VarInfo V;
      V.Ty = Type::Int;
      V.IsArray = S.IsArray;
      V.IsStatic = true;
      Statics[S.Name] = V;
      if (S.IsArray && S.ArraySize <= 0)
        error(S.Loc, "static array '" + S.Name + "' must have positive size");
    }
    for (const FnDecl &F : M.Functions) {
      if (Sensors.count(F.Name) || Statics.count(F.Name) ||
          Funcs.count(F.Name)) {
        error(F.Loc, "duplicate top-level name '" + F.Name + "'");
        continue;
      }
      FnSig Sig;
      Sig.Ret = F.RetTy;
      Sig.Decl = &F;
      std::set<std::string> ParamNames;
      for (const ParamDecl &P : F.Params) {
        Sig.Params.push_back(P.Ty);
        if (!ParamNames.insert(P.Name).second)
          error(P.Loc, "duplicate parameter '" + P.Name + "' in " + F.Name);
      }
      Funcs[F.Name] = std::move(Sig);
    }
  }

  // -- Scopes --------------------------------------------------------------

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  bool declare(SourceLoc Loc, const std::string &Name, VarInfo Info) {
    for (const auto &Scope : Scopes)
      if (Scope.count(Name)) {
        error(Loc, "redeclaration of '" + Name +
                       "' (OCL disallows shadowing for analysis clarity)");
        return false;
      }
    if (Statics.count(Name)) {
      error(Loc, "local '" + Name + "' shadows a static");
      return false;
    }
    Scopes.back()[Name] = Info;
    return true;
  }

  const VarInfo *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return &Found->second;
    }
    auto St = Statics.find(Name);
    return St == Statics.end() ? nullptr : &St->second;
  }

  // -- Expressions -----------------------------------------------------------

  /// Type-checks \p E and returns its type; reports and returns Int on error
  /// to limit cascades.
  Type checkExpr(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::IntLit:
      return Type::Int;
    case ExprKind::BoolLit:
      return Type::Bool;
    case ExprKind::Var: {
      const VarInfo *V = lookup(E.Name);
      if (!V) {
        error(E.Loc, "use of undeclared variable '" + E.Name + "'");
        return Type::Int;
      }
      if (V->IsArray) {
        error(E.Loc, "array '" + E.Name + "' used as a scalar");
        return Type::Int;
      }
      return V->Ty;
    }
    case ExprKind::Unary: {
      Type T = checkExpr(*E.Children[0]);
      switch (E.UnOp) {
      case AstUnOp::Neg:
      case AstUnOp::BitNot:
        if (T != Type::Int)
          error(E.Loc, "arithmetic negation requires an int operand");
        return Type::Int;
      case AstUnOp::LogNot:
        if (T != Type::Bool)
          error(E.Loc, "'!' requires a bool operand");
        return Type::Bool;
      case AstUnOp::Deref:
        if (T != Type::Ref)
          error(E.Loc, "'*' requires a reference parameter");
        return Type::Int;
      }
      return Type::Int;
    }
    case ExprKind::Binary: {
      Type L = checkExpr(*E.Children[0]);
      Type R = checkExpr(*E.Children[1]);
      switch (E.BinKind) {
      case BinOp::LAnd:
      case BinOp::LOr:
        if (L != Type::Bool || R != Type::Bool)
          error(E.Loc, "logical operator requires bool operands");
        return Type::Bool;
      case BinOp::Eq:
      case BinOp::Ne:
        if (L != R)
          error(E.Loc, "comparison of mismatched types");
        return Type::Bool;
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (L != Type::Int || R != Type::Int)
          error(E.Loc, "ordering comparison requires int operands");
        return Type::Bool;
      default:
        if (L != Type::Int || R != Type::Int)
          error(E.Loc, "arithmetic requires int operands");
        return Type::Int;
      }
    }
    case ExprKind::Call:
      return checkCall(E);
    case ExprKind::Index: {
      const VarInfo *V = lookup(E.Name);
      if (!V)
        error(E.Loc, "use of undeclared array '" + E.Name + "'");
      else if (!V->IsArray)
        error(E.Loc, "'" + E.Name + "' is not an array");
      if (checkExpr(*E.Children[0]) != Type::Int)
        error(E.Loc, "array index must be an int");
      return Type::Int;
    }
    case ExprKind::AddrOf:
      error(E.Loc, "'&" + E.Name +
                       "' may only appear directly as a call argument "
                       "(references are created at call sites)");
      return Type::Ref;
    }
    return Type::Int;
  }

  Type checkCall(const Expr &E) {
    if (Sensors.count(E.Name)) {
      if (!E.Children.empty())
        error(E.Loc, "sensor '" + E.Name + "' takes no arguments");
      return Type::Int;
    }
    auto It = Funcs.find(E.Name);
    if (It == Funcs.end()) {
      error(E.Loc, "call to unknown function '" + E.Name + "'");
      return Type::Int;
    }
    const FnSig &Sig = It->second;
    if (E.Children.size() != Sig.Params.size()) {
      error(E.Loc, "wrong number of arguments to '" + E.Name + "'");
      return Sig.Ret;
    }
    for (size_t I = 0; I < E.Children.size(); ++I) {
      const Expr &Arg = *E.Children[I];
      if (Sig.Params[I] == Type::Ref) {
        if (Arg.Kind != ExprKind::AddrOf) {
          error(Arg.Loc, "parameter " + std::to_string(I + 1) + " of '" +
                             E.Name + "' expects a reference argument '&x'");
          continue;
        }
        const VarInfo *V = lookup(Arg.Name);
        if (!V)
          error(Arg.Loc, "use of undeclared variable '&" + Arg.Name + "'");
        else if (V->IsArray)
          error(Arg.Loc, "cannot take a reference to array '" + Arg.Name +
                             "'");
        else if (V->Ty == Type::Ref)
          error(Arg.Loc,
                "cannot re-borrow reference parameter '" + Arg.Name +
                    "' (OCL references may not be forwarded; pass the "
                    "underlying data instead)");
        else if (V->NoAddr)
          error(Arg.Loc, "cannot take the address of parameter or loop "
                         "variable '" +
                             Arg.Name + "'");
      } else {
        if (Arg.Kind == ExprKind::AddrOf) {
          error(Arg.Loc, "parameter " + std::to_string(I + 1) + " of '" +
                             E.Name + "' expects a value, not a reference");
          continue;
        }
        Type T = checkExpr(Arg);
        if (T != Sig.Params[I])
          error(Arg.Loc, "argument type mismatch calling '" + E.Name + "'");
      }
    }
    return Sig.Ret;
  }

  // -- Statements --------------------------------------------------------------

  void checkStmts(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts)
      checkStmt(*S);
  }

  void checkStmt(const Stmt &S) {
    switch (S.Kind) {
    case StmtKind::Let: {
      VarInfo V;
      if (S.IsArray) {
        V.IsArray = true;
        if (S.ArraySize <= 0)
          error(S.Loc, "array '" + S.Name + "' must have positive size");
      } else {
        V.Ty = checkExpr(*S.Init);
        if (V.Ty == Type::Ref)
          error(S.Loc, "cannot bind a reference in a let");
        if (V.Ty == Type::Unit)
          error(S.Loc, "cannot bind the result of a unit function");
      }
      declare(S.Loc, S.Name, V);
      if (S.IsConsistent && S.ConsistentSet < 0)
        error(S.Loc, "consistent set id must be non-negative");
      break;
    }
    case StmtKind::Assign: {
      switch (S.Target) {
      case AssignTarget::Var: {
        const VarInfo *V = lookup(S.Name);
        if (!V) {
          error(S.Loc, "assignment to undeclared variable '" + S.Name + "'");
          break;
        }
        if (V->IsArray) {
          error(S.Loc, "cannot assign whole array '" + S.Name + "'");
          break;
        }
        if (V->Ty == Type::Ref) {
          error(S.Loc, "cannot reassign reference parameter '" + S.Name +
                           "'");
          break;
        }
        Type T = checkExpr(*S.Value);
        if (T != V->Ty)
          error(S.Loc, "assignment type mismatch for '" + S.Name + "'");
        break;
      }
      case AssignTarget::Index: {
        const VarInfo *V = lookup(S.Name);
        if (!V)
          error(S.Loc, "assignment to undeclared array '" + S.Name + "'");
        else if (!V->IsArray)
          error(S.Loc, "'" + S.Name + "' is not an array");
        if (checkExpr(*S.IndexExpr) != Type::Int)
          error(S.Loc, "array index must be an int");
        if (checkExpr(*S.Value) != Type::Int)
          error(S.Loc, "array element assignment requires an int value");
        break;
      }
      case AssignTarget::Deref: {
        const VarInfo *V = lookup(S.Name);
        if (!V)
          error(S.Loc, "assignment through undeclared reference '" + S.Name +
                           "'");
        else if (V->Ty != Type::Ref)
          error(S.Loc, "'*" + S.Name + "' requires a reference parameter");
        if (checkExpr(*S.Value) != Type::Int)
          error(S.Loc, "reference assignment requires an int value");
        break;
      }
      }
      break;
    }
    case StmtKind::If:
      if (checkExpr(*S.Cond) != Type::Bool)
        error(S.Loc, "if condition must be a bool");
      pushScope();
      checkStmts(S.Then);
      popScope();
      pushScope();
      checkStmts(S.Else);
      popScope();
      break;
    case StmtKind::For: {
      if (S.LoopLo > S.LoopHi)
        error(S.Loc, "for loop lower bound exceeds upper bound");
      if (S.LoopHi - S.LoopLo > 4096)
        error(S.Loc, "for loop spans more than 4096 iterations; OCL loops "
                     "are unrolled and must be small");
      pushScope();
      declare(S.Loc, S.Name, VarInfo{Type::Int, false, false, true});
      ++LoopDepth;
      checkStmts(S.Body);
      --LoopDepth;
      popScope();
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
      if (LoopDepth == 0)
        error(S.Loc, "break/continue outside of a loop");
      break;
    case StmtKind::Return: {
      if (AtomicDepth > 0)
        error(S.Loc, "return inside 'atomic { }' is not permitted (regions "
                     "must be entered and exited on every path)");
      Type Want = CurFn->RetTy;
      if (S.Value2) {
        Type Got = checkExpr(*S.Value2);
        if (Want == Type::Unit)
          error(S.Loc, "unit function returns a value");
        else if (Got != Want)
          error(S.Loc, "return type mismatch");
      } else if (Want != Type::Unit) {
        error(S.Loc, "non-unit function must return a value");
      }
      break;
    }
    case StmtKind::ExprStmt: {
      if (S.Value2->Kind != ExprKind::Call)
        error(S.Loc, "expression statement must be a call");
      else
        checkExpr(*S.Value2);
      break;
    }
    case StmtKind::Atomic: {
      // Loops enclosing the atomic block must not be escaped from inside it;
      // reset the loop depth so break/continue require a loop opened within
      // the region.
      int SavedLoopDepth = LoopDepth;
      LoopDepth = 0;
      ++AtomicDepth;
      pushScope();
      checkStmts(S.Body);
      popScope();
      --AtomicDepth;
      LoopDepth = SavedLoopDepth;
      break;
    }
    case StmtKind::Annot: {
      const VarInfo *V = lookup(S.Name);
      if (!V)
        error(S.Loc, "annotation names undeclared variable '" + S.Name + "'");
      else if (V->IsArray)
        error(S.Loc, "annotations apply to scalar variables, not arrays");
      if (S.AnnotConsistent && S.AnnotSet < 0)
        error(S.Loc, "consistent set id must be non-negative");
      break;
    }
    case StmtKind::Output:
      for (const ExprPtr &Arg : S.OutArgs)
        checkExpr(*Arg);
      break;
    case StmtKind::Block:
      pushScope();
      checkStmts(S.Body);
      popScope();
      break;
    }
  }

  /// Conservative all-paths-return analysis: a statement list returns if any
  /// statement definitely returns; if/else returns when both arms do.
  bool stmtsReturn(const std::vector<StmtPtr> &Stmts) {
    for (const StmtPtr &S : Stmts) {
      switch (S->Kind) {
      case StmtKind::Return:
        return true;
      case StmtKind::If:
        if (!S->Else.empty() && stmtsReturn(S->Then) && stmtsReturn(S->Else))
          return true;
        break;
      case StmtKind::Atomic:
      case StmtKind::Block:
        if (stmtsReturn(S->Body))
          return true;
        break;
      default:
        break;
      }
    }
    return false;
  }

  void checkFunction(const FnDecl &F) {
    CurFn = &F;
    LoopDepth = 0;
    Scopes.clear();
    pushScope();
    for (const ParamDecl &P : F.Params)
      declare(P.Loc, P.Name, VarInfo{P.Ty, false, false, true});
    checkStmts(F.Body);
    if (F.RetTy != Type::Unit && !stmtsReturn(F.Body))
      error(F.Loc, "function '" + F.Name + "' may fall off the end without "
                                           "returning a value");
    popScope();
    CurFn = nullptr;
  }

  // -- Recursion -----------------------------------------------------------

  void collectCalls(const Expr &E, std::set<std::string> &Out) {
    if (E.Kind == ExprKind::Call && Funcs.count(E.Name))
      Out.insert(E.Name);
    for (const ExprPtr &C : E.Children)
      collectCalls(*C, Out);
  }

  void collectCalls(const std::vector<StmtPtr> &Stmts,
                    std::set<std::string> &Out) {
    for (const StmtPtr &S : Stmts) {
      if (S->Init)
        collectCalls(*S->Init, Out);
      if (S->IndexExpr)
        collectCalls(*S->IndexExpr, Out);
      if (S->Value)
        collectCalls(*S->Value, Out);
      if (S->Cond)
        collectCalls(*S->Cond, Out);
      if (S->Value2)
        collectCalls(*S->Value2, Out);
      for (const ExprPtr &A : S->OutArgs)
        collectCalls(*A, Out);
      collectCalls(S->Then, Out);
      collectCalls(S->Else, Out);
      collectCalls(S->Body, Out);
    }
  }

  /// Rejects recursion (direct or mutual), which the paper's systems
  /// disallow (§4.1) and region inference relies on.
  void checkNoRecursion() {
    std::map<std::string, std::set<std::string>> Calls;
    for (const FnDecl &F : M.Functions)
      collectCalls(F.Body, Calls[F.Name]);
    // Iterative DFS with colors.
    std::map<std::string, int> Color; // 0 white, 1 grey, 2 black.
    for (const FnDecl &F : M.Functions) {
      if (Color[F.Name])
        continue;
      std::vector<std::pair<std::string, bool>> Stack = {{F.Name, false}};
      while (!Stack.empty()) {
        auto [Name, Done] = Stack.back();
        Stack.pop_back();
        if (Done) {
          Color[Name] = 2;
          continue;
        }
        if (Color[Name] == 2)
          continue;
        if (Color[Name] == 1)
          continue;
        Color[Name] = 1;
        Stack.push_back({Name, true});
        for (const std::string &Callee : Calls[Name]) {
          if (Color[Callee] == 1) {
            error(Funcs[Callee].Decl->Loc,
                  "recursion involving '" + Callee +
                      "' is not permitted in intermittent programs");
            return;
          }
          if (Color[Callee] == 0)
            Stack.push_back({Callee, false});
        }
      }
    }
  }

  const Module &M;
  DiagnosticEngine &Diags;
  std::set<std::string> Sensors;
  std::map<std::string, VarInfo> Statics;
  std::map<std::string, FnSig> Funcs;
  std::vector<std::map<std::string, VarInfo>> Scopes;
  const FnDecl *CurFn = nullptr;
  int LoopDepth = 0;
  int AtomicDepth = 0;
};

} // namespace

bool ocelot::checkModule(const Module &M, DiagnosticEngine &Diags) {
  return SemaChecker(M, Diags).run();
}
