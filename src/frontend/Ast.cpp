//===- Ast.cpp - OCL abstract syntax tree --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "frontend/Ast.h"

using namespace ocelot;

ExprPtr Expr::makeInt(int64_t V, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::IntLit;
  E->IntValue = V;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeBool(bool V, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::BoolLit;
  E->BoolValue = V;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeVar(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Var;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeUnary(AstUnOp Op, ExprPtr Operand, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Unary;
  E->UnOp = Op;
  E->Children.push_back(std::move(Operand));
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeBinary(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Binary;
  E->BinKind = Op;
  E->Children.push_back(std::move(L));
  E->Children.push_back(std::move(R));
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeCall(std::string Name, std::vector<ExprPtr> Args,
                       SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Call;
  E->Name = std::move(Name);
  E->Children = std::move(Args);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeIndex(std::string Name, ExprPtr Idx, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Index;
  E->Name = std::move(Name);
  E->Children.push_back(std::move(Idx));
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeAddrOf(std::string Name, SourceLoc Loc) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::AddrOf;
  E->Name = std::move(Name);
  E->Loc = Loc;
  return E;
}
