//===- EffortModel.h - Programmer-effort LoC models --------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §7.4 analytic models of the lines of code needed to obtain
/// correct input timing under each system (Tables 3 and 4), evaluated over
/// our benchmark sources' annotation counts:
///
///   Ocelot  = (num declared inputs) + (num annotated data)
///   JIT     = 0 (and incorrect)
///   Atomics = (num declared inputs) + 2 * (num atomic regions)
///   TICS    = 3 * fresh data + 5-line handler per fresh datum
///           + 2 * consistent vars + (1 check + 5-line handler) per set
///   Samoyed = per atomic function: 3 (signature + callsite) + 1 per
///             parameter, + 3 (scaling rule) + 5 (fallback) when the
///             function contains a loop
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_HARNESS_EFFORTMODEL_H
#define OCELOT_HARNESS_EFFORTMODEL_H

#include "ocelot/Toolchain.h"

namespace ocelot {

/// Inputs to the effort model for one benchmark: the annotated build (for
/// annotation counts and policy sets) and the manually regioned build (for
/// Atomics/Samoyed region counts).
struct EffortInputs {
  EffortStats Annotated;
  EffortStats Atomics;
  int FreshPolicies = 0;
  int ConsistentSets = 0;
  int ConsistentVars = 0; ///< Source-level consistent annotations.
};

EffortInputs effortInputs(const CompiledArtifact &Annotated,
                          const CompiledArtifact &AtomicsBuild);

int ocelotLoc(const EffortInputs &E);
int atomicsLoc(const EffortInputs &E);
int ticsLoc(const EffortInputs &E);
int samoyedLoc(const EffortInputs &E);

} // namespace ocelot

#endif // OCELOT_HARNESS_EFFORTMODEL_H
