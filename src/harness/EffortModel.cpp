//===- EffortModel.cpp - Programmer-effort LoC models ----------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/EffortModel.h"

using namespace ocelot;

EffortInputs ocelot::effortInputs(const CompiledArtifact &Annotated,
                                  const CompiledArtifact &AtomicsBuild) {
  EffortInputs E;
  E.Annotated = Annotated.effort();
  E.Atomics = AtomicsBuild.effort();
  E.FreshPolicies = static_cast<int>(Annotated.policies().Fresh.size());
  E.ConsistentSets =
      static_cast<int>(Annotated.policies().Consistent.size());
  E.ConsistentVars = Annotated.effort().ConsistentAnnots +
                     Annotated.effort().FreshConsistentAnnots;
  return E;
}

int ocelot::ocelotLoc(const EffortInputs &E) {
  // One line per declared input + one line per annotated datum
  // (FreshConsistent is a single source line annotating one datum).
  int AnnotatedData = E.Annotated.FreshAnnots + E.Annotated.ConsistentAnnots +
                      E.Annotated.FreshConsistentAnnots;
  return E.Annotated.IoDeclNames + AnnotatedData;
}

int ocelot::atomicsLoc(const EffortInputs &E) {
  // Inputs must still be declared (undo logging backs up EMW sets), plus
  // region start/end per manually placed region.
  return E.Atomics.IoDeclNames + 2 * E.Atomics.ManualRegions;
}

int ocelot::ticsLoc(const EffortInputs &E) {
  int FreshData =
      E.Annotated.FreshAnnots + E.Annotated.FreshConsistentAnnots;
  int ConsistentVars = E.ConsistentVars;
  // 3 LoC (expiry, alignment, check) + 5-line handler per fresh datum;
  // 2 LoC per consistent variable + one check and handler per set.
  return 3 * FreshData + 5 * FreshData + 2 * ConsistentVars +
         (1 + 5) * E.ConsistentSets;
}

int ocelot::samoyedLoc(const EffortInputs &E) {
  // Each manual region becomes an atomic function: signature + callsite
  // restructuring (3) + one parameter on average (1); loops need a scaling
  // rule (3) and a software fallback (5).
  return 4 * E.Atomics.ManualRegions + 8 * E.Atomics.ManualRegionsWithLoops;
}
