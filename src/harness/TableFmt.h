//===- TableFmt.h - Fixed-width table output --------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef OCELOT_HARNESS_TABLEFMT_H
#define OCELOT_HARNESS_TABLEFMT_H

#include <string>
#include <vector>

namespace ocelot {

/// A simple fixed-width text table: headers, rows, auto-sized columns.
class Table {
public:
  explicit Table(std::vector<std::string> Headers)
      : Headers(std::move(Headers)) {}

  void addRow(std::vector<std::string> Row) { Rows.push_back(std::move(Row)); }

  std::string str() const;

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Precision fractional digits.
std::string fmt(double V, int Precision = 2);

/// Formats an already-scaled percentage (0–100) as "N%". Metrics such as
/// IntermittentMetrics::violationPct() return percentages directly; do not
/// pass 0–1 fractions.
std::string fmtPct(double Pct, int Precision = 0);

/// Geometric mean of a non-empty vector of positive ratios.
double geomean(const std::vector<double> &Values);

} // namespace ocelot

#endif // OCELOT_HARNESS_TABLEFMT_H
