//===- SweepRunner.h - Parallel evaluation-grid driver ----------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's evaluation (§7) is a grid of
/// (benchmark × exec model × energy config × power × sensor scenario ×
/// seed) intermittent simulations. `SweepRunner` compiles each
/// (benchmark, model) pair once into an immutable `CompiledArtifact`,
/// then fans the grid cells across a worker pool. Every cell builds its
/// own `Simulation` seeded purely from the spec (never from scheduling),
/// and results are aggregated in a fixed grid order — so a parallel sweep
/// is bitwise identical to a sequential one, only faster.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_HARNESS_SWEEPRUNNER_H
#define OCELOT_HARNESS_SWEEPRUNNER_H

#include "harness/Experiment.h"

#include <cstddef>
#include <memory>
#include <vector>

namespace ocelot {

/// The grid to sweep. Cells are enumerated model-major: for each model,
/// for each benchmark, for each energy, for each power profile, for each
/// sensor scenario, for each seed.
struct SweepSpec {
  std::vector<const BenchmarkDef *> Benchmarks;
  std::vector<ExecModel> Models;
  std::vector<EnergyConfig> Energies;
  /// Harvesting environments (src/power/). Leave empty for the default
  /// single legacy-jitter cell per (model, benchmark, energy, seed) —
  /// existing sweeps keep their shape and results. Entries may repeat a
  /// source or be nullptr (nullptr = legacy-jitter).
  std::vector<std::shared_ptr<const PowerSource>> Powers;
  /// Sensed worlds (src/sensors/). Leave empty for the default single
  /// benchmark-scenario cell per (model, benchmark, energy, power, seed)
  /// — existing sweeps keep their shape and results. Entries may repeat
  /// a scenario or be nullptr (nullptr = the benchmark's own seeded
  /// noise).
  std::vector<std::shared_ptr<const SensorScenario>> Scenarios;
  std::vector<uint64_t> Seeds;
  /// Simulated-time budget per cell. Must be set: run() aborts on a
  /// zero budget (it would yield all-zero metrics in every cell).
  uint64_t TauBudget = 0;
  bool Monitors = true;   ///< Arm both violation detectors.
  bool Oracle = false;    ///< Score outputs with the input-epoch oracle
                          ///< (src/fusion/FusionOracle.h).

  /// Size of the power dimension (an empty Powers vector still spans one
  /// implicit legacy-jitter column).
  size_t powerCount() const { return Powers.empty() ? 1 : Powers.size(); }

  /// Size of the scenario dimension (an empty Scenarios vector still
  /// spans one implicit benchmark-default column).
  size_t scenarioCount() const {
    return Scenarios.empty() ? 1 : Scenarios.size();
  }

  size_t cellCount() const {
    return Models.size() * Benchmarks.size() * Energies.size() *
           powerCount() * scenarioCount() * Seeds.size();
  }

  /// Grid coordinates of one cell. Dimensions a sweep does not span stay
  /// 0 (aggregate initialization zero-fills the tail, so e.g.
  /// `{M, B, E, 0, 0, S}` and `{.Model = M, .Bench = B}` both work).
  struct CellCoords {
    size_t Model = 0, Bench = 0, Energy = 0, Power = 0, Scenario = 0,
           Seed = 0;
  };

  /// Flat index of cell \p C in the result vector. The inverse is
  /// cellAt(); keep the two in sync.
  size_t cellIndex(const CellCoords &C) const {
    return ((((C.Model * Benchmarks.size() + C.Bench) * Energies.size() +
              C.Energy) *
                 powerCount() +
             C.Power) *
                scenarioCount() +
            C.Scenario) *
               Seeds.size() +
           C.Seed;
  }
  /// Decodes a flat index back into CellCoords — the inverse of
  /// cellIndex().
  CellCoords cellAt(size_t I) const {
    CellCoords C{};
    C.Seed = I % Seeds.size();
    I /= Seeds.size();
    C.Scenario = I % scenarioCount();
    I /= scenarioCount();
    C.Power = I % powerCount();
    I /= powerCount();
    C.Energy = I % Energies.size();
    I /= Energies.size();
    C.Bench = I % Benchmarks.size();
    C.Model = I / Benchmarks.size();
    return C;
  }
};

/// One evaluated grid cell: the spec indices it came from plus its metrics.
struct SweepCellResult {
  size_t Model = 0;    ///< Index into SweepSpec::Models.
  size_t Bench = 0;    ///< Index into SweepSpec::Benchmarks.
  size_t Energy = 0;   ///< Index into SweepSpec::Energies.
  size_t Power = 0;    ///< Index into SweepSpec::Powers (0 when empty).
  size_t Scenario = 0; ///< Index into SweepSpec::Scenarios (0 when empty).
  size_t Seed = 0;     ///< Index into SweepSpec::Seeds.
  IntermittentMetrics Metrics;
};

/// Fans a SweepSpec across a worker pool. Stateless between run() calls;
/// one runner can be reused for any number of sweeps.
class SweepRunner {
public:
  /// \p Workers = 0 picks the hardware concurrency (at least 1).
  explicit SweepRunner(unsigned Workers = 0);

  unsigned workers() const { return Workers; }

  /// Evaluates every cell of \p Spec with measureIntermittent. The returned
  /// vector is in SweepSpec::cellIndex order and — for a fixed spec —
  /// identical for any worker count, including 1 (sequential).
  std::vector<SweepCellResult> run(const SweepSpec &Spec) const;

private:
  unsigned Workers;
};

/// Parses the value of a `--workers=N` flag (the text after the '=') for
/// the sweep-driven bench binaries. On success stores N in \p Workers and
/// returns true; otherwise prints an error to stderr and returns false.
bool parseWorkersFlag(const char *Value, unsigned &Workers);

/// Prints the standard `[sweep: N cells on W worker(s) in Xs]` footer —
/// to stderr, so bench stdout stays diff-stable for any worker count.
void printSweepTiming(size_t Cells, unsigned Workers, double Seconds);

} // namespace ocelot

#endif // OCELOT_HARNESS_SWEEPRUNNER_H
