//===- SweepRunner.cpp - Parallel evaluation-grid driver --------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/SweepRunner.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace ocelot;

namespace {

/// Runs copies of \p Body on min(Workers, Items) threads; with one worker
/// it runs inline, so a single-worker sweep really is the sequential path.
template <typename Fn> void runOnPool(unsigned Workers, size_t Items, Fn Body) {
  size_t NThreads = std::min<size_t>(Workers, Items);
  if (NThreads <= 1) {
    Body();
    return;
  }
  std::vector<std::thread> Pool;
  Pool.reserve(NThreads);
  for (size_t T = 0; T < NThreads; ++T)
    Pool.emplace_back(Body);
  for (std::thread &Th : Pool)
    Th.join();
}

} // namespace

bool ocelot::parseWorkersFlag(const char *Value, unsigned &Workers) {
  char *End = nullptr;
  long V = std::strtol(Value, &End, 10);
  if (*End != '\0' || V < 1) {
    std::fprintf(stderr, "error: bad worker count '%s' (want >= 1)\n", Value);
    return false;
  }
  Workers = static_cast<unsigned>(V);
  return true;
}

void ocelot::printSweepTiming(size_t Cells, unsigned Workers,
                              double Seconds) {
  std::fprintf(stderr, "[sweep: %zu cells on %u worker(s) in %.2fs]\n",
               Cells, Workers, Seconds);
}

SweepRunner::SweepRunner(unsigned Workers) : Workers(Workers) {
  if (this->Workers == 0) {
    unsigned HW = std::thread::hardware_concurrency();
    this->Workers = HW ? HW : 1;
  }
}

std::vector<SweepCellResult> SweepRunner::run(const SweepSpec &Spec) const {
  const size_t NB = Spec.Benchmarks.size();
  const size_t N = Spec.cellCount();
  std::vector<SweepCellResult> Results(N);
  if (N == 0)
    return Results;
  if (Spec.TauBudget == 0) {
    // A zero budget would "succeed" with all-zero metrics in every cell —
    // reject the spec loudly instead (harness style: misuse aborts).
    std::fprintf(stderr, "SweepRunner: SweepSpec::TauBudget is 0; every "
                         "cell would complete zero runs\n");
    std::abort();
  }

  // Compile each (model, benchmark) pair exactly once. The artifacts are
  // immutable, so every cell that shares a pair shares the compilation.
  std::vector<CompiledBenchmark> Artifacts(Spec.Models.size() * NB);
  {
    std::atomic<size_t> Next{0};
    auto CompileWorker = [&] {
      for (size_t I = Next.fetch_add(1); I < Artifacts.size();
           I = Next.fetch_add(1))
        Artifacts[I] = compileBenchmark(*Spec.Benchmarks[I % NB],
                                        Spec.Models[I / NB]);
    };
    runOnPool(Workers, Artifacts.size(), CompileWorker);
  }

  // Evaluate the cells. Each cell's Simulation is seeded purely from the
  // spec, and each worker writes only its own pre-sized slot, so the result
  // does not depend on scheduling.
  {
    std::atomic<size_t> Next{0};
    auto CellWorker = [&] {
      for (size_t I = Next.fetch_add(1); I < N; I = Next.fetch_add(1)) {
        SweepCellResult &R = Results[I];
        SweepSpec::CellCoords C = Spec.cellAt(I);
        R.Model = C.Model;
        R.Bench = C.Bench;
        R.Energy = C.Energy;
        R.Power = C.Power;
        R.Scenario = C.Scenario;
        R.Seed = C.Seed;
        const CompiledBenchmark &CB = Artifacts[R.Model * NB + R.Bench];
        R.Metrics = measureIntermittent(
            CB, *Spec.Benchmarks[R.Bench], Spec.Energies[R.Energy],
            Spec.TauBudget, Spec.Seeds[R.Seed], Spec.Monitors,
            Spec.Powers.empty() ? nullptr : Spec.Powers[R.Power],
            Spec.Scenarios.empty() ? nullptr : Spec.Scenarios[R.Scenario],
            nullptr, Spec.Oracle);
      }
    };
    runOnPool(Workers, N, CellWorker);
  }

  return Results;
}
