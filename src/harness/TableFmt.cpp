//===- TableFmt.cpp - Fixed-width table output ----------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/TableFmt.h"

#include <cmath>
#include <cstdio>

using namespace ocelot;

std::string Table::str() const {
  std::vector<size_t> Widths(Headers.size(), 0);
  auto Measure = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size() && I < Widths.size(); ++I)
      Widths[I] = std::max(Widths[I], Row[I].size());
  };
  Measure(Headers);
  for (const auto &Row : Rows)
    Measure(Row);

  auto Emit = [&](const std::vector<std::string> &Row) {
    std::string Line;
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Row.size() ? Row[I] : "";
      Cell.resize(Widths[I], ' ');
      Line += Cell;
      if (I + 1 != Widths.size())
        Line += "  ";
    }
    while (!Line.empty() && Line.back() == ' ')
      Line.pop_back();
    return Line + "\n";
  };

  std::string Out = Emit(Headers);
  std::string Rule;
  for (size_t I = 0; I < Widths.size(); ++I) {
    Rule += std::string(Widths[I], '-');
    if (I + 1 != Widths.size())
      Rule += "  ";
  }
  Out += Rule + "\n";
  for (const auto &Row : Rows)
    Out += Emit(Row);
  return Out;
}

std::string ocelot::fmt(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

std::string ocelot::fmtPct(double Pct, int Precision) {
  return fmt(Pct, Precision) + "%";
}

double ocelot::geomean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values)
    LogSum += std::log(V);
  return std::exp(LogSum / static_cast<double>(Values.size()));
}
