//===- Experiment.cpp - Shared evaluation harness --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"

#include <cstdio>
#include <cstdlib>
#include <string_view>

using namespace ocelot;

namespace {

/// Renames the app's `main` and appends a driver that calls it \p Reps
/// times from a `for` loop (bounds must be integer literals, so the count
/// is spliced into the source).
std::string repeatMainSource(const char *Src, int Reps) {
  std::string S(Src);
  const std::string Needle = "fn main(";
  size_t At = S.find(Needle);
  if (At == std::string::npos)
    return S;
  S.replace(At, Needle.size(), "fn app_main(");
  S += "\nfn main() {\n  for rep in 0.." + std::to_string(Reps) +
       " {\n    app_main();\n  }\n}\n";
  return S;
}

/// Process-global knobs compileBenchmark folds into every compile; set
/// once from CLI flags before any fan-out (see Experiment.h).
FusionMode BenchFusion = FusionMode::Chains;
std::shared_ptr<const PgoBundle> BenchPgo;

} // namespace

void ocelot::setBenchFusion(FusionMode M) { BenchFusion = M; }
FusionMode ocelot::benchFusion() { return BenchFusion; }
void ocelot::setBenchPgo(std::shared_ptr<const PgoBundle> Pgo) {
  BenchPgo = std::move(Pgo);
}
std::shared_ptr<const PgoBundle> ocelot::benchPgo() { return BenchPgo; }

CompiledBenchmark ocelot::compileBenchmark(const BenchmarkDef &B,
                                           ExecModel Model, int MainReps) {
  CompiledBenchmark CB;
  CB.Name = B.Name;
  CB.Model = Model;
  CompileOptions Opts;
  Opts.Model = Model;
  Opts.Fusion = BenchFusion;
  Opts.Pgo = BenchPgo;
  // Checker mode (§8) validates manual placement, so it gets the manually
  // regioned source, as does the Atomics-only build.
  bool WantManualRegions =
      Model == ExecModel::AtomicsOnly || Model == ExecModel::CheckOnly;
  const char *Src = WantManualRegions ? B.AtomicsSrc : B.AnnotatedSrc;
  std::string Repeated;
  if (MainReps > 1) {
    Repeated = repeatMainSource(Src, MainReps);
    Src = Repeated.c_str();
  }
  // Cached: fleet shards and repeated sweeps hit the same handful of
  // (benchmark, model) pairs, so each pair compiles once per process.
  Compilation C = Toolchain().compileCached(Src, Opts);
  if (!C.ok()) {
    std::fprintf(stderr, "failed to compile benchmark %s under %s:\n%s\n",
                 B.Name.c_str(), execModelName(Model),
                 C.status().str().c_str());
    std::abort();
  }
  CB.Artifact = C.artifact();
  return CB;
}

std::set<InstrRef> ocelot::pathologicalPoints(const CompiledArtifact &A) {
  std::set<InstrRef> Points;
  for (const auto &[Use, Sensors] : A.monitorPlan().UseChecks)
    Points.insert(Use);
  for (const ConsistentSetPlan &SP : A.monitorPlan().Sets)
    for (size_t M = 1; M < SP.Members.size(); ++M)
      Points.insert(SP.Members[M].back());
  return Points;
}

ContinuousMetrics ocelot::measureContinuous(const CompiledBenchmark &CB,
                                            const BenchmarkDef &B, int Runs,
                                            uint64_t Seed) {
  SimulationSpec Spec;
  Spec.Config.Sensors = B.scenario(Seed);
  Spec.Config.Seed = Seed;
  Simulation Sim(CB.Artifact, std::move(Spec));

  ContinuousMetrics M;
  uint64_t Total = 0;
  for (int Run = 0; Run < Runs; ++Run) {
    RunResult R = Sim.runOnce();
    if (!R.Completed) {
      std::fprintf(stderr, "continuous run of %s failed: %s\n",
                   CB.Name.c_str(), R.Trap.c_str());
      std::abort();
    }
    Total += R.OnCycles;
    ++M.Runs;
  }
  M.CyclesPerRun =
      M.Runs ? static_cast<double>(Total) / static_cast<double>(M.Runs) : 0;
  return M;
}

IntermittentMetrics ocelot::measureIntermittent(
    const CompiledBenchmark &CB, const BenchmarkDef &B,
    const EnergyConfig &Energy, uint64_t TauBudget, uint64_t Seed,
    bool Monitors, std::shared_ptr<const PowerSource> Power,
    std::shared_ptr<const SensorScenario> Sensors,
    std::shared_ptr<ArenaPool> Arena, bool Oracle) {
  SimulationSpec Spec;
  Spec.Config.Sensors = Sensors ? std::move(Sensors) : B.scenario(Seed);
  Spec.Config.Seed = Seed;
  Spec.Config.Plan = FailurePlan::energyDriven();
  Spec.Config.Energy = Energy;
  Spec.Config.Power = std::move(Power);
  Spec.Config.Arena = std::move(Arena);
  Spec.Config.MonitorBitVector = Monitors;
  Spec.Config.MonitorFormal = Monitors;
  Spec.Config.Oracle = Oracle;
  Simulation Sim(CB.Artifact, std::move(Spec));

  IntermittentMetrics M;
  uint64_t On = 0, Off = 0, Reboots = 0;
  while (Sim.tau() < TauBudget) {
    RunResult R = Sim.runOnce();
    if (R.Starved) {
      M.Starved = true;
      break;
    }
    if (!R.Completed) {
      // Under a swept scenario a trap is data the sweep reports (the
      // device wedged on an input its firmware never expected), not a
      // harness error worth killing the whole grid for.
      std::fprintf(stderr, "intermittent run of %s trapped: %s\n",
                   CB.Name.c_str(), R.Trap.c_str());
      M.Trapped = true;
      M.Trap = R.Trap;
      break;
    }
    On += R.OnCycles;
    Off += R.OffCycles;
    Reboots += R.Reboots;
    ++M.CompletedRuns;
    bool ModelFlagged = R.ViolatedFresh || R.ViolatedConsistent;
    if (ModelFlagged)
      ++M.ViolatingRuns;
    if (Oracle) {
      M.OracleFreshOutputs += R.OracleFresh;
      M.OracleStaleOutputs += R.OracleStale;
      M.OracleCrossEpochOutputs += R.OracleCrossEpoch;
      bool OracleDirty = R.OracleStale + R.OracleCrossEpoch > 0;
      if (OracleDirty)
        ++M.OracleDirtyRuns;
      // Per-run cross-classification of the two verdicts: the monitors
      // enforce the program's *annotations*, the oracle scores the
      // *outputs* — the two disagreeing in either direction is table7's
      // whole measurement.
      if (ModelFlagged && !OracleDirty)
        ++M.OverEnforcedRuns;
      if (OracleDirty && !ModelFlagged)
        ++M.UnderEnforcedRuns;
    }
  }
  if (M.CompletedRuns) {
    double N = static_cast<double>(M.CompletedRuns);
    M.OnCyclesPerRun = static_cast<double>(On) / N;
    M.OffCyclesPerRun = static_cast<double>(Off) / N;
    M.RebootsPerRun = static_cast<double>(Reboots) / N;
  }
  return M;
}

double ocelot::pathologicalViolationPct(const CompiledBenchmark &CB,
                                        const BenchmarkDef &B, int Runs,
                                        uint64_t Seed, TraceSink *Trace,
                                        PcProfile *Prof) {
  SimulationSpec Spec;
  Spec.Config.Sensors = B.scenario(Seed);
  Spec.Config.Seed = Seed;
  Spec.Config.Plan =
      FailurePlan::pathological(pathologicalPoints(CB.Artifact));
  // Long, environment-shifting off times so staleness is observable.
  Spec.Config.Plan.setOffTime(20000, 200000);
  Spec.Config.MonitorBitVector = true;
  Spec.Config.MonitorFormal = true;
  Spec.Config.Telemetry = Trace;
  Spec.Config.Profile = Prof;
  Simulation Sim(CB.Artifact, std::move(Spec));

  int Violating = 0;
  int Completed = 0;
  for (int Run = 0; Run < Runs; ++Run) {
    RunResult R = Sim.runOnce();
    if (!R.Completed) {
      std::fprintf(stderr, "pathological run of %s failed: %s\n",
                   CB.Name.c_str(), R.Trap.c_str());
      std::abort();
    }
    ++Completed;
    if (R.ViolatedFresh || R.ViolatedConsistent)
      ++Violating;
  }
  return Completed ? 100.0 * static_cast<double>(Violating) /
                         static_cast<double>(Completed)
                   : 0.0;
}

bool ocelot::benchSmokeMode() {
  const char *V = std::getenv("OCELOT_BENCH_SMOKE");
  if (!V || !*V)
    return false;
  // Conventional opt-out spellings still mean "off".
  return std::string_view(V) != "0" && std::string_view(V) != "false";
}
