//===- Experiment.h - Shared evaluation harness ------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the paper's evaluation (§7): compile a benchmark
/// under an execution model into an immutable `CompiledArtifact`, run it
/// continuously or intermittently in a `Simulation`, and aggregate runtime /
/// correctness metrics. Each bench/ binary regenerates one table or figure
/// on top of this; `SweepRunner` fans whole grids of these measurements
/// across worker threads.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_HARNESS_EXPERIMENT_H
#define OCELOT_HARNESS_EXPERIMENT_H

#include "apps/Benchmarks.h"
#include "ocelot/Toolchain.h"
#include "runtime/Simulation.h"

#include <set>
#include <string>

namespace ocelot {

/// A benchmark compiled under one execution model. The artifact is an
/// immutable shared handle: one CompiledBenchmark can back any number of
/// concurrent measurements.
struct CompiledBenchmark {
  std::string Name;
  ExecModel Model = ExecModel::Ocelot;
  CompiledArtifact Artifact;
};

/// Compiles \p B under \p Model (the Atomics-only model uses the manually
/// regioned source). Aborts the process with a message on compile failure —
/// benches treat the benchmarks as trusted inputs.
///
/// \p MainReps > 1 compiles a *throughput driver* variant: the app's
/// `main` is renamed and called MainReps times from a generated `for`
/// loop, so one activation executes the app body that many times.
/// Interpreter-throughput measurements use this to stay dispatch-bound on
/// trivial apps (send_photo executes ~10 instructions per activation;
/// unamortized, a measurement of it times per-activation setup instead).
CompiledBenchmark compileBenchmark(const BenchmarkDef &B, ExecModel Model,
                                   int MainReps = 1);

/// Process-global fusion tier applied by every compileBenchmark call.
/// Bench binaries and `ocelot-fleet run` set this once from their
/// `--fusion=` / `--pgo=` flags before the first compile; the default
/// (FusionMode::Chains, no bundle) matches CompileOptions' defaults.
/// Not thread-safe against concurrent compiles — set before fan-out.
void setBenchFusion(FusionMode M);
FusionMode benchFusion();

/// Process-global PGO bundle applied by every compileBenchmark call (see
/// CompileOptions::Pgo for match/fallback semantics). Null clears it.
void setBenchPgo(std::shared_ptr<const PgoBundle> Pgo);
std::shared_ptr<const PgoBundle> benchPgo();

/// The §7.3 pathological failure points of a compiled benchmark: every use
/// of a fresh variable and every non-first member of each consistent set.
std::set<InstrRef> pathologicalPoints(const CompiledArtifact &A);

/// Average cycles per completed run on continuous power.
struct ContinuousMetrics {
  double CyclesPerRun = 0;
  uint64_t Runs = 0;
};
ContinuousMetrics measureContinuous(const CompiledBenchmark &CB,
                                    const BenchmarkDef &B, int Runs,
                                    uint64_t Seed);

/// Intermittent execution over a fixed simulated-time budget.
struct IntermittentMetrics {
  double OnCyclesPerRun = 0;
  double OffCyclesPerRun = 0;
  double RebootsPerRun = 0;
  uint64_t CompletedRuns = 0;
  uint64_t ViolatingRuns = 0; ///< Completed runs containing any violation.
  bool Starved = false;
  /// A run trapped and the simulated device wedged (metrics cover the
  /// runs before the crash). Never happens under the benchmarks' own
  /// scenarios — it surfaces when a swept `SensorScenario` feeds values
  /// outside the range the firmware was written to trust, which is itself
  /// an input-robustness observation worth a table cell.
  bool Trapped = false;
  std::string Trap; ///< The trap message when Trapped.

  /// Percentage (0–100) of completed runs containing a violation.
  double violationPct() const {
    return CompletedRuns == 0
               ? 0.0
               : 100.0 * static_cast<double>(ViolatingRuns) /
                     static_cast<double>(CompletedRuns);
  }

  // --- Input-epoch oracle aggregates (the Oracle flag of
  // measureIntermittent; all zero otherwise). Output counts sum over
  // every completed run's committed outputs; run counts cross-reference
  // the oracle's ground truth against the monitors' enforcement verdict
  // per run (src/fusion/FusionOracle.h).
  uint64_t OracleFreshOutputs = 0;
  uint64_t OracleStaleOutputs = 0;
  uint64_t OracleCrossEpochOutputs = 0;
  uint64_t OracleDirtyRuns = 0;   ///< Runs with any stale/cross-epoch output.
  uint64_t OverEnforcedRuns = 0;  ///< Monitors flagged, oracle clean.
  uint64_t UnderEnforcedRuns = 0; ///< Oracle dirty, monitors silent.

  double oracleOutputs() const {
    return static_cast<double>(OracleFreshOutputs + OracleStaleOutputs +
                               OracleCrossEpochOutputs);
  }
  double staleOutputPct() const {
    double N = oracleOutputs();
    return N == 0 ? 0.0
                  : 100.0 * static_cast<double>(OracleStaleOutputs) / N;
  }
  double crossEpochOutputPct() const {
    double N = oracleOutputs();
    return N == 0
               ? 0.0
               : 100.0 * static_cast<double>(OracleCrossEpochOutputs) / N;
  }
  double oracleDirtyPct() const {
    return CompletedRuns == 0
               ? 0.0
               : 100.0 * static_cast<double>(OracleDirtyRuns) /
                     static_cast<double>(CompletedRuns);
  }
  double overEnforcedPct() const {
    return CompletedRuns == 0
               ? 0.0
               : 100.0 * static_cast<double>(OverEnforcedRuns) /
                     static_cast<double>(CompletedRuns);
  }
  double underEnforcedPct() const {
    return CompletedRuns == 0
               ? 0.0
               : 100.0 * static_cast<double>(UnderEnforcedRuns) /
                     static_cast<double>(CompletedRuns);
  }
};
/// \p Power selects the harvesting environment (src/power/); null keeps
/// the legacy-jitter recharge behavior. \p Sensors selects the sensed
/// world (src/sensors/); null keeps the benchmark's own seeded-noise
/// scenario (`B.scenario(Seed)`). \p Arena optionally pools the
/// Simulation's large buffers across cells (src/runtime/ArenaPool.h) —
/// results are bitwise identical with or without it.
/// \p Oracle additionally scores every committed output with the
/// input-epoch consistency oracle (src/fusion/FusionOracle.h) and fills
/// the Oracle* aggregates; the default run (false) is bitwise unaffected.
IntermittentMetrics measureIntermittent(
    const CompiledBenchmark &CB, const BenchmarkDef &B,
    const EnergyConfig &Energy, uint64_t TauBudget, uint64_t Seed,
    bool Monitors, std::shared_ptr<const PowerSource> Power = nullptr,
    std::shared_ptr<const SensorScenario> Sensors = nullptr,
    std::shared_ptr<ArenaPool> Arena = nullptr, bool Oracle = false);

/// Table 2(a): percentage (0–100) of runs violating any policy under
/// pathological failure injection. \p Trace optionally attaches a
/// telemetry sink to every run (src/telemetry/TraceSink.h); \p Prof
/// optionally attaches an execution profile (src/telemetry/Profile.h,
/// the `--pgo-out` collection path). The returned percentage is bitwise
/// identical with either observer attached — both only count.
double pathologicalViolationPct(const CompiledBenchmark &CB,
                                const BenchmarkDef &B, int Runs,
                                uint64_t Seed, TraceSink *Trace = nullptr,
                                PcProfile *Prof = nullptr);

/// True when OCELOT_BENCH_SMOKE is set in the environment (to anything but
/// "", "0" or "false"): bench binaries shrink their iteration counts /
/// simulated-time budgets so the ctest `bench` label can exercise every
/// experiment driver on each PR.
bool benchSmokeMode();

} // namespace ocelot

#endif // OCELOT_HARNESS_EXPERIMENT_H
