//===- Experiment.h - Shared evaluation harness ------------------*- C++ -*-===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the paper's evaluation (§7): compile a benchmark
/// under an execution model, run it continuously or intermittently, and
/// aggregate runtime / correctness metrics. Each bench/ binary regenerates
/// one table or figure on top of this.
///
//===----------------------------------------------------------------------===//

#ifndef OCELOT_HARNESS_EXPERIMENT_H
#define OCELOT_HARNESS_EXPERIMENT_H

#include "apps/Benchmarks.h"
#include "ocelot/Compiler.h"
#include "runtime/Interpreter.h"

#include <set>
#include <string>

namespace ocelot {

/// A benchmark compiled under one execution model.
struct CompiledBenchmark {
  std::string Name;
  ExecModel Model = ExecModel::Ocelot;
  CompileResult R;
};

/// Compiles \p B under \p Model (the Atomics-only model uses the manually
/// regioned source). Aborts the process with a message on compile failure —
/// benches treat the benchmarks as trusted inputs.
CompiledBenchmark compileBenchmark(const BenchmarkDef &B, ExecModel Model);

/// The §7.3 pathological failure points of a compiled benchmark: every use
/// of a fresh variable and every non-first member of each consistent set.
std::set<InstrRef> pathologicalPoints(const CompileResult &R);

/// Average cycles per completed run on continuous power.
struct ContinuousMetrics {
  double CyclesPerRun = 0;
  uint64_t Runs = 0;
};
ContinuousMetrics measureContinuous(const CompiledBenchmark &CB,
                                    const BenchmarkDef &B, int Runs,
                                    uint64_t Seed);

/// Intermittent execution over a fixed simulated-time budget.
struct IntermittentMetrics {
  double OnCyclesPerRun = 0;
  double OffCyclesPerRun = 0;
  double RebootsPerRun = 0;
  uint64_t CompletedRuns = 0;
  uint64_t ViolatingRuns = 0; ///< Completed runs containing any violation.
  bool Starved = false;

  double violationPct() const {
    return CompletedRuns == 0
               ? 0.0
               : static_cast<double>(ViolatingRuns) /
                     static_cast<double>(CompletedRuns);
  }
};
IntermittentMetrics measureIntermittent(const CompiledBenchmark &CB,
                                        const BenchmarkDef &B,
                                        const EnergyConfig &Energy,
                                        uint64_t TauBudget, uint64_t Seed,
                                        bool Monitors);

/// Table 2(a): fraction of runs violating any policy under pathological
/// failure injection.
double pathologicalViolationPct(const CompiledBenchmark &CB,
                                const BenchmarkDef &B, int Runs,
                                uint64_t Seed);

} // namespace ocelot

#endif // OCELOT_HARNESS_EXPERIMENT_H
