//===- ocelotc.cpp - The Ocelot command-line compiler/runner ---------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end for the toolchain:
///
///   ocelotc FILE.ocl [options]
///
///   --model=jit|atomics|ocelot|check   execution model (default ocelot)
///   --dispatch=tree|flat|threaded      interpreter engine (default
///                                      threaded; all three are pinned
///                                      bitwise-identical)
///   --emit-ir                          print the compiled IR
///   --disasm                           print the flat executable image
///                                      (PC, opcode, resolved targets,
///                                      cost, region/monitor annotations)
///   --emit-policies                    print derived policies and regions
///   --run[=N]                          run N main() activations (default 1)
///   --intermittent                     energy-driven power failures
///   --power=P                          harvesting environment: a profile
///                                      name (see src/power/PowerProfiles.h)
///                                      or a power-trace CSV path; implies
///                                      --intermittent
///   --sensors=S                        sensed world: a scenario preset
///                                      name (see
///                                      src/sensors/SensorScenarios.h) or a
///                                      sensor-trace CSV path (default:
///                                      per-sensor seeded noise)
///   --monitor                          arm both violation detectors
///   --seed=S                           simulation seed
///   --trace-out=FILE                   write a Chrome trace_event JSON
///                                      timeline of the run (reboots,
///                                      regions, monitor checks, sensor
///                                      reads; load in Perfetto /
///                                      chrome://tracing)
///   --profile                          after --run, print per-PC and
///                                      opcode-pair execution counts and
///                                      how the superinstruction pattern
///                                      table covers the measured pairs
///   --fusion=off|pairs|chains          threaded-view fusion tier
///                                      (default chains: superblock
///                                      chains on top of the pair table)
///   --pgo-out=FILE                     after --run, save the execution
///                                      profile as a PGO bundle keyed by
///                                      the image fingerprint
///   --pgo=FILE                         feed a --pgo-out bundle back into
///                                      superblock-chain selection; a
///                                      bundle with no entry for this
///                                      image (stale profile / different
///                                      source) is a hard error
///
/// Exit status: 0 on success; 1 on compile/check/run failure (including an
/// unknown --model=, --power= or --sensors= value, an unreadable or stale
/// --pgo= bundle, or an unwritable --pgo-out= path); for --monitor runs, 2
/// when any timing violation was detected.
///
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"
#include "ocelot/Toolchain.h"
#include "power/PowerProfiles.h"
#include "runtime/Simulation.h"
#include "sensors/SensorScenarios.h"
#include "telemetry/Profile.h"
#include "telemetry/TraceSink.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace ocelot;

namespace {

struct ModelName {
  const char *Name;
  ExecModel Model;
};

constexpr ModelName ModelNames[] = {
    {"jit", ExecModel::JitOnly},
    {"atomics", ExecModel::AtomicsOnly},
    {"ocelot", ExecModel::Ocelot},
    {"check", ExecModel::CheckOnly},
};

struct EngineName {
  const char *Name;
  DispatchEngine Engine;
};

constexpr EngineName EngineNames[] = {
    {"tree", DispatchEngine::Tree},
    {"flat", DispatchEngine::Flat},
    {"threaded", DispatchEngine::Threaded},
};

void usage() {
  std::fprintf(
      stderr,
      "usage: ocelotc FILE.ocl [--model=jit|atomics|ocelot|check]\n"
      "               [--dispatch=tree|flat|threaded]\n"
      "               [--emit-ir] [--disasm] [--emit-policies] [--run[=N]]\n"
      "               [--intermittent] [--power=profile|trace.csv]\n"
      "               [--sensors=scenario|trace.csv] [--monitor] "
      "[--seed=S]\n"
      "               [--trace-out=FILE] [--profile]\n"
      "               [--fusion=off|pairs|chains] [--pgo=FILE] "
      "[--pgo-out=FILE]\n");
}

/// `--profile` report: per-PC execution counts with disassembly context,
/// and the PC-adjacent opcode-pair histogram annotated with the current
/// superinstruction pattern table's coverage — measured data for choosing
/// the next fusion candidates.
void printProfile(const CompiledArtifact &A, const PcProfile &Prof) {
  const ExecutableImage &Img = A.image();
  const Program &P = A.program();
  const std::vector<FlatInst> &Code = Img.code();

  std::printf("\nprofile: %llu step(s) over %u PC(s)\n",
              static_cast<unsigned long long>(Prof.Steps), Img.size());

  std::vector<uint32_t> Pcs;
  for (uint32_t Pc = 0; Pc < Prof.PcCounts.size(); ++Pc)
    if (Prof.PcCounts[Pc])
      Pcs.push_back(Pc);
  std::sort(Pcs.begin(), Pcs.end(), [&](uint32_t L, uint32_t R) {
    if (Prof.PcCounts[L] != Prof.PcCounts[R])
      return Prof.PcCounts[L] > Prof.PcCounts[R];
    return L < R;
  });
  size_t TopPcs = std::min<size_t>(Pcs.size(), 20);
  std::printf("hot PCs (top %zu of %zu executed):\n", TopPcs, Pcs.size());
  for (size_t I = 0; I < TopPcs; ++I) {
    uint32_t Pc = Pcs[I];
    const FlatInst &FI = Code[Pc];
    ThreadedOp TOp = Img.threadedOps()[Pc];
    std::string FusedNote;
    if (Img.isChainHead(Pc))
      FusedNote = "  [chain head: " +
                  std::to_string(static_cast<int>(Img.chainLenAt(Pc))) +
                  " slot(s)]";
    else if (TOp >= FirstFusedOp)
      FusedNote = std::string("  [fused head: ") + threadedOpName(TOp) + "]";
    std::printf("  pc %5u  %12llu  %-9s %s@%u%s\n", Pc,
                static_cast<unsigned long long>(Prof.PcCounts[Pc]),
                opcodeName(FI.Op), P.function(FI.Func)->name().c_str(),
                FI.Label, FusedNote.c_str());
  }

  struct PairRow {
    uint16_t Prev, Cur;
    uint64_t N;
  };
  std::vector<PairRow> Pairs;
  for (uint16_t Prev = 0; Prev < Prof.NumOpcodes; ++Prev)
    for (uint16_t Cur = 0; Cur < Prof.NumOpcodes; ++Cur) {
      uint64_t N = Prof.PairCounts[static_cast<size_t>(Prev) *
                                       Prof.NumOpcodes +
                                   Cur];
      if (N)
        Pairs.push_back({Prev, Cur, N});
    }
  std::sort(Pairs.begin(), Pairs.end(), [](const PairRow &L,
                                           const PairRow &R) {
    if (L.N != R.N)
      return L.N > R.N;
    if (L.Prev != R.Prev)
      return L.Prev < R.Prev;
    return L.Cur < R.Cur;
  });
  size_t TopPairs = std::min<size_t>(Pairs.size(), 15);
  std::printf("hot PC-adjacent opcode pairs (top %zu of %zu; feed for the "
              "superinstruction table):\n",
              TopPairs, Pairs.size());
  for (size_t I = 0; I < TopPairs; ++I) {
    const PairRow &Row = Pairs[I];
    std::string Name = std::string(opcodeName(static_cast<Opcode>(Row.Prev))) +
                       "+" + opcodeName(static_cast<Opcode>(Row.Cur));
    // A pair is covered when the pattern table has a superinstruction of
    // exactly this spelling (fused names are "head+tail"; the chain codes
    // above FirstChainOp are variable-length, not pair patterns).
    bool Covered = false;
    for (size_t Op = static_cast<size_t>(FirstFusedOp);
         Op < static_cast<size_t>(FirstChainOp); ++Op)
      if (Name == threadedOpName(static_cast<ThreadedOp>(Op))) {
        Covered = true;
        break;
      }
    std::printf("  %-20s %12llu  %s\n", Name.c_str(),
                static_cast<unsigned long long>(Row.N),
                Covered ? "[in pattern table]" : "[unfused]");
  }
}

} // namespace

int main(int argc, char **argv) {
  std::string Path;
  ExecModel Model = ExecModel::Ocelot;
  DispatchEngine Engine = RunConfig().Dispatch;
  bool EmitIr = false, Disasm = false, EmitPolicies = false,
       Intermittent = false, Monitor = false, Profile = false;
  FusionMode Fusion = FusionMode::Chains;
  std::string TracePath, PgoInPath, PgoOutPath;
  std::shared_ptr<const PowerSource> Power;
  std::shared_ptr<const SensorScenario> Sensors;
  int Runs = 0;
  uint64_t Seed = 1;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--emit-ir") {
      EmitIr = true;
    } else if (Arg == "--disasm") {
      Disasm = true;
    } else if (Arg == "--emit-policies") {
      EmitPolicies = true;
    } else if (Arg == "--run") {
      Runs = 1;
    } else if (Arg.rfind("--run=", 0) == 0) {
      Runs = std::atoi(Arg.c_str() + 6);
    } else if (Arg == "--intermittent") {
      Intermittent = true;
    } else if (Arg.rfind("--power=", 0) == 0) {
      std::string Error;
      Power = resolvePowerSource(Arg.substr(8), Error);
      if (!Power) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
      Intermittent = true; // A harvesting environment implies failures.
    } else if (Arg.rfind("--sensors=", 0) == 0) {
      std::string Error;
      Sensors = resolveSensorScenario(Arg.substr(10), Error);
      if (!Sensors) {
        std::fprintf(stderr, "error: %s\n", Error.c_str());
        return 1;
      }
    } else if (Arg == "--monitor") {
      Monitor = true;
    } else if (Arg == "--profile") {
      Profile = true;
    } else if (Arg.rfind("--trace-out=", 0) == 0) {
      TracePath = Arg.substr(12);
    } else if (Arg.rfind("--fusion=", 0) == 0) {
      std::string F = Arg.substr(9);
      if (!parseFusionMode(F, Fusion)) {
        std::fprintf(stderr,
                     "error: unknown fusion tier '%s' (valid: off, pairs, "
                     "chains)\n",
                     F.c_str());
        return 1;
      }
    } else if (Arg.rfind("--pgo=", 0) == 0) {
      PgoInPath = Arg.substr(6);
    } else if (Arg.rfind("--pgo-out=", 0) == 0) {
      PgoOutPath = Arg.substr(10);
    } else if (Arg.rfind("--seed=", 0) == 0) {
      Seed = std::strtoull(Arg.c_str() + 7, nullptr, 10);
    } else if (Arg.rfind("--dispatch=", 0) == 0) {
      std::string E = Arg.substr(11);
      bool Known = false;
      for (const EngineName &EN : EngineNames)
        if (E == EN.Name) {
          Engine = EN.Engine;
          Known = true;
          break;
        }
      if (!Known) {
        std::fprintf(
            stderr,
            "error: unknown engine '%s' (valid: tree, flat, threaded)\n",
            E.c_str());
        return 1;
      }
    } else if (Arg.rfind("--model=", 0) == 0) {
      std::string M = Arg.substr(8);
      bool Known = false;
      for (const ModelName &MN : ModelNames)
        if (M == MN.Name) {
          Model = MN.Model;
          Known = true;
          break;
        }
      if (!Known) {
        std::string Valid;
        for (const ModelName &MN : ModelNames) {
          if (!Valid.empty())
            Valid += ", ";
          Valid += MN.Name;
        }
        std::fprintf(stderr, "error: unknown model '%s' (valid models: %s)\n",
                     M.c_str(), Valid.c_str());
        return 1;
      }
    } else if (!Arg.empty() && Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      usage();
      return 1;
    }
  }
  if (Path.empty()) {
    usage();
    return 1;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  TraceSink Sink;
  const bool Tracing = !TracePath.empty();

  CompileOptions Opts;
  Opts.Model = Model;
  Opts.Fusion = Fusion;
  if (!PgoInPath.empty()) {
    if (Fusion != FusionMode::Chains) {
      std::fprintf(stderr, "error: --pgo= requires --fusion=chains (the "
                           "profile only drives superblock-chain "
                           "selection)\n");
      return 1;
    }
    std::string Error;
    Opts.Pgo = PgoBundle::load(PgoInPath, Error);
    if (!Opts.Pgo) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
  }
  if (Tracing)
    Sink.compileStart(Path);
  Compilation C = Toolchain().compile(Source, Opts);
  if (Tracing)
    Sink.compileEnd(Path);
  // Warnings (including checker-mode findings) always print.
  for (const Diagnostic &D : C.status().diagnostics())
    std::fprintf(stderr, "%s: %s\n", Path.c_str(), D.str().c_str());
  if (!C.ok())
    return 1;
  const CompiledArtifact &A = C.artifact();
  if (!PgoInPath.empty() && !A.image().usedPgo()) {
    // The image builder falls back to the static heat estimator silently;
    // at the CLI a profile that does not match the program being compiled
    // is operator error worth stopping for.
    std::fprintf(stderr,
                 "error: %s has no profile for this image (fingerprint "
                 "%016llx) — the program or compilation options changed "
                 "since the profile was collected; re-collect it with "
                 "--pgo-out on this exact build\n",
                 PgoInPath.c_str(),
                 static_cast<unsigned long long>(A.image().fingerprint()));
    return 1;
  }

  std::printf("compiled %s under model '%s': %zu policies, %zu inferred "
              "region(s)\n",
              Path.c_str(), execModelName(Model), A.policies().size(),
              A.inferredRegions().size());
  if (Model == ExecModel::CheckOnly) {
    std::printf("placement %s\n", A.placementValid() ? "VALID" : "INVALID");
    if (!A.placementValid())
      return 1;
  }

  if (EmitIr)
    std::printf("\n%s", printProgram(A.program()).c_str());

  if (Disasm)
    std::printf("\n%s", A.image().disassemble(A.program()).c_str());

  if (EmitPolicies) {
    for (const FreshPolicy &Pol : A.policies().Fresh) {
      std::printf("fresh policy #%d on '%s' in %s: %zu input(s), %zu "
                  "use(s)\n",
                  Pol.Id, Pol.VarName.c_str(),
                  A.program().function(Pol.DeclFunc)->name().c_str(),
                  Pol.Inputs.size(), Pol.Uses.size());
      for (const ProvChain &Ch : Pol.Inputs)
        std::printf("  input %s\n", chainToString(A.program(), Ch).c_str());
    }
    for (const ConsistentPolicy &Pol : A.policies().Consistent) {
      std::printf("consistent policy #%d (set %d): %zu member(s), %zu "
                  "input(s)\n",
                  Pol.Id, Pol.SetId, Pol.Decls.size(), Pol.Inputs.size());
      for (const ProvChain &Ch : Pol.Inputs)
        std::printf("  input %s\n", chainToString(A.program(), Ch).c_str());
    }
    for (const InferredRegion &Reg : A.inferredRegions())
      std::printf("region r%d placed in %s\n", Reg.RegionId,
                  A.program().function(Reg.Func)->name().c_str());
    for (const RegionInfo &Info : A.regions()) {
      std::printf("region r%d omega = {", Info.RegionId);
      bool First = true;
      for (int G : Info.Omega) {
        std::printf("%s%s", First ? "" : ", ",
                    A.program().global(G).Name.c_str());
        First = false;
      }
      std::printf("}\n");
    }
  }

  auto WriteTrace = [&]() -> bool {
    if (!Tracing)
      return true;
    std::string Error;
    if (!Sink.writeChromeJson(TracePath, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return false;
    }
    std::fprintf(stderr, "wrote %zu trace event(s) to %s%s\n", Sink.size(),
                 TracePath.c_str(),
                 Sink.dropped() ? " (ring overflow dropped oldest)" : "");
    return true;
  };

  if (Runs <= 0) {
    if (Profile)
      std::fprintf(stderr,
                   "note: --profile needs --run to collect any data\n");
    if (!PgoOutPath.empty()) {
      std::fprintf(stderr,
                   "error: --pgo-out needs --run to collect any data\n");
      return 1;
    }
    return WriteTrace() ? 0 : 1;
  }

  SimulationSpec Spec;
  Spec.Config.Sensors = Sensors; // Null = seeded noise per sensor.
  Spec.Config.Seed = Seed;
  Spec.Config.Dispatch = Engine;
  Spec.Config.RecordTrace = true;
  if (Intermittent) {
    Spec.Config.Plan = FailurePlan::energyDriven();
    Spec.Config.Power = Power; // Null = legacy-jitter default.
  }
  if (Monitor) {
    Spec.Config.MonitorBitVector = true;
    Spec.Config.MonitorFormal = true;
  }
  if (Tracing)
    Spec.Config.Telemetry = &Sink;
  PcProfile Prof;
  if (Profile || !PgoOutPath.empty()) {
    Prof.prepare(A.image().size(), static_cast<size_t>(NumOpcodes));
    Spec.Config.Profile = &Prof;
  }
  Simulation Sim(A, std::move(Spec));
  uint64_t Reboots = 0, Violations = 0;
  for (int Run = 0; Run < Runs; ++Run) {
    RunResult Res = Sim.runOnce();
    if (!Res.Completed) {
      std::fprintf(stderr, "run %d failed: %s\n", Run,
                   Res.Starved ? "starved (region exceeds energy budget)"
                               : Res.Trap.c_str());
      return 1;
    }
    Reboots += Res.Reboots;
    if (Res.ViolatedFresh || Res.ViolatedConsistent)
      ++Violations;
    for (const OutputEvent &E : Res.TraceData.Outputs) {
      std::printf("[run %d @%llu] %s(", Run,
                  static_cast<unsigned long long>(E.Tau),
                  outputKindName(E.Kind));
      for (size_t Arg = 0; Arg < E.Args.size(); ++Arg)
        std::printf("%s%lld", Arg ? ", " : "",
                    static_cast<long long>(E.Args[Arg]));
      std::printf(")\n");
    }
  }
  std::printf("%d run(s), %llu reboot(s)", Runs,
              static_cast<unsigned long long>(Reboots));
  if (Monitor)
    std::printf(", %llu run(s) with timing violations",
                static_cast<unsigned long long>(Violations));
  std::printf("\n");
  if (Profile)
    printProfile(A, Prof);
  if (!PgoOutPath.empty()) {
    PgoBundle Bundle;
    Bundle.entry(A.image().fingerprint()) = Prof;
    std::string Error;
    if (!Bundle.save(PgoOutPath, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "wrote pgo profile (%llu step(s), image %016llx) to %s\n",
                 static_cast<unsigned long long>(Prof.Steps),
                 static_cast<unsigned long long>(A.image().fingerprint()),
                 PgoOutPath.c_str());
  }
  if (!WriteTrace())
    return 1;
  return Monitor && Violations ? 2 : 0;
}
