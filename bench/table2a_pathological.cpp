//===- table2a_pathological.cpp - Paper Table 2(a) -------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2(a): the fraction of runs violating a freshness or
/// consistency policy when simulated power failures are injected at the
/// pathological points — immediately before each use of a fresh variable
/// and between the input operations of each consistent set (§7.3). The
/// paper reports Ocelot 0% everywhere, JIT 100% everywhere.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TableFmt.h"
#include "telemetry/Profile.h"
#include "telemetry/TraceSink.h"

#include <cstdio>
#include <string>

using namespace ocelot;

int main(int argc, char **argv) {
  // --trace-out=FILE attaches a TraceSink to every measured run and dumps
  // a Chrome trace_event JSON at exit; the table itself is byte-identical
  // with or without it (telemetry observes tau-time, it never spends it).
  // --pgo-out=FILE likewise attaches an execution profile per compiled
  // image and saves the whole grid as one PGO bundle; --pgo=FILE feeds a
  // bundle back into superblock-chain selection. Profiles only count, so
  // the table is byte-identical in all three configurations — which is
  // exactly what the CI PGO drill pins.
  std::string TracePath, PgoInPath, PgoOutPath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--trace-out=", 0) == 0) {
      TracePath = Arg.substr(12);
    } else if (Arg.rfind("--pgo=", 0) == 0) {
      PgoInPath = Arg.substr(6);
    } else if (Arg.rfind("--pgo-out=", 0) == 0) {
      PgoOutPath = Arg.substr(10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace-out=FILE] [--pgo=FILE] "
                   "[--pgo-out=FILE]\n",
                   argv[0]);
      return 1;
    }
  }
  TraceSink Sink;
  TraceSink *Trace = TracePath.empty() ? nullptr : &Sink;
  if (!PgoInPath.empty()) {
    std::string Error;
    auto Bundle = PgoBundle::load(PgoInPath, Error);
    if (!Bundle) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    setBenchPgo(std::move(Bundle));
  }
  PgoBundle OutBundle;

  std::printf("== Table 2(a): Violating %% with pathological power failure "
              "points ==\n\n");
  const int Runs = benchSmokeMode() ? 10 : 100;
  constexpr uint64_t Seed = 7;

  Table T({"Exec. Model", "Activity", "CEM", "Greenhouse", "Photo",
           "Send Photo", "Tire"});
  const char *Names[3] = {"Ocelot", "Atomics(manual)", "JIT"};
  const ExecModel Models[3] = {ExecModel::Ocelot, ExecModel::AtomicsOnly,
                               ExecModel::JitOnly};
  const char *Order[6] = {"activity", "cem",        "greenhouse",
                          "photo",    "send_photo", "tire"};
  for (int M = 0; M < 3; ++M) {
    std::vector<std::string> Row = {Names[M]};
    for (const char *Name : Order) {
      const BenchmarkDef &B = *findBenchmark(Name);
      if (Trace)
        Trace->compileStart(Name);
      CompiledBenchmark CB = compileBenchmark(B, Models[M]);
      if (Trace)
        Trace->compileEnd(Name);
      PcProfile *Prof = nullptr;
      if (!PgoOutPath.empty()) {
        Prof = &OutBundle.entry(CB.Artifact.image().fingerprint());
        Prof->prepare(CB.Artifact.image().size(),
                      static_cast<size_t>(NumOpcodes));
      }
      Row.push_back(
          fmtPct(pathologicalViolationPct(CB, B, Runs, Seed, Trace, Prof)));
    }
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("Paper: Ocelot 0%% on all benchmarks; JIT 100%% on all "
              "benchmarks.\n");
  if (!PgoOutPath.empty()) {
    std::string Error;
    if (!OutBundle.save(PgoOutPath, Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote pgo bundle (%zu image(s)) to %s\n",
                 OutBundle.Entries.size(), PgoOutPath.c_str());
  }
  if (Trace) {
    std::string Error;
    if (!Sink.writeChromeJson(TracePath, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace event(s) to %s%s\n", Sink.size(),
                 TracePath.c_str(),
                 Sink.dropped() ? " (ring overflow dropped oldest)" : "");
  }
  return 0;
}
