//===- table2a_pathological.cpp - Paper Table 2(a) -------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2(a): the fraction of runs violating a freshness or
/// consistency policy when simulated power failures are injected at the
/// pathological points — immediately before each use of a fresh variable
/// and between the input operations of each consistent set (§7.3). The
/// paper reports Ocelot 0% everywhere, JIT 100% everywhere.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TableFmt.h"
#include "telemetry/TraceSink.h"

#include <cstdio>
#include <string>

using namespace ocelot;

int main(int argc, char **argv) {
  // --trace-out=FILE attaches a TraceSink to every measured run and dumps
  // a Chrome trace_event JSON at exit; the table itself is byte-identical
  // with or without it (telemetry observes tau-time, it never spends it).
  std::string TracePath;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--trace-out=", 0) == 0) {
      TracePath = Arg.substr(12);
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out=FILE]\n", argv[0]);
      return 1;
    }
  }
  TraceSink Sink;
  TraceSink *Trace = TracePath.empty() ? nullptr : &Sink;

  std::printf("== Table 2(a): Violating %% with pathological power failure "
              "points ==\n\n");
  const int Runs = benchSmokeMode() ? 10 : 100;
  constexpr uint64_t Seed = 7;

  Table T({"Exec. Model", "Activity", "CEM", "Greenhouse", "Photo",
           "Send Photo", "Tire"});
  const char *Names[3] = {"Ocelot", "Atomics(manual)", "JIT"};
  const ExecModel Models[3] = {ExecModel::Ocelot, ExecModel::AtomicsOnly,
                               ExecModel::JitOnly};
  const char *Order[6] = {"activity", "cem",        "greenhouse",
                          "photo",    "send_photo", "tire"};
  for (int M = 0; M < 3; ++M) {
    std::vector<std::string> Row = {Names[M]};
    for (const char *Name : Order) {
      const BenchmarkDef &B = *findBenchmark(Name);
      if (Trace)
        Trace->compileStart(Name);
      CompiledBenchmark CB = compileBenchmark(B, Models[M]);
      if (Trace)
        Trace->compileEnd(Name);
      Row.push_back(
          fmtPct(pathologicalViolationPct(CB, B, Runs, Seed, Trace)));
    }
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("Paper: Ocelot 0%% on all benchmarks; JIT 100%% on all "
              "benchmarks.\n");
  if (Trace) {
    std::string Error;
    if (!Sink.writeChromeJson(TracePath, &Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu trace event(s) to %s%s\n", Sink.size(),
                 TracePath.c_str(),
                 Sink.dropped() ? " (ring overflow dropped oldest)" : "");
  }
  return 0;
}
