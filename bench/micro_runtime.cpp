//===- micro_runtime.cpp - Runtime mechanism micro-benchmarks --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime micro-benchmarks in two parts:
///
///  * `--json=PATH` — the interpreter throughput report: steps-per-second
///    of the flat PC-indexed engine vs the tree-walking baseline for every
///    benchmark x execution model, written as JSON so CI can record the
///    perf trajectory per PR. Needs no external library.
///
///  * Google-Benchmark micro-suite (when the library is available) for the
///    simulator's mechanisms: interpreter throughput, taint-tracking
///    overhead, undo-log modes (dynamic first-write vs static omega
///    backup), compilation and region-inference cost. These support
///    Figures 7/8 by showing where simulated cycles come from and what
///    the host-side costs of the toolchain are.
///
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "harness/Experiment.h"
#include "ocelot/Toolchain.h"
#include "runtime/Simulation.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifdef OCELOT_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

using namespace ocelot;

namespace {

// -- Interpreter throughput report (--json) --------------------------------

struct Throughput {
  double StepsPerSec = 0;
  uint64_t StepsPerRun = 0;
};

/// Runs complete continuous activations under \p Engine until at least
/// \p MinSeconds of wall clock elapsed; reports executed instructions per
/// second. Continuous power isolates the dispatch loop itself: no failure
/// injection, no monitors — fetch, cost charging and opcode execution.
Throughput measureThroughput(const CompiledBenchmark &CB,
                             const BenchmarkDef &B, DispatchEngine Engine,
                             double MinSeconds) {
  SimulationSpec Spec;
  Spec.Config.Sensors = B.scenario(1);
  Spec.Config.Seed = 1;
  Spec.Config.Dispatch = Engine;
  Simulation Sim(CB.Artifact, std::move(Spec));

  // Warm-up activation (cold caches, first-touch allocation).
  RunResult Warm = Sim.runOnce();
  if (!Warm.Completed) {
    std::fprintf(stderr, "throughput run of %s failed: %s\n",
                 CB.Name.c_str(), Warm.Trap.c_str());
    std::abort();
  }

  uint64_t Steps = 0;
  uint64_t Runs = 0;
  auto Start = std::chrono::steady_clock::now();
  double Elapsed = 0;
  do {
    RunResult R = Sim.runOnce();
    if (!R.Completed) {
      std::fprintf(stderr, "throughput run of %s failed: %s\n",
                   CB.Name.c_str(), R.Trap.c_str());
      std::abort();
    }
    Steps += R.Steps;
    ++Runs;
    Elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  } while (Elapsed < MinSeconds);

  Throughput T;
  T.StepsPerSec = static_cast<double>(Steps) / Elapsed;
  T.StepsPerRun = Steps / Runs;
  return T;
}

int runInterpReport(const std::string &Path) {
  const bool Smoke = benchSmokeMode();
  // Long enough for stable numbers in a full run; bench-smoke keeps every
  // binary fast enough to run on each PR.
  const double MinSeconds = Smoke ? 0.02 : 0.25;
  const ExecModel Models[] = {ExecModel::Ocelot, ExecModel::JitOnly,
                              ExecModel::AtomicsOnly};

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"report\": \"interpreter steps per second\",\n"
                    "  \"mode\": \"%s\",\n  \"rows\": [\n",
               Smoke ? "smoke" : "full");

  double LogSum = 0;
  int RowCount = 0;
  for (const BenchmarkDef &B : allBenchmarks()) {
    for (ExecModel Model : Models) {
      CompiledBenchmark CB = compileBenchmark(B, Model);
      Throughput Tree =
          measureThroughput(CB, B, DispatchEngine::Tree, MinSeconds);
      Throughput Flat =
          measureThroughput(CB, B, DispatchEngine::Flat, MinSeconds);
      double Speedup = Tree.StepsPerSec > 0
                           ? Flat.StepsPerSec / Tree.StepsPerSec
                           : 0;
      LogSum += std::log(Speedup);
      std::fprintf(Out,
                   "%s    {\"benchmark\": \"%s\", \"model\": \"%s\", "
                   "\"steps_per_run\": %llu, "
                   "\"tree_steps_per_sec\": %.0f, "
                   "\"flat_steps_per_sec\": %.0f, "
                   "\"speedup\": %.3f}",
                   RowCount ? ",\n" : "", B.Name.c_str(),
                   execModelName(Model),
                   static_cast<unsigned long long>(Flat.StepsPerRun),
                   Tree.StepsPerSec, Flat.StepsPerSec, Speedup);
      std::fprintf(stderr, "%-12s %-8s tree %10.0f steps/s   flat %10.0f "
                           "steps/s   x%.2f\n",
                   B.Name.c_str(), execModelName(Model), Tree.StepsPerSec,
                   Flat.StepsPerSec, Speedup);
      ++RowCount;
    }
  }
  double Geomean = std::exp(LogSum / RowCount);
  std::fprintf(Out, "\n  ],\n  \"geomean_speedup\": %.3f\n}\n", Geomean);
  std::fclose(Out);
  std::fprintf(stderr, "geomean flat/tree speedup: x%.2f (%s)\n", Geomean,
               Path.c_str());
  return 0;
}

} // namespace

#ifdef OCELOT_HAVE_GBENCH

namespace {

const BenchmarkDef &tire() { return *findBenchmark("tire"); }
const BenchmarkDef &cem() { return *findBenchmark("cem"); }

void BM_CompileOcelot(benchmark::State &State) {
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Compilation C = TC.compile(tire().AnnotatedSrc, Opts);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_CompileOcelot);

void BM_CompileJitOnly(benchmark::State &State) {
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::JitOnly;
    Compilation C = TC.compile(tire().AnnotatedSrc, Opts);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_CompileJitOnly);

/// Interpreter throughput under both dispatch engines; the ratio is what
/// the --json report records per PR.
void interpretContinuous(benchmark::State &State, DispatchEngine Engine) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = tire().scenario(1);
  Spec.Config.Dispatch = Engine;
  Simulation Sim(A, std::move(Spec));
  uint64_t Cycles = 0, Steps = 0;
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    Cycles += Res.OnCycles;
    Steps += Res.Steps;
    benchmark::DoNotOptimize(Res.Completed);
  }
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(Cycles) /
                         static_cast<double>(State.iterations()));
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

void BM_InterpretContinuousFlat(benchmark::State &State) {
  interpretContinuous(State, DispatchEngine::Flat);
}
BENCHMARK(BM_InterpretContinuousFlat);

void BM_InterpretContinuousTree(benchmark::State &State) {
  interpretContinuous(State, DispatchEngine::Tree);
}
BENCHMARK(BM_InterpretContinuousTree);

void BM_InterpretWithTaint(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = tire().scenario(1);
  Spec.Config.TrackTaint = true;
  Spec.Config.MonitorFormal = true;
  Spec.Config.MonitorBitVector = true;
  Simulation Sim(A, std::move(Spec));
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretWithTaint);

void BM_InterpretIntermittent(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = tire().scenario(1);
  Spec.Config.Plan = FailurePlan::energyDriven();
  Simulation Sim(A, std::move(Spec));
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretIntermittent);

/// Undo-log mode comparison on CEM's write-heavy atomics build: dynamic
/// first-write logging vs static omega backup at region entry (simulated
/// cycle counts are the interesting output).
void undoLogMode(benchmark::State &State, bool StaticOmega) {
  CompiledArtifact A =
      compileBenchmark(cem(), ExecModel::AtomicsOnly).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = cem().scenario(1);
  Spec.Config.StaticOmega = StaticOmega;
  Simulation Sim(A, std::move(Spec));
  uint64_t SimCycles = 0, LogEntries = 0;
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    SimCycles += Res.OnCycles;
    LogEntries += Res.UndoLogEntries;
  }
  double N = static_cast<double>(State.iterations());
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(SimCycles) / N);
  State.counters["log_entries/run"] =
      benchmark::Counter(static_cast<double>(LogEntries) / N);
}

void BM_UndoLogDynamic(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/false);
}
BENCHMARK(BM_UndoLogDynamic);

void BM_UndoLogStaticOmega(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/true);
}
BENCHMARK(BM_UndoLogStaticOmega);

void BM_RegionInference(benchmark::State &State) {
  // Inference cost isolated: parse+lower once per iteration is included in
  // BM_CompileOcelot; here the delta against JitOnly shows analysis cost.
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Opts.SelfCheck = true;
    Compilation C = TC.compile(cem().AnnotatedSrc, Opts);
    if (!C.ok())
      std::abort();
    benchmark::DoNotOptimize(C.artifact().inferredRegions().size());
  }
}
BENCHMARK(BM_RegionInference);

} // namespace

#endif // OCELOT_HAVE_GBENCH

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I)
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      return runInterpReport(argv[I] + 7);
#ifdef OCELOT_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "micro_runtime was built without Google Benchmark; only the "
               "interpreter throughput report is available:\n"
               "  micro_runtime --json=BENCH_interp.json\n");
  return 1;
#endif
}
