//===- micro_runtime.cpp - Runtime mechanism micro-benchmarks --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime micro-benchmarks in three parts:
///
///  * `--json=PATH` — the interpreter throughput report: steps-per-second
///    of every dispatch engine against the tree-walking baseline for every
///    benchmark x execution model, written as JSON so CI can record the
///    perf trajectory per PR (tools/bench_compare.py gates on the
///    host-normalized speedup ratios). Needs no external library. The
///    schema is N-engine: adding an engine extends the `engines` array
///    and the per-row maps without changing any existing key.
///
///  * `--pairs` — the dynamic opcode-pair histogram over all benchmarks x
///    models, counted by the tree engine (RunConfig::OpcodePairCounts).
///    This is the data the superinstruction set in ExecutableImage's
///    fusion pass was chosen from.
///
///  * Google-Benchmark micro-suite (when the library is available) for the
///    simulator's mechanisms: interpreter throughput, taint-tracking
///    overhead, undo-log modes (dynamic first-write vs static omega
///    backup), compilation and region-inference cost. These support
///    Figures 7/8 by showing where simulated cycles come from and what
///    the host-side costs of the toolchain are.
///
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "fleet/FleetRunner.h"
#include "fleet/ShardProgress.h"
#include "harness/Experiment.h"
#include "harness/SweepRunner.h"
#include "ocelot/Toolchain.h"
#include "runtime/Simulation.h"
#include "telemetry/MetricsRegistry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#ifdef OCELOT_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

#ifndef _WIN32
#include <unistd.h>
#endif

using namespace ocelot;

namespace {

// -- Interpreter throughput report (--json) --------------------------------

struct Throughput {
  double StepsPerSec = 0;
  uint64_t StepsPerRun = 0;
};

/// Runs complete continuous activations under \p Engine until at least
/// \p MinSeconds of wall clock elapsed; reports executed instructions per
/// second. Continuous power isolates the dispatch loop itself: no failure
/// injection, no monitors — fetch, cost charging and opcode execution.
Throughput measureThroughput(const CompiledBenchmark &CB,
                             const BenchmarkDef &B, DispatchEngine Engine,
                             double MinSeconds) {
  SimulationSpec Spec;
  Spec.Config.Sensors = B.scenario(1);
  Spec.Config.Seed = 1;
  Spec.Config.Dispatch = Engine;
  Simulation Sim(CB.Artifact, std::move(Spec));

  // Warm-up activation (cold caches, first-touch allocation).
  RunResult Warm = Sim.runOnce();
  if (!Warm.Completed) {
    std::fprintf(stderr, "throughput run of %s failed: %s\n",
                 CB.Name.c_str(), Warm.Trap.c_str());
    std::abort();
  }

  // Best of three trials. External CPU contention (a shared host, a
  // background compile) only ever slows a trial down, so the fastest
  // trial is the least-contaminated estimate of the engine's throughput;
  // averaging would fold the contention back in. Smoke mode keeps one
  // trial — it gates nothing on the numbers.
  const int Trials = MinSeconds < 0.1 ? 1 : 3;
  Throughput T;
  for (int Trial = 0; Trial < Trials; ++Trial) {
    uint64_t Steps = 0;
    uint64_t Runs = 0;
    uint64_t Batch = 1;
    auto Start = std::chrono::steady_clock::now();
    double Elapsed = 0;
    do {
      for (uint64_t I = 0; I < Batch; ++I) {
        RunResult R = Sim.runOnce();
        if (!R.Completed) {
          std::fprintf(stderr, "throughput run of %s failed: %s\n",
                       CB.Name.c_str(), R.Trap.c_str());
          std::abort();
        }
        Steps += R.Steps;
      }
      Runs += Batch;
      Elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
      // Keep clock reads off the measured path: grow the batch until one
      // batch spans a meaningful slice of the budget.
      if (Elapsed * 64 < MinSeconds)
        Batch *= 2;
    } while (Elapsed < MinSeconds);
    const double StepsPerSec = static_cast<double>(Steps) / Elapsed;
    if (StepsPerSec > T.StepsPerSec) {
      T.StepsPerSec = StepsPerSec;
      T.StepsPerRun = Steps / Runs;
    }
  }
  return T;
}

/// The engines the report measures. The baseline comes first: every other
/// engine's speedup (and the CI gate in tools/bench_compare.py) is the
/// steps/sec ratio against it, which normalizes out host speed.
/// `threaded-pairs` is the same dispatch loop on an artifact compiled at
/// the Pairs fusion tier — its gap to `threaded` is the superblock-chain
/// contribution, reported per row as the chain tier delta.
struct EngineSpec {
  const char *Name;
  DispatchEngine Engine;
  bool PairsOnly; ///< Measure the FusionMode::Pairs-compiled artifact.
};
constexpr EngineSpec Engines[] = {
    {"tree", DispatchEngine::Tree, false},
    {"flat", DispatchEngine::Flat, false},
    {"threaded", DispatchEngine::Threaded, false},
    {"threaded-pairs", DispatchEngine::Threaded, true},
};
constexpr size_t NumEngines = sizeof(Engines) / sizeof(Engines[0]);

const ExecModel ReportModels[] = {ExecModel::Ocelot, ExecModel::JitOnly,
                                  ExecModel::AtomicsOnly};

/// One measured activation executes the app body this many times
/// (compileBenchmark's MainReps driver): trivial apps like send_photo run
/// ~10 instructions per activation, so unamortized rows would time
/// per-activation setup instead of the dispatch loop the report is for.
constexpr int ThroughputReps = 64;

// -- Sweep-throughput section (cells/sec, in-memory vs fleet shard) --------

struct SweepRates {
  size_t Cells = 0;
  uint64_t TauBudget = 0;
  double MemCellsPerSec = 0;  ///< SweepRunner(1), in-memory aggregation.
  double FleetCellsPerSec = 0; ///< runShard: streaming + checkpoints.
};

/// Evaluates a table2b-shaped grid (all benchmarks x {ocelot, jit}) twice —
/// once through the in-memory SweepRunner, once as a single fleet shard
/// with streaming sinks and per-cell checkpoints — and reports cells per
/// second for both. The committed, gated number is the *ratio*
/// (fleet / in-memory), which normalizes out host speed and isolates the
/// fleet service's streaming + durability overhead.
SweepRates measureSweepRates(bool Smoke) {
  FleetSpec Fleet;
  Fleet.Models = {"ocelot", "jit"};
  for (const BenchmarkDef &B : allBenchmarks())
    Fleet.Benchmarks.push_back(B.Name);
  Fleet.Energies = {EnergyConfig()};
  Fleet.Seeds = {99, 100, 101, 102};
  Fleet.TauBudget = Smoke ? 50000 : 400000;

  SweepSpec Spec;
  std::string Err;
  if (!Fleet.resolve(Spec, Err)) {
    std::fprintf(stderr, "sweep section: %s\n", Err.c_str());
    std::abort();
  }
  // Warm the process-wide artifact cache so both timed phases measure
  // evaluation, not compilation.
  for (ExecModel Model : Spec.Models)
    for (const BenchmarkDef *B : Spec.Benchmarks)
      compileBenchmark(*B, Model);

  SweepRates R;
  R.Cells = Spec.cellCount();
  R.TauBudget = Fleet.TauBudget;

  // Best-of-N on both phases: each phase runs tens of milliseconds, so a
  // single scheduler hiccup on a busy CI host would otherwise swamp the
  // gated ratio.
  const int Reps = Smoke ? 1 : 3;

  double MemSec = 0;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    std::vector<SweepCellResult> Mem = SweepRunner(1).run(Spec);
    auto T1 = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(T1 - T0).count();
    if (Rep == 0 || Sec < MemSec)
      MemSec = Sec;
  }
  R.MemCellsPerSec = static_cast<double>(R.Cells) / MemSec;

  char Dir[] = "/tmp/ocelot-fleet-bench-XXXXXX";
  if (!mkdtemp(Dir)) {
    std::fprintf(stderr, "sweep section: cannot create temp dir\n");
    std::abort();
  }
  ShardRunOptions Opts;
  Opts.OutDir = Dir;
  Opts.Quiet = true;
  // One checkpoint at the end of the range: the gated ratio should track
  // streaming/serialization overhead, not the host's fsync latency (which
  // varies wildly across CI runners and is covered by FleetTest and the
  // CI fleet lane instead).
  Opts.CheckpointEvery = R.Cells;
  double FleetSec = 0;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    // A completed shard resumes as a no-op; wipe it between reps.
    std::remove(shardResultPath(Opts).c_str());
    std::remove(shardManifestPath(Opts).c_str());
    ShardOutcome Outcome;
    auto T2 = std::chrono::steady_clock::now();
    if (!runShard(Fleet, Opts, Outcome, Err)) {
      std::fprintf(stderr, "sweep section: %s\n", Err.c_str());
      std::abort();
    }
    auto T3 = std::chrono::steady_clock::now();
    double Sec = std::chrono::duration<double>(T3 - T2).count();
    if (Rep == 0 || Sec < FleetSec)
      FleetSec = Sec;
  }
  R.FleetCellsPerSec = static_cast<double>(R.Cells) / FleetSec;

  std::remove(shardResultPath(Opts).c_str());
  std::remove(shardManifestPath(Opts).c_str());
  std::remove(shardProgressPath(Opts).c_str());
  ::rmdir(Dir);
  return R;
}

// -- Compile-cost section (toolchain wall time + artifact cache) -----------

struct CompileCosts {
  struct Row {
    std::string Name;
    double WallMs = 0;
  };
  std::vector<Row> Rows;       ///< Best-of-N uncached Ocelot compile.
  uint64_t CacheHits = 0;      ///< Process-wide compileCached stats.
  uint64_t CacheMisses = 0;
};

/// Times an uncached Ocelot-model compile of every benchmark, reading the
/// wall time back out of the MetricsRegistry that Toolchain::compile
/// feeds (so the report exercises the same counters operators see in a
/// metrics dump). Cache hit/miss totals cover the whole bench process —
/// by this point the throughput and sweep sections have gone through
/// compileBenchmark/compileCached many times.
CompileCosts measureCompileCosts(bool Smoke) {
  CompileCosts C;
  MetricsRegistry &M = MetricsRegistry::global();
  Toolchain TC;
  const int Reps = Smoke ? 1 : 3;
  for (const BenchmarkDef &B : allBenchmarks()) {
    double Best = 0;
    for (int Rep = 0; Rep < Reps; ++Rep) {
      double SumBefore = M.summary("toolchain.compile.wall_ms").Sum;
      CompileOptions Opts;
      Opts.Model = ExecModel::Ocelot;
      Compilation Comp = TC.compile(B.AnnotatedSrc, Opts);
      if (!Comp.ok()) {
        std::fprintf(stderr, "compile section: %s failed to compile\n",
                     B.Name.c_str());
        std::abort();
      }
      double Ms = M.summary("toolchain.compile.wall_ms").Sum - SumBefore;
      if (Rep == 0 || Ms < Best)
        Best = Ms;
    }
    C.Rows.push_back({B.Name, Best});
  }
  C.CacheHits = M.counter("toolchain.cache.hits");
  C.CacheMisses = M.counter("toolchain.cache.misses");
  return C;
}

// -- Shard peak-RSS section (fleet memory gate) ----------------------------

struct ShardRss {
  size_t Cells = 0;
  double PeakRssMb = 0;
};

/// Runs a many-cell single-benchmark fleet shard and reports the process
/// peak RSS afterwards. The fleet service documents a bounded footprint —
/// artifacts + reorder window + pooled arenas, never the whole grid — so
/// a regression that accumulates per-cell state shows up here as RSS
/// scaling with the 10k-cell grid. getrusage's high-water mark is
/// process-wide (it includes the earlier report sections), which only
/// makes the gate stricter.
ShardRss measureShardRss(bool Smoke) {
  FleetSpec Fleet;
  Fleet.Models = {"ocelot"};
  Fleet.Benchmarks = {"tire"};
  Fleet.Energies = {EnergyConfig()};
  const uint64_t NumSeeds = Smoke ? 1000 : 10000;
  for (uint64_t S = 0; S < NumSeeds; ++S)
    Fleet.Seeds.push_back(1000 + S);
  Fleet.TauBudget = Smoke ? 2000 : 20000;

  char Dir[] = "/tmp/ocelot-fleet-rss-XXXXXX";
  if (!mkdtemp(Dir)) {
    std::fprintf(stderr, "rss section: cannot create temp dir\n");
    std::abort();
  }
  ShardRunOptions Opts;
  Opts.OutDir = Dir;
  Opts.Quiet = true;
  Opts.CheckpointEvery = NumSeeds; // Measure memory, not fsync latency.
  ShardOutcome Outcome;
  std::string Err;
  if (!runShard(Fleet, Opts, Outcome, Err)) {
    std::fprintf(stderr, "rss section: %s\n", Err.c_str());
    std::abort();
  }
  ShardRss R;
  R.Cells = NumSeeds;
  R.PeakRssMb = peakRssMb();
  std::remove(shardResultPath(Opts).c_str());
  std::remove(shardManifestPath(Opts).c_str());
  std::remove(shardProgressPath(Opts).c_str());
  ::rmdir(Dir);
  return R;
}

int runInterpReport(const std::string &Path) {
  const bool Smoke = benchSmokeMode();
  // Long enough for stable numbers in a full run; bench-smoke keeps every
  // binary fast enough to run on each PR.
  const double MinSeconds = Smoke ? 0.02 : 0.25;

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"report\": \"interpreter steps per second\",\n"
                    "  \"mode\": \"%s\",\n  \"baseline\": \"%s\",\n"
                    "  \"engines\": [",
               Smoke ? "smoke" : "full", Engines[0].Name);
  for (size_t E = 0; E < NumEngines; ++E)
    std::fprintf(Out, "%s\"%s\"", E ? ", " : "", Engines[E].Name);
  std::fprintf(Out, "],\n  \"rows\": [\n");

  double LogSum[NumEngines] = {};
  int RowCount = 0;
  for (const BenchmarkDef &B : allBenchmarks()) {
    for (ExecModel Model : ReportModels) {
      CompiledBenchmark CB = compileBenchmark(B, Model, ThroughputReps);
      // The pair-tier artifact for the chain-delta row: same source and
      // model, FusionMode::Pairs. Temporarily retarget the process-global
      // fusion tier (the compile funnel reads it) and restore.
      const FusionMode Saved = benchFusion();
      setBenchFusion(FusionMode::Pairs);
      CompiledBenchmark CBPairs = compileBenchmark(B, Model, ThroughputReps);
      setBenchFusion(Saved);
      Throughput T[NumEngines];
      for (size_t E = 0; E < NumEngines; ++E)
        T[E] = measureThroughput(Engines[E].PairsOnly ? CBPairs : CB, B,
                                 Engines[E].Engine, MinSeconds);
      double Speedup[NumEngines] = {};
      for (size_t E = 1; E < NumEngines; ++E) {
        Speedup[E] =
            T[0].StepsPerSec > 0 ? T[E].StepsPerSec / T[0].StepsPerSec : 0;
        LogSum[E] += std::log(Speedup[E]);
      }
      // Chain tier delta: chains-vs-pairs on the threaded engine. > 1
      // means the superblock chains pay for themselves on this row.
      double ChainDelta =
          Speedup[3] > 0 ? Speedup[2] / Speedup[3] : 0;
      std::fprintf(Out,
                   "%s    {\"benchmark\": \"%s\", \"model\": \"%s\", "
                   "\"steps_per_run\": %llu, \"steps_per_sec\": {",
                   RowCount ? ",\n" : "", B.Name.c_str(),
                   execModelName(Model),
                   static_cast<unsigned long long>(T[0].StepsPerRun));
      for (size_t E = 0; E < NumEngines; ++E)
        std::fprintf(Out, "%s\"%s\": %.0f", E ? ", " : "", Engines[E].Name,
                     T[E].StepsPerSec);
      std::fprintf(Out, "}, \"speedup\": {");
      for (size_t E = 1; E < NumEngines; ++E)
        std::fprintf(Out, "%s\"%s\": %.3f", E > 1 ? ", " : "",
                     Engines[E].Name, Speedup[E]);
      std::fprintf(Out, "}, \"chain_tier_delta\": %.3f}", ChainDelta);
      std::fprintf(stderr, "%-12s %-8s", B.Name.c_str(),
                   execModelName(Model));
      for (size_t E = 0; E < NumEngines; ++E) {
        std::fprintf(stderr, "  %s %10.0f", Engines[E].Name,
                     T[E].StepsPerSec);
        if (E)
          std::fprintf(stderr, " (x%.2f)", Speedup[E]);
      }
      std::fprintf(stderr, "  chains/pairs x%.2f\n", ChainDelta);
      ++RowCount;
    }
  }
  std::fprintf(Out, "\n  ],\n  \"geomean_speedup\": {");
  for (size_t E = 1; E < NumEngines; ++E)
    std::fprintf(Out, "%s\"%s\": %.3f", E > 1 ? ", " : "", Engines[E].Name,
                 std::exp(LogSum[E] / RowCount));
  std::fprintf(Out, "},\n");

  // Toolchain cost: uncached compile wall time per benchmark plus the
  // process-wide artifact-cache hit rate, read back from MetricsRegistry.
  // Diagnostic only (host-speed dependent) — bench_compare.py prints it
  // but gates nothing on it. Measured after the sweep sections below so
  // the cache stats cover every compileCached call the report makes.
  SweepRates SR = measureSweepRates(Smoke);
  ShardRss RSS = measureShardRss(Smoke);
  CompileCosts CC = measureCompileCosts(Smoke);
  std::fprintf(Out, "  \"compile\": {\"benchmarks\": [");
  for (size_t I = 0; I < CC.Rows.size(); ++I)
    std::fprintf(Out, "%s{\"name\": \"%s\", \"wall_ms\": %.3f}",
                 I ? ", " : "", CC.Rows[I].Name.c_str(), CC.Rows[I].WallMs);
  uint64_t CacheTotal = CC.CacheHits + CC.CacheMisses;
  std::fprintf(Out,
               "], \"cache\": {\"hits\": %llu, \"misses\": %llu, "
               "\"hit_rate\": %.3f}},\n",
               static_cast<unsigned long long>(CC.CacheHits),
               static_cast<unsigned long long>(CC.CacheMisses),
               CacheTotal ? static_cast<double>(CC.CacheHits) /
                                static_cast<double>(CacheTotal)
                          : 0);
  for (const CompileCosts::Row &Row : CC.Rows)
    std::fprintf(stderr, "compile: %-12s %8.2f ms\n", Row.Name.c_str(),
                 Row.WallMs);
  std::fprintf(stderr, "compile cache: %llu hit(s), %llu miss(es)\n",
               static_cast<unsigned long long>(CC.CacheHits),
               static_cast<unsigned long long>(CC.CacheMisses));

  // Sweep-level throughput: the fleet service's streaming shard against
  // the in-memory runner. `fleet_relative` is the host-normalized ratio
  // tools/bench_compare.py gates.
  std::fprintf(Out,
               "  \"sweep\": {\"cells\": %zu, \"tau_budget\": %llu, "
               "\"cells_per_sec\": %.3f, \"fleet_cells_per_sec\": %.3f, "
               "\"fleet_relative\": %.3f, \"rss_cells\": %zu, "
               "\"peak_rss_mb\": %.1f}\n}\n",
               SR.Cells, static_cast<unsigned long long>(SR.TauBudget),
               SR.MemCellsPerSec, SR.FleetCellsPerSec,
               SR.MemCellsPerSec > 0
                   ? SR.FleetCellsPerSec / SR.MemCellsPerSec
                   : 0,
               RSS.Cells, RSS.PeakRssMb);
  std::fprintf(stderr,
               "sweep: %zu cells  in-memory %.1f cells/s  fleet %.1f "
               "cells/s (x%.2f)\n",
               SR.Cells, SR.MemCellsPerSec, SR.FleetCellsPerSec,
               SR.MemCellsPerSec > 0
                   ? SR.FleetCellsPerSec / SR.MemCellsPerSec
                   : 0);
  std::fprintf(stderr, "fleet shard of %zu cell(s): peak RSS %.1f MB\n",
               RSS.Cells, RSS.PeakRssMb);
  std::fclose(Out);
  for (size_t E = 1; E < NumEngines; ++E)
    std::fprintf(stderr, "geomean %s/%s speedup: x%.2f\n", Engines[E].Name,
                 Engines[0].Name, std::exp(LogSum[E] / RowCount));
  std::fprintf(stderr, "report written to %s\n", Path.c_str());
  return 0;
}

// -- Dynamic opcode-pair histogram (--pairs) -------------------------------

int runPairHistogram() {
  std::vector<uint64_t> Hist(
      static_cast<size_t>(NumOpcodes) * static_cast<size_t>(NumOpcodes), 0);
  const int RunsPer = benchSmokeMode() ? 1 : 8;
  for (const BenchmarkDef &B : allBenchmarks()) {
    for (ExecModel Model : ReportModels) {
      CompiledBenchmark CB = compileBenchmark(B, Model);
      SimulationSpec Spec;
      Spec.Config.Sensors = B.scenario(1);
      Spec.Config.Seed = 1;
      Spec.Config.Dispatch = DispatchEngine::Tree;
      Spec.Config.OpcodePairCounts = &Hist;
      Simulation Sim(CB.Artifact, std::move(Spec));
      for (int R = 0; R < RunsPer; ++R) {
        RunResult Res = Sim.runOnce();
        if (!Res.Completed) {
          std::fprintf(stderr, "pair-histogram run of %s failed: %s\n",
                       CB.Name.c_str(), Res.Trap.c_str());
          return 1;
        }
      }
    }
  }

  struct PairCount {
    int Prev = 0, Cur = 0;
    uint64_t N = 0;
  };
  std::vector<PairCount> Pairs;
  uint64_t Total = 0;
  for (int Prev = 0; Prev < NumOpcodes; ++Prev)
    for (int Cur = 0; Cur < NumOpcodes; ++Cur) {
      uint64_t N = Hist[static_cast<size_t>(Prev) *
                            static_cast<size_t>(NumOpcodes) +
                        static_cast<size_t>(Cur)];
      if (N) {
        Pairs.push_back({Prev, Cur, N});
        Total += N;
      }
    }
  std::sort(Pairs.begin(), Pairs.end(),
            [](const PairCount &A, const PairCount &B) { return A.N > B.N; });

  std::printf("dynamic opcode pairs over all benchmarks x models "
              "(tree engine, %llu adjacent executions)\n",
              static_cast<unsigned long long>(Total));
  std::printf("%-24s %14s %8s %8s\n", "pair", "count", "%", "cum%");
  double Cum = 0;
  size_t Shown = 0;
  for (const PairCount &PC : Pairs) {
    double Pct = 100.0 * static_cast<double>(PC.N) /
                 static_cast<double>(Total);
    Cum += Pct;
    std::string Name = std::string(opcodeName(static_cast<Opcode>(PC.Prev))) +
                       "+" + opcodeName(static_cast<Opcode>(PC.Cur));
    std::printf("%-24s %14llu %7.2f%% %7.2f%%\n", Name.c_str(),
                static_cast<unsigned long long>(PC.N), Pct, Cum);
    if (++Shown >= 20)
      break;
  }
  return 0;
}

} // namespace

#ifdef OCELOT_HAVE_GBENCH

namespace {

const BenchmarkDef &tire() { return *findBenchmark("tire"); }
const BenchmarkDef &cem() { return *findBenchmark("cem"); }

void BM_CompileOcelot(benchmark::State &State) {
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Compilation C = TC.compile(tire().AnnotatedSrc, Opts);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_CompileOcelot);

void BM_CompileJitOnly(benchmark::State &State) {
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::JitOnly;
    Compilation C = TC.compile(tire().AnnotatedSrc, Opts);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_CompileJitOnly);

/// Interpreter throughput under both dispatch engines; the ratio is what
/// the --json report records per PR.
void interpretContinuous(benchmark::State &State, DispatchEngine Engine) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = tire().scenario(1);
  Spec.Config.Dispatch = Engine;
  Simulation Sim(A, std::move(Spec));
  uint64_t Cycles = 0, Steps = 0;
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    Cycles += Res.OnCycles;
    Steps += Res.Steps;
    benchmark::DoNotOptimize(Res.Completed);
  }
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(Cycles) /
                         static_cast<double>(State.iterations()));
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}

void BM_InterpretContinuousThreaded(benchmark::State &State) {
  interpretContinuous(State, DispatchEngine::Threaded);
}
BENCHMARK(BM_InterpretContinuousThreaded);

void BM_InterpretContinuousFlat(benchmark::State &State) {
  interpretContinuous(State, DispatchEngine::Flat);
}
BENCHMARK(BM_InterpretContinuousFlat);

void BM_InterpretContinuousTree(benchmark::State &State) {
  interpretContinuous(State, DispatchEngine::Tree);
}
BENCHMARK(BM_InterpretContinuousTree);

void BM_InterpretWithTaint(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = tire().scenario(1);
  Spec.Config.TrackTaint = true;
  Spec.Config.MonitorFormal = true;
  Spec.Config.MonitorBitVector = true;
  Simulation Sim(A, std::move(Spec));
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretWithTaint);

void BM_InterpretIntermittent(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = tire().scenario(1);
  Spec.Config.Plan = FailurePlan::energyDriven();
  Simulation Sim(A, std::move(Spec));
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretIntermittent);

/// Undo-log mode comparison on CEM's write-heavy atomics build: dynamic
/// first-write logging vs static omega backup at region entry (simulated
/// cycle counts are the interesting output).
void undoLogMode(benchmark::State &State, bool StaticOmega) {
  CompiledArtifact A =
      compileBenchmark(cem(), ExecModel::AtomicsOnly).Artifact;
  SimulationSpec Spec;
  Spec.Config.Sensors = cem().scenario(1);
  Spec.Config.StaticOmega = StaticOmega;
  Simulation Sim(A, std::move(Spec));
  uint64_t SimCycles = 0, LogEntries = 0;
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    SimCycles += Res.OnCycles;
    LogEntries += Res.UndoLogEntries;
  }
  double N = static_cast<double>(State.iterations());
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(SimCycles) / N);
  State.counters["log_entries/run"] =
      benchmark::Counter(static_cast<double>(LogEntries) / N);
}

void BM_UndoLogDynamic(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/false);
}
BENCHMARK(BM_UndoLogDynamic);

void BM_UndoLogStaticOmega(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/true);
}
BENCHMARK(BM_UndoLogStaticOmega);

void BM_RegionInference(benchmark::State &State) {
  // Inference cost isolated: parse+lower once per iteration is included in
  // BM_CompileOcelot; here the delta against JitOnly shows analysis cost.
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Opts.SelfCheck = true;
    Compilation C = TC.compile(cem().AnnotatedSrc, Opts);
    if (!C.ok())
      std::abort();
    benchmark::DoNotOptimize(C.artifact().inferredRegions().size());
  }
}
BENCHMARK(BM_RegionInference);

} // namespace

#endif // OCELOT_HAVE_GBENCH

int main(int argc, char **argv) {
  // --fusion= retargets the process-global tier before any compile; it
  // composes with --json= (the `threaded` column then measures that tier;
  // `threaded-pairs` stays pinned to the Pairs tier).
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--fusion=", 9) == 0) {
      FusionMode F;
      if (!parseFusionMode(argv[I] + 9, F)) {
        std::fprintf(stderr,
                     "error: unknown fusion tier '%s' (valid: off, pairs, "
                     "chains)\n",
                     argv[I] + 9);
        return 1;
      }
      setBenchFusion(F);
      continue; // Consumed; keep it away from Google Benchmark's parser.
    }
    argv[Kept++] = argv[I];
  }
  argc = Kept;
  for (int I = 1; I < argc; ++I) {
    if (std::strncmp(argv[I], "--json=", 7) == 0)
      return runInterpReport(argv[I] + 7);
    if (std::strcmp(argv[I], "--pairs") == 0)
      return runPairHistogram();
  }
#ifdef OCELOT_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "micro_runtime was built without Google Benchmark; only the "
               "interpreter throughput report is available:\n"
               "  micro_runtime --json=BENCH_interp.json\n");
  return 1;
#endif
}
