//===- micro_runtime.cpp - Runtime mechanism micro-benchmarks --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-suite for the simulator's mechanisms: interpreter
/// throughput, taint-tracking overhead, undo-log modes (dynamic first-write
/// vs static omega backup), compilation and region-inference cost. These
/// support Figures 7/8 by showing where simulated cycles come from and what
/// the host-side costs of the toolchain are.
///
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "harness/Experiment.h"
#include "ocelot/Toolchain.h"
#include "runtime/Simulation.h"

#include <benchmark/benchmark.h>

using namespace ocelot;

namespace {

const BenchmarkDef &tire() { return *findBenchmark("tire"); }
const BenchmarkDef &cem() { return *findBenchmark("cem"); }

void BM_CompileOcelot(benchmark::State &State) {
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Compilation C = TC.compile(tire().AnnotatedSrc, Opts);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_CompileOcelot);

void BM_CompileJitOnly(benchmark::State &State) {
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::JitOnly;
    Compilation C = TC.compile(tire().AnnotatedSrc, Opts);
    benchmark::DoNotOptimize(C.ok());
  }
}
BENCHMARK(BM_CompileJitOnly);

void BM_InterpretContinuous(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  tire().setupEnvironment(Spec.Env, 1);
  Simulation Sim(A, std::move(Spec));
  uint64_t Cycles = 0;
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    Cycles += Res.OnCycles;
    benchmark::DoNotOptimize(Res.Completed);
  }
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(Cycles) /
                         static_cast<double>(State.iterations()));
}
BENCHMARK(BM_InterpretContinuous);

void BM_InterpretWithTaint(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  tire().setupEnvironment(Spec.Env, 1);
  Spec.Config.TrackTaint = true;
  Spec.Config.MonitorFormal = true;
  Spec.Config.MonitorBitVector = true;
  Simulation Sim(A, std::move(Spec));
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretWithTaint);

void BM_InterpretIntermittent(benchmark::State &State) {
  CompiledArtifact A = compileBenchmark(tire(), ExecModel::Ocelot).Artifact;
  SimulationSpec Spec;
  tire().setupEnvironment(Spec.Env, 1);
  Spec.Config.Plan = FailurePlan::energyDriven();
  Simulation Sim(A, std::move(Spec));
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretIntermittent);

/// Undo-log mode comparison on CEM's write-heavy atomics build: dynamic
/// first-write logging vs static omega backup at region entry (simulated
/// cycle counts are the interesting output).
void undoLogMode(benchmark::State &State, bool StaticOmega) {
  CompiledArtifact A =
      compileBenchmark(cem(), ExecModel::AtomicsOnly).Artifact;
  SimulationSpec Spec;
  cem().setupEnvironment(Spec.Env, 1);
  Spec.Config.StaticOmega = StaticOmega;
  Simulation Sim(A, std::move(Spec));
  uint64_t SimCycles = 0, LogEntries = 0;
  for (auto _ : State) {
    RunResult Res = Sim.runOnce();
    SimCycles += Res.OnCycles;
    LogEntries += Res.UndoLogEntries;
  }
  double N = static_cast<double>(State.iterations());
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(SimCycles) / N);
  State.counters["log_entries/run"] =
      benchmark::Counter(static_cast<double>(LogEntries) / N);
}

void BM_UndoLogDynamic(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/false);
}
BENCHMARK(BM_UndoLogDynamic);

void BM_UndoLogStaticOmega(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/true);
}
BENCHMARK(BM_UndoLogStaticOmega);

void BM_RegionInference(benchmark::State &State) {
  // Inference cost isolated: parse+lower once per iteration is included in
  // BM_CompileOcelot; here the delta against JitOnly shows analysis cost.
  Toolchain TC;
  for (auto _ : State) {
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Opts.SelfCheck = true;
    Compilation C = TC.compile(cem().AnnotatedSrc, Opts);
    if (!C.ok())
      std::abort();
    benchmark::DoNotOptimize(C.artifact().inferredRegions().size());
  }
}
BENCHMARK(BM_RegionInference);

} // namespace

BENCHMARK_MAIN();
