//===- micro_runtime.cpp - Runtime mechanism micro-benchmarks --------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark micro-suite for the simulator's mechanisms: interpreter
/// throughput, taint-tracking overhead, undo-log modes (dynamic first-write
/// vs static omega backup), compilation and region-inference cost. These
/// support Figures 7/8 by showing where simulated cycles come from and what
/// the host-side costs of the toolchain are.
///
//===----------------------------------------------------------------------===//

#include "apps/Benchmarks.h"
#include "ocelot/Compiler.h"
#include "runtime/Interpreter.h"

#include <benchmark/benchmark.h>

using namespace ocelot;

namespace {

const BenchmarkDef &tire() { return *findBenchmark("tire"); }
const BenchmarkDef &cem() { return *findBenchmark("cem"); }

CompileResult compiled(const BenchmarkDef &B, ExecModel M) {
  DiagnosticEngine Diags;
  CompileOptions Opts;
  Opts.Model = M;
  CompileResult R = compileSource(B.AnnotatedSrc, Opts, Diags);
  if (!R.Ok)
    std::abort();
  return R;
}

void BM_CompileOcelot(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    CompileResult R = compileSource(tire().AnnotatedSrc, Opts, Diags);
    benchmark::DoNotOptimize(R.Ok);
  }
}
BENCHMARK(BM_CompileOcelot);

void BM_CompileJitOnly(benchmark::State &State) {
  for (auto _ : State) {
    DiagnosticEngine Diags;
    CompileOptions Opts;
    Opts.Model = ExecModel::JitOnly;
    CompileResult R = compileSource(tire().AnnotatedSrc, Opts, Diags);
    benchmark::DoNotOptimize(R.Ok);
  }
}
BENCHMARK(BM_CompileJitOnly);

void BM_InterpretContinuous(benchmark::State &State) {
  CompileResult R = compiled(tire(), ExecModel::Ocelot);
  Environment Env;
  tire().setupEnvironment(Env, 1);
  RunConfig Cfg;
  Interpreter I(*R.Prog, Env, Cfg, &R.Monitor, &R.Regions);
  uint64_t Cycles = 0;
  for (auto _ : State) {
    RunResult Res = I.runOnce();
    Cycles += Res.OnCycles;
    benchmark::DoNotOptimize(Res.Completed);
  }
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(Cycles) /
                         static_cast<double>(State.iterations()));
}
BENCHMARK(BM_InterpretContinuous);

void BM_InterpretWithTaint(benchmark::State &State) {
  CompileResult R = compiled(tire(), ExecModel::Ocelot);
  Environment Env;
  tire().setupEnvironment(Env, 1);
  RunConfig Cfg;
  Cfg.TrackTaint = true;
  Cfg.MonitorFormal = true;
  Cfg.MonitorBitVector = true;
  Interpreter I(*R.Prog, Env, Cfg, &R.Monitor, &R.Regions);
  for (auto _ : State) {
    RunResult Res = I.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretWithTaint);

void BM_InterpretIntermittent(benchmark::State &State) {
  CompileResult R = compiled(tire(), ExecModel::Ocelot);
  Environment Env;
  tire().setupEnvironment(Env, 1);
  RunConfig Cfg;
  Cfg.Plan = FailurePlan::energyDriven();
  Interpreter I(*R.Prog, Env, Cfg, &R.Monitor, &R.Regions);
  for (auto _ : State) {
    RunResult Res = I.runOnce();
    benchmark::DoNotOptimize(Res.Completed);
  }
}
BENCHMARK(BM_InterpretIntermittent);

/// Undo-log mode comparison on CEM's write-heavy atomics build: dynamic
/// first-write logging vs static omega backup at region entry (simulated
/// cycle counts are the interesting output).
void undoLogMode(benchmark::State &State, bool StaticOmega) {
  DiagnosticEngine Diags;
  CompileOptions Opts;
  Opts.Model = ExecModel::AtomicsOnly;
  CompileResult R = compileSource(cem().AtomicsSrc, Opts, Diags);
  if (!R.Ok)
    std::abort();
  Environment Env;
  cem().setupEnvironment(Env, 1);
  RunConfig Cfg;
  Cfg.StaticOmega = StaticOmega;
  Interpreter I(*R.Prog, Env, Cfg, &R.Monitor, &R.Regions);
  uint64_t SimCycles = 0, LogEntries = 0;
  for (auto _ : State) {
    RunResult Res = I.runOnce();
    SimCycles += Res.OnCycles;
    LogEntries += Res.UndoLogEntries;
  }
  double N = static_cast<double>(State.iterations());
  State.counters["sim_cycles/run"] =
      benchmark::Counter(static_cast<double>(SimCycles) / N);
  State.counters["log_entries/run"] =
      benchmark::Counter(static_cast<double>(LogEntries) / N);
}

void BM_UndoLogDynamic(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/false);
}
BENCHMARK(BM_UndoLogDynamic);

void BM_UndoLogStaticOmega(benchmark::State &State) {
  undoLogMode(State, /*StaticOmega=*/true);
}
BENCHMARK(BM_UndoLogStaticOmega);

void BM_RegionInference(benchmark::State &State) {
  // Inference cost isolated: parse+lower once per iteration is included in
  // BM_CompileOcelot; here the delta against JitOnly shows analysis cost.
  for (auto _ : State) {
    DiagnosticEngine Diags;
    CompileOptions Opts;
    Opts.Model = ExecModel::Ocelot;
    Opts.SelfCheck = true;
    CompileResult R = compileSource(cem().AnnotatedSrc, Opts, Diags);
    benchmark::DoNotOptimize(R.InferredRegions.size());
  }
}
BENCHMARK(BM_RegionInference);

} // namespace

BENCHMARK_MAIN();
