//===- table2b_intermittent.cpp - Paper Table 2(b) --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2(b): the fraction of completed runs containing a
/// policy violation while executing on (simulated) intermittent power for a
/// fixed window. The paper ran each benchmark for 100 seconds (50-450
/// completions) and reports Ocelot 0% everywhere and JIT
/// {50, 0, 24, 77, 50, 3}% — benchmarks whose constraints span most of the
/// program violate often; CEM's tiny constrained window almost never sees a
/// failure at exactly the wrong point.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TableFmt.h"

#include <cstdio>

using namespace ocelot;

int main() {
  std::printf("== Table 2(b): Violating %% while running intermittently "
              "==\n\n");
  constexpr uint64_t TauBudget = 150'000'000; // Fixed simulated window.
  constexpr uint64_t Seed = 99;
  EnergyConfig Energy;

  Table T({"Exec. Model", "Activity", "CEM", "Greenhouse", "Photo",
           "Send Photo", "Tire"});
  Table Detail({"benchmark", "model", "completed runs", "violating",
                "reboots/run"});
  const char *Names[2] = {"Ocelot", "JIT"};
  const ExecModel Models[2] = {ExecModel::Ocelot, ExecModel::JitOnly};
  const char *Order[6] = {"activity", "cem",        "greenhouse",
                          "photo",    "send_photo", "tire"};
  for (int M = 0; M < 2; ++M) {
    std::vector<std::string> Row = {Names[M]};
    for (const char *Name : Order) {
      const BenchmarkDef &B = *findBenchmark(Name);
      CompiledBenchmark CB = compileBenchmark(B, Models[M]);
      IntermittentMetrics I = measureIntermittent(CB, B, Energy, TauBudget,
                                                  Seed, /*Monitors=*/true);
      Row.push_back(fmtPct(I.violationPct()));
      Detail.addRow({Name, Names[M], std::to_string(I.CompletedRuns),
                     std::to_string(I.ViolatingRuns),
                     fmt(I.RebootsPerRun, 2)});
    }
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("%s\n", Detail.str().c_str());
  std::printf("Paper: Ocelot 0%% everywhere; JIT {50, 0, 24, 77, 50, 3}%% — "
              "wide constraint\nwindows violate often, CEM's tiny window "
              "almost never.\n");
  return 0;
}
