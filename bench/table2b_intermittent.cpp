//===- table2b_intermittent.cpp - Paper Table 2(b) --------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2(b): the fraction of completed runs containing a
/// policy violation while executing on (simulated) intermittent power for a
/// fixed window. The paper ran each benchmark for 100 seconds (50-450
/// completions) and reports Ocelot 0% everywhere and JIT
/// {50, 0, 24, 77, 50, 3}% — benchmarks whose constraints span most of the
/// program violate often; CEM's tiny constrained window almost never sees a
/// failure at exactly the wrong point.
///
/// The 2 models × 6 benchmarks grid runs through SweepRunner: each
/// (model, benchmark) pair compiles once into a shared immutable artifact
/// and the cells fan across a worker pool (--workers=N, default hardware
/// concurrency; --workers=1 is the sequential path and produces the same
/// table).
///
//===----------------------------------------------------------------------===//

#include "harness/SweepRunner.h"
#include "harness/TableFmt.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

using namespace ocelot;

int main(int argc, char **argv) {
  unsigned Workers = 0; // 0 = hardware concurrency.
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseWorkersFlag(Arg.c_str() + 10, Workers))
        return 1;
    } else {
      std::fprintf(stderr, "usage: table2b_intermittent [--workers=N]\n");
      return 1;
    }
  }

  std::printf("== Table 2(b): Violating %% while running intermittently "
              "==\n\n");
  // Fixed simulated window (reduced under OCELOT_BENCH_SMOKE).
  const uint64_t TauBudget = benchSmokeMode() ? 5'000'000 : 150'000'000;
  constexpr uint64_t Seed = 99;

  // One row per model; the label column uses the paper's spellings.
  const std::pair<ExecModel, const char *> ModelRows[] = {
      {ExecModel::Ocelot, "Ocelot"}, {ExecModel::JitOnly, "JIT"}};

  SweepSpec Spec;
  for (const auto &[Model, Label] : ModelRows)
    Spec.Models.push_back(Model);
  const char *Order[6] = {"activity", "cem",        "greenhouse",
                          "photo",    "send_photo", "tire"};
  for (const char *Name : Order)
    Spec.Benchmarks.push_back(findBenchmark(Name));
  Spec.Energies = {EnergyConfig{}};
  Spec.Seeds = {Seed};
  Spec.TauBudget = TauBudget;
  Spec.Monitors = true;

  SweepRunner Runner(Workers);
  auto Start = std::chrono::steady_clock::now();
  std::vector<SweepCellResult> Cells = Runner.run(Spec);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  Table T({"Exec. Model", "Activity", "CEM", "Greenhouse", "Photo",
           "Send Photo", "Tire"});
  Table Detail({"benchmark", "model", "completed runs", "violating",
                "reboots/run"});
  for (size_t M = 0; M < Spec.Models.size(); ++M) {
    const char *Label = ModelRows[M].second;
    std::vector<std::string> Row = {Label};
    for (size_t B = 0; B < Spec.Benchmarks.size(); ++B) {
      const IntermittentMetrics &I =
          Cells[Spec.cellIndex({.Model = M, .Bench = B})].Metrics;
      // Never fires under the benchmarks' own scenarios; guards against
      // reading a truncated sample as a clean one (trap stops the cell).
      Row.push_back(I.Trapped ? "trap" : fmtPct(I.violationPct()));
      Detail.addRow({Order[B], Label, std::to_string(I.CompletedRuns),
                     std::to_string(I.ViolatingRuns),
                     fmt(I.RebootsPerRun, 2)});
    }
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("%s\n", Detail.str().c_str());
  printSweepTiming(Cells.size(), Runner.workers(), Secs);
  std::printf("Paper: Ocelot 0%% everywhere; JIT {50, 0, 24, 77, 50, 3}%% — "
              "wide constraint\nwindows violate often, CEM's tiny window "
              "almost never.\n");
  return 0;
}
