//===- table4_loc_changes.cpp - Paper Table 4 --------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 4: concrete lines of code needed to obtain correct
/// input timing on each benchmark under Ocelot, TICS and Samoyed (plus the
/// Atomics baseline), using the paper's cost models over our sources. The
/// paper's reported values are printed alongside. Ocelot requires the
/// fewest changes everywhere and neither real-time nor data-flow reasoning.
///
//===----------------------------------------------------------------------===//

#include "harness/EffortModel.h"
#include "harness/Experiment.h"
#include "harness/TableFmt.h"

#include <array>
#include <cstdio>
#include <map>

using namespace ocelot;

int main() {
  std::printf("== Table 4: Effort of using Ocelot vs TICS and Samoyed ==\n\n");
  // The paper's reported LoC (its benchmark sources differ slightly from
  // our OCL ports, so ours need not match exactly; ordering should).
  std::map<std::string, std::array<int, 3>> PaperLoC = {
      {"activity", {5, 20, 18}}, {"cem", {2, 8, 4}},
      {"greenhouse", {7, 12, 6}}, {"photo", {2, 8, 12}},
      {"send_photo", {4, 8, 4}},  {"tire", {9, 32, 24}},
  };

  Table T({"benchmark", "Ocelot", "Atomics", "TICS", "Samoyed",
           "paper(Oce/TICS/Samoyed)"});
  bool OcelotAlwaysFewest = true;
  for (const BenchmarkDef &B : allBenchmarks()) {
    CompiledBenchmark Ann = compileBenchmark(B, ExecModel::Ocelot);
    CompiledBenchmark Man = compileBenchmark(B, ExecModel::AtomicsOnly);
    EffortInputs In = effortInputs(Ann.Artifact, Man.Artifact);
    int O = ocelotLoc(In), A = atomicsLoc(In), Ti = ticsLoc(In),
        S = samoyedLoc(In);
    if (O > Ti || O > S || O > A)
      OcelotAlwaysFewest = false;
    auto Paper = PaperLoC[B.Name];
    T.addRow({B.Name, std::to_string(O), std::to_string(A),
              std::to_string(Ti), std::to_string(S),
              std::to_string(Paper[0]) + "/" + std::to_string(Paper[1]) +
                  "/" + std::to_string(Paper[2])});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("Reasoning required:  Ocelot: none;  TICS: real-time;  "
              "Samoyed/Atomics: data-flow.\n");
  std::printf("Ocelot requires the fewest changes on every benchmark: %s\n",
              OcelotAlwaysFewest ? "yes (matches the paper)" : "NO");
  return 0;
}
