//===- table1_characteristics.cpp - Paper Table 1 -------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1 (benchmark characteristics): origin, lines of code,
/// sensors (asterisk = simulated — all sensors are simulated signals in
/// this reproduction), and the constraints each benchmark uses, plus the
/// policies Ocelot derives.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TableFmt.h"

#include <cstdio>

using namespace ocelot;

int main() {
  std::printf("== Table 1: Benchmark Characteristics ==\n\n");
  Table T({"Origin", "App", "LoC", "Sensors", "Constraints", "Fresh pol.",
           "Consistent sets", "Inferred regions"});
  for (const BenchmarkDef &B : allBenchmarks()) {
    CompiledBenchmark CB = compileBenchmark(B, ExecModel::Ocelot);
    std::string Sensors;
    for (size_t I = 0; I < B.Sensors.size(); ++I) {
      if (I)
        Sensors += ", ";
      Sensors += B.Sensors[I];
    }
    const CompiledArtifact &A = CB.Artifact;
    T.addRow({B.Origin, B.Name, std::to_string(A.effort().SourceLines),
              Sensors, B.Constraints,
              std::to_string(A.policies().Fresh.size()),
              std::to_string(A.policies().Consistent.size()),
              std::to_string(A.inferredRegions().size())});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("(*): all sensors are simulated, time-varying signals in this "
              "reproduction;\nthe paper likewise simulates the sensors "
              "marked * in its Table 1.\n");
  return 0;
}
