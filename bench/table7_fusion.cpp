//===- table7_fusion.cpp - Over/under-enforcement on fused inputs ----------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Beyond the paper: every prior table *assumes* the enforcement models
/// are scored correctly, because violations are whatever the model's own
/// monitors flag. The input-epoch consistency oracle (src/fusion/) breaks
/// that circularity: it tags each sensor read with its reboot epoch,
/// follows the tags through the taint machinery into committed outputs,
/// and classifies every output fresh / stale / cross-epoch — ground truth
/// independent of any ExecModel. This driver sweeps the fusion
/// benchmarks (EKF-style primary+secondary correction, multi-sensor
/// alarm voting) x {Ocelot, JIT, Atomics} x correlated-scenario preset
/// with both monitors and oracle armed, then cross-references the two
/// verdict streams per cell:
///
///   over-enforcement  = runs the model flagged but the oracle scored
///                       clean (enforcement cost charged for no hazard);
///   under-enforcement = runs with oracle-dirty outputs the model never
///                       flagged (hazards the model cannot see).
///
///   table7_fusion [--sensors=S]... [--workers=N]
///
/// With no --sensors flags the sweep covers the four fusion presets
/// (fusion-calm, fusion-lagged, fusion-storm, fusion-volatile). Stdout
/// is seed-deterministic and diff-stable for any --workers=N; timing
/// goes to stderr.
///
//===----------------------------------------------------------------------===//

#include "fusion/FusionBenchmarks.h"
#include "harness/SweepRunner.h"
#include "harness/TableFmt.h"
#include "sensors/SensorScenarios.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

using namespace ocelot;

int main(int argc, char **argv) {
  unsigned Workers = 0; // 0 = hardware concurrency.
  std::vector<std::string> SensorSpecs;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseWorkersFlag(Arg.c_str() + 10, Workers))
        return 1;
    } else if (Arg.rfind("--sensors=", 0) == 0) {
      SensorSpecs.push_back(Arg.substr(10));
    } else {
      std::fprintf(stderr,
                   "usage: table7_fusion [--sensors=S]... [--workers=N]\n");
      return 1;
    }
  }
  if (SensorSpecs.empty())
    SensorSpecs = {"fusion-calm", "fusion-lagged", "fusion-storm",
                   "fusion-volatile"};

  SweepSpec Spec;
  for (const std::string &S : SensorSpecs) {
    std::string Error;
    std::shared_ptr<const SensorScenario> Sc = resolveSensorScenario(S, Error);
    if (!Sc) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Spec.Scenarios.push_back(std::move(Sc));
  }

  std::printf("== Table 7: Oracle-scored over/under-enforcement on fused "
              "inputs ==\n\n");

  const std::pair<ExecModel, const char *> ModelRows[] = {
      {ExecModel::Ocelot, "Ocelot"},
      {ExecModel::JitOnly, "JIT"},
      {ExecModel::AtomicsOnly, "Atomics"}};
  for (const auto &[Model, Label] : ModelRows)
    Spec.Models.push_back(Model);
  const std::pair<const char *, const char *> Benches[] = {
      {"ekf_fusion", "EKF Fusion"}, {"alarm_voting", "Alarm Voting"}};
  for (const auto &[Id, Label] : Benches)
    Spec.Benchmarks.push_back(findBenchmark(Id));
  Spec.Energies = {EnergyConfig{}};
  Spec.Seeds = {137};
  Spec.TauBudget = benchSmokeMode() ? 2'500'000 : 40'000'000;
  Spec.Monitors = true;
  Spec.Oracle = true;

  SweepRunner Runner(Workers);
  auto Start = std::chrono::steady_clock::now();
  std::vector<SweepCellResult> Cells = Runner.run(Spec);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  // Four tables over the same (scenario x model) rows: the oracle's two
  // hazard rates (per committed output), then the two enforcement-gap
  // rates (per completed run).
  std::vector<std::string> Head = {"Sensor scenario", "Exec. Model"};
  for (const auto &[Id, Label] : Benches)
    Head.push_back(Label);
  Table Stale{std::vector<std::string>(Head)};
  Table Cross{std::vector<std::string>(Head)};
  Table Over{std::vector<std::string>(Head)};
  Table Under{std::vector<std::string>(Head)};
  for (size_t Sc = 0; Sc < Spec.Scenarios.size(); ++Sc) {
    for (size_t M = 0; M < Spec.Models.size(); ++M) {
      std::vector<std::string> SRow = {SensorSpecs[Sc], ModelRows[M].second};
      std::vector<std::string> CRow = SRow, ORow = SRow, URow = SRow;
      for (size_t B = 0; B < Spec.Benchmarks.size(); ++B) {
        const IntermittentMetrics &I =
            Cells[Spec.cellIndex({.Model = M, .Bench = B, .Scenario = Sc})]
                .Metrics;
        if (I.Trapped || I.Starved || I.CompletedRuns == 0) {
          const char *Tag = I.Trapped ? "trap" : "starved";
          SRow.push_back(Tag);
          CRow.push_back(Tag);
          ORow.push_back(Tag);
          URow.push_back(Tag);
          continue;
        }
        SRow.push_back(fmtPct(I.staleOutputPct(), 2));
        CRow.push_back(fmtPct(I.crossEpochOutputPct(), 2));
        ORow.push_back(fmtPct(I.overEnforcedPct(), 2));
        URow.push_back(fmtPct(I.underEnforcedPct(), 2));
      }
      Stale.addRow(std::move(SRow));
      Cross.addRow(std::move(CRow));
      Over.addRow(std::move(ORow));
      Under.addRow(std::move(URow));
    }
  }
  std::printf("-- Stale %% of committed outputs (oracle) --\n%s\n",
              Stale.str().c_str());
  std::printf("-- Cross-epoch %% of committed outputs (oracle) --\n%s\n",
              Cross.str().c_str());
  std::printf("-- Over-enforced %% of completed runs (model flagged, oracle "
              "clean) --\n%s\n",
              Over.str().c_str());
  std::printf("-- Under-enforced %% of completed runs (oracle dirty, model "
              "silent) --\n%s\n",
              Under.str().c_str());
  printSweepTiming(Cells.size(), Runner.workers(), Secs);

  // Deterministic headline: the first preset (in row order) where Ocelot
  // commits zero cross-epoch outputs on every benchmark while some weaker
  // model commits at least one. This is the paper's enforcement claim
  // measured rather than assumed; the CI golden pins it.
  std::string Witness, WitnessModel;
  for (size_t Sc = 0; Sc < Spec.Scenarios.size() && Witness.empty(); ++Sc) {
    bool OcelotClean = true;
    for (size_t B = 0; B < Spec.Benchmarks.size(); ++B)
      if (Cells[Spec.cellIndex({.Model = 0, .Bench = B, .Scenario = Sc})]
              .Metrics.OracleCrossEpochOutputs != 0)
        OcelotClean = false;
    if (!OcelotClean)
      continue;
    for (size_t M = 1; M < Spec.Models.size() && Witness.empty(); ++M)
      for (size_t B = 0; B < Spec.Benchmarks.size(); ++B)
        if (Cells[Spec.cellIndex({.Model = M, .Bench = B, .Scenario = Sc})]
                .Metrics.OracleCrossEpochOutputs != 0) {
          Witness = SensorSpecs[Sc];
          WitnessModel = ModelRows[M].second;
          break;
        }
  }
  if (!Witness.empty())
    std::printf("Witness: on '%s', %s commits cross-epoch outputs and Ocelot "
                "commits none —\nthe oracle confirms Ocelot's enforcement "
                "rather than assuming it.\n",
                Witness.c_str(), WitnessModel.c_str());
  else
    std::printf("Witness: NONE — no preset separates Ocelot from the weaker "
                "models at this budget.\n");
  return 0;
}
