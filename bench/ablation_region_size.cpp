//===- ablation_region_size.cpp - Region size vs energy (Fig. 10 / §5.3) ---------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper argues (§5.3, §8 Fig. 10) that Ocelot must infer the *smallest*
/// region satisfying a policy: an intuitive manually placed region around a
/// whole function also includes its heavy post-processing, and on a small
/// energy buffer such a region can never complete, while the Ocelot-inferred
/// region (just the two sensor reads) still does.
///
/// This ablation sweeps the capacitor size over the Fig. 10 "confirm"
/// pattern and reports, per placement, whether the program completes and
/// its minimum viable capacity.
///
//===----------------------------------------------------------------------===//

#include "harness/TableFmt.h"
#include "ocelot/Toolchain.h"
#include "runtime/Simulation.h"

#include <array>
#include <cstdio>

using namespace ocelot;

namespace {

// Fig. 10: confirm() reads the pressure sensor twice consistently, then does
// much more processing on the values.
const char *ConfirmBody = R"(
io pres;

static acc = 0;
static processed = 0;

fn confirm() {
  let consistent(1) y = pres();
  let consistent(1) y2 = pres();
  // "...more processing" — heavy smoothing over the pair.
  let mut s = 0;
  for i in 0..64 {
    s = s + (y * 3 + y2 * 5 + i) / 7;
    acc += s % 13;
  }
  processed += 1;
}

fn main() {
  confirm();
}
)";

const char *ConfirmWholeFnAtomic = R"(
io pres;

static acc = 0;
static processed = 0;

fn confirm() {
  atomic {
    let consistent(1) y = pres();
    let consistent(1) y2 = pres();
    let mut s = 0;
    for i in 0..64 {
      s = s + (y * 3 + y2 * 5 + i) / 7;
      acc += s % 13;
    }
    processed += 1;
  }
}

fn main() {
  confirm();
}
)";

struct Placement {
  const char *Name;
  const char *Src;
  ExecModel Model;
};

bool completesAt(const CompiledArtifact &A, uint64_t Capacity) {
  SimulationSpec Spec;
  Spec.Config.Sensors = SensorScenario::Builder()
                            .channel(0, noiseChannel(100, 50, 300, 5))
                            .build();
  Spec.Config.Plan = FailurePlan::energyDriven();
  Spec.Config.Energy.CapacityCycles = Capacity;
  Spec.Config.Energy.ReserveCycles = Capacity / 20 + 150;
  Spec.Config.MaxAbortsPerRegion = 50;
  Simulation Sim(A, std::move(Spec));
  for (int Run = 0; Run < 5; ++Run) {
    RunResult Res = Sim.runOnce();
    if (Res.Starved || !Res.Completed)
      return false;
  }
  return true;
}

} // namespace

int main() {
  std::printf("== Ablation: region size vs energy buffer (Fig. 10, §5.3) "
              "==\n\n");
  Placement Placements[] = {
      {"Ocelot-inferred (reads only)", ConfirmBody, ExecModel::Ocelot},
      {"Manual whole-confirm region", ConfirmWholeFnAtomic,
       ExecModel::AtomicsOnly},
  };

  Table T({"capacity (cycles)", "Ocelot-inferred", "whole-fn region"});
  std::vector<uint64_t> Capacities = {400,  600,  800,  1200, 1600,
                                      2400, 3200, 4800, 6400};
  std::vector<std::array<bool, 2>> Results;
  CompiledArtifact Compiled[2];
  for (int PIdx = 0; PIdx < 2; ++PIdx) {
    CompileOptions Opts;
    Opts.Model = Placements[PIdx].Model;
    Compilation C = Toolchain().compile(Placements[PIdx].Src, Opts);
    if (!C.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", C.status().str().c_str());
      return 1;
    }
    Compiled[PIdx] = C.artifact();
  }
  uint64_t MinViable[2] = {0, 0};
  for (uint64_t Cap : Capacities) {
    bool Ok[2];
    for (int PIdx = 0; PIdx < 2; ++PIdx) {
      Ok[PIdx] = completesAt(Compiled[PIdx], Cap);
      if (Ok[PIdx] && MinViable[PIdx] == 0)
        MinViable[PIdx] = Cap;
    }
    T.addRow({std::to_string(Cap), Ok[0] ? "completes" : "STARVED",
              Ok[1] ? "completes" : "STARVED"});
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("Minimum viable capacity: Ocelot-inferred %llu cycles, "
              "whole-function %llu cycles.\n",
              static_cast<unsigned long long>(MinViable[0]),
              static_cast<unsigned long long>(MinViable[1]));
  std::printf("The inferred region tolerates a %.1fx smaller energy buffer "
              "(paper: programs whose\nminimal region still cannot complete "
              "are fundamentally unsatisfiable, §5.3).\n",
              MinViable[0] ? static_cast<double>(MinViable[1]) /
                                 static_cast<double>(MinViable[0])
                           : 0.0);
  return 0;
}
