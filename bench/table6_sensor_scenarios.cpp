//===- table6_sensor_scenarios.cpp - Cross-scenario input sweep ------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Beyond the paper: the evaluation senses one synthetic noise world per
/// benchmark (Table 1's sensors), yet freshness and consistency are
/// properties of *inputs* — so how do violation rates shift when the same
/// programs sense different worlds? Slow HVAC drift means a stale reading
/// is still roughly right but also that branches rarely change; violent
/// fast dynamics exercise every data-dependent path. This driver sweeps
/// benchmark x {Ocelot, JIT} x sensor scenario through `SweepRunner` and
/// reports, per scenario, the violating fraction of completed runs and
/// the completed-run count (input dynamics steer control flow, and with
/// it run length and failure exposure). A "trap" cell means the firmware
/// crashed on an input outside the range it was written to trust (e.g.
/// CEM's dictionary hash assumes non-negative temperatures) — scenario
/// sweeps double as input-robustness fuzzing.
///
///   table6_sensor_scenarios [--sensors=S]... [--workers=N]
///
/// With no --sensors flags the sweep covers every registered scenario
/// (legacy-noise, office-hvac, outdoor-diurnal, quake-bursts,
/// steady-lab). Each --sensors=S adds one row group instead: a scenario
/// preset name or a sensor-trace CSV path (e.g.
/// bench/traces/office-temperature.csv). Results are seed-deterministic
/// per scenario; timing goes to stderr so stdout is diff-stable for any
/// --workers=N.
///
//===----------------------------------------------------------------------===//

#include "harness/SweepRunner.h"
#include "harness/TableFmt.h"
#include "sensors/SensorScenarios.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

using namespace ocelot;

int main(int argc, char **argv) {
  unsigned Workers = 0; // 0 = hardware concurrency.
  std::vector<std::string> SensorSpecs;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseWorkersFlag(Arg.c_str() + 10, Workers))
        return 1;
    } else if (Arg.rfind("--sensors=", 0) == 0) {
      SensorSpecs.push_back(Arg.substr(10));
    } else {
      std::fprintf(
          stderr,
          "usage: table6_sensor_scenarios [--sensors=S]... [--workers=N]\n");
      return 1;
    }
  }
  if (SensorSpecs.empty())
    SensorSpecs = SensorScenarioRegistry::global().names();

  SweepSpec Spec;
  for (const std::string &S : SensorSpecs) {
    std::string Error;
    std::shared_ptr<const SensorScenario> Sc =
        resolveSensorScenario(S, Error);
    if (!Sc) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Spec.Scenarios.push_back(std::move(Sc));
  }

  std::printf("== Table 6: Violations and throughput across sensor "
              "scenarios ==\n\n");

  const std::pair<ExecModel, const char *> ModelRows[] = {
      {ExecModel::Ocelot, "Ocelot"}, {ExecModel::JitOnly, "JIT"}};
  for (const auto &[Model, Label] : ModelRows)
    Spec.Models.push_back(Model);
  // Benchmark id + the paper's column label, in presentation order; both
  // tables derive their headers from this single list.
  const std::pair<const char *, const char *> Benches[] = {
      {"activity", "Activity"},     {"cem", "CEM"},
      {"greenhouse", "Greenhouse"}, {"photo", "Photo"},
      {"send_photo", "Send Photo"}, {"tire", "Tire"}};
  for (const auto &[Id, Label] : Benches)
    Spec.Benchmarks.push_back(findBenchmark(Id));
  Spec.Energies = {EnergyConfig{}};
  Spec.Seeds = {137};
  Spec.TauBudget = benchSmokeMode() ? 2'500'000 : 40'000'000;
  Spec.Monitors = true;

  SweepRunner Runner(Workers);
  auto Start = std::chrono::steady_clock::now();
  std::vector<SweepCellResult> Cells = Runner.run(Spec);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  std::vector<std::string> ViolHead = {"Sensor scenario", "Exec. Model"};
  for (const auto &[Id, Label] : Benches)
    ViolHead.push_back(Label);
  std::vector<std::string> RunsHead = ViolHead;
  Table Viol(std::move(ViolHead));
  Table Runs(std::move(RunsHead));
  for (size_t Sc = 0; Sc < Spec.Scenarios.size(); ++Sc) {
    for (size_t M = 0; M < Spec.Models.size(); ++M) {
      std::vector<std::string> VRow = {SensorSpecs[Sc], ModelRows[M].second};
      std::vector<std::string> RRow = VRow;
      for (size_t B = 0; B < Spec.Benchmarks.size(); ++B) {
        const IntermittentMetrics &I =
            Cells[Spec.cellIndex({.Model = M, .Bench = B, .Scenario = Sc})].Metrics;
        if (I.Trapped) {
          // The firmware crashed on an input outside the range it was
          // written to trust — an input-robustness data point.
          VRow.push_back("trap");
          RRow.push_back("trap");
          continue;
        }
        if (I.Starved || I.CompletedRuns == 0) {
          VRow.push_back("starved");
          RRow.push_back("-");
          continue;
        }
        VRow.push_back(fmtPct(I.violationPct()));
        RRow.push_back(std::to_string(I.CompletedRuns));
      }
      Viol.addRow(std::move(VRow));
      Runs.addRow(std::move(RRow));
    }
  }
  std::printf("-- Violating %% of completed runs --\n%s\n",
              Viol.str().c_str());
  std::printf("-- Completed runs in the simulated-time budget --\n%s\n",
              Runs.str().c_str());
  printSweepTiming(Cells.size(), Runner.workers(), Secs);
  std::printf("Ocelot holds zero violations in every world; JIT's rate "
              "tracks the world only\nthrough control flow (branchy "
              "benchmarks shift most). The sharper input effect\nis "
              "robustness: 'trap' cells are firmware crashing on readings "
              "outside the range\nit trusted.\n");
  return 0;
}
