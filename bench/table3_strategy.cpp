//===- table3_strategy.cpp - Paper Table 3 ----------------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3: the strategy each system imposes on the programmer
/// to get fresh/consistent inputs, with the LoC cost models of §7.4
/// instantiated by this repository's effort analysis.
///
//===----------------------------------------------------------------------===//

#include "harness/EffortModel.h"
#include "harness/Experiment.h"
#include "harness/TableFmt.h"

#include <cstdio>

using namespace ocelot;

int main() {
  std::printf("== Table 3: Strategy characterization ==\n\n");
  Table T({"System", "Constructs", "Strategy", "LoC model",
           "Upholds freshness+consistency?"});
  T.addRow({"Ocelot", "Time-constraint annotations",
            "Annotate inputs and constrained data",
            "1*(inputs) + 1*(constrained data)",
            "Correct by construction (matches continuous spec)"});
  T.addRow({"JIT", "None", "Do nothing", "0", "Incorrect"});
  T.addRow({"Atomics", "Atomic regions",
            "Annotate inputs; reason about control/data flow; place regions",
            "1*(inputs) + 2*(regions)",
            "Programmer-dependent (misplacement undetected)"});
  T.addRow({"TICS", "Expiry, timestamp alignment, timely branches",
            "Choose real-time expirations; write exception handlers",
            "3*(fresh data) + handlers(5 each) + 2*(consistent vars) + "
            "6*(sets)",
            "Real-time timeliness; no temporal consistency"});
  T.addRow({"Samoyed", "Atomic functions",
            "Restructure code into functions; optional scaling/fallbacks",
            "4*(atomic fns) + 8*(fns with loops)",
            "Programmer-dependent (wrong code in function possible)"});
  std::printf("%s\n", T.str().c_str());

  std::printf("Effort-model inputs derived from our benchmark sources:\n\n");
  Table E({"benchmark", "io decls", "fresh", "consistent", "freshcon",
           "manual regions", "regions w/ loops"});
  for (const BenchmarkDef &B : allBenchmarks()) {
    CompiledBenchmark Ann = compileBenchmark(B, ExecModel::Ocelot);
    CompiledBenchmark Man = compileBenchmark(B, ExecModel::AtomicsOnly);
    EffortInputs In = effortInputs(Ann.Artifact, Man.Artifact);
    E.addRow({B.Name, std::to_string(In.Annotated.IoDeclNames),
              std::to_string(In.Annotated.FreshAnnots),
              std::to_string(In.Annotated.ConsistentAnnots),
              std::to_string(In.Annotated.FreshConsistentAnnots),
              std::to_string(In.Atomics.ManualRegions),
              std::to_string(In.Atomics.ManualRegionsWithLoops)});
  }
  std::printf("%s", E.str().c_str());
  return 0;
}
