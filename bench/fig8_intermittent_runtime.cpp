//===- fig8_intermittent_runtime.cpp - Paper Figure 8 ----------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 8: intermittent-power runtimes normalized to the
/// continuous JIT execution. The top view stacks on-time with off/charging
/// time (charging dominates, as on the paper's RF-harvesting testbed); the
/// zoomed view shows on-time only, which tracks the Figure 7 proportions.
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TableFmt.h"

#include <cstdio>

using namespace ocelot;

int main() {
  std::printf("== Figure 8: Intermittent runtime, normalized to continuous "
              "JIT ==\n\n");
  constexpr uint64_t Seed = 77;
  const uint64_t TauBudget = benchSmokeMode() ? 4'000'000 : 60'000'000;
  EnergyConfig Energy; // Capybara-like defaults.

  Table Full({"benchmark", "model", "on/run", "off(charging)/run",
              "total norm", "on-time norm"});
  std::vector<double> TotalNorm[3], OnNorm[3];
  const char *Names[3] = {"JIT only", "Atomics only", "Ocelot"};
  const ExecModel Models[3] = {ExecModel::JitOnly, ExecModel::AtomicsOnly,
                               ExecModel::Ocelot};

  for (const BenchmarkDef &B : allBenchmarks()) {
    CompiledBenchmark Jit = compileBenchmark(B, ExecModel::JitOnly);
    double JitContinuous =
        measureContinuous(Jit, B, benchSmokeMode() ? 10 : 100, Seed)
            .CyclesPerRun;

    for (int M = 0; M < 3; ++M) {
      CompiledBenchmark CB = compileBenchmark(B, Models[M]);
      IntermittentMetrics I = measureIntermittent(CB, B, Energy, TauBudget,
                                                  Seed, /*Monitors=*/false);
      if (I.Trapped) {
        Full.addRow({B.Name, Names[M], "trap", "-", "-", "-"});
        continue;
      }
      if (I.Starved || I.CompletedRuns == 0) {
        Full.addRow({B.Name, Names[M], "starved", "-", "-", "-"});
        continue;
      }
      double Total =
          (I.OnCyclesPerRun + I.OffCyclesPerRun) / JitContinuous;
      double On = I.OnCyclesPerRun / JitContinuous;
      TotalNorm[M].push_back(Total);
      OnNorm[M].push_back(On);
      Full.addRow({B.Name, Names[M], fmt(I.OnCyclesPerRun, 0),
                   fmt(I.OffCyclesPerRun, 0), fmt(Total, 2), fmt(On, 3)});
    }
  }
  for (int M = 0; M < 3; ++M)
    Full.addRow({"gmean", Names[M], "-", "-", fmt(geomean(TotalNorm[M]), 2),
                 fmt(geomean(OnNorm[M]), 3)});
  std::printf("%s\n", Full.str().c_str());
  std::printf("Paper's shape: totals dominated by off/charging time "
              "(environment-dictated);\non-time proportions mirror the "
              "continuous results (Fig. 7).\n");
  return 0;
}
