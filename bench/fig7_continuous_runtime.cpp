//===- fig7_continuous_runtime.cpp - Paper Figure 7 ------------------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 7: continuous-power runtimes of each benchmark under
/// JIT-only, Atomics-only, and Ocelot, normalized to JIT-only, with the
/// geometric mean. The paper's headline shapes: Ocelot within ~10% of JIT
/// (gmean ~= 1.07), Atomics-only similar except the CEM outlier (~2.5x,
/// whose compute-heavy log manipulation pays undo-logging in every region
/// while Ocelot's inferred region is tiny).
///
//===----------------------------------------------------------------------===//

#include "harness/Experiment.h"
#include "harness/TableFmt.h"

#include <cstdio>

using namespace ocelot;

int main() {
  std::printf("== Figure 7: Continuous-power runtime, normalized to "
              "JIT-only ==\n\n");
  const int Runs = benchSmokeMode() ? 20 : 200;
  constexpr uint64_t Seed = 1234;

  Table T({"benchmark", "JIT cycles/run", "Atomics-only", "Ocelot",
           "Atomics norm", "Ocelot norm"});
  std::vector<double> AtomicsNorm, OcelotNorm;
  for (const BenchmarkDef &B : allBenchmarks()) {
    CompiledBenchmark Jit = compileBenchmark(B, ExecModel::JitOnly);
    CompiledBenchmark Atomics = compileBenchmark(B, ExecModel::AtomicsOnly);
    CompiledBenchmark Ocelot = compileBenchmark(B, ExecModel::Ocelot);

    double JitCycles = measureContinuous(Jit, B, Runs, Seed).CyclesPerRun;
    double AtomicsCycles =
        measureContinuous(Atomics, B, Runs, Seed).CyclesPerRun;
    double OcelotCycles =
        measureContinuous(Ocelot, B, Runs, Seed).CyclesPerRun;

    double AN = AtomicsCycles / JitCycles;
    double ON = OcelotCycles / JitCycles;
    AtomicsNorm.push_back(AN);
    OcelotNorm.push_back(ON);
    T.addRow({B.Name, fmt(JitCycles, 0), fmt(AtomicsCycles, 0),
              fmt(OcelotCycles, 0), fmt(AN, 3), fmt(ON, 3)});
  }
  T.addRow({"gmean", "-", "-", "-", fmt(geomean(AtomicsNorm), 3),
            fmt(geomean(OcelotNorm), 3)});
  std::printf("%s\n", T.str().c_str());
  std::printf("Paper's shape: JIT fastest (but incorrect); Ocelot gmean "
              "~1.07; Atomics-only similar\nexcept cem ~2.5x (all log "
              "lookup/insertion inside regions).\n");
  return 0;
}
