//===- table5_power_profiles.cpp - Cross-profile power sweep ---------------------===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Beyond the paper: the evaluation's energy dynamics (Fig. 8, Table 2(b))
/// come from one RF-harvesting testbed, yet off-times are "dictated by the
/// physical environment" — so how do the violation and charging numbers
/// shift across environments? This driver sweeps
/// benchmark x {Ocelot, JIT} x power profile through `SweepRunner` and
/// reports, per profile, the violating fraction of completed runs and how
/// heavily charging dominates runtime (off/on ratio).
///
///   table5_power_profiles [--power=P]... [--workers=N]
///
/// With no --power flags the sweep covers every registered profile
/// (legacy-jitter, bench-constant, solar-outdoor, rf-office,
/// kinetic-walker). Each --power=P adds one column instead: a profile name
/// or a power-trace CSV path (e.g. bench/traces/solar-cloudy-day.csv).
/// Results are seed-deterministic per profile; timing goes to stderr so
/// stdout is diff-stable for any --workers=N.
///
//===----------------------------------------------------------------------===//

#include "harness/SweepRunner.h"
#include "harness/TableFmt.h"
#include "power/PowerProfiles.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

using namespace ocelot;

int main(int argc, char **argv) {
  unsigned Workers = 0; // 0 = hardware concurrency.
  std::vector<std::string> PowerSpecs;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--workers=", 0) == 0) {
      if (!parseWorkersFlag(Arg.c_str() + 10, Workers))
        return 1;
    } else if (Arg.rfind("--power=", 0) == 0) {
      PowerSpecs.push_back(Arg.substr(8));
    } else {
      std::fprintf(stderr,
                   "usage: table5_power_profiles [--power=P]... [--workers=N]\n");
      return 1;
    }
  }
  if (PowerSpecs.empty())
    PowerSpecs = PowerProfileRegistry::global().names();

  SweepSpec Spec;
  for (const std::string &S : PowerSpecs) {
    std::string Error;
    std::shared_ptr<const PowerSource> Src = resolvePowerSource(S, Error);
    if (!Src) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    Spec.Powers.push_back(std::move(Src));
  }

  std::printf("== Table 5: Violations and charging dominance across power "
              "profiles ==\n\n");

  const std::pair<ExecModel, const char *> ModelRows[] = {
      {ExecModel::Ocelot, "Ocelot"}, {ExecModel::JitOnly, "JIT"}};
  for (const auto &[Model, Label] : ModelRows)
    Spec.Models.push_back(Model);
  // Benchmark id + the paper's column label, in presentation order; both
  // tables derive their headers from this single list.
  const std::pair<const char *, const char *> Benches[] = {
      {"activity", "Activity"},     {"cem", "CEM"},
      {"greenhouse", "Greenhouse"}, {"photo", "Photo"},
      {"send_photo", "Send Photo"}, {"tire", "Tire"}};
  for (const auto &[Id, Label] : Benches)
    Spec.Benchmarks.push_back(findBenchmark(Id));
  Spec.Energies = {EnergyConfig{}};
  Spec.Seeds = {131};
  Spec.TauBudget = benchSmokeMode() ? 2'500'000 : 40'000'000;
  Spec.Monitors = true;

  SweepRunner Runner(Workers);
  auto Start = std::chrono::steady_clock::now();
  std::vector<SweepCellResult> Cells = Runner.run(Spec);
  double Secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

  std::vector<std::string> ViolHead = {"Power profile", "Exec. Model"};
  for (const auto &[Id, Label] : Benches)
    ViolHead.push_back(Label);
  std::vector<std::string> ChargeHead = ViolHead;
  ChargeHead.push_back("gmean");
  Table Viol(std::move(ViolHead));
  Table Charge(std::move(ChargeHead));
  for (size_t P = 0; P < Spec.Powers.size(); ++P) {
    for (size_t M = 0; M < Spec.Models.size(); ++M) {
      std::vector<std::string> VRow = {PowerSpecs[P], ModelRows[M].second};
      std::vector<std::string> CRow = VRow;
      std::vector<double> Ratios;
      for (size_t B = 0; B < Spec.Benchmarks.size(); ++B) {
        const IntermittentMetrics &I =
            Cells[Spec.cellIndex({.Model = M, .Bench = B, .Power = P})].Metrics;
        if (I.Trapped) {
          VRow.push_back("trap");
          CRow.push_back("-");
          continue;
        }
        if (I.Starved || I.CompletedRuns == 0) {
          VRow.push_back("starved");
          CRow.push_back("-");
          continue;
        }
        VRow.push_back(fmtPct(I.violationPct()));
        double Ratio = I.OnCyclesPerRun > 0
                           ? I.OffCyclesPerRun / I.OnCyclesPerRun
                           : 0.0;
        Ratios.push_back(Ratio);
        CRow.push_back(fmt(Ratio, 1));
      }
      CRow.push_back(Ratios.empty() ? "-" : fmt(geomean(Ratios), 1));
      Viol.addRow(std::move(VRow));
      Charge.addRow(std::move(CRow));
    }
  }
  std::printf("-- Violating %% of completed runs --\n%s\n",
              Viol.str().c_str());
  std::printf("-- Charging dominance: off-time / on-time per run --\n%s\n",
              Charge.str().c_str());
  printSweepTiming(Cells.size(), Runner.workers(), Secs);
  std::printf("The harvesting environment, not the execution model, sets "
              "the charging bill;\nJIT's violation rate tracks how long "
              "each environment keeps the device dark.\n");
  return 0;
}
