//===- DifferentialFuzzTest.cpp - Randomized three-engine differential fuzzing ---===//
//
// Part of the Ocelot reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random-but-valid OCL programs from a seeded grammar walk and
/// pins the three interpreter engines (tree, flat, threaded) to
/// bitwise-identical observable behavior on every one of them: every
/// RunResult field, every violation record, every trace event, and the
/// final device state (tau, epoch, NVM image) must match across engines,
/// per activation, under continuous power and energy-driven failures.
///
/// The generator emits straight-line arithmetic, nested if/else, bounded
/// for loops, helper-function calls (by value and by reference), manual
/// atomic regions, sensor reads over declared io names, fused
/// multi-channel read clusters (distinct channels flowing into one output,
/// placed inside / outside / straddling atomic regions — the shapes the
/// input-epoch oracle scores), freshness / consistency annotations, and
/// all four output kinds. It is type-aware
/// (Sema distinguishes bool from int) and respects the structural rules:
/// no recursion, no address-of on parameters or loop variables, no return
/// inside atomic regions, break/continue only from loops opened inside the
/// innermost region. Runtime traps (division by zero, out-of-bounds
/// indices) are still generated on purpose -- trap behavior must agree
/// across engines too. A program the toolchain rejects under some model is
/// counted and skipped: the contract is "reject cleanly, never crash", and
/// the test fails only if the acceptance rate collapses to zero.
///
/// The config matrix is chosen to reach every dispatch specialization of
/// the threaded engine: continuous power without monitors (the Hot loop
/// with the trace-off output fast path), bit-vector monitors alone (the
/// checked loop -- the formal monitor would instead force the taint
/// interpreter), energy-driven failures with each monitor setting, and an
/// oracle-armed config whose OracleRecords must also agree bitwise.
///
/// OCELOT_FUZZ_PROGRAMS sets the number of generated programs (default
/// 30, sized for the default ctest lane; the dedicated CI fuzz job raises
/// it to several hundred).
///
//===----------------------------------------------------------------------===//

#include "ocelot/Toolchain.h"
#include "runtime/Simulation.h"
#include "telemetry/TraceSink.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

using namespace ocelot;

namespace {

int fuzzBudget() {
  if (const char *V = std::getenv("OCELOT_FUZZ_PROGRAMS"))
    if (int N = std::atoi(V); N > 0)
      return N;
  return 30;
}

// -- Random program generator ----------------------------------------------

/// Grammar-directed generator. Every emitted program is grammatically and
/// type-correct by construction; semantic rejections (e.g. region
/// inference refusing a placement) are left to the toolchain.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : Rng(Seed) {}

  std::string generate() {
    genDecls();
    int Helpers = rnd(3); // 0..2
    for (int H = 0; H < Helpers; ++H)
      genHelper(H);
    genMain();
    return Out.str();
  }

private:
  struct Var {
    std::string Name;
    bool IsBool = false;
    bool AddrOk = false; ///< let-bound scalar (not a param / loop var).
  };
  struct Helper {
    std::string Name;
    int IntParams = 0;
    bool RefParam = false; ///< leading `r: &int` parameter.
  };

  std::mt19937_64 Rng;
  std::ostringstream Out;
  std::vector<std::string> Sensors;
  std::vector<std::string> GlobalScalars;
  std::vector<std::pair<std::string, int>> GlobalArrays; // name, size
  std::vector<Helper> Helpers; ///< Completed helpers only: no recursion.

  // Per-function state.
  std::vector<Var> Scope;
  std::vector<std::pair<std::string, int>> LocalArrays;
  bool HaveRef = false; ///< Current function has an `r: &int` param.
  int NextVar = 0;
  int Budget = 0;
  int ConsistentBase = 0; ///< Set-id space; sets never span functions.
  int LoopsInRegion = 0;  ///< Loops opened since the innermost `atomic {`.
  int Ind = 1;

  int rnd(int N) { return static_cast<int>(Rng() % static_cast<uint64_t>(N)); }
  bool chance(int Pct) { return rnd(100) < Pct; }
  std::string ind() const { return std::string(2 * Ind, ' '); }
  std::string newVar() { return "v" + std::to_string(NextVar++); }
  int setId() { return ConsistentBase + rnd(2); }

  // -- Declarations --------------------------------------------------------

  void genDecls() {
    int NumSensors = 1 + rnd(3);
    Out << "io";
    for (int S = 0; S < NumSensors; ++S) {
      Sensors.push_back("s" + std::to_string(S));
      Out << (S ? ", " : " ") << Sensors.back();
    }
    Out << ";\n";
    int NumScalars = 1 + rnd(3);
    for (int G = 0; G < NumScalars; ++G) {
      GlobalScalars.push_back("g" + std::to_string(G));
      Out << "static " << GlobalScalars.back() << " = " << rnd(10) << ";\n";
    }
    int NumArrays = 1 + rnd(2);
    for (int A = 0; A < NumArrays; ++A) {
      int Size = chance(50) ? 4 : 8;
      GlobalArrays.emplace_back("ga" + std::to_string(A), Size);
      Out << "static " << GlobalArrays.back().first << ": [int; " << Size
          << "];\n";
    }
    Out << "\n";
  }

  // -- Expressions ---------------------------------------------------------

  std::string intLiteral() {
    static const int Pool[] = {0, 1, 2, 3, 5, 7, 8, 16, 63, 100, 255};
    int V = Pool[rnd(11)];
    if (chance(15))
      return "(-" + std::to_string(V) + ")";
    return std::to_string(V);
  }

  /// An in-scope int-typed scalar read, or a literal if none exists.
  std::string intVarRead() {
    std::vector<std::string> Cand;
    for (const Var &V : Scope)
      if (!V.IsBool)
        Cand.push_back(V.Name);
    for (const std::string &G : GlobalScalars)
      Cand.push_back(G);
    if (HaveRef && chance(20))
      return "(*r)";
    if (Cand.empty())
      return intLiteral();
    return Cand[rnd(static_cast<int>(Cand.size()))];
  }

  std::string arrayRead() {
    size_t NArr = GlobalArrays.size() + LocalArrays.size();
    if (NArr == 0)
      return intLiteral();
    size_t Pick = static_cast<size_t>(rnd(static_cast<int>(NArr)));
    const auto &[Name, Size] = Pick < GlobalArrays.size()
                                   ? GlobalArrays[Pick]
                                   : LocalArrays[Pick - GlobalArrays.size()];
    return Name + "[" + index(Size) + "]";
  }

  /// A mostly-in-bounds index: masked to the (power-of-two) size, with a
  /// small chance of a deliberately out-of-range literal so trap behavior
  /// gets differential coverage too.
  std::string index(int Size) {
    if (chance(4))
      return std::to_string(Size + rnd(4));
    return "(" + intExpr(1) + " & " + std::to_string(Size - 1) + ")";
  }

  std::string intExpr(int Depth) {
    if (Depth <= 0 || chance(35)) {
      int T = rnd(10);
      if (T < 4)
        return intLiteral();
      if (T < 8)
        return intVarRead();
      return arrayRead();
    }
    if (chance(10)) {
      const char *Un = chance(60) ? "-" : "~";
      return "(" + std::string(Un) + intExpr(Depth - 1) + ")";
    }
    // Division and modulo stay rare: a zero divisor traps the activation,
    // which is valid differential coverage but ends the run early.
    static const char *Ops[] = {"+", "+", "-", "-", "*",  "&",
                                "|", "^", "<<", ">>", "/", "%"};
    const char *Op = Ops[rnd(chance(80) ? 10 : 12)];
    return "(" + intExpr(Depth - 1) + " " + Op + " " + intExpr(Depth - 1) +
           ")";
  }

  std::string boolExpr(int Depth) {
    std::vector<std::string> BoolVars;
    for (const Var &V : Scope)
      if (V.IsBool)
        BoolVars.push_back(V.Name);
    if (Depth <= 0 || chance(25)) {
      if (!BoolVars.empty() && chance(50))
        return BoolVars[rnd(static_cast<int>(BoolVars.size()))];
      return chance(50) ? "true" : "false";
    }
    int K = rnd(10);
    if (K < 6) {
      static const char *Cmp[] = {"<", "<=", ">", ">=", "==", "!="};
      return "(" + intExpr(Depth - 1) + " " + Cmp[rnd(6)] + " " +
             intExpr(Depth - 1) + ")";
    }
    if (K < 8)
      return "(" + boolExpr(Depth - 1) + (chance(50) ? " && " : " || ") +
             boolExpr(Depth - 1) + ")";
    return "(!" + boolExpr(Depth - 1) + ")";
  }

  // -- Calls ---------------------------------------------------------------

  /// A call to a previously completed helper, or "" when none is callable
  /// (a ref-taking helper needs an addressable local at the call site).
  std::string callExpr() {
    std::vector<std::string> AddrOk;
    for (const Var &V : Scope)
      if (V.AddrOk && !V.IsBool)
        AddrOk.push_back(V.Name);
    std::vector<const Helper *> Cand;
    for (const Helper &H : Helpers)
      if (!H.RefParam || !AddrOk.empty())
        Cand.push_back(&H);
    if (Cand.empty())
      return "";
    const Helper &H = *Cand[rnd(static_cast<int>(Cand.size()))];
    std::string C = H.Name + "(";
    bool First = true;
    if (H.RefParam) {
      C += "&" + AddrOk[rnd(static_cast<int>(AddrOk.size()))];
      First = false;
    }
    for (int P = 0; P < H.IntParams; ++P) {
      if (!First)
        C += ", ";
      First = false;
      C += intExpr(1);
    }
    return C + ")";
  }

  // -- Statements ----------------------------------------------------------

  void letFallback() {
    std::string V = newVar();
    Out << ind() << "let " << V << " = " << intLiteral() << ";\n";
    Scope.push_back({V, false, true});
  }

  void genStmt(int Depth) {
    if (Budget <= 0)
      return;
    --Budget;
    int R = rnd(100);
    if (R < 12) { // let from a pure expression (sometimes bool-typed)
      std::string V = newVar();
      if (chance(20)) {
        Out << ind() << "let " << V << " = " << boolExpr(2) << ";\n";
        Scope.push_back({V, true, true});
      } else {
        Out << ind() << "let " << V << " = " << intExpr(2) << ";\n";
        Scope.push_back({V, false, true});
      }
    } else if (R < 26) { // sensor read, possibly annotated at the binding
      std::string V = newVar();
      std::string Qual;
      int Q = rnd(4);
      if (Q == 1)
        Qual = "fresh ";
      else if (Q == 2)
        Qual = "consistent(" + std::to_string(setId()) + ") ";
      Out << ind() << "let " << Qual << V << " = "
          << Sensors[rnd(static_cast<int>(Sensors.size()))] << "();\n";
      Scope.push_back({V, false, true});
    } else if (R < 34) { // assignment to a local scalar
      std::vector<const Var *> Ints;
      for (const Var &V : Scope)
        if (!V.IsBool && V.AddrOk)
          Ints.push_back(&V);
      if (Ints.empty())
        return letFallback();
      static const char *Ops[] = {" = ", " += ", " -= ", " *= "};
      Out << ind() << Ints[rnd(static_cast<int>(Ints.size()))]->Name
          << Ops[rnd(4)] << intExpr(2) << ";\n";
    } else if (R < 44) { // assignment to a non-volatile global scalar
      static const char *Ops[] = {" = ", " += ", " -= "};
      Out << ind()
          << GlobalScalars[rnd(static_cast<int>(GlobalScalars.size()))]
          << Ops[rnd(3)] << intExpr(2) << ";\n";
    } else if (R < 51) { // array element store (global or local array)
      size_t NArr = GlobalArrays.size() + LocalArrays.size();
      size_t Pick = static_cast<size_t>(rnd(static_cast<int>(NArr)));
      const auto &[Name, Size] =
          Pick < GlobalArrays.size()
              ? GlobalArrays[Pick]
              : LocalArrays[Pick - GlobalArrays.size()];
      Out << ind() << Name << "[" << index(Size) << "]"
          << (chance(70) ? " = " : " += ") << intExpr(2) << ";\n";
    } else if (R < 58 && HaveRef) { // store through the reference param
      Out << ind() << "*r" << (chance(70) ? " = " : " += ") << intExpr(2)
          << ";\n";
    } else if (R < 64 && Depth < 3) { // if / else
      Out << ind() << "if " << boolExpr(2) << " {\n";
      genBlock(Depth + 1);
      if (chance(45)) {
        Out << ind() << "} else {\n";
        genBlock(Depth + 1);
      }
      Out << ind() << "}\n";
    } else if (R < 71 && Depth < 3) { // bounded for (fully unrolled)
      std::string V = "i" + std::to_string(NextVar++);
      Out << ind() << "for " << V << " in 0.." << (2 + rnd(3)) << " {\n";
      Scope.push_back({V, false, false});
      ++LoopsInRegion;
      genBlock(Depth + 1);
      --LoopsInRegion;
      Scope.pop_back();
      Out << ind() << "}\n";
    } else if (R < 77 && Depth < 3) { // manual atomic region (may nest)
      Out << ind() << "atomic {\n";
      int SavedLoops = LoopsInRegion;
      LoopsInRegion = 0;
      genBlock(Depth + 1);
      LoopsInRegion = SavedLoops;
      Out << ind() << "}\n";
    } else if (R < 82 && Depth < 3 && Sensors.size() >= 2) {
      // Fused multi-channel read cluster: reads from distinct channels
      // flowing into one output — the shape the input-epoch oracle
      // scores. Placement varies: both reads and the output inside one
      // atomic region, reads straddling a region boundary, or fully
      // unprotected.
      std::string A = newVar(), B = newVar();
      int NumS = static_cast<int>(Sensors.size());
      int S0 = rnd(NumS);
      int S1 = (S0 + 1 + rnd(NumS - 1)) % NumS;
      std::string Qual;
      if (chance(40))
        Qual = "consistent(" + std::to_string(setId()) + ") ";
      switch (rnd(3)) {
      case 0: // both reads + fused output inside one region
        Out << ind() << "atomic {\n";
        ++Ind;
        Out << ind() << "let " << Qual << A << " = " << Sensors[S0]
            << "();\n";
        Out << ind() << "let " << Qual << B << " = " << Sensors[S1]
            << "();\n";
        Out << ind() << "log(" << A << " + " << B << ");\n";
        --Ind;
        Out << ind() << "}\n";
        break;
      case 1: // reads straddle a region boundary
        Out << ind() << "let " << Qual << A << " = " << Sensors[S0]
            << "();\n";
        Scope.push_back({A, false, true});
        Out << ind() << "atomic {\n";
        ++Ind;
        Out << ind() << "let " << Qual << B << " = " << Sensors[S1]
            << "();\n";
        Out << ind() << "send(" << A << " - " << B << ");\n";
        --Ind;
        Out << ind() << "}\n";
        break;
      default: // unprotected fusion across checkpoints
        Out << ind() << "let " << Qual << A << " = " << Sensors[S0]
            << "();\n";
        Out << ind() << "let " << Qual << B << " = " << Sensors[S1]
            << "();\n";
        Out << ind() << "uart(" << A << " + " << B << ");\n";
        Scope.push_back({A, false, true});
        Scope.push_back({B, false, true});
        break;
      }
    } else if (R < 86) { // output statement
      switch (rnd(5)) {
      case 0:
        Out << ind() << "log(" << intExpr(2) << ");\n";
        break;
      case 1:
        Out << ind() << "log(" << intExpr(1) << ", " << intExpr(1) << ");\n";
        break;
      case 2:
        Out << ind() << "alarm();\n";
        break;
      case 3:
        Out << ind() << "send(" << intExpr(2) << ");\n";
        break;
      default:
        Out << ind() << "uart(" << intExpr(2) << ");\n";
        break;
      }
    } else if (R < 92) { // helper call: bare statement or let-bound
      std::string C = callExpr();
      if (C.empty())
        return letFallback();
      if (chance(40)) {
        Out << ind() << C << ";\n";
      } else {
        std::string V = newVar();
        Out << ind() << "let " << V << " = " << C << ";\n";
        Scope.push_back({V, false, true});
      }
    } else if (R < 96) { // standalone annotation on an int let-local
      std::vector<const Var *> Ints;
      for (const Var &V : Scope)
        if (!V.IsBool && V.AddrOk)
          Ints.push_back(&V);
      if (Ints.empty())
        return letFallback();
      const std::string &N = Ints[rnd(static_cast<int>(Ints.size()))]->Name;
      switch (rnd(3)) {
      case 0:
        Out << ind() << "Fresh(" << N << ");\n";
        break;
      case 1:
        Out << ind() << "Consistent(" << N << ", " << setId() << ");\n";
        break;
      default:
        Out << ind() << "FreshConsistent(" << N << ", " << setId() << ");\n";
        break;
      }
    } else if (LoopsInRegion > 0 && chance(60)) {
      // Only from loops opened inside the innermost region (Sema forbids
      // escaping an atomic block through an enclosing loop).
      Out << ind() << (chance(50) ? "break;\n" : "continue;\n");
    } else {
      letFallback();
    }
  }

  void genBlock(int Depth) {
    size_t SavedScope = Scope.size();
    size_t SavedArrays = LocalArrays.size();
    ++Ind;
    std::streampos Before = Out.tellp();
    int N = 1 + rnd(3);
    for (int S = 0; S < N && Budget > 0; ++S)
      genStmt(Depth);
    if (Out.tellp() == Before)
      letFallback(); // never emit an empty block
    --Ind;
    Scope.resize(SavedScope);
    LocalArrays.resize(SavedArrays);
  }

  // -- Functions -----------------------------------------------------------

  void resetFunction(int FnIndex) {
    Scope.clear();
    LocalArrays.clear();
    HaveRef = false;
    NextVar = 0;
    LoopsInRegion = 0;
    ConsistentBase = 8 * FnIndex; // consistent sets stay function-local
    Ind = 1;
  }

  void genHelper(int H) {
    Helper Sig;
    Sig.Name = "f" + std::to_string(H);
    Sig.RefParam = chance(30);
    Sig.IntParams = rnd(3);
    resetFunction(H);
    Out << "fn " << Sig.Name << "(";
    bool First = true;
    if (Sig.RefParam) {
      Out << "r: &int";
      HaveRef = true;
      First = false;
    }
    for (int P = 0; P < Sig.IntParams; ++P) {
      if (!First)
        Out << ", ";
      First = false;
      std::string Name = "p" + std::to_string(P);
      Out << Name << ": int";
      Scope.push_back({Name, false, false}); // params are not addressable
    }
    Out << ") -> int {\n";
    Budget = 8;
    // Let a local array occasionally exist before the body references one.
    if (chance(30)) {
      LocalArrays.emplace_back("a" + std::to_string(NextVar++), 4);
      Out << ind() << "let " << LocalArrays.back().first << " = [0; 4];\n";
    }
    int N = 2 + rnd(4);
    for (int S = 0; S < N && Budget > 0; ++S)
      genStmt(1);
    Out << ind() << "return " << intExpr(2) << ";\n}\n\n";
    Helpers.push_back(Sig); // visible to later helpers and main only
  }

  void genMain() {
    resetFunction(static_cast<int>(Helpers.size()));
    Out << "fn main() {\n";
    Budget = 22;
    if (chance(40)) {
      LocalArrays.emplace_back("a" + std::to_string(NextVar++), 8);
      Out << ind() << "let " << LocalArrays.back().first << " = [0; 8];\n";
    }
    int N = 4 + rnd(5);
    for (int S = 0; S < N && Budget > 0; ++S)
      genStmt(1);
    // End with an output so even trap-free straight-line programs have an
    // observable effect to compare.
    Out << ind() << "log(" << intExpr(1) << ");\n}\n";
  }
};

// -- Differential harness --------------------------------------------------

/// Everything observable about one activation must match the tree
/// reference.
void expectSameResult(const RunResult &Got, const RunResult &Ref,
                      const std::string &What) {
  EXPECT_EQ(Got.Completed, Ref.Completed) << What;
  EXPECT_EQ(Got.Starved, Ref.Starved) << What;
  EXPECT_EQ(Got.Trap, Ref.Trap) << What;
  EXPECT_EQ(Got.OnCycles, Ref.OnCycles) << What;
  EXPECT_EQ(Got.OffCycles, Ref.OffCycles) << What;
  EXPECT_EQ(Got.Steps, Ref.Steps) << What;
  EXPECT_EQ(Got.Reboots, Ref.Reboots) << What;
  EXPECT_EQ(Got.Checkpoints, Ref.Checkpoints) << What;
  EXPECT_EQ(Got.UndoLogEntries, Ref.UndoLogEntries) << What;
  EXPECT_EQ(Got.AtomicCommits, Ref.AtomicCommits) << What;
  EXPECT_EQ(Got.AtomicAborts, Ref.AtomicAborts) << What;
  EXPECT_EQ(Got.ViolatedFresh, Ref.ViolatedFresh) << What;
  EXPECT_EQ(Got.ViolatedConsistent, Ref.ViolatedConsistent) << What;
  EXPECT_EQ(Got.FinalTau, Ref.FinalTau) << What;

  EXPECT_EQ(Got.OracleFresh, Ref.OracleFresh) << What;
  EXPECT_EQ(Got.OracleStale, Ref.OracleStale) << What;
  EXPECT_EQ(Got.OracleCrossEpoch, Ref.OracleCrossEpoch) << What;
  ASSERT_EQ(Got.OracleRecords.size(), Ref.OracleRecords.size()) << What;
  for (size_t O = 0; O < Got.OracleRecords.size(); ++O)
    EXPECT_TRUE(Got.OracleRecords[O] == Ref.OracleRecords[O])
        << What << " oracle record " << O;

  ASSERT_EQ(Got.Violations.size(), Ref.Violations.size()) << What;
  for (size_t V = 0; V < Got.Violations.size(); ++V) {
    const ViolationRecord &GV = Got.Violations[V];
    const ViolationRecord &RV = Ref.Violations[V];
    EXPECT_EQ(GV.K, RV.K) << What << " violation " << V;
    EXPECT_TRUE(GV.Site == RV.Site) << What << " violation " << V;
    EXPECT_EQ(GV.SetId, RV.SetId) << What << " violation " << V;
    EXPECT_EQ(GV.Tau, RV.Tau) << What << " violation " << V;
    EXPECT_EQ(GV.Detail, RV.Detail) << What << " violation " << V;
  }

  ASSERT_EQ(Got.TraceData.Inputs.size(), Ref.TraceData.Inputs.size()) << What;
  for (size_t I = 0; I < Got.TraceData.Inputs.size(); ++I)
    EXPECT_TRUE(Got.TraceData.Inputs[I] == Ref.TraceData.Inputs[I])
        << What << " input " << I;
  ASSERT_EQ(Got.TraceData.Outputs.size(), Ref.TraceData.Outputs.size())
      << What;
  for (size_t O = 0; O < Got.TraceData.Outputs.size(); ++O) {
    EXPECT_TRUE(
        Got.TraceData.Outputs[O].sameContent(Ref.TraceData.Outputs[O]))
        << What << " output " << O;
    EXPECT_EQ(Got.TraceData.Outputs[O].Tau, Ref.TraceData.Outputs[O].Tau)
        << What << " output " << O;
  }
  EXPECT_EQ(Got.TraceData.Reboots, Ref.TraceData.Reboots) << What;
}

/// Runs \p Runs activations of \p A under all three engines with identical
/// configs and compares every activation plus the final device state.
/// \p Traced attaches a fresh TraceSink per engine and additionally
/// requires the three exported trace streams to be byte-identical.
void runThreeWay(const CompiledArtifact &A, const RunConfig &Base,
                 uint64_t Seed, int Runs, const std::string &What,
                 bool Traced = false) {
  TraceSink Sinks[3];
  int NextSink = 0;
  auto mkSim = [&](DispatchEngine E) {
    SimulationSpec Spec;
    Spec.Config = Base;
    Spec.Config.Seed = Seed;
    Spec.Config.Dispatch = E;
    if (Traced)
      Spec.Config.Telemetry = &Sinks[NextSink++];
    return Simulation(A, std::move(Spec));
  };
  Simulation Tree = mkSim(DispatchEngine::Tree);
  Simulation Flat = mkSim(DispatchEngine::Flat);
  Simulation Threaded = mkSim(DispatchEngine::Threaded);

  for (int Run = 0; Run < Runs; ++Run) {
    RunResult TR = Tree.runOnce();
    RunResult FR = Flat.runOnce();
    RunResult HR = Threaded.runOnce();
    std::string Tag = What + "/run" + std::to_string(Run);
    expectSameResult(FR, TR, Tag + " [flat vs tree]");
    expectSameResult(HR, TR, Tag + " [threaded vs tree]");
    if (TR.Starved && FR.Starved && HR.Starved)
      break; // Device state after starvation is equal but final.
  }
  EXPECT_EQ(Flat.tau(), Tree.tau()) << What;
  EXPECT_EQ(Threaded.tau(), Tree.tau()) << What;
  EXPECT_EQ(Flat.epoch(), Tree.epoch()) << What;
  EXPECT_EQ(Threaded.epoch(), Tree.epoch()) << What;
  EXPECT_EQ(Flat.nvmSnapshot(), Tree.nvmSnapshot()) << What;
  EXPECT_EQ(Threaded.nvmSnapshot(), Tree.nvmSnapshot()) << What;
  if (Traced) {
    std::string Ref = Sinks[0].exportChromeJson();
    EXPECT_EQ(Sinks[1].exportChromeJson(), Ref)
        << What << " [flat trace diverged]";
    EXPECT_EQ(Sinks[2].exportChromeJson(), Ref)
        << What << " [threaded trace diverged]";
  }
}

TEST(DifferentialFuzz, TreeFlatThreadedAgreeOnRandomPrograms) {
  const int Programs = fuzzBudget();
  int Valid = 0;
  int Rejected = 0;
  for (int P = 0; P < Programs; ++P) {
    const uint64_t GenSeed = 0x0CE107u + 977u * static_cast<uint64_t>(P);
    std::string Src = ProgramGen(GenSeed).generate();
    SCOPED_TRACE("fuzz program " + std::to_string(P) + " (generator seed " +
                 std::to_string(GenSeed) + "):\n" + Src);
    for (ExecModel Model :
         {ExecModel::Ocelot, ExecModel::JitOnly, ExecModel::AtomicsOnly}) {
      CompileOptions Opts;
      Opts.Model = Model;
      Compilation C = Toolchain().compile(Src, Opts);
      if (!C.ok()) {
        // Clean rejection (diagnostics, no crash) is in-contract.
        ++Rejected;
        continue;
      }
      ++Valid;
      const CompiledArtifact &A = C.artifact();
      std::string What =
          "p" + std::to_string(P) + "/" + execModelName(Model);

      // Continuous power, no monitors, no trace: the threaded engine's Hot
      // specialization and the trace-off output fast path.
      RunConfig Plain;
      runThreeWay(A, Plain, GenSeed ^ 0xA5, 2, What + "/hot");

      // Bit-vector monitor alone keeps the real threaded loop in charge
      // (the formal monitor's taint tracking would delegate to the taint
      // interpreter, which is separate coverage below).
      RunConfig BitVec;
      BitVec.MonitorBitVector = true;
      BitVec.RecordTrace = true;
      runThreeWay(A, BitVec, GenSeed ^ 0x5A, 2, What + "/bitvec");

      RunConfig Energy = BitVec;
      Energy.Plan = FailurePlan::energyDriven();
      runThreeWay(A, Energy, GenSeed * 31 + 7, 4, What + "/energy");

      RunConfig Full = Energy;
      Full.MonitorFormal = true;
      runThreeWay(A, Full, GenSeed * 131 + 13, 4, What + "/energy-taint");

      // Input-epoch oracle armed: every committed output's fused-input
      // record and verdict must agree bitwise across the engines.
      RunConfig Oracle = Energy;
      Oracle.Oracle = true;
      runThreeWay(A, Oracle, GenSeed * 257 + 29, 4, What + "/energy-oracle");

      // Same config with telemetry attached: trace hooks must not change
      // any observable result, and the per-engine trace streams must
      // match byte for byte.
      runThreeWay(A, Full, GenSeed * 131 + 13, 4, What + "/energy-traced",
                  /*Traced=*/true);
    }
  }
  EXPECT_GT(Valid, 0) << "the generator produced no compilable programs";
  RecordProperty("programs", Programs);
  RecordProperty("valid_compiles", Valid);
  RecordProperty("rejected_compiles", Rejected);
}

// A fixed regression corpus: hand-written programs that previously needed
// care in the threaded engine (trap paths, mid-pair resume shapes, fused
// candidates around region bounds). Cheap enough to run unconditionally.
TEST(DifferentialFuzz, RegressionCorpus) {
  static const char *Corpus[] = {
      // Division by zero behind a fusable bin+condbr pair.
      "io s;\nfn main() { let x = s(); let y = (x - x);\n"
      "  if (x / y) > 0 { log(1); } log(2); }\n",
      // Out-of-bounds store inside an atomic region.
      "static a: [int; 4];\nfn main() { let i = 9; atomic { a[i] = 1; }\n"
      "  log(a[0]); }\n",
      // Fused-candidate pairs bracketing an atomic region boundary.
      "io s;\nstatic n = 0;\nfn main() { let fresh x = s();\n"
      "  atomic { n = (x * 2); n += 1; }\n  if x > 10 { uart(n); }\n"
      "  log(n); }\n",
      // Call/return straddling arithmetic (post-call resume is a leader).
      "static n = 0;\nfn inc(d: int) -> int { n += d; return n; }\n"
      "fn main() { let a = inc(3); let b = (a + inc(4)); log(b); }\n",
      // Reference parameter with a store through it.
      "fn bump(r: &int) -> int { *r += 5; return (*r); }\n"
      "fn main() { let x = 1; let y = bump(&x); log(x, y); }\n",
      // Mid-chain trap: a long chainable run whose interior divides by
      // zero — the threaded engine must unwind from inside a superblock
      // chain with the same state the unfused engines leave.
      "io s;\nstatic n = 0;\nfn main() { let x = s(); let a = x + 1;\n"
      "  let b = a * 2; let c = (b / (x - x)); let d = c + a;\n"
      "  n = d; log(n); }\n",
      // Mid-chain bounds trap: chainable loads around an out-of-range
      // array store deep in a straight-line run.
      "static a: [int; 4];\nstatic n = 0;\nfn main() { let i = 2;\n"
      "  let u = a[i]; let v = u + 7; let w = v * 3; a[i + 9] = w;\n"
      "  n = w; log(n); }\n",
      // Reboot-resume inside a chain: a hot straight-line body long
      // enough that energy-driven failures interrupt it mid-chain; the
      // resume PC lands on a plain interior code and must replay to the
      // same state as the unfused engines (exercised across the
      // energy-driven runThreeWay below).
      "io s;\nstatic n = 0;\nstatic m = 0;\nfn main() { let x = s();\n"
      "  let a = x + 1; let b = a + 2; let c = b + 3; let d = c + 4;\n"
      "  let e = d + 5; let f = e + 6; let g = f + 7; let h = g + 8;\n"
      "  n = h; m = (n * 2); log(n, m); }\n",
      // Chain head as a branch target: looping control re-enters the
      // chained body at its head every iteration while the final CondBr
      // terminates a chain.
      "io s;\nstatic n = 0;\nfn main() {\n"
      "  for i in 0..6 { let x = s(); let a = x + i; let b = a * 2;\n"
      "    n += b; }\n  log(n); }\n",
  };
  int Idx = 0;
  for (const char *Src : Corpus) {
    SCOPED_TRACE("corpus program " + std::to_string(Idx++) + ":\n" + Src);
    for (ExecModel Model :
         {ExecModel::Ocelot, ExecModel::JitOnly, ExecModel::AtomicsOnly}) {
      CompileOptions Opts;
      Opts.Model = Model;
      Compilation C = Toolchain().compile(Src, Opts);
      if (!C.ok())
        continue;
      RunConfig Cfg;
      Cfg.MonitorBitVector = true;
      Cfg.RecordTrace = true;
      Cfg.Plan = FailurePlan::energyDriven();
      runThreeWay(C.artifact(), Cfg, 42, 4,
                  std::string("corpus/") + execModelName(Model));
    }
  }
}

} // namespace
